//! # parallel-tabu-search
//!
//! A from-scratch Rust reproduction of **Al-Yamani, Sait, Barada &
//! Youssef, "Parallel Tabu Search in a Heterogeneous Environment"
//! (IPDPS 2003)**: two-level parallel tabu search for VLSI standard-cell
//! placement, evaluated on a simulated heterogeneous twelve-machine
//! cluster.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`util`] | `pts-util` | deterministic RNG, statistics, tables/CSV |
//! | [`netlist`] | `pts-netlist` | circuit hypergraph, timing DAG, ISCAS-like generators |
//! | [`place`] | `pts-place` | placement model, incremental HPWL/STA/area, fuzzy cost |
//! | [`tabu`] | `pts-tabu` | generic tabu search engine (tenure, aspiration, compound moves, diversification) |
//! | [`vcluster`] | `pts-vcluster` | deterministic virtual-time heterogeneous cluster (PVM substitute) |
//! | [`core`] | `pts-core` | the paper's parallel TS: master / TSW / CLW, half-report sync, engines |
//!
//! ## Quickstart
//!
//! Configure a run with the validated builder, pick an execution engine
//! (the simulated heterogeneous cluster, native threads, cooperative
//! async tasks, or the virtual-time cooperative engine — all behind the
//! same [`core::ExecutionEngine`] trait), and run any wired-in problem
//! domain:
//!
//! ```
//! use parallel_tabu_search::prelude::*;
//! use std::sync::Arc;
//!
//! // The paper's smallest benchmark: 56 cells.
//! let netlist = Arc::new(parallel_tabu_search::netlist::highway());
//! let run = Pts::builder()
//!     .tsw_workers(2)
//!     .clw_workers(2)
//!     .global_iters(2)
//!     .local_iters(5)
//!     .build()
//!     .expect("valid configuration");
//!
//! // Same entry point, either substrate:
//! let engine: &dyn ExecutionEngine<PlacementDomain> = &SimEngine::paper();
//! let out = run.run_placement(netlist, engine);
//! assert!(out.outcome.best_cost < out.outcome.initial_cost);
//! // Unified metrics — no engine-specific output types:
//! assert!(out.report.total_messages() > 0);
//!
//! // The pipeline is problem-generic: the same run drives QAP.
//! let qap = run.execute(&QapDomain::random(16, 7), &SimEngine::paper());
//! assert!(qap.outcome.best_cost <= qap.outcome.initial_cost);
//! ```

pub use pts_core as core;
pub use pts_netlist as netlist;
pub use pts_place as place;
pub use pts_tabu as tabu;
pub use pts_util as util;
pub use pts_vcluster as vcluster;

/// The names most applications need.
pub mod prelude {
    pub use pts_core::{
        run_sequential_baseline, AsyncEngine, ClockDomain, ConfigError, Contention, CostKind,
        DeltaSnapshot, ExecutionEngine, FaultMix, FaultSpec, MasterOutcome, PlacementDomain,
        PlacementRunOutput, ProcEngine, Pts, PtsConfig, PtsDomain, PtsRun, QapDomain, RunBuilder,
        RunReport, SearchStrategy, SimEngine, SnapshotMode, SyncPolicy, ThreadEngine,
        VirtualEngine, WorkerFault,
    };
    pub use pts_netlist::{benchmark_names, by_name, Netlist, TimingGraph};
    pub use pts_place::{Evaluator, Layout, Placement};
    pub use pts_tabu::{DiversifiableProblem, SearchProblem, TabuSearch, TabuSearchConfig};
    pub use pts_util::Rng;
    pub use pts_vcluster::topology::{homogeneous, paper_cluster};
    pub use pts_vcluster::ClusterSpec;
}
