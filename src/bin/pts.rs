//! `pts` — command-line front end for the parallel tabu search
//! reproduction.
//!
//! ```text
//! pts circuits                      list the paper's benchmark circuits
//! pts run [options]                 one PTS run (sim/threads/async/vt
//!                                   engine, placement or QAP problem)
//! pts sweep --what clw|tsw [...]    quality/speedup sweep (Figs 5-8 style)
//! pts generate --cells N [...]      emit a synthetic netlist (text format)
//! pts show --file netlist.txt      parse a netlist file and print stats
//! ```
//!
//! Run `pts help` for all options.

use parallel_tabu_search::core::{
    common_quality_target, speedup_sweep, AsyncEngine, Contention, CostKind, ExecutionEngine,
    FaultMix, FaultSpec, ProcDomain, ProcEngine, Pts, PtsConfig, PtsRun, QapDomain, SearchStrategy,
    SimEngine, SnapshotMode, SyncPolicy, ThreadEngine, VirtualEngine, WireProblem,
};
use parallel_tabu_search::netlist::{
    benchmark_names, by_name, format, generate, CircuitSpec, Netlist, NetlistStats, TimingGraph,
};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    // Multi-process engine re-entry: when spawned as
    // `pts __pts-worker --sock <addr> --rank <n>` this runs the worker
    // role and exits instead of parsing the CLI.
    parallel_tabu_search::core::proc::maybe_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print_help();
        return ExitCode::SUCCESS;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "circuits" => cmd_circuits(),
        "run" => cmd_run(&opts),
        "sweep" => cmd_sweep(&opts),
        "generate" => cmd_generate(&opts),
        "show" => cmd_show(&opts),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'pts help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "pts — parallel tabu search in a heterogeneous environment (IPDPS'03 reproduction)

USAGE:
  pts circuits
  pts run      [--problem placement|qap] [--circuit NAME | --qap-size N]
               [--tsw N] [--clw N] [--global N] [--local N]
               [--engine sim|threads|async|vt|proc] [--sync half|all] [--no-diversify]
               [--differentiate] [--cost fuzzy|weighted] [--seed N]
               [--candidates N] [--depth N] [--report-fraction F]
               [--portfolio S1,S2,...]  (heterogeneous strategy portfolio,
                                         one entry per TSW group; each entry
                                         is a named preset — default,
                                         intensify, diversify, greedy — or
                                         an explicit tenure:candidates:depth
                                         triple; omit for a uniform run)
               [--shard-fanout N|auto]  (0 = flat master, >= 2 = sub-master
                                         tree, auto = f ~ sqrt(n_tsw))
               [--snapshot-mode delta|full]  (delta = diff against the last
                                              broadcast, default)
               [--faults crashes|slowdowns|message-chaos|mixed]
               [--fault-seed N] [--fault-horizon T]  (seeded fault injection;
                                                      vt engine only)
               [--contention]   (time-sliced machine sharing; vt engine only)
               [--liveness T]   (timeout excusing silent workers; vt + proc)
               [--heartbeat-ms N]  (proc engine: worker liveness beacons on
                                    idle streams; 0 = disabled)
               [--reap-grace-ms N] (proc engine: grace before stragglers
                                    are killed on teardown; default 2000)
  pts sweep    --what clw|tsw [--max N] [--circuit NAME] [common options]
  pts generate --cells N [--seed N] [--out FILE]
  pts show     --file FILE

DEFAULTS: --problem placement --circuit c532 --qap-size 30 --tsw 4 --clw 1
          --global 10 --local 20 --engine sim --sync half --cost fuzzy
          --seed 0xC0FFEE"
    );
}

/// Minimal `--key value` / `--flag` parser.
struct Opts {
    pairs: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("expected an option, got '{a}'"));
            };
            let value = args.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
            if value.is_some() {
                i += 2;
            } else {
                i += 1;
            }
            pairs.push((key.to_string(), value));
        }
        Ok(Opts { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} needs a number, got '{v}'")),
        }
    }
}

fn load_circuit(opts: &Opts) -> Result<Arc<Netlist>, String> {
    let name = opts.get("circuit").unwrap_or("c532");
    if let Some(nl) = by_name(name) {
        return Ok(Arc::new(nl));
    }
    // Fall back to a file path.
    let text = std::fs::read_to_string(name)
        .map_err(|e| format!("'{name}' is neither a benchmark nor a readable file: {e}"))?;
    format::from_text(&text)
        .map(Arc::new)
        .map_err(|e| e.to_string())
}

/// One `--portfolio` entry: a named preset from the README's strategy
/// table, or an explicit `tenure:candidates:depth` triple (remaining
/// knobs at their defaults).
fn parse_strategy(spec: &str) -> Result<SearchStrategy, String> {
    match spec {
        "default" => return Ok(SearchStrategy::default()),
        // Exploiter: long compound moves over a wide sample, short
        // memory — digs into the current basin.
        "intensify" => {
            return Ok(SearchStrategy {
                tenure: 5,
                candidates: 12,
                depth: 4,
                diversify_width: 2,
                ..Default::default()
            })
        }
        // Explorer: long memory, shallow moves, aggressive
        // diversification — keeps leaving basins.
        "diversify" => {
            return Ok(SearchStrategy {
                tenure: 15,
                candidates: 6,
                depth: 2,
                diversify_width: 8,
                ..Default::default()
            })
        }
        // Hill-climber: minimal memory, best-of-many single steps.
        "greedy" => {
            return Ok(SearchStrategy {
                tenure: 3,
                candidates: 16,
                depth: 1,
                ..Default::default()
            })
        }
        _ => {}
    }
    let parts: Vec<&str> = spec.split(':').collect();
    let [tenure, candidates, depth] = parts.as_slice() else {
        return Err(format!(
            "--portfolio entry '{spec}' is neither a preset (default, intensify, \
             diversify, greedy) nor a tenure:candidates:depth triple"
        ));
    };
    let num = |what: &str, v: &str| -> Result<usize, String> {
        v.parse()
            .map_err(|_| format!("--portfolio entry '{spec}': {what} needs a number, got '{v}'"))
    };
    Ok(SearchStrategy {
        tenure: num("tenure", tenure)? as u64,
        candidates: num("candidates", candidates)?,
        depth: num("depth", depth)?,
        ..Default::default()
    })
}

/// Build a validated run from the CLI options; invalid combinations fail
/// here with the typed `ConfigError` message, not mid-run.
fn build_run(opts: &Opts) -> Result<PtsRun, String> {
    let mut builder = Pts::builder()
        .tsw_workers(opts.parse_num("tsw", 4usize)?)
        .clw_workers(opts.parse_num("clw", 1usize)?)
        .global_iters(opts.parse_num("global", 10u32)?)
        .local_iters(opts.parse_num("local", 20u32)?)
        .candidates(opts.parse_num("candidates", 8usize)?)
        .depth(opts.parse_num("depth", 3usize)?)
        .report_fraction(opts.parse_num("report-fraction", 0.5f64)?)
        .liveness_timeout(opts.parse_num("liveness", 0.0f64)?)
        .heartbeat_ms(opts.parse_num("heartbeat-ms", 0u64)?)
        .reap_grace_ms(opts.parse_num("reap-grace-ms", 2000u64)?)
        .seed(opts.parse_num("seed", 0xC0FFEEu64)?);
    builder = match opts.get("shard-fanout") {
        Some("auto") => builder.shard_fanout_auto(),
        _ => builder.shard_fanout(opts.parse_num("shard-fanout", 0usize)?),
    };
    if let Some(spec) = opts.get("portfolio") {
        let strategies: Vec<SearchStrategy> = spec
            .split(',')
            .map(parse_strategy)
            .collect::<Result<_, _>>()?;
        builder = builder.portfolio(strategies);
    }
    builder = match opts.get("snapshot-mode").unwrap_or("delta") {
        "delta" => builder.snapshot_mode(SnapshotMode::Delta),
        "full" => builder.snapshot_mode(SnapshotMode::Full),
        other => {
            return Err(format!(
                "--snapshot-mode must be 'delta' or 'full', got '{other}'"
            ))
        }
    };
    if opts.flag("no-diversify") {
        builder = builder.diversify(false);
    }
    if opts.flag("differentiate") {
        builder = builder.differentiate_streams(true);
    }
    builder = match opts.get("sync").unwrap_or("half") {
        "half" => builder.sync(SyncPolicy::HalfReport),
        "all" => builder.sync(SyncPolicy::WaitAll),
        other => return Err(format!("--sync must be 'half' or 'all', got '{other}'")),
    };
    builder = match opts.get("cost").unwrap_or("fuzzy") {
        "fuzzy" => builder.cost(CostKind::Fuzzy),
        "weighted" => builder.cost(CostKind::WeightedSum),
        other => {
            return Err(format!(
                "--cost must be 'fuzzy' or 'weighted', got '{other}'"
            ))
        }
    };
    builder.build().map_err(|e| e.to_string())
}

/// Engine selection: substrates are trait objects behind one interface,
/// so every problem domain gets all five for free. The bound is
/// `ProcDomain` (not just `PtsDomain`) so `--engine proc` can ship the
/// instance to worker processes; both CLI domains implement it.
fn pick_engine<D>(opts: &Opts, cfg: &PtsConfig) -> Result<Box<dyn ExecutionEngine<D>>, String>
where
    D: ProcDomain,
    <D as parallel_tabu_search::core::PtsDomain>::Problem: WireProblem,
{
    let name = opts.get("engine").unwrap_or("sim");
    if name != "vt" && (opts.flag("faults") || opts.flag("contention")) {
        return Err(format!(
            "--faults/--contention need the deterministic virtual clock: \
             use --engine vt (got --engine {name})"
        ));
    }
    match name {
        "sim" => Ok(Box::new(SimEngine::paper())),
        "threads" => Ok(Box::new(ThreadEngine)),
        "async" => Ok(Box::new(AsyncEngine::new())),
        "vt" => {
            let mut engine = VirtualEngine::paper();
            if opts.flag("faults") && opts.get("faults").is_none() {
                return Err("--faults needs a mix: crashes|slowdowns|message-chaos|mixed".into());
            }
            if opts.flag("contention") {
                engine = engine.with_contention(Contention::TimeSliced);
            }
            if let Some(mix) = opts.get("faults") {
                let mix = FaultMix::parse(mix).ok_or_else(|| {
                    format!(
                        "--faults must be 'crashes', 'slowdowns', 'message-chaos', \
                         or 'mixed', got '{mix}'"
                    )
                })?;
                let fault_seed = opts.parse_num("fault-seed", cfg.seed)?;
                let horizon: f64 = opts.parse_num("fault-horizon", 300.0f64)?;
                if !(horizon.is_finite() && horizon > 0.0) {
                    return Err(format!("--fault-horizon must be positive, got {horizon}"));
                }
                // The paper cluster has 12 machines.
                engine = engine.with_faults(FaultSpec::seeded(fault_seed, mix, cfg, 12, horizon));
                if cfg.liveness_timeout == 0.0 {
                    eprintln!(
                        "note: injecting faults without --liveness; a silent worker \
                         can stall a WaitAll round until its Down notice arrives"
                    );
                }
            }
            Ok(Box::new(engine))
        }
        "proc" => Ok(Box::new(
            ProcEngine::from_current_exe().map_err(|e| format!("--engine proc: {e}"))?,
        )),
        other => Err(format!(
            "--engine must be 'sim', 'threads', 'async', 'vt', or 'proc', got '{other}'"
        )),
    }
}

fn engine_label(name: &str) -> &'static str {
    match name {
        "sim" => "the 12-machine virtual cluster",
        "async" => "cooperative tasks on one thread",
        "vt" => "the 12-machine virtual cluster (cooperative, thousand-worker scale)",
        "proc" => "worker processes over sockets",
        _ => "native threads",
    }
}

fn cmd_circuits() -> Result<(), String> {
    for name in benchmark_names() {
        let nl = by_name(name).expect("benchmark exists");
        let tg = TimingGraph::build(&nl).map_err(|e| e.to_string())?;
        println!("{}", NetlistStats::compute(&nl, &tg));
    }
    Ok(())
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    match opts.get("problem").unwrap_or("placement") {
        "placement" => cmd_run_placement(opts),
        "qap" => cmd_run_qap(opts),
        other => Err(format!(
            "--problem must be 'placement' or 'qap', got '{other}'"
        )),
    }
}

fn cmd_run_placement(opts: &Opts) -> Result<(), String> {
    let netlist = load_circuit(opts)?;
    let run = build_run(opts)?;
    let cfg = run.config();
    let engine = pick_engine(opts, cfg)?;
    println!(
        "running {} on {}: {} TSW x {} CLW, {} global x {} local iterations",
        netlist.name,
        engine_label(engine.name()),
        cfg.n_tsw,
        cfg.n_clw,
        cfg.global_iters,
        cfg.local_iters
    );
    let out = run.run_placement(netlist, engine.as_ref());
    let o = &out.outcome;
    println!("initial cost : {:.4}", o.initial_cost);
    println!("best cost    : {:.4}", o.best_cost);
    println!(
        "objectives   : wire={:.1} delay={:.2} area={:.0}",
        o.objectives.wire, o.objectives.delay, o.objectives.area
    );
    print_report(o.end_time, o.forced_reports, &out.report);
    Ok(())
}

fn cmd_run_qap(opts: &Opts) -> Result<(), String> {
    let n: usize = opts.parse_num("qap-size", 30usize)?;
    if n < 2 {
        return Err("--qap-size must be at least 2".into());
    }
    let run = build_run(opts)?;
    let cfg = run.config();
    let engine = pick_engine(opts, cfg)?;
    let domain = QapDomain::random(n, cfg.seed ^ 0xAAAA);
    println!(
        "running qap-{n} on {}: {} TSW x {} CLW, {} global x {} local iterations",
        engine_label(engine.name()),
        cfg.n_tsw,
        cfg.n_clw,
        cfg.global_iters,
        cfg.local_iters
    );
    let out = run.execute(&domain, engine.as_ref());
    let o = &out.outcome;
    println!("initial cost : {:.1}", o.initial_cost);
    println!("best cost    : {:.1}", o.best_cost);
    print_report(o.end_time, o.forced_reports, &out.report);
    Ok(())
}

fn print_report(
    end_time: f64,
    forced_reports: u64,
    report: &parallel_tabu_search::core::RunReport,
) {
    let clock = match report.clock {
        parallel_tabu_search::core::ClockDomain::Virtual => "virtual",
        parallel_tabu_search::core::ClockDomain::Wall => "wall",
    };
    println!("search time  : {end_time:.2} s ({clock})");
    println!("wall time    : {:.2} s", report.wall_seconds);
    println!("forced reports: {forced_reports}");
    // Utilization: virtual busy/wait on the sim engine, per-thread CPU
    // time (getrusage, Linux) on the thread engine; the async engine
    // multiplexes all workers on one thread and reports none.
    let utilization = if report.utilization() > 0.0 {
        format!("{:.0}% utilization", report.utilization() * 100.0)
    } else {
        "utilization n/a".to_string()
    };
    println!(
        "engine       : {} — {} messages, {utilization}",
        report.engine,
        report.total_messages(),
    );
}

fn cmd_sweep(opts: &Opts) -> Result<(), String> {
    let what = opts.get("what").ok_or("sweep needs --what clw|tsw")?;
    let max: usize = opts.parse_num(
        "max",
        match what {
            "clw" => 4usize,
            _ => 8usize,
        },
    )?;
    let netlist = load_circuit(opts)?;
    let base = build_run(opts)?;
    println!("sweeping {what} 1..={max} on {}", netlist.name);

    let engine = SimEngine::paper();
    let mut traces = Vec::new();
    for n in 1..=max {
        let mut builder = Pts::from_config(base.config().clone());
        builder = match what {
            "clw" => builder.tsw_workers(4).clw_workers(n),
            "tsw" => builder.tsw_workers(n).clw_workers(1),
            other => return Err(format!("--what must be 'clw' or 'tsw', got '{other}'")),
        };
        let run = builder.build().map_err(|e| e.to_string())?;
        let out = run.run_placement(netlist.clone(), &engine);
        println!(
            "  n={n}: best={:.4}  t_end={:.2}",
            out.outcome.best_cost, out.outcome.end_time
        );
        traces.push((n, out.outcome.trace));
    }
    let x = common_quality_target(&traces, 0.002);
    println!("\nspeedup to reach x={x:.4}:");
    for p in speedup_sweep(&traces, x) {
        println!(
            "  n={}: t(n,x)={}  speedup={}",
            p.n,
            p.time_to_quality
                .map(|t| format!("{t:.2}"))
                .unwrap_or("-".into()),
            p.speedup.map(|s| format!("{s:.2}")).unwrap_or("-".into()),
        );
    }
    Ok(())
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let cells: usize = opts.parse_num("cells", 200usize)?;
    let seed: u64 = opts.parse_num("seed", 1u64)?;
    if cells < 10 {
        return Err("--cells must be at least 10".into());
    }
    let n_inputs = (cells / 12).max(2);
    let n_outputs = (cells / 15).max(1);
    let n_ff = cells / 10;
    let n_logic = cells - n_inputs - n_outputs - n_ff;
    let spec = CircuitSpec {
        name: format!("gen{cells}"),
        n_inputs,
        n_outputs,
        n_flipflops: n_ff,
        n_logic,
        depth: ((cells as f64).log2() as usize).max(3),
        fanout_tail: 0.18,
        seed,
    };
    let nl = generate(&spec);
    let text = format::to_text(&nl);
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| e.to_string())?;
            println!(
                "wrote {} cells / {} nets to {path}",
                nl.num_cells(),
                nl.num_nets()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_show(opts: &Opts) -> Result<(), String> {
    let path = opts.get("file").ok_or("show needs --file")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let nl = format::from_text(&text).map_err(|e| e.to_string())?;
    let tg = TimingGraph::build(&nl).map_err(|e| e.to_string())?;
    println!("{}", NetlistStats::compute(&nl, &tg));
    Ok(())
}
