//! `pts-serve` — long-lived parallel-tabu-search job service.
//!
//! ```text
//! pts-serve serve  [--sock PATH | --tcp ADDR] [--max-concurrent N]
//! pts-serve submit --addr unix:PATH|tcp:ADDR [job options]
//! ```
//!
//! The daemon listens on a Unix-domain socket (default) or TCP, accepts
//! jobs over the length-prefixed client protocol, runs each on the
//! multi-process `proc` engine (worker ranks as child OS processes of the
//! daemon), and streams progress and results back. Jobs queue FIFO, at
//! most `--max-concurrent` run at once, each under its own iteration and
//! wall-clock budget. A crashed or degraded attempt is retried with
//! capped exponential backoff up to the job's `--max-restarts` budget.
//! A client disconnect cancels that client's jobs; SIGTERM drains
//! everything and reaps all children.
//!
//! The `submit` subcommand is a thin client for quickstarts and smoke
//! tests: submit one job, stream its events, print the result.

use parallel_tabu_search::core::serve::{
    install_term_handler, term_flag, Client, JobDomainSpec, JobRequest, ServeEvent, Server,
};
use parallel_tabu_search::core::{Pts, SyncPolicy};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    // Worker-rank re-entry: the daemon spawns `<this exe> __pts-worker ...`
    // children for every job's ranks.
    parallel_tabu_search::core::proc::maybe_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, r)) if !c.starts_with("--") => (c.as_str(), r),
        // Bare `pts-serve [--sock ...]` serves.
        _ => ("serve", &args[..]),
    };
    let result = match command {
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'pts-serve help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "pts-serve — parallel tabu search job service (multi-process engine)

USAGE:
  pts-serve serve  [--sock PATH] [--tcp ADDR] [--max-concurrent N]
                   [--heartbeat-ms N]  (liveness default applied to jobs
                                        that did not set their own; 0
                                        disables; default 500)
  pts-serve submit --addr unix:PATH|tcp:ADDR
                   [--problem qap|bench] [--qap-size N] [--circuit NAME]
                   [--tsw N] [--clw N] [--global N] [--local N]
                   [--sync half|all] [--seed N] [--budget-ms N]
                   [--max-restarts N] [--quiet]

The daemon prints its address (`unix:<path>` or `tcp:<host:port>`) on
stdout once listening; pass that string to `submit --addr`. SIGTERM or
SIGINT drains the queue, cancels running jobs, reaps worker processes,
and exits."
    );
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} needs a number, got '{v}'")),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let max_concurrent: usize = flag_num(args, "--max-concurrent", 4)?;
    // Liveness default for submitted jobs: a daemon hosts other people's
    // configs, so silent-worker detection is armed unless the job (or an
    // explicit `--heartbeat-ms 0` here) opts out. The in-process library
    // default stays off.
    let heartbeat_ms: u64 = flag_num(
        args,
        "--heartbeat-ms",
        parallel_tabu_search::core::serve::DEFAULT_HEARTBEAT_MS,
    )?;
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut server = match (flag_value(args, "--sock"), flag_value(args, "--tcp")) {
        (Some(_), Some(_)) => return Err("--sock and --tcp are mutually exclusive".into()),
        (None, Some(addr)) => Server::bind_tcp(&addr, max_concurrent, &exe)
            .map_err(|e| format!("bind {addr}: {e}"))?,
        (sock, None) => {
            let path = sock.unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("pts-serve-{}.sock", std::process::id()))
                    .display()
                    .to_string()
            });
            Server::bind_unix(&path, max_concurrent, &exe)
                .map_err(|e| format!("bind {path}: {e}"))?
        }
    };
    server = server.with_default_heartbeat(heartbeat_ms);
    install_term_handler();
    // The address line is the machine-readable contract: clients (and the
    // CI smoke test) read it to find the socket.
    println!("{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "pts-serve: listening on {} (max {max_concurrent} concurrent jobs)",
        server.addr()
    );
    server.run(term_flag());
    eprintln!("pts-serve: shut down");
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").ok_or("submit needs --addr unix:PATH|tcp:ADDR")?;
    let quiet = args.iter().any(|a| a == "--quiet");

    let mut builder = Pts::builder()
        .tsw_workers(flag_num(args, "--tsw", 2usize)?)
        .clw_workers(flag_num(args, "--clw", 1usize)?)
        .global_iters(flag_num(args, "--global", 4u32)?)
        .local_iters(flag_num(args, "--local", 10u32)?)
        .seed(flag_num(args, "--seed", 0xC0FFEEu64)?);
    builder = match flag_value(args, "--sync").as_deref().unwrap_or("half") {
        "half" => builder.sync(SyncPolicy::HalfReport),
        "all" => builder.sync(SyncPolicy::WaitAll),
        other => return Err(format!("--sync must be 'half' or 'all', got '{other}'")),
    };
    let cfg = builder.build().map_err(|e| e.to_string())?.config().clone();

    let spec = match flag_value(args, "--problem").as_deref().unwrap_or("qap") {
        "qap" => JobDomainSpec::QapRandom {
            n: flag_num(args, "--qap-size", 16u32)?,
            seed: cfg.seed ^ 0xAAAA,
        },
        "bench" => JobDomainSpec::Bench {
            name: flag_value(args, "--circuit").unwrap_or_else(|| "highway".into()),
        },
        other => Err(format!("--problem must be 'qap' or 'bench', got '{other}'"))?,
    };
    let req = JobRequest {
        cfg,
        spec,
        budget_ms: flag_num(args, "--budget-ms", 0u64)?,
        max_restarts: flag_num(args, "--max-restarts", 0u32)?,
    };

    let mut client = Client::connect(&addr, Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    client.submit(&req).map_err(|e| format!("submit: {e}"))?;
    loop {
        match client.next_event().map_err(|e| format!("recv: {e}"))? {
            None => return Err("server closed the connection before the result".into()),
            Some(ServeEvent::Accepted { job }) => {
                if !quiet {
                    eprintln!("job {job} accepted");
                }
            }
            Some(ServeEvent::Progress {
                job,
                global,
                best_cost,
            }) => {
                if !quiet {
                    eprintln!("job {job}: round {global} best {best_cost:.4}");
                }
            }
            Some(ServeEvent::Error { job, message }) => {
                return Err(format!("job {job} failed: {message}"));
            }
            Some(ServeEvent::Retrying { job, attempt }) => {
                if !quiet {
                    eprintln!("job {job}: attempt crashed, retrying (restart {attempt})");
                }
            }
            Some(ServeEvent::Result(r)) => {
                println!(
                    "job {} {}: initial {:.4} -> best {:.4} in {} rounds",
                    r.job,
                    if r.cancelled { "stopped early" } else { "done" },
                    r.initial_cost,
                    r.best_cost,
                    r.rounds
                );
                return Ok(());
            }
        }
    }
}
