//! Microbenchmarks: virtual-cluster runtime overhead — token handoffs and
//! message round trips. These bound how much simulated-protocol activity a
//! real second of host CPU can carry.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pts_vcluster::topology::homogeneous;
use pts_vcluster::SimBuilder;

fn bench_vcluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("vcluster");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);

    group.bench_function("token_handoffs_2procs_1000", |b| {
        b.iter_batched(
            || {
                let mut sim: SimBuilder<()> = SimBuilder::new(homogeneous(2));
                for m in 0..2 {
                    sim.spawn(m, |ctx| {
                        for _ in 0..500 {
                            ctx.compute(1.0);
                        }
                    });
                }
                sim
            },
            |sim| std::hint::black_box(sim.run().end_time),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("pingpong_500_roundtrips", |b| {
        b.iter_batched(
            || {
                let mut sim: SimBuilder<u32> = SimBuilder::new(homogeneous(2));
                // Spawn in id order: p0 then p1 so ranks are known.
                sim.spawn(0, |ctx| {
                    let peer = pts_vcluster::ProcId(1);
                    for i in 0..500u32 {
                        ctx.send(peer, i);
                        let _ = ctx.recv();
                    }
                });
                sim.spawn(1, |ctx| {
                    let peer = pts_vcluster::ProcId(0);
                    for _ in 0..500 {
                        let v = ctx.recv();
                        ctx.send(peer, v);
                    }
                });
                sim
            },
            |sim| std::hint::black_box(sim.run().total_messages()),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("fanin_12procs", |b| {
        b.iter_batched(
            || {
                let mut sim: SimBuilder<u32> = SimBuilder::new(homogeneous(12));
                sim.spawn(0, |ctx| {
                    for _ in 0..11 * 20 {
                        let _ = ctx.recv();
                    }
                });
                for w in 1..12 {
                    sim.spawn(w, move |ctx| {
                        for i in 0..20u32 {
                            ctx.compute(0.5 + w as f64 * 0.1);
                            ctx.send(pts_vcluster::ProcId(0), i);
                        }
                    });
                }
                sim
            },
            |sim| std::hint::black_box(sim.run().end_time),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_vcluster);
criterion_main!(benches);
