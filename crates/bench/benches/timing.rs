//! Microbenchmarks: static timing — full refresh vs incremental estimate.
//!
//! The incremental cone-bounded estimate is what makes trial moves cheap;
//! this bench quantifies its advantage over a full forward sweep (the
//! DESIGN.md ablation for the incremental-STA design choice).

use criterion::{criterion_group, criterion_main, Criterion};
use pts_netlist::{c1355, c532, CellId, TimingGraph};
use pts_place::layout::Layout;
use pts_place::placement::Placement;
use pts_place::timing::StaModel;
use pts_place::wirelength::WirelengthModel;
use pts_util::Rng;

fn bench_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, netlist) in [("c532", c532()), ("c1355", c1355())] {
        let tg = TimingGraph::build(&netlist).unwrap();
        let mut rng = Rng::new(1);
        let placement = Placement::random(
            Layout::for_cells(netlist.num_cells()),
            netlist.num_cells(),
            &mut rng,
        );
        let mut wl = WirelengthModel::new(&netlist, &placement);
        let mut sta = StaModel::new(&netlist, &tg, &wl, 0.15);
        let n = netlist.num_cells();

        group.bench_function(format!("full_refresh/{name}"), |b| {
            b.iter(|| {
                sta.refresh(&netlist, &tg, &wl);
                std::hint::black_box(sta.critical())
            })
        });

        group.bench_function(format!("incremental_estimate/{name}"), |b| {
            let mut rng = Rng::new(2);
            b.iter(|| {
                let a = CellId(rng.index(n) as u32);
                let mut bb = a;
                while bb == a {
                    bb = CellId(rng.index(n) as u32);
                }
                let trial = wl.trial_swap(&netlist, &placement, a, bb);
                std::hint::black_box(sta.estimate(&netlist, &tg, &trial.nets))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timing);
criterion_main!(benches);
