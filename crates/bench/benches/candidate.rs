//! Microbenchmarks: candidate-list construction and compound moves on the
//! placement problem (the CLW inner loop), including the early-accept
//! ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pts_core::PlacementProblem;
use pts_netlist::{c532, TimingGraph};
use pts_place::eval::{EvalConfig, Evaluator};
use pts_place::init::random_placement;
use pts_tabu::candidate::CandidateList;
use pts_tabu::compound::{build_compound, undo_compound};
use pts_util::Rng;
use std::sync::Arc;

fn problem() -> PlacementProblem {
    let nl = Arc::new(c532());
    let tg = Arc::new(TimingGraph::build(&nl).unwrap());
    let p = random_placement(&nl, 1);
    PlacementProblem::new(Evaluator::new(nl, tg, p, EvalConfig::default()))
}

fn bench_candidate(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(30);

    group.bench_function("sample_best_m8", |b| {
        let mut pr = problem();
        let mut rng = Rng::new(2);
        let cl = CandidateList::new(8);
        b.iter(|| std::hint::black_box(cl.sample_best(&mut pr, &mut rng, None).trial_cost))
    });

    group.bench_function("sample_best_m32", |b| {
        let mut pr = problem();
        let mut rng = Rng::new(3);
        let cl = CandidateList::new(32);
        b.iter(|| std::hint::black_box(cl.sample_best(&mut pr, &mut rng, None).trial_cost))
    });

    for early in [true, false] {
        group.bench_function(format!("compound_d4_m8_early_{early}"), |b| {
            let pr = problem();
            b.iter_batched(
                || (pr.clone(), Rng::new(4)),
                |(mut pr, mut rng)| {
                    let cm = build_compound(&mut pr, &mut rng, None, 8, 4, early);
                    undo_compound(&mut pr, &cm);
                    std::hint::black_box(cm.cost)
                },
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_candidate);
criterion_main!(benches);
