//! Microbenchmarks: tabu list operations and attribute-scheme ablation
//! ((cell,slot) pairs vs plain cell attributes — the DESIGN.md ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use pts_tabu::tabu_list::TabuList;
use pts_util::Rng;

fn bench_tabu_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("tabu_list");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("make_tabu_pair_attr", |b| {
        let mut list: TabuList<(u32, u32)> = TabuList::new(7);
        let mut rng = Rng::new(1);
        let mut iter = 0u64;
        b.iter(|| {
            iter += 1;
            list.make_tabu((rng.next_u32() % 2000, rng.next_u32() % 500), iter);
        })
    });

    group.bench_function("make_tabu_cell_attr", |b| {
        let mut list: TabuList<u32> = TabuList::new(7);
        let mut rng = Rng::new(2);
        let mut iter = 0u64;
        b.iter(|| {
            iter += 1;
            list.make_tabu(rng.next_u32() % 2000, iter);
        })
    });

    group.bench_function("is_tabu_hit_and_miss", |b| {
        let mut list: TabuList<(u32, u32)> = TabuList::new(50);
        let mut rng = Rng::new(3);
        for i in 0..1000u64 {
            list.make_tabu((rng.next_u32() % 2000, rng.next_u32() % 500), i);
        }
        b.iter(|| {
            let attr = (rng.next_u32() % 2000, rng.next_u32() % 500);
            std::hint::black_box(list.is_tabu(&attr, 1000))
        })
    });

    group.bench_function("export_active", |b| {
        let mut list: TabuList<(u32, u32)> = TabuList::new(100);
        for i in 0..500u64 {
            list.make_tabu((i as u32, (i * 7) as u32 % 500), i);
        }
        b.iter(|| std::hint::black_box(list.export(500).len()))
    });

    group.finish();
}

criterion_group!(benches, bench_tabu_list);
criterion_main!(benches);
