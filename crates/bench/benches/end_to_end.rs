//! End-to-end benchmark: one full PTS run (sim engine, highway circuit)
//! and the sequential baseline, sized to finish in seconds. Regressions
//! here flag protocol or evaluator slowdowns across the whole stack.

use criterion::{criterion_group, criterion_main, Criterion};
use pts_core::{run_sequential_baseline, Pts, PtsConfig, PtsRun, SimEngine};
use pts_netlist::highway;
use std::sync::Arc;

fn cfg() -> PtsConfig {
    PtsConfig {
        n_tsw: 4,
        n_clw: 2,
        global_iters: 3,
        local_iters: 8,
        search: pts_core::SearchStrategy {
            candidates: 6,
            depth: 2,
            ..Default::default()
        },
        ..PtsConfig::default()
    }
}

fn run() -> PtsRun {
    Pts::from_config(cfg()).build().expect("valid config")
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);

    group.bench_function("pts_sim_highway_4x2", |b| {
        let netlist = Arc::new(highway());
        let run = run();
        let engine = SimEngine::paper();
        b.iter(|| {
            let out = run.run_placement(netlist.clone(), &engine);
            std::hint::black_box(out.outcome.best_cost)
        })
    });

    group.bench_function("sequential_baseline_highway", |b| {
        let netlist = Arc::new(highway());
        let cfg = cfg();
        b.iter(|| {
            let r = run_sequential_baseline(&cfg, netlist.clone());
            std::hint::black_box(r.best_cost)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
