//! Microbenchmarks: incremental wirelength (trial + commit).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pts_netlist::{c1355, c532, CellId};
use pts_place::layout::Layout;
use pts_place::placement::Placement;
use pts_place::wirelength::WirelengthModel;
use pts_util::Rng;

fn bench_hpwl(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpwl");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, netlist) in [("c532", c532()), ("c1355", c1355())] {
        let mut rng = Rng::new(1);
        let placement = Placement::random(
            Layout::for_cells(netlist.num_cells()),
            netlist.num_cells(),
            &mut rng,
        );
        let mut wl = WirelengthModel::new(&netlist, &placement);
        let n = netlist.num_cells();

        group.bench_function(format!("trial_swap/{name}"), |b| {
            let mut rng = Rng::new(2);
            b.iter(|| {
                let a = CellId(rng.index(n) as u32);
                let mut bb = a;
                while bb == a {
                    bb = CellId(rng.index(n) as u32);
                }
                std::hint::black_box(wl.trial_swap(&netlist, &placement, a, bb).delta)
            })
        });

        group.bench_function(format!("commit_swap/{name}"), |b| {
            let mut rng = Rng::new(3);
            b.iter_batched(
                || {
                    let a = CellId(rng.index(n) as u32);
                    let mut bb = a;
                    while bb == a {
                        bb = CellId(rng.index(n) as u32);
                    }
                    (placement.clone(), wl.clone(), a, bb)
                },
                |(mut p, mut w, a, bb)| {
                    p.swap_cells(a, bb);
                    w.commit_swap(&netlist, &p, a, bb);
                    std::hint::black_box(w.total())
                },
                BatchSize::SmallInput,
            )
        });

        group.bench_function(format!("rebuild/{name}"), |b| {
            b.iter(|| {
                let mut w = wl.clone();
                w.rebuild(&netlist, &placement);
                std::hint::black_box(w.total())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hpwl);
criterion_main!(benches);
