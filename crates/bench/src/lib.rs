//! Shared harness for the figure-regeneration binaries.
//!
//! Every figure in the paper's evaluation section has a binary in
//! `src/bin/` that reruns the corresponding experiment and prints the same
//! rows/series the paper plots, plus a CSV dump under `results/`. Absolute
//! numbers differ from the paper (its testbed was twelve 2003-era
//! workstations; ours is a virtual cluster), but the *shapes* — who wins,
//! where curves saturate, where crossovers sit — are the reproduction
//! target. `EXPERIMENTS.md` records both.
//!
//! Scale: by default experiments run in a minutes-scale "quick" profile.
//! Set `PTS_FULL=1` for the paper-scale profile (more iterations, all
//! circuits).

pub mod kernel;

use pts_core::{PlacementRunOutput, Pts, PtsConfig, SimEngine};
use pts_netlist::Netlist;
use pts_util::csv::CsvWriter;
use pts_util::table::Table;
use std::path::PathBuf;
use std::sync::Arc;

/// Experiment scale profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Fast: small iteration counts, circuits up to c1355.
    Quick,
    /// Paper-scale: all four circuits, full iteration counts.
    Full,
}

impl Profile {
    /// Read the profile from the environment (`PTS_FULL=1`).
    pub fn from_env() -> Profile {
        match std::env::var("PTS_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Profile::Full,
            _ => Profile::Quick,
        }
    }

    /// Circuits used under this profile (paper order, smallest first).
    pub fn circuits(self) -> Vec<&'static str> {
        match self {
            Profile::Quick => vec!["highway", "c532", "c1355"],
            Profile::Full => vec!["highway", "c532", "c1355", "c3540"],
        }
    }

    /// (global_iters, local_iters) under this profile.
    pub fn iterations(self) -> (u32, u32) {
        match self {
            Profile::Quick => (6, 15),
            Profile::Full => (15, 40),
        }
    }
}

/// Load a paper circuit by name (panics on unknown names — harness bug).
pub fn circuit(name: &str) -> Arc<Netlist> {
    Arc::new(pts_netlist::by_name(name).unwrap_or_else(|| panic!("unknown circuit '{name}'")))
}

/// The baseline configuration every figure harness starts from.
pub fn base_config(profile: Profile) -> PtsConfig {
    let (global_iters, local_iters) = profile.iterations();
    PtsConfig {
        global_iters,
        local_iters,
        ..PtsConfig::default()
    }
}

/// Run a configuration on the 12-machine paper cluster (virtual).
pub fn run_on_paper_cluster(cfg: &PtsConfig, netlist: Arc<Netlist>) -> PlacementRunOutput {
    Pts::from_config(cfg.clone())
        .build()
        .expect("harness configs are valid")
        .run_placement(netlist, &SimEngine::paper())
}

/// Seeds used for averaged experiments under a profile. Single-seed runs
/// of a stochastic search are noisy at quick scale; the paper's trend
/// claims are about expected behaviour, so the harness averages a few
/// independent runs.
pub fn seeds(profile: Profile) -> Vec<u64> {
    match profile {
        Profile::Quick => vec![0xC0FFEE, 0xBEEF, 0xF00D, 0xCAFE, 0xD00D],
        Profile::Full => vec![0xC0FFEE, 0xBEEF, 0xF00D, 0xCAFE, 0xD00D, 0xACE, 0xFADE],
    }
}

/// Mean final best cost of a configuration across seeds.
pub fn mean_best_cost(cfg: &PtsConfig, netlist: &Arc<Netlist>, seeds: &[u64]) -> f64 {
    let sum: f64 = seeds
        .iter()
        .map(|&seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            run_on_paper_cluster(&c, netlist.clone()).outcome.best_cost
        })
        .sum();
    sum / seeds.len() as f64
}

/// Speedup point averaged across seeds.
#[derive(Clone, Debug)]
pub struct MeanSpeedup {
    pub n: usize,
    /// Geometric mean of per-seed speedups (only seeds where both the
    /// baseline and this configuration reached the per-seed target).
    pub speedup: Option<f64>,
    /// Seeds contributing to the mean.
    pub samples: usize,
    /// Mean time-to-target across contributing seeds.
    pub mean_time: Option<f64>,
}

/// Run a sweep for every seed, compute per-seed speedups against a
/// per-seed common quality target, and average them geometrically.
/// `configure` maps the sweep variable onto a config.
pub fn averaged_speedup_sweep(
    netlist: &Arc<Netlist>,
    base: &PtsConfig,
    ns: &[usize],
    seeds: &[u64],
    configure: impl Fn(&mut PtsConfig, usize),
) -> Vec<MeanSpeedup> {
    use pts_core::{fractional_quality_target, speedup_sweep};
    let mut per_n_speedups: Vec<Vec<f64>> = vec![Vec::new(); ns.len()];
    let mut per_n_times: Vec<Vec<f64>> = vec![Vec::new(); ns.len()];
    for &seed in seeds {
        let mut traces = Vec::new();
        for &n in ns {
            let mut cfg = base.clone();
            cfg.seed = seed;
            configure(&mut cfg, n);
            let out = run_on_paper_cluster(&cfg, netlist.clone());
            traces.push((n, out.outcome.trace));
        }
        let x = fractional_quality_target(&traces, 0.8);
        for (i, p) in speedup_sweep(&traces, x).into_iter().enumerate() {
            if let Some(s) = p.speedup {
                if s.is_finite() {
                    per_n_speedups[i].push(s);
                }
            }
            if let Some(t) = p.time_to_quality {
                per_n_times[i].push(t);
            }
        }
    }
    ns.iter()
        .enumerate()
        .map(|(i, &n)| {
            let ss = &per_n_speedups[i];
            let ts = &per_n_times[i];
            MeanSpeedup {
                n,
                speedup: if ss.is_empty() {
                    None
                } else {
                    Some(pts_util::stats::geometric_mean(ss))
                },
                samples: ss.len(),
                mean_time: if ts.is_empty() {
                    None
                } else {
                    Some(ts.iter().sum::<f64>() / ts.len() as f64)
                },
            }
        })
        .collect()
}

/// Where CSV results are written: `<workspace>/results/`.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Print a table and write the matching CSV under `results/<name>.csv`.
pub fn emit(name: &str, table: &Table, csv: &CsvWriter) {
    println!("{table}");
    let path = results_dir().join(format!("{name}.csv"));
    match csv.write_to(&path) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Format an `Option<f64>` for table cells.
pub fn fmt_opt(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => pts_util::table::fmt_f64(v),
        Some(_) => "inf".to_string(),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        assert!(Profile::Full.circuits().len() > Profile::Quick.circuits().len());
        assert!(Profile::Full.iterations().0 > Profile::Quick.iterations().0);
    }

    #[test]
    fn circuit_loads_paper_benchmarks() {
        assert_eq!(circuit("highway").num_cells(), 56);
    }

    #[test]
    fn results_dir_is_workspace_level() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn fmt_opt_cases() {
        assert_eq!(fmt_opt(None), "-");
        assert_eq!(fmt_opt(Some(f64::INFINITY)), "inf");
        assert_eq!(fmt_opt(Some(2.0)), "2.0000");
    }
}
