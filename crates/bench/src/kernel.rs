//! Candidate-evaluation kernel microbenchmark.
//!
//! Measures the cost of one trial evaluation through the two paths the
//! engine can take on the QAP domain: the scalar path (`trial_cost` per
//! move, one bounds-checked matrix walk each) and the batched path
//! (`trial_costs` over a whole candidate list, which hoists the swapped
//! pair's flow/distance rows out of the inner loop). Both paths are
//! bit-identical by contract — this module measures *time only* and is
//! what `BENCH_time.json` gates on: the batched kernel must stay ≥ 1.5×
//! faster than scalar at QAP-256, measured in the same process run.
//!
//! Methodology: the two paths are interleaved round by round (scalar
//! pass, then batched pass, over the same freshly sampled candidate
//! list) so frequency scaling or a noisy neighbour hits both sides
//! equally, and every result feeds [`std::hint::black_box`] so the
//! optimizer cannot dead-code either loop. Reported figures are
//! aggregate ns per trial across all rounds after one untimed warm-up.

use pts_tabu::problem::SearchProblem;
use pts_tabu::qap::Qap;
use pts_util::Rng;
use std::hint::black_box;
use std::time::Instant;

/// One same-run scalar-vs-batched kernel measurement.
#[derive(Clone, Copy, Debug)]
pub struct KernelBench {
    /// Problem size (facilities).
    pub n: usize,
    /// Candidate-list length per evaluation batch.
    pub batch: usize,
    /// Timed rounds aggregated into the figures below.
    pub rounds: usize,
    /// Scalar path: ns per `trial_cost` call.
    pub scalar_ns_per_trial: f64,
    /// Batched path: ns per trial inside `trial_costs`.
    pub batched_ns_per_trial: f64,
}

impl KernelBench {
    /// Scalar-over-batched time ratio (> 1 means batching wins).
    pub fn speedup(&self) -> f64 {
        self.scalar_ns_per_trial / self.batched_ns_per_trial
    }
}

/// Run the QAP kernel benchmark: `rounds` interleaved scalar/batched
/// passes over `batch`-move candidate lists on a random `n`-facility
/// instance. Deterministic in `seed` (the timings are not, the sampled
/// workload is).
pub fn bench_qap_kernel(n: usize, batch: usize, rounds: usize, seed: u64) -> KernelBench {
    assert!(rounds >= 1 && batch >= 1);
    let mut q = Qap::random(n, seed);
    let mut rng = Rng::new(seed ^ 0x5EED);
    let mut moves = Vec::with_capacity(batch);
    let mut costs = Vec::with_capacity(batch);

    let mut scalar_ns = 0u128;
    let mut batched_ns = 0u128;
    // Round 0 is the warm-up: run both paths untimed so cold caches and
    // the first page faults are off the books for both sides equally.
    for round in 0..=rounds {
        q.sample_moves(&mut rng, None, batch, &mut moves);

        let t = Instant::now();
        let mut acc = 0.0;
        for mv in &moves {
            acc += q.trial_cost(black_box(mv));
        }
        black_box(acc);
        let scalar = t.elapsed();

        let t = Instant::now();
        q.trial_costs(black_box(&moves), &mut costs);
        black_box(&costs);
        let batched = t.elapsed();

        if round > 0 {
            scalar_ns += scalar.as_nanos();
            batched_ns += batched.as_nanos();
        }
        // Walk the state between rounds so successive batches are
        // evaluated from different assignments, like the real search.
        let mv = q.sample_move(&mut rng, None);
        q.apply(&mv);
    }

    let trials = (rounds * batch) as f64;
    KernelBench {
        n,
        batch,
        rounds,
        scalar_ns_per_trial: scalar_ns as f64 / trials,
        batched_ns_per_trial: batched_ns as f64 / trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bench_reports_positive_timings() {
        // Tiny workload: correctness of the harness, not the speedup
        // claim (that is the release-mode gate in BENCH_time.json).
        let b = bench_qap_kernel(16, 8, 3, 42);
        assert_eq!((b.n, b.batch, b.rounds), (16, 8, 3));
        assert!(b.scalar_ns_per_trial > 0.0);
        assert!(b.batched_ns_per_trial > 0.0);
        assert!(b.speedup().is_finite() && b.speedup() > 0.0);
    }
}
