//! Figure 6 — Speedup in reaching a target quality vs number of CLWs.
//!
//! Paper setup: speedup `t(1,x)/t(n,x)` for CLWs 1..=4, TSWs = 4, two
//! circuits. The target quality x is the worst final best-cost across the
//! sweep (so every configuration reaches it); speedups are averaged over
//! several seeds (geometric mean) since single runs of a stochastic search
//! are noisy. Expected shape: speedup rises with CLWs, more sharply for
//! larger circuits.

use pts_bench::{averaged_speedup_sweep, base_config, circuit, emit, fmt_opt, seeds, Profile};
use pts_util::csv::CsvWriter;
use pts_util::table::Table;

fn main() {
    let profile = Profile::from_env();
    println!("== Figure 6: speedup to reach quality x vs number of CLWs (TSWs = 4) ==\n");

    // The paper shows two circuits for this figure.
    let circuits: Vec<&str> = match profile {
        Profile::Quick => vec!["c532", "c1355"],
        Profile::Full => vec!["c532", "c3540"],
    };
    let seed_list = seeds(profile);

    let mut table = Table::new([
        "circuit",
        "CLWs",
        "mean t(n,x)",
        "speedup (geo mean)",
        "seeds",
    ]);
    let mut csv = CsvWriter::new(["circuit", "clws", "mean_time_to_x", "speedup", "samples"]);

    for name in circuits {
        let netlist = circuit(name);
        let base = {
            let mut b = base_config(profile);
            b.n_tsw = 4;
            b
        };
        let points =
            averaged_speedup_sweep(&netlist, &base, &[1, 2, 3, 4], &seed_list, |cfg, n| {
                cfg.n_clw = n;
            });
        for p in points {
            table.row([
                name.to_string(),
                p.n.to_string(),
                fmt_opt(p.mean_time),
                fmt_opt(p.speedup),
                p.samples.to_string(),
            ]);
            csv.row([
                name.to_string(),
                p.n.to_string(),
                fmt_opt(p.mean_time),
                fmt_opt(p.speedup),
                p.samples.to_string(),
            ]);
        }
    }
    emit("fig6_clw_speedup", &table, &csv);
    println!(
        "\nPaper shape to check: speedup increases as CLWs go 1 -> 4; the\n\
         sharpness depends on circuit size."
    );
}
