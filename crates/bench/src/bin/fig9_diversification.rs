//! Figure 9 — Effect of diversification.
//!
//! Paper setup: 4 TSWs × 1 CLW; one run with the Kelly-style
//! diversification step at each global iteration, one without. Final
//! costs are seed-averaged. Expected shape: "the diversified run
//! outperforms the non-diversified run significantly" — the best-cost
//! curve sits lower.

use pts_bench::{base_config, circuit, emit, mean_best_cost, run_on_paper_cluster, seeds, Profile};
use pts_util::csv::CsvWriter;
use pts_util::table::Table;

fn main() {
    let profile = Profile::from_env();
    println!("== Figure 9: effect of diversification (4 TSWs, 1 CLW) ==\n");

    let seed_list = seeds(profile);
    let mut table = Table::new([
        "circuit",
        "mean best (diversified)",
        "mean best (plain)",
        "diversified wins?",
    ]);
    let mut csv = CsvWriter::new(["circuit", "diversified", "plain"]);
    let mut curve_csv = CsvWriter::new(["circuit", "global_iter", "diversified", "plain"]);

    for name in profile.circuits() {
        let netlist = circuit(name);
        let mut cfg_div = base_config(profile);
        cfg_div.n_tsw = 4;
        cfg_div.n_clw = 1;
        cfg_div.diversify = true;
        let mut cfg_plain = cfg_div.clone();
        cfg_plain.diversify = false;

        let with = mean_best_cost(&cfg_div, &netlist, &seed_list);
        let without = mean_best_cost(&cfg_plain, &netlist, &seed_list);
        table.row([
            name.to_string(),
            format!("{with:.4}"),
            format!("{without:.4}"),
            if with <= without { "yes" } else { "NO" }.to_string(),
        ]);
        csv.row([name.to_string(), with.to_string(), without.to_string()]);

        // Per-global-iteration curve from the first seed, for plotting.
        let a = run_on_paper_cluster(&cfg_div, netlist.clone());
        let b = run_on_paper_cluster(&cfg_plain, netlist.clone());
        let (xs, ys) = (
            &a.outcome.best_per_global_iter,
            &b.outcome.best_per_global_iter,
        );
        for g in 0..xs.len().max(ys.len()) {
            curve_csv.row([
                name.to_string(),
                (g + 1).to_string(),
                xs.get(g).map(|v| v.to_string()).unwrap_or_default(),
                ys.get(g).map(|v| v.to_string()).unwrap_or_default(),
            ]);
        }
    }
    emit("fig9_diversification", &table, &csv);
    let _ = curve_csv.write_to(pts_bench::results_dir().join("fig9_curves.csv"));
    println!("\nPaper shape to check: the diversified run ends at a lower cost.");
}
