//! Figure 5 — Effect of the number of CLWs on solution quality.
//!
//! Paper setup: CLWs swept 1..=4, TSWs fixed at 4, all other parameters
//! fixed, four circuits, twelve-machine PVM. Expected shape: more CLWs →
//! better final quality, saturating for the tiny `highway` circuit beyond
//! 2 CLWs.

use pts_bench::{base_config, circuit, emit, run_on_paper_cluster, Profile};
use pts_util::csv::CsvWriter;
use pts_util::table::{fmt_f64, Table};

fn main() {
    let profile = Profile::from_env();
    println!("== Figure 5: solution quality vs number of CLWs (TSWs = 4) ==\n");

    let mut table = Table::new(["circuit", "CLWs", "best cost", "wire", "delay", "area"]);
    let mut csv = CsvWriter::new(["circuit", "clws", "best_cost", "wire", "delay", "area"]);

    for name in profile.circuits() {
        let netlist = circuit(name);
        for n_clw in 1..=4usize {
            let mut cfg = base_config(profile);
            cfg.n_tsw = 4;
            cfg.n_clw = n_clw;
            let out = run_on_paper_cluster(&cfg, netlist.clone());
            let o = &out.outcome;
            table.row([
                name.to_string(),
                n_clw.to_string(),
                format!("{:.4}", o.best_cost),
                fmt_f64(o.objectives.wire),
                fmt_f64(o.objectives.delay),
                fmt_f64(o.objectives.area),
            ]);
            csv.row([
                name.to_string(),
                n_clw.to_string(),
                format!("{}", o.best_cost),
                format!("{}", o.objectives.wire),
                format!("{}", o.objectives.delay),
                format!("{}", o.objectives.area),
            ]);
        }
    }
    emit("fig5_clw_quality", &table, &csv);
    println!(
        "\nPaper shape to check: quality improves with CLWs; for the tiny\n\
         'highway' circuit adding CLWs beyond 2 is not useful."
    );
}
