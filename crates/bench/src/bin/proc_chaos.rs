//! Seeded OS-level chaos sweep for the multi-process engine (release-mode
//! CI driver; the small always-on corpus lives in `tests/proc_chaos.rs`).
//!
//! Each scenario runs a real `ProcEngine` search — worker ranks as child
//! OS processes of this driver — while `kill -9`ing seeded victims
//! mid-run, and asserts the crash-tolerance invariants:
//!
//! * the run completes over the surviving ranks (no hang, no panic);
//! * `RunReport::dead_ranks` is truthful both ways — it contains every
//!   rank whose SIGKILL landed and accuses nobody else;
//! * the degraded best cost is finite and no worse than the initial;
//! * every child is reaped: no worker process outlives its run;
//! * with an empty chaos plan the engine is deterministic — two clean
//!   runs agree bit for bit and report zero deaths.
//!
//! Victims and strike times reuse the vt fault model's coordinates:
//! [`FaultSpec::seeded`] with [`FaultMix::Crashes`] yields `KillTsw` /
//! `KillClw` events whose virtual times are rescaled onto global-round
//! indices, so a `CHAOS-REPRO:` line (seed, shape, sync) rebuilds the
//! identical kill plan.
//!
//! Environment knobs: `CHAOS_SEEDS` (seeds per sync policy, default 8).

use pts_core::qap_domain::QapDomain;
use pts_core::{
    EngineOutput, FaultMix, FaultSpec, ProcEngine, Pts, PtsRun, RunControl, SyncPolicy, WorkerFault,
};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// SIGKILL delivery without a libc dependency — same offline-FFI
// precedent as `pts_util::cputime` and the serve signal handler.
extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGKILL: i32 = 9;

/// Virtual horizon handed to the fault model; only the *fraction*
/// `at / HORIZON` survives into the wall-clock plan.
const CHAOS_HORIZON: f64 = 100.0;

/// Worker-rank processes among this driver's children: scan `/proc` for
/// `__pts-worker` cmdlines whose ppid is us, returning `(pid, rank)`.
fn worker_children() -> Vec<(i32, usize)> {
    let me = std::process::id().to_string();
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let Ok(cmd) = std::fs::read(format!("/proc/{name}/cmdline")) else {
            continue;
        };
        let args: Vec<&str> = cmd
            .split(|&b| b == 0)
            .map(|a| std::str::from_utf8(a).unwrap_or(""))
            .collect();
        if !args.contains(&"__pts-worker") {
            continue;
        }
        let Some(rank) = args
            .iter()
            .position(|a| *a == "--rank")
            .and_then(|i| args.get(i + 1))
            .and_then(|r| r.parse::<usize>().ok())
        else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{name}/stat")) else {
            continue;
        };
        let ppid = stat
            .rsplit(')')
            .next()
            .and_then(|rest| rest.split_whitespace().nth(1))
            .unwrap_or("");
        if ppid == me {
            out.push((name.parse().unwrap(), rank));
        }
    }
    out
}

struct Scenario {
    seed: u64,
    sync: SyncPolicy,
    n_tsw: usize,
    global: u32,
}

impl Scenario {
    fn repro(&self) -> String {
        format!(
            "CHAOS-REPRO: seed={:#x} n_tsw={} sync={:?} global={}",
            self.seed, self.n_tsw, self.sync, self.global,
        )
    }

    fn build_run(&self) -> PtsRun {
        Pts::builder()
            .tsw_workers(self.n_tsw)
            .clw_workers(1)
            .global_iters(self.global)
            .local_iters(20)
            .sync(self.sync)
            .heartbeat_ms(50)
            .seed(self.seed ^ 0xC0DE)
            .build()
            .expect("valid chaos configuration")
    }

    /// The seeded kill plan as `(trigger_round, victim_rank)` pairs:
    /// process-level crash events from the shared fault model, with each
    /// virtual time mapped to the global round after which to strike.
    fn kill_plan(&self, run: &PtsRun) -> Vec<(u32, usize)> {
        let cfg = run.config();
        let spec = FaultSpec::seeded(self.seed, FaultMix::Crashes, cfg, 4, CHAOS_HORIZON);
        let mut plan: Vec<(u32, usize)> = Vec::new();
        for ev in &spec.events {
            let (at, rank) = match *ev {
                WorkerFault::KillTsw { at, tsw } => (at, cfg.tsw_rank(tsw)),
                WorkerFault::KillClw { at, tsw, clw } => (at, cfg.clw_rank(tsw, clw)),
                // Machine-level and route faults have no process analogue.
                _ => continue,
            };
            // Strike mid-run: rounds 1 ..= global-1, never before the
            // first progress report and never after the last round ends.
            let span = self.global.saturating_sub(2) as f64;
            let round = 1 + ((at / CHAOS_HORIZON) * span) as u32;
            if !plan.iter().any(|(_, r)| *r == rank) {
                plan.push((round, rank));
            }
        }
        plan.sort_unstable();
        plan
    }

    /// Execute under the kill plan and check every invariant; returns an
    /// error string on any violation (panics included).
    fn check(&self, domain: &QapDomain) -> Result<(), String> {
        let run = self.build_run();
        let plan = self.kill_plan(&run);
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;

        let rounds = Arc::new(AtomicU32::new(0));
        let rounds2 = Arc::clone(&rounds);
        let ctl = RunControl::unlimited().with_progress(Arc::new(move |_g, _b| {
            rounds2.fetch_add(1, Ordering::SeqCst);
        }));
        let engine = ProcEngine::new(exe).with_control(ctl);
        let run2 = run.clone();
        let domain2 = domain.clone();
        let search = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run2.execute(&domain2, &engine)
            }))
        });

        // Killer loop: resolve victim pids as the barrier forms, strike
        // each when its trigger round has been reported.
        let deadline = Instant::now() + Duration::from_secs(120);
        let mut pids: Vec<Option<i32>> = vec![None; plan.len()];
        let mut landed: Vec<usize> = Vec::new();
        let mut struck = vec![false; plan.len()];
        while Instant::now() < deadline && !search.is_finished() && !plan.is_empty() {
            if pids.iter().any(Option::is_none) {
                let kids = worker_children();
                for (slot, (_, rank)) in plan.iter().enumerate() {
                    if pids[slot].is_none() {
                        pids[slot] = kids.iter().find(|(_, r)| r == rank).map(|(p, _)| *p);
                    }
                }
            }
            let seen = rounds.load(Ordering::SeqCst);
            for (slot, (round, rank)) in plan.iter().enumerate() {
                if struck[slot] || seen < *round {
                    continue;
                }
                if let Some(pid) = pids[slot] {
                    struck[slot] = true;
                    if unsafe { kill(pid, SIGKILL) } == 0 {
                        landed.push(*rank);
                    }
                }
            }
            if struck.iter().all(|s| *s) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        let out: EngineOutput<QapDomain> = match search.join().expect("search thread") {
            Ok(out) => out,
            Err(p) => {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic".into());
                return Err(format!("panicked: {msg}"));
            }
        };

        let dead = &out.report.dead_ranks;
        for rank in &landed {
            if !dead.contains(rank) {
                return Err(format!(
                    "rank {rank} was SIGKILLed but dead_ranks = {dead:?}"
                ));
            }
        }
        let planned: Vec<usize> = plan.iter().map(|(_, r)| *r).collect();
        for rank in dead {
            if !planned.contains(rank) {
                return Err(format!(
                    "rank {rank} reported dead but was never a victim (plan {planned:?})"
                ));
            }
        }
        let o = &out.outcome;
        if !o.best_cost.is_finite() {
            return Err(format!("best cost not finite: {}", o.best_cost));
        }
        if o.best_cost > o.initial_cost {
            return Err(format!(
                "best {} worse than initial {}",
                o.best_cost, o.initial_cost
            ));
        }
        if o.best_per_global_iter.len() != self.global as usize {
            return Err(format!(
                "degraded run stopped early: {} of {} rounds",
                o.best_per_global_iter.len(),
                self.global
            ));
        }
        let orphans = worker_children();
        if !orphans.is_empty() {
            return Err(format!("worker processes outlived the run: {orphans:?}"));
        }
        Ok(())
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Two clean runs of the same scenario must agree bit for bit and
/// report no deaths — the armed supervision layer is inert without chaos.
fn check_clean_determinism(domain: &QapDomain) -> Result<(), String> {
    let run = Scenario {
        seed: 0xD0_0D,
        sync: SyncPolicy::WaitAll,
        n_tsw: 3,
        global: 4,
    }
    .build_run();
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let a: EngineOutput<QapDomain> = run.execute(domain, &ProcEngine::new(&exe));
    let b: EngineOutput<QapDomain> = run.execute(domain, &ProcEngine::new(&exe));
    if !a.report.dead_ranks.is_empty() || !b.report.dead_ranks.is_empty() {
        return Err(format!(
            "clean runs reported deaths: {:?} / {:?}",
            a.report.dead_ranks, b.report.dead_ranks
        ));
    }
    if a.outcome.best_cost != b.outcome.best_cost
        || a.outcome.best_per_global_iter != b.outcome.best_per_global_iter
    {
        return Err("clean runs diverged bit-wise".into());
    }
    Ok(())
}

fn main() {
    // Worker-rank re-entry: the engine spawns `<this exe> __pts-worker ...`
    // children for every rank.
    pts_core::proc::maybe_worker();

    let n_seeds = env_u64("CHAOS_SEEDS", 8);
    let domain = QapDomain::random(18, 3);
    let started = Instant::now();

    let mut ran = 0usize;
    let mut failures: Vec<String> = Vec::new();

    for sync in [SyncPolicy::WaitAll, SyncPolicy::HalfReport] {
        for seed in 0..n_seeds {
            let s = Scenario {
                seed,
                sync,
                n_tsw: 3,
                global: 6,
            };
            ran += 1;
            if let Err(why) = s.check(&domain) {
                eprintln!("{}\n  -> {}", s.repro(), why);
                failures.push(s.repro());
            }
        }
    }

    ran += 1;
    if let Err(why) = check_clean_determinism(&domain) {
        eprintln!("CHAOS-REPRO: clean-determinism\n  -> {why}");
        failures.push("CHAOS-REPRO: clean-determinism".into());
    }

    println!(
        "proc-chaos: {ran} scenarios, {} failures, {:.1}s",
        failures.len(),
        started.elapsed().as_secs_f64()
    );
    if !failures.is_empty() {
        eprintln!("failing scenarios:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
