//! Figure 7 — Effect of the number of TSWs on solution quality.
//!
//! Paper setup: TSWs swept 1..=8, CLWs fixed at 1, all circuits. Expected
//! shape: quality improves with TSWs but "adding TSWs beyond 4 is not
//! useful".

use pts_bench::{base_config, circuit, emit, run_on_paper_cluster, Profile};
use pts_util::csv::CsvWriter;
use pts_util::table::{fmt_f64, Table};

fn main() {
    let profile = Profile::from_env();
    println!("== Figure 7: solution quality vs number of TSWs (CLWs = 1) ==\n");

    let mut table = Table::new(["circuit", "TSWs", "best cost", "wire", "delay", "area"]);
    let mut csv = CsvWriter::new(["circuit", "tsws", "best_cost", "wire", "delay", "area"]);

    for name in profile.circuits() {
        let netlist = circuit(name);
        for n_tsw in 1..=8usize {
            let mut cfg = base_config(profile);
            cfg.n_tsw = n_tsw;
            cfg.n_clw = 1;
            let out = run_on_paper_cluster(&cfg, netlist.clone());
            let o = &out.outcome;
            table.row([
                name.to_string(),
                n_tsw.to_string(),
                format!("{:.4}", o.best_cost),
                fmt_f64(o.objectives.wire),
                fmt_f64(o.objectives.delay),
                fmt_f64(o.objectives.area),
            ]);
            csv.row([
                name.to_string(),
                n_tsw.to_string(),
                format!("{}", o.best_cost),
                format!("{}", o.objectives.wire),
                format!("{}", o.objectives.delay),
                format!("{}", o.objectives.area),
            ]);
        }
    }
    emit("fig7_tsw_quality", &table, &csv);
    println!("\nPaper shape to check: improvement saturates around 4 TSWs.");
}
