//! Run every figure experiment (5-11) back to back and write a summary.
//!
//! Equivalent to running each `figN_*` binary; see those for per-figure
//! commentary. Writes `results/SUMMARY.md` with paper-shape checks.

use pts_bench::{
    averaged_speedup_sweep, base_config, circuit, mean_best_cost, results_dir,
    run_on_paper_cluster, seeds, Profile,
};
use pts_core::SyncPolicy;
use std::fmt::Write as _;

fn main() {
    let profile = Profile::from_env();
    let mut md = String::new();
    let _ = writeln!(md, "# Figure reproduction summary\n");
    let _ = writeln!(
        md,
        "Profile: {:?}. Times are virtual-cluster seconds on the paper's\n\
         12-machine topology (7 fast / 3 medium / 2 slow).\n",
        profile
    );

    let seed_list = seeds(profile);

    // ---------- Fig 5 & 6: CLW sweeps --------------------------------
    let _ = writeln!(md, "## Fig 5 — quality vs #CLWs (TSWs=4, seed-averaged)\n");
    let _ = writeln!(md, "| circuit | 1 CLW | 2 | 3 | 4 | shape holds? |");
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for name in profile.circuits() {
        let netlist = circuit(name);
        let mut costs = Vec::new();
        for n_clw in 1..=4usize {
            let mut cfg = base_config(profile);
            cfg.n_tsw = 4;
            cfg.n_clw = n_clw;
            costs.push(mean_best_cost(&cfg, &netlist, &seed_list));
        }
        let improves = costs.last().unwrap() <= costs.first().unwrap();
        let _ = writeln!(
            md,
            "| {name} | {:.4} | {:.4} | {:.4} | {:.4} | {} |",
            costs[0],
            costs[1],
            costs[2],
            costs[3],
            if improves { "yes" } else { "NO" }
        );
        println!("[fig5] {name}: {costs:?}");
    }

    let _ = writeln!(md, "\n## Fig 6 — speedup vs #CLWs (geo-mean over seeds)\n");
    let _ = writeln!(md, "| circuit | n | mean t(n,x) | speedup |");
    let _ = writeln!(md, "|---|---|---|---|");
    for name in profile.circuits() {
        let netlist = circuit(name);
        let base = {
            let mut b = base_config(profile);
            b.n_tsw = 4;
            b
        };
        let points =
            averaged_speedup_sweep(&netlist, &base, &[1, 2, 3, 4], &seed_list, |cfg, n| {
                cfg.n_clw = n;
            });
        for p in &points {
            let _ = writeln!(
                md,
                "| {name} | {} | {} | {} |",
                p.n,
                p.mean_time.map(|t| format!("{t:.2}")).unwrap_or("-".into()),
                p.speedup.map(|s| format!("{s:.2}")).unwrap_or("-".into()),
            );
        }
        println!(
            "[fig6] {name}: speedups {:?}",
            points.iter().map(|p| p.speedup).collect::<Vec<_>>()
        );
    }

    // ---------- Fig 7 & 8: TSW sweeps --------------------------------
    let _ = writeln!(
        md,
        "\n## Fig 7 — quality vs #TSWs (CLWs=1, seed-averaged)\n"
    );
    let _ = writeln!(md, "| circuit | 1 | 2 | 4 | 6 | 8 |");
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for name in profile.circuits() {
        let netlist = circuit(name);
        let mut row = Vec::new();
        for n_tsw in [1usize, 2, 4, 6, 8] {
            let mut cfg = base_config(profile);
            cfg.n_tsw = n_tsw;
            cfg.n_clw = 1;
            row.push(mean_best_cost(&cfg, &netlist, &seed_list));
        }
        let _ = writeln!(
            md,
            "| {name} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} |",
            row[0], row[1], row[2], row[3], row[4]
        );
        println!("[fig7] {name}: {row:?}");
    }

    let _ = writeln!(md, "\n## Fig 8 — speedup vs #TSWs (geo-mean over seeds)\n");
    let _ = writeln!(md, "| circuit | n | speedup |");
    let _ = writeln!(md, "|---|---|---|");
    for name in profile.circuits() {
        let netlist = circuit(name);
        let base = {
            let mut b = base_config(profile);
            b.n_clw = 1;
            b
        };
        let ns: Vec<usize> = vec![1, 2, 4, 6, 8];
        let points = averaged_speedup_sweep(&netlist, &base, &ns, &seed_list, |cfg, n| {
            cfg.n_tsw = n;
        });
        for p in &points {
            let _ = writeln!(
                md,
                "| {name} | {} | {} |",
                p.n,
                p.speedup.map(|s| format!("{s:.2}")).unwrap_or("-".into()),
            );
        }
        println!(
            "[fig8] {name}: speedups {:?}",
            points.iter().map(|p| p.speedup).collect::<Vec<_>>()
        );
    }

    // ---------- Fig 9: diversification --------------------------------
    let _ = writeln!(
        md,
        "\n## Fig 9 — diversification on/off (4 TSW, 1 CLW, seed-averaged)\n"
    );
    let _ = writeln!(md, "| circuit | diversified | plain | diversified wins? |");
    let _ = writeln!(md, "|---|---|---|---|");
    for name in profile.circuits() {
        let netlist = circuit(name);
        let mut cfg = base_config(profile);
        cfg.n_tsw = 4;
        cfg.n_clw = 1;
        cfg.diversify = true;
        let with = mean_best_cost(&cfg, &netlist, &seed_list);
        cfg.diversify = false;
        let without = mean_best_cost(&cfg, &netlist, &seed_list);
        let _ = writeln!(
            md,
            "| {name} | {with:.4} | {without:.4} | {} |",
            if with <= without { "yes" } else { "NO" }
        );
        println!("[fig9] {name}: div {with:.4} vs plain {without:.4}");
    }

    // ---------- Fig 10: local vs global --------------------------------
    let _ = writeln!(md, "\n## Fig 10 — global x local split (constant budget)\n");
    let _ = writeln!(md, "| circuit | split (GxL) | best cost |");
    let _ = writeln!(md, "|---|---|---|");
    let base = base_config(profile);
    let budget = base.global_iters * base.local_iters;
    for name in profile.circuits() {
        let netlist = circuit(name);
        for g in [budget / 15, budget / 30].iter().filter(|&&g| g >= 1) {
            let (g, l) = (*g, budget / *g);
            let mut cfg = base.clone();
            cfg.n_tsw = 4;
            cfg.n_clw = 1;
            cfg.global_iters = g;
            cfg.local_iters = l;
            let out = run_on_paper_cluster(&cfg, netlist.clone());
            let _ = writeln!(md, "| {name} | {g}x{l} | {:.4} |", out.outcome.best_cost);
        }
    }

    // ---------- Fig 11: heterogeneity ---------------------------------
    let _ = writeln!(
        md,
        "\n## Fig 11 — half-report vs wait-all (4 TSW x 4 CLW)\n"
    );
    let _ = writeln!(
        md,
        "| circuit | policy | end time [vsec] | final best | forced |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|");
    for name in profile.circuits() {
        let netlist = circuit(name);
        for (label, sync) in [
            ("half-report", SyncPolicy::HalfReport),
            ("wait-all", SyncPolicy::WaitAll),
        ] {
            let mut cfg = base_config(profile);
            cfg.n_tsw = 4;
            cfg.n_clw = 4;
            cfg.tsw_sync = sync;
            cfg.clw_sync = sync;
            let out = run_on_paper_cluster(&cfg, netlist.clone());
            let o = &out.outcome;
            let _ = writeln!(
                md,
                "| {name} | {label} | {:.2} | {:.4} | {} |",
                o.end_time, o.best_cost, o.forced_reports
            );
            println!(
                "[fig11] {name}/{label}: t={:.2} best={:.4}",
                o.end_time, o.best_cost
            );
        }
    }

    let path = results_dir().join("SUMMARY.md");
    if let Err(e) = std::fs::create_dir_all(results_dir()) {
        eprintln!("cannot create results dir: {e}");
    }
    match std::fs::write(&path, &md) {
        Ok(()) => println!("\n[summary] {}", path.display()),
        Err(e) => eprintln!("cannot write summary: {e}"),
    }
}
