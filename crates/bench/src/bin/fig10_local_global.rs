//! Figure 10 — Local versus global iterations.
//!
//! Paper setup: decrease global iterations (less diversification) while
//! increasing local iterations (more local investigation), keeping total
//! work roughly constant. Expected shape: "no general conclusion can be
//! made about the best number of global vs local iterations — it depends
//! on the problem instance".

use pts_bench::{base_config, circuit, emit, run_on_paper_cluster, Profile};
use pts_util::csv::CsvWriter;
use pts_util::table::Table;

fn main() {
    let profile = Profile::from_env();
    println!("== Figure 10: local vs global iteration split (4 TSWs, 1 CLW) ==\n");

    // (global, local) pairs with a constant product.
    let base = base_config(profile);
    let budget = base.global_iters * base.local_iters;
    let splits: Vec<(u32, u32)> = [24, 12, 6, 3]
        .iter()
        .filter_map(|&g| {
            let g = g.min(budget);
            if budget.is_multiple_of(g) {
                Some((g, budget / g))
            } else {
                None
            }
        })
        .collect();

    let mut table = Table::new(["circuit", "global", "local", "best cost"]);
    let mut csv = CsvWriter::new(["circuit", "global_iters", "local_iters", "best_cost"]);

    for name in profile.circuits() {
        let netlist = circuit(name);
        let mut best_split = (0u32, 0u32);
        let mut best_cost = f64::INFINITY;
        for &(g, l) in &splits {
            let mut cfg = base.clone();
            cfg.n_tsw = 4;
            cfg.n_clw = 1;
            cfg.global_iters = g;
            cfg.local_iters = l;
            let out = run_on_paper_cluster(&cfg, netlist.clone());
            let c = out.outcome.best_cost;
            if c < best_cost {
                best_cost = c;
                best_split = (g, l);
            }
            table.row([
                name.to_string(),
                g.to_string(),
                l.to_string(),
                format!("{c:.4}"),
            ]);
            csv.row([
                name.to_string(),
                g.to_string(),
                l.to_string(),
                c.to_string(),
            ]);
        }
        println!(
            "{name}: best split = {} global x {} local\n",
            best_split.0, best_split.1
        );
    }
    emit("fig10_local_global", &table, &csv);
    println!(
        "\nPaper shape to check: the winning split differs per circuit — no\n\
         universal best."
    );
}
