//! Engine comparison — the three execution substrates at growing worker
//! counts, flat vs sharded master.
//!
//! Not a paper figure: the paper had one substrate (a twelve-workstation
//! PVM cluster) and one flat master. This harness measures what each of
//! our engines costs as `n_tsw` scales through 4 → 64 → 1024 on one host,
//! and what the sharded master (sub-master collection tree,
//! `shard_fanout = sqrt(n_tsw)`) does to the root's message load:
//!
//! * `sim` and `threads` spend one OS thread per logical process — at
//!   `n_tsw = 1024` that is 2049 threads, which is where hosts start to
//!   push back (and why they only run that point under `PTS_FULL=1`);
//! * `async` multiplexes all logical processes on the calling thread and
//!   runs every point, flat and sharded;
//! * the `root msgs` column counts rank 0's sent+received messages: flat
//!   collection is O(`n_tsw`) at the root, the sharded tree is
//!   O(fan-out) per round at every process.
//!
//! The search itself is identical protocol code throughout, so best cost
//! should be comparable across engines at each size while host cost
//! (wall seconds) and root load diverge sharply.

use pts_bench::emit;
use pts_core::{AsyncEngine, ExecutionEngine, Pts, QapDomain, RunBuilder, SimEngine, ThreadEngine};
use pts_util::csv::CsvWriter;
use pts_util::table::{fmt_f64, Table};

fn builder(n_tsw: usize) -> RunBuilder {
    Pts::builder()
        .tsw_workers(n_tsw)
        .clw_workers(1)
        .global_iters(2)
        .local_iters(3)
        .candidates(5)
        .depth(2)
        .differentiate_streams(true)
        .seed(0xC0FFEE)
}

fn main() {
    let full = std::env::var("PTS_FULL").map(|v| v == "1").unwrap_or(false);
    println!("== Engine comparison: sim vs threads vs async, flat vs sharded, at n_tsw = 4, 64, 1024 ==\n");

    // One QAP instance for the whole sweep; workers outnumber facilities
    // at the top end (ranges wrap), so streams are differentiated.
    let domain = QapDomain::random(64, 17);

    let mut table = Table::new([
        "n_tsw",
        "engine",
        "master",
        "best cost",
        "host wall s",
        "messages",
        "root msgs",
        "logical procs",
    ]);
    let mut csv = CsvWriter::new([
        "n_tsw",
        "engine",
        "master",
        "best_cost",
        "wall_seconds",
        "messages",
        "root_messages",
        "procs",
    ]);

    for &n_tsw in &[4usize, 64, 1024] {
        // Fan-out sqrt(n_tsw): one level of sub-masters, root degree ==
        // fan-out. 0 = the flat single-master baseline. Clamped to >= 2
        // (a fan-out of 1 is rejected at validation) in case the sweep
        // ever gains a tiny point.
        let fanout = ((n_tsw as f64).sqrt().round() as usize).max(2);
        let engines: [(&str, &dyn ExecutionEngine<QapDomain>); 3] = [
            ("sim", &SimEngine::paper()),
            ("threads", &ThreadEngine),
            ("async", &AsyncEngine::new()),
        ];
        for (name, engine) in engines {
            for shard_fanout in [0usize, fanout] {
                let sharded = shard_fanout != 0 && shard_fanout < n_tsw;
                if shard_fanout != 0 && !sharded {
                    continue; // fan-out covers all TSWs: identical to flat
                }
                let master = if sharded {
                    format!("shard/{shard_fanout}")
                } else {
                    "flat".to_string()
                };
                let run = builder(n_tsw)
                    .shard_fanout(shard_fanout)
                    .build()
                    .expect("sweep configs are valid");
                // Thread-per-process engines at 1024 TSWs ask the OS for
                // 2049+ threads; keep that behind the full profile. The
                // sharded run is the async engine's headline, so the
                // thread-backed engines only run it under PTS_FULL too.
                let skip = (n_tsw >= 1024 || sharded) && name != "async" && !full;
                if skip {
                    table.row([
                        n_tsw.to_string(),
                        name.to_string(),
                        master.clone(),
                        "- (PTS_FULL=1)".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        run.config().total_procs().to_string(),
                    ]);
                    // Keep the CSV row-complete: downstream plots must see
                    // "skipped", not a silently missing series.
                    csv.row([
                        n_tsw.to_string(),
                        name.to_string(),
                        master,
                        "skipped".to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        run.config().total_procs().to_string(),
                    ]);
                    continue;
                }
                let out = run.execute(&domain, engine);
                let root = &out.report.per_proc[0];
                let root_msgs = root.messages_sent + root.messages_received;
                table.row([
                    n_tsw.to_string(),
                    name.to_string(),
                    master.clone(),
                    fmt_f64(out.outcome.best_cost),
                    format!("{:.3}", out.report.wall_seconds),
                    out.report.total_messages().to_string(),
                    root_msgs.to_string(),
                    out.report.num_procs().to_string(),
                ]);
                csv.row([
                    n_tsw.to_string(),
                    name.to_string(),
                    master,
                    fmt_f64(out.outcome.best_cost),
                    format!("{:.4}", out.report.wall_seconds),
                    out.report.total_messages().to_string(),
                    root_msgs.to_string(),
                    out.report.num_procs().to_string(),
                ]);
            }
        }
    }

    emit("engine_compare", &table, &csv);
    println!("\n(sim/threads at n_tsw = 1024 and all sharded sim/threads rows run only with PTS_FULL=1.)");
    println!("(root msgs: rank-0 sent+received — O(n_tsw) flat, O(fan-out) sharded.)");
}
