//! Engine comparison — the three execution substrates at growing worker
//! counts, flat vs sharded master, full vs delta snapshot wire format.
//!
//! Not a paper figure: the paper had one substrate (a twelve-workstation
//! PVM cluster), one flat master, and full-snapshot messages. This
//! harness measures what each of our engines costs as `n_tsw` scales
//! through 4 → 64 → 1024 on one host, what the sharded master
//! (sub-master collection tree, `shard_fanout = sqrt(n_tsw)`) does to the
//! root's message load, and what the delta-encoded snapshot protocol
//! saves in simulated wire bytes and real snapshot allocations:
//!
//! * `sim` and `threads` spend one OS thread per logical process — at
//!   `n_tsw = 1024` that is 2049 threads, which is where hosts start to
//!   push back (and why they only run that point under `PTS_FULL=1`);
//! * `async` multiplexes all logical processes on the calling thread and
//!   runs every point, flat and sharded;
//! * `vt` does the same under the paper cluster's *virtual clock* — the
//!   sim engine's timing model (bit-identical timeline) at async scale —
//!   so it also runs every point, and uniquely reports virtual end time
//!   and utilization at `n_tsw = 1024`;
//! * `proc` runs one OS process per rank over a socket star (this binary
//!   re-enters itself as the workers), measuring what real process
//!   isolation and the explicit wire codec cost; its flat rows run at
//!   `n_tsw = 4` and `64`, higher points under `PTS_FULL=1`;
//! * the `root msgs` column counts rank 0's sent+received messages: flat
//!   collection is O(`n_tsw`) at the root, the sharded tree is
//!   O(fan-out) per round at every process;
//! * `wire MB` is total simulated traffic, `snap allocs` the number of
//!   full-solution materializations — both shrink under the (default)
//!   delta snapshot mode.
//!
//! ## The wire benchmark (`BENCH_wire.json`)
//!
//! A dedicated delta-vs-full pair at `n_tsw = 1024` (async engine,
//! QAP-256, adaptive fan-out 32, WaitAll so both modes are provably the
//! same search) measures the per-round snapshot payload bytes and
//! snapshot allocations of each mode and writes the baseline to
//! `BENCH_wire.json` at the workspace root. CI reruns it with
//! `--wire-check`: the fresh delta-mode per-round bytes must not regress
//! more than 10% over the committed baseline, and the delta/full
//! reduction must stay ≥ 5×.
//!
//! The same file carries the broadcast tabu-payload columns: a second,
//! longer-horizon pair (`n_tsw = 64`, eight rounds — enough broadcasts
//! for consecutive rounds to share tabu entries) measures per-round tabu
//! wire bytes with the `tabu_delta` knob off (full lists, the pre-delta
//! format) and on (aged-diff against the previous broadcast, fallback to
//! full when the diff would not pay).
//!
//! ## The time benchmark (`BENCH_time.json`)
//!
//! Two wall-clock measurements anchor the batched candidate-evaluation
//! kernel: (a) the QAP-256 kernel microbench — scalar `trial_cost` loop
//! vs batched `trial_costs` over the same candidate lists, interleaved
//! in the same process run — whose speedup must stay ≥ 1.5×, and (b)
//! end-to-end ns per nominal trial on the async engine at `n_tsw` = 4,
//! 64, 1024 (QAP-256), gated with a deliberately generous 2.5× band
//! because absolute wall time on shared CI hosts is noisy. The same-run
//! kernel ratio is the hard floor; the end-to-end figures catch
//! order-of-magnitude regressions only.
//!
//! Flags: `--wire-only` runs just the wire section and rewrites
//! `BENCH_wire.json` (the only mode that writes it); `--wire-check`
//! runs just the wire section and *compares* (exit 1 on regression).
//! `--time-only` / `--time-check` do the same for the time section and
//! `BENCH_time.json`. The default run prints the full table plus both
//! benchmark sections and leaves the committed baselines untouched.

use pts_bench::emit;
use pts_bench::kernel::{bench_qap_kernel, KernelBench};
use pts_core::{
    take_snapshot_meter, take_trials, AsyncEngine, ExecutionEngine, ProcEngine, Pts, PtsConfig,
    QapDomain, RunBuilder, SearchStrategy, SimEngine, SnapshotMeter, SnapshotMode, ThreadEngine,
    VirtualEngine,
};
use pts_util::csv::CsvWriter;
use pts_util::table::{fmt_f64, Table};
use std::path::PathBuf;

fn builder(n_tsw: usize) -> RunBuilder {
    Pts::builder()
        .tsw_workers(n_tsw)
        .clw_workers(1)
        .global_iters(2)
        .local_iters(3)
        .candidates(5)
        .depth(2)
        .differentiate_streams(true)
        .seed(0xC0FFEE)
}

/// One wire-benchmark run: per-round snapshot payload bytes, per-round
/// tabu payload bytes, snapshot allocations, wall seconds, and the best
/// cost (for the trajectory-unchanged assertion).
struct WireRun {
    bytes_per_round: f64,
    tabu_bytes_per_round: f64,
    allocs: u64,
    wall_seconds: f64,
    best_cost: f64,
    meter: SnapshotMeter,
}

/// The fixed wire-benchmark configuration: the communication-bound
/// regime the delta protocol targets — 1024 TSWs shipping QAP-256
/// solutions every round through the adaptive collection tree.
const WIRE_N_TSW: usize = 1024;
const WIRE_QAP_N: usize = 256;
const WIRE_GLOBAL_ITERS: u32 = 2;

/// The tabu-payload pair runs a longer horizon at a smaller width: tabu
/// lists are tens of entries, not kilobytes, so the interesting quantity
/// is how their bytes behave across *many* broadcasts — and the delta
/// encoding only has a usable base from the second broadcast on.
const TABU_N_TSW: usize = 64;
const TABU_GLOBAL_ITERS: u32 = 8;

fn wire_builder(
    n_tsw: usize,
    global_iters: u32,
    mode: SnapshotMode,
    tabu_delta: bool,
) -> RunBuilder {
    Pts::builder()
        .tsw_workers(n_tsw)
        .clw_workers(1)
        .global_iters(global_iters)
        .local_iters(2)
        .candidates(4)
        .depth(2)
        .differentiate_streams(true)
        .sync(pts_core::SyncPolicy::WaitAll)
        .shard_fanout_auto()
        .snapshot_mode(mode)
        .tabu_delta(tabu_delta)
        .seed(0xC0FFEE)
}

fn wire_config(mode: SnapshotMode) -> pts_core::PtsRun {
    wire_builder(WIRE_N_TSW, WIRE_GLOBAL_ITERS, mode, false)
        .build()
        .expect("wire benchmark config is valid")
}

fn meter_run(domain: &QapDomain, run: pts_core::PtsRun, rounds: u32) -> WireRun {
    let _ = take_snapshot_meter(); // drain
    let out = run.execute(domain, &AsyncEngine::new());
    let meter = take_snapshot_meter();
    WireRun {
        bytes_per_round: meter.round_payload_bytes as f64 / rounds as f64,
        tabu_bytes_per_round: meter.tabu_payload_bytes as f64 / rounds as f64,
        allocs: meter.allocs,
        wall_seconds: out.report.wall_seconds,
        best_cost: out.outcome.best_cost,
        meter,
    }
}

fn wire_run(domain: &QapDomain, mode: SnapshotMode) -> WireRun {
    meter_run(domain, wire_config(mode), WIRE_GLOBAL_ITERS)
}

/// Workspace root (this crate lives at `<root>/crates/bench`).
fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn baseline_path() -> PathBuf {
    workspace_root().join("BENCH_wire.json")
}

/// Extract `"key": <number>` from the flat baseline JSON (the file is
/// machine-written with unique keys; no general parser needed offline).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Run the delta-vs-full wire pair; returns (delta, full, reduction).
fn measure_wire(domain: &QapDomain) -> (WireRun, WireRun, f64) {
    println!(
        "== Wire benchmark: delta vs full snapshots, n_tsw = {WIRE_N_TSW}, QAP-{WIRE_QAP_N}, \
         async engine, shard fan-out auto =="
    );
    let full = wire_run(domain, SnapshotMode::Full);
    let delta = wire_run(domain, SnapshotMode::Delta);
    assert_eq!(
        delta.best_cost, full.best_cost,
        "delta mode changed the search outcome"
    );
    let reduction = full.bytes_per_round / delta.bytes_per_round;
    println!(
        "full : {:>12.0} snapshot B/round  {:>8} snapshot allocs  {:>7.3} s wall",
        full.bytes_per_round, full.allocs, full.wall_seconds
    );
    println!(
        "delta: {:>12.0} snapshot B/round  {:>8} snapshot allocs  {:>7.3} s wall",
        delta.bytes_per_round, delta.allocs, delta.wall_seconds
    );
    println!(
        "reduction: {reduction:.1}x per-round snapshot bytes (same best cost {:.1}; \
         Init fan-out excluded: {} B, identical in both modes)",
        full.best_cost, full.meter.init_payload_bytes
    );
    println!(
        "(zero-copy Arc fan-out: {} snapshot-bearing sends per run would each have been a deep \
         copy before the payload redesign — now {} / {} materializations in full / delta mode.)",
        full.meter.payload_sends, full.allocs, delta.allocs
    );
    (delta, full, reduction)
}

/// Run the tabu-payload pair: same QAP-256 domain, `TABU_N_TSW` workers
/// over `TABU_GLOBAL_ITERS` rounds (delta snapshots in both runs — the
/// knob under test is `tabu_delta` alone), full tabu lists vs the aged
/// broadcast diff. Returns (delta-on, delta-off, reduction).
fn measure_tabu(domain: &QapDomain) -> (WireRun, WireRun, f64) {
    println!(
        "== Tabu-payload benchmark: broadcast tabu delta vs full lists, n_tsw = {TABU_N_TSW}, \
         {TABU_GLOBAL_ITERS} rounds, QAP-{WIRE_QAP_N} =="
    );
    let run = |tabu_delta| {
        let cfg = wire_builder(
            TABU_N_TSW,
            TABU_GLOBAL_ITERS,
            SnapshotMode::Delta,
            tabu_delta,
        )
        .build()
        .expect("tabu benchmark config is valid");
        meter_run(domain, cfg, TABU_GLOBAL_ITERS)
    };
    let full = run(false);
    let delta = run(true);
    assert_eq!(
        delta.best_cost, full.best_cost,
        "tabu delta changed the search outcome"
    );
    assert!(
        delta.tabu_bytes_per_round <= full.tabu_bytes_per_round,
        "tabu delta must never cost bytes (fallback-to-full guarantees this)"
    );
    let reduction = full.tabu_bytes_per_round / delta.tabu_bytes_per_round;
    println!(
        "full lists: {:>8.0} tabu B/round\ntabu delta: {:>8.0} tabu B/round\nreduction: \
         {reduction:.2}x (same best cost {:.1}; upward Report lists always ship full — only the \
         broadcast share shrinks)",
        full.tabu_bytes_per_round, delta.tabu_bytes_per_round, full.best_cost
    );
    (delta, full, reduction)
}

/// Report-only vt row for the wire benchmark: the same delta-mode run on
/// the virtual-time cooperative engine, which uniquely measures the
/// *virtual* timeline of the communication-bound regime — end time and
/// utilization on the paper cluster at `n_tsw = 1024`, numbers the
/// wall-clock engines cannot produce at this scale. No baseline gate:
/// this row contextualizes `BENCH_wire.json`, it does not anchor it.
fn report_wire_vt(domain: &QapDomain) {
    let run = wire_config(SnapshotMode::Delta);
    let _ = take_snapshot_meter(); // drain
    let out = run.execute(domain, &VirtualEngine::paper());
    let meter = take_snapshot_meter();
    println!(
        "vt   : {:>12.0} snapshot B/round  {:>8} snapshot allocs  {:>7.3} s wall  \
         (virtual: end {:.1} s, utilization {:.0}%, best cost {:.1}; report-only, no gate)",
        meter.round_payload_bytes as f64 / WIRE_GLOBAL_ITERS as f64,
        meter.allocs,
        out.report.wall_seconds,
        out.report.end_time,
        out.report.utilization() * 100.0,
        out.outcome.best_cost,
    );
}

#[allow(clippy::too_many_arguments)]
fn write_baseline(
    delta: &WireRun,
    full: &WireRun,
    reduction: f64,
    tabu_delta: &WireRun,
    tabu_full: &WireRun,
    tabu_reduction: f64,
) {
    let path = baseline_path();
    let json = format!(
        "{{\n  \"n_tsw\": {WIRE_N_TSW},\n  \"qap_n\": {WIRE_QAP_N},\n  \
         \"global_iters\": {WIRE_GLOBAL_ITERS},\n  \
         \"engine\": \"async\",\n  \"shard_fanout\": \"auto\",\n  \
         \"full_snapshot_bytes_per_round\": {:.0},\n  \
         \"delta_snapshot_bytes_per_round\": {:.0},\n  \
         \"snapshot_bytes_reduction\": {:.2},\n  \
         \"full_snapshot_allocs\": {},\n  \"delta_snapshot_allocs\": {},\n  \
         \"full_wall_seconds\": {:.3},\n  \"delta_wall_seconds\": {:.3},\n  \
         \"best_cost\": {:.4},\n  \
         \"tabu_n_tsw\": {TABU_N_TSW},\n  \"tabu_global_iters\": {TABU_GLOBAL_ITERS},\n  \
         \"tabu_bytes_per_round_full_list\": {:.0},\n  \
         \"tabu_bytes_per_round_delta\": {:.0},\n  \
         \"tabu_bytes_reduction\": {:.2}\n}}\n",
        full.bytes_per_round,
        delta.bytes_per_round,
        reduction,
        full.allocs,
        delta.allocs,
        full.wall_seconds,
        delta.wall_seconds,
        full.best_cost,
        tabu_full.tabu_bytes_per_round,
        tabu_delta.tabu_bytes_per_round,
        tabu_reduction,
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("[baseline] wrote {}", path.display()),
        Err(e) => eprintln!("[baseline] failed to write {}: {e}", path.display()),
    }
}

/// Compare a fresh wire run against the committed baseline. Returns
/// `false` (and prints why) on regression.
fn check_baseline(
    delta: &WireRun,
    reduction: f64,
    tabu_delta: &WireRun,
    tabu_reduction: f64,
) -> bool {
    let path = baseline_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[wire-check] cannot read {}: {e}", path.display());
            return false;
        }
    };
    let committed = match json_number(&text, "delta_snapshot_bytes_per_round") {
        Some(v) => v,
        None => {
            eprintln!("[wire-check] baseline is missing delta_snapshot_bytes_per_round");
            return false;
        }
    };
    let mut ok = true;
    let limit = committed * 1.10;
    if delta.bytes_per_round > limit {
        eprintln!(
            "[wire-check] REGRESSION: delta per-round snapshot bytes {:.0} exceed committed \
             {committed:.0} by more than 10% (limit {limit:.0})",
            delta.bytes_per_round
        );
        ok = false;
    } else {
        println!(
            "[wire-check] delta per-round snapshot bytes {:.0} within 10% of committed {committed:.0}",
            delta.bytes_per_round
        );
    }
    if reduction < 5.0 {
        eprintln!("[wire-check] REGRESSION: delta/full reduction {reduction:.2}x fell below 5x");
        ok = false;
    } else {
        println!("[wire-check] delta/full reduction {reduction:.2}x (>= 5x required)");
    }
    match json_number(&text, "tabu_bytes_per_round_delta") {
        Some(committed_tabu) => {
            let limit = committed_tabu * 1.10;
            if tabu_delta.tabu_bytes_per_round > limit {
                eprintln!(
                    "[wire-check] REGRESSION: tabu-delta per-round bytes {:.0} exceed committed \
                     {committed_tabu:.0} by more than 10% (limit {limit:.0})",
                    tabu_delta.tabu_bytes_per_round
                );
                ok = false;
            } else {
                println!(
                    "[wire-check] tabu-delta per-round bytes {:.0} within 10% of committed \
                     {committed_tabu:.0}",
                    tabu_delta.tabu_bytes_per_round
                );
            }
        }
        None => {
            eprintln!("[wire-check] baseline is missing tabu_bytes_per_round_delta");
            ok = false;
        }
    }
    // The tabu delta must actually pay on the multi-round regime, not
    // merely never lose (the fallback already guarantees the latter).
    if tabu_reduction < 1.1 {
        eprintln!(
            "[wire-check] REGRESSION: tabu delta/full reduction {tabu_reduction:.2}x fell below 1.1x"
        );
        ok = false;
    } else {
        println!("[wire-check] tabu delta/full reduction {tabu_reduction:.2}x (>= 1.1x required)");
    }
    ok
}

/// End-to-end time points: async engine, QAP-256, the engine-table
/// iteration counts, flat master.
const TIME_POINTS: [usize; 3] = [4, 64, 1024];
/// Kernel microbench shape for the gated point: the engine's typical
/// candidate-list length band, enough rounds for stable aggregates.
const TIME_KERNEL_BATCH: usize = 32;
const TIME_KERNEL_ROUNDS: usize = 300;

struct TimePoint {
    n_tsw: usize,
    wall_seconds: f64,
    ns_per_trial: f64,
}

struct TimeBench {
    kernel: KernelBench,
    points: Vec<TimePoint>,
}

/// Upper-bound trial count a configuration can evaluate: every CLW
/// investigation runs up to `depth` steps of `candidates` trials per
/// local iteration. Early accepts, forced-early rounds, cut-short
/// investigations and dead CLWs all evaluate *fewer* — the exact count
/// comes from `pts_core::take_trials()`, metered at the batch that
/// actually executed. This nominal figure survives only as the fallback
/// denominator for the proc engine, whose evaluations happen in worker
/// OS processes where the parent's meter cannot see them.
fn nominal_trials(cfg: &PtsConfig) -> u64 {
    (cfg.n_tsw * cfg.n_clw * cfg.search.candidates * cfg.search.depth) as u64
        * cfg.global_iters as u64
        * cfg.local_iters as u64
}

/// Exact-first trial denominator: the metered count when the run
/// executed in this process, the nominal upper bound otherwise (proc
/// workers meter in their own address spaces). Returns the count and
/// whether it is exact.
fn measured_trials(cfg: &PtsConfig) -> (u64, bool) {
    let measured = take_trials();
    if measured > 0 {
        (measured, true)
    } else {
        (nominal_trials(cfg), false)
    }
}

/// Portfolio column cell: `uniform` when every TSW group runs the single
/// `search` strategy, `k-strat` for a k-entry heterogeneous portfolio.
fn portfolio_label(cfg: &PtsConfig) -> String {
    if cfg.portfolio.is_empty() {
        "uniform".to_string()
    } else {
        format!("{}-strat", cfg.portfolio.len())
    }
}

fn measure_time(domain: &QapDomain) -> TimeBench {
    println!(
        "== Time benchmark: QAP-{WIRE_QAP_N} kernel microbench + async end-to-end ns/trial =="
    );
    let kernel = bench_qap_kernel(WIRE_QAP_N, TIME_KERNEL_BATCH, TIME_KERNEL_ROUNDS, 17);
    println!(
        "kernel (batch {TIME_KERNEL_BATCH}, {TIME_KERNEL_ROUNDS} rounds): scalar {:.1} ns/trial, \
         batched {:.1} ns/trial, speedup {:.2}x (same-run, bit-identical paths)",
        kernel.scalar_ns_per_trial,
        kernel.batched_ns_per_trial,
        kernel.speedup()
    );
    let points = TIME_POINTS
        .iter()
        .map(|&n_tsw| {
            let run = builder(n_tsw).build().expect("time configs are valid");
            let _ = take_trials(); // drain any prior section's count
            let out = run.execute(domain, &AsyncEngine::new());
            let (trials, exact) = measured_trials(run.config());
            assert!(exact, "async runs in-process; the trial meter must see it");
            let p = TimePoint {
                n_tsw,
                wall_seconds: out.report.wall_seconds,
                ns_per_trial: out.report.wall_seconds * 1e9 / trials as f64,
            };
            println!(
                "async n_tsw {:>4}: {:>7.3} s wall, {:>8.0} ns per trial ({} trials, exact)",
                p.n_tsw, p.wall_seconds, p.ns_per_trial, trials
            );
            p
        })
        .collect();
    TimeBench { kernel, points }
}

fn time_path() -> PathBuf {
    workspace_root().join("BENCH_time.json")
}

fn write_time_baseline(t: &TimeBench) {
    let path = time_path();
    let mut json = format!(
        "{{\n  \"qap_n\": {WIRE_QAP_N},\n  \
         \"kernel_batch\": {TIME_KERNEL_BATCH},\n  \"kernel_rounds\": {TIME_KERNEL_ROUNDS},\n  \
         \"kernel_scalar_ns_per_trial\": {:.1},\n  \
         \"kernel_batched_ns_per_trial\": {:.1},\n  \
         \"kernel_speedup\": {:.2},\n  \
         \"engine\": \"async\"",
        t.kernel.scalar_ns_per_trial,
        t.kernel.batched_ns_per_trial,
        t.kernel.speedup(),
    );
    for p in &t.points {
        json.push_str(&format!(
            ",\n  \"wall_seconds_n_tsw_{}\": {:.3},\n  \"ns_per_trial_n_tsw_{}\": {:.0}",
            p.n_tsw, p.wall_seconds, p.n_tsw, p.ns_per_trial
        ));
    }
    json.push_str("\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("[baseline] wrote {}", path.display()),
        Err(e) => eprintln!("[baseline] failed to write {}: {e}", path.display()),
    }
}

/// Gate the fresh time measurements: the same-run kernel speedup is the
/// hard floor (≥ 1.5×, robust to host noise because both sides run in
/// the same process seconds apart); the end-to-end points get a
/// deliberately generous 2.5× band against the committed baseline —
/// they exist to catch order-of-magnitude regressions, not jitter.
fn check_time_baseline(t: &TimeBench) -> bool {
    let mut ok = true;
    if t.kernel.speedup() < 1.5 {
        eprintln!(
            "[time-check] REGRESSION: batched kernel speedup {:.2}x fell below the 1.5x floor \
             (scalar {:.1} ns, batched {:.1} ns)",
            t.kernel.speedup(),
            t.kernel.scalar_ns_per_trial,
            t.kernel.batched_ns_per_trial
        );
        ok = false;
    } else {
        println!(
            "[time-check] batched kernel speedup {:.2}x (>= 1.5x required, same-run)",
            t.kernel.speedup()
        );
    }
    let path = time_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[time-check] cannot read {}: {e}", path.display());
            return false;
        }
    };
    match json_number(&text, "kernel_speedup") {
        Some(committed) if committed >= 1.5 => {
            println!("[time-check] committed kernel speedup {committed:.2}x (>= 1.5x required)");
        }
        Some(committed) => {
            eprintln!(
                "[time-check] REGRESSION: committed kernel speedup {committed:.2}x is below 1.5x \
                 — rewrite BENCH_time.json from a healthy build"
            );
            ok = false;
        }
        None => {
            eprintln!("[time-check] baseline is missing kernel_speedup");
            ok = false;
        }
    }
    for p in &t.points {
        let key = format!("ns_per_trial_n_tsw_{}", p.n_tsw);
        match json_number(&text, &key) {
            Some(committed) => {
                let limit = committed * 2.5;
                if p.ns_per_trial > limit {
                    eprintln!(
                        "[time-check] REGRESSION: {key} {:.0} exceeds committed {committed:.0} \
                         by more than 2.5x (limit {limit:.0})",
                        p.ns_per_trial
                    );
                    ok = false;
                } else {
                    println!(
                        "[time-check] {key} {:.0} within 2.5x of committed {committed:.0}",
                        p.ns_per_trial
                    );
                }
            }
            None => {
                eprintln!("[time-check] baseline is missing {key}");
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    // The proc rows spawn worker ranks by re-entering this binary.
    pts_core::proc::maybe_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let wire_check = args.iter().any(|a| a == "--wire-check");
    let wire_write = args.iter().any(|a| a == "--wire-only");
    let time_check = args.iter().any(|a| a == "--time-check");
    let time_write = args.iter().any(|a| a == "--time-only");
    let wire_flagged = wire_check || wire_write;
    let time_flagged = time_check || time_write;

    if !wire_flagged && !time_flagged {
        run_engine_table();
    }

    // One QAP-256 instance shared by every benchmark section: the vt
    // report row and the time points must measure the exact regime the
    // gated wire pair (and the committed baselines) measures, not a
    // same-constants reconstruction that could drift.
    let wire_domain = QapDomain::random(WIRE_QAP_N, 17);

    if !time_flagged {
        let (delta, full, reduction) = measure_wire(&wire_domain);
        let (tabu_delta, tabu_full, tabu_reduction) = measure_tabu(&wire_domain);
        report_wire_vt(&wire_domain);
        if wire_check {
            if !check_baseline(&delta, reduction, &tabu_delta, tabu_reduction) {
                std::process::exit(1);
            }
        } else if wire_write {
            // Only an explicit --wire-only rewrites the committed baseline —
            // a plain table run must never silently re-anchor the CI gate.
            write_baseline(
                &delta,
                &full,
                reduction,
                &tabu_delta,
                &tabu_full,
                tabu_reduction,
            );
        } else {
            println!(
                "(committed wire baseline untouched: rewrite deliberately with --wire-only, \
                 compare with --wire-check)"
            );
        }
    }

    if !wire_flagged {
        let time = measure_time(&wire_domain);
        if time_check {
            if !check_time_baseline(&time) {
                std::process::exit(1);
            }
        } else if time_write {
            write_time_baseline(&time);
        } else {
            println!(
                "(committed time baseline untouched: rewrite deliberately with --time-only, \
                 compare with --time-check)"
            );
        }
    }
}

fn run_engine_table() {
    let full_profile = std::env::var("PTS_FULL").map(|v| v == "1").unwrap_or(false);
    println!("== Engine comparison: sim vs threads vs async vs vt vs proc, flat vs sharded, at n_tsw = 4, 64, 1024 ==\n");

    // One QAP instance for the whole sweep; workers outnumber facilities
    // at the top end (ranges wrap), so streams are differentiated.
    let domain = QapDomain::random(64, 17);

    let mut table = Table::new([
        "n_tsw",
        "engine",
        "master",
        "portfolio",
        "best cost",
        "host wall s",
        "ns/trial",
        "cand batch",
        "messages",
        "root msgs",
        "wire MB",
        "snap allocs",
        "logical procs",
    ]);
    let mut csv = CsvWriter::new([
        "n_tsw",
        "engine",
        "master",
        "portfolio",
        "best_cost",
        "wall_seconds",
        "ns_per_trial",
        "candidate_batch",
        "messages",
        "root_messages",
        "wire_mb",
        "snapshot_allocs",
        "procs",
    ]);

    for &n_tsw in &[4usize, 64, 1024] {
        // Fan-out sqrt(n_tsw): one level of sub-masters, root degree ==
        // fan-out. 0 = the flat single-master baseline. Clamped to >= 2
        // (a fan-out of 1 is rejected at validation) in case the sweep
        // ever gains a tiny point.
        let fanout = ((n_tsw as f64).sqrt().round() as usize).max(2);
        let proc_engine = ProcEngine::from_current_exe().expect("own path resolvable");
        let engines: [(&str, &dyn ExecutionEngine<QapDomain>); 5] = [
            ("sim", &SimEngine::paper()),
            ("threads", &ThreadEngine),
            ("async", &AsyncEngine::new()),
            ("vt", &VirtualEngine::paper()),
            // One OS process per rank over a socket star: the real
            // cross-process deployment the wire codec exists for.
            ("proc", &proc_engine),
        ];
        for (name, engine) in engines {
            for shard_fanout in [0usize, fanout] {
                let sharded = shard_fanout != 0 && shard_fanout < n_tsw;
                if shard_fanout != 0 && !sharded {
                    continue; // fan-out covers all TSWs: identical to flat
                }
                let master = if sharded {
                    format!("shard/{shard_fanout}")
                } else {
                    "flat".to_string()
                };
                let run = builder(n_tsw)
                    .shard_fanout(shard_fanout)
                    .build()
                    .expect("sweep configs are valid");
                // Thread-per-process engines at 1024 TSWs ask the OS for
                // 2049+ threads; keep that behind the full profile. The
                // sharded run is the async engine's headline, so the
                // thread-backed engines only run it under PTS_FULL too.
                let single_threaded = name == "async" || name == "vt";
                let skip = (n_tsw >= 1024 || sharded) && !single_threaded && !full_profile;
                if skip {
                    table.row([
                        n_tsw.to_string(),
                        name.to_string(),
                        master.clone(),
                        portfolio_label(run.config()),
                        "- (PTS_FULL=1)".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        run.config().search.candidates.to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        run.config().total_procs().to_string(),
                    ]);
                    // Keep the CSV row-complete: downstream plots must see
                    // "skipped", not a silently missing series.
                    csv.row([
                        n_tsw.to_string(),
                        name.to_string(),
                        master,
                        portfolio_label(run.config()),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        run.config().search.candidates.to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        run.config().total_procs().to_string(),
                    ]);
                    continue;
                }
                let _ = take_snapshot_meter(); // drain
                let _ = take_trials(); // drain
                let out = run.execute(&domain, engine);
                let meter = take_snapshot_meter();
                let root = &out.report.per_proc[0];
                let root_msgs = root.messages_sent + root.messages_received;
                let wire_mb = out.report.total_bytes() as f64 / 1e6;
                // Host wall time over the trial count: an end-to-end
                // throughput figure (messaging and scheduling included),
                // comparable across engines at fixed n_tsw. Exact where
                // the run executed in-process; the proc engine's workers
                // meter in their own address spaces, so its rows fall
                // back to the nominal upper bound (marked with a `~`).
                let (trials, exact) = measured_trials(run.config());
                let ns_per_trial = out.report.wall_seconds * 1e9 / trials as f64;
                let ns_cell = if exact {
                    format!("{ns_per_trial:.0}")
                } else {
                    format!("~{ns_per_trial:.0}")
                };
                table.row([
                    n_tsw.to_string(),
                    name.to_string(),
                    master.clone(),
                    portfolio_label(run.config()),
                    fmt_f64(out.outcome.best_cost),
                    format!("{:.3}", out.report.wall_seconds),
                    ns_cell,
                    run.config().search.candidates.to_string(),
                    out.report.total_messages().to_string(),
                    root_msgs.to_string(),
                    format!("{wire_mb:.2}"),
                    meter.allocs.to_string(),
                    out.report.num_procs().to_string(),
                ]);
                csv.row([
                    n_tsw.to_string(),
                    name.to_string(),
                    master,
                    portfolio_label(run.config()),
                    fmt_f64(out.outcome.best_cost),
                    format!("{:.4}", out.report.wall_seconds),
                    format!("{ns_per_trial:.1}"),
                    run.config().search.candidates.to_string(),
                    out.report.total_messages().to_string(),
                    root_msgs.to_string(),
                    format!("{wire_mb:.4}"),
                    meter.allocs.to_string(),
                    out.report.num_procs().to_string(),
                ]);
            }
        }

        // The portfolio column's non-uniform case: one sharded vt row
        // per scale running a two-strategy portfolio (the pinned
        // vt_scenarios pair — an intensifier and a diversifier), so the
        // table shows what the heterogeneous mode costs and wins next
        // to the uniform rows it rides alongside.
        let run = builder(n_tsw)
            .shard_fanout(fanout)
            .portfolio([
                SearchStrategy {
                    tenure: 5,
                    candidates: 6,
                    depth: 3,
                    ..Default::default()
                },
                SearchStrategy {
                    tenure: 13,
                    candidates: 4,
                    depth: 2,
                    ..Default::default()
                },
            ])
            .build()
            .expect("sweep configs are valid");
        let _ = take_snapshot_meter();
        let _ = take_trials();
        let out = run.execute(&domain, &VirtualEngine::paper());
        let meter = take_snapshot_meter();
        let root = &out.report.per_proc[0];
        let root_msgs = root.messages_sent + root.messages_received;
        let wire_mb = out.report.total_bytes() as f64 / 1e6;
        let (trials, exact) = measured_trials(run.config());
        assert!(exact, "vt runs in-process; trials must be metered");
        let ns_per_trial = out.report.wall_seconds * 1e9 / trials as f64;
        let batches = run
            .config()
            .portfolio
            .iter()
            .map(|s| s.candidates.to_string())
            .collect::<Vec<_>>()
            .join("/");
        let master = format!("shard/{fanout}");
        table.row([
            n_tsw.to_string(),
            "vt".to_string(),
            master.clone(),
            portfolio_label(run.config()),
            fmt_f64(out.outcome.best_cost),
            format!("{:.3}", out.report.wall_seconds),
            format!("{ns_per_trial:.0}"),
            batches.clone(),
            out.report.total_messages().to_string(),
            root_msgs.to_string(),
            format!("{wire_mb:.2}"),
            meter.allocs.to_string(),
            out.report.num_procs().to_string(),
        ]);
        csv.row([
            n_tsw.to_string(),
            "vt".to_string(),
            master,
            portfolio_label(run.config()),
            fmt_f64(out.outcome.best_cost),
            format!("{:.4}", out.report.wall_seconds),
            format!("{ns_per_trial:.1}"),
            batches,
            out.report.total_messages().to_string(),
            root_msgs.to_string(),
            format!("{wire_mb:.4}"),
            meter.allocs.to_string(),
            out.report.num_procs().to_string(),
        ]);
    }

    emit("engine_compare", &table, &csv);
    println!("\n(sim/threads/proc at n_tsw = 1024 and all sharded sim/threads/proc rows run only with PTS_FULL=1 — proc at 1024 means 2049 OS processes.)");
    println!("(root msgs: rank-0 sent+received — O(n_tsw) flat, O(fan-out) sharded.)");
    println!("(ns/trial: wall time over the *metered* evaluation count — exact, early accepts and cut-shorts included; `~` marks proc rows, whose workers meter in their own processes, so the nominal upper bound is used.)");
    println!("(portfolio: `uniform` = single strategy; `k-strat` = heterogeneous portfolio — the 2-strat vt rows run the pinned intensify/diversify pair from tests/vt_scenarios.rs; see `pts run --portfolio`.)");
    println!("(wire MB / snap allocs: simulated traffic and full-solution materializations — both drop under the default delta snapshot mode; see BENCH_wire.json.)\n");
}
