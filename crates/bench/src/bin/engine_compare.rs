//! Engine comparison — the three execution substrates at growing worker
//! counts, flat vs sharded master, full vs delta snapshot wire format.
//!
//! Not a paper figure: the paper had one substrate (a twelve-workstation
//! PVM cluster), one flat master, and full-snapshot messages. This
//! harness measures what each of our engines costs as `n_tsw` scales
//! through 4 → 64 → 1024 on one host, what the sharded master
//! (sub-master collection tree, `shard_fanout = sqrt(n_tsw)`) does to the
//! root's message load, and what the delta-encoded snapshot protocol
//! saves in simulated wire bytes and real snapshot allocations:
//!
//! * `sim` and `threads` spend one OS thread per logical process — at
//!   `n_tsw = 1024` that is 2049 threads, which is where hosts start to
//!   push back (and why they only run that point under `PTS_FULL=1`);
//! * `async` multiplexes all logical processes on the calling thread and
//!   runs every point, flat and sharded;
//! * `vt` does the same under the paper cluster's *virtual clock* — the
//!   sim engine's timing model (bit-identical timeline) at async scale —
//!   so it also runs every point, and uniquely reports virtual end time
//!   and utilization at `n_tsw = 1024`;
//! * `proc` runs one OS process per rank over a socket star (this binary
//!   re-enters itself as the workers), measuring what real process
//!   isolation and the explicit wire codec cost; its flat rows run at
//!   `n_tsw = 4` and `64`, higher points under `PTS_FULL=1`;
//! * the `root msgs` column counts rank 0's sent+received messages: flat
//!   collection is O(`n_tsw`) at the root, the sharded tree is
//!   O(fan-out) per round at every process;
//! * `wire MB` is total simulated traffic, `snap allocs` the number of
//!   full-solution materializations — both shrink under the (default)
//!   delta snapshot mode.
//!
//! ## The wire benchmark (`BENCH_wire.json`)
//!
//! A dedicated delta-vs-full pair at `n_tsw = 1024` (async engine,
//! QAP-256, adaptive fan-out 32, WaitAll so both modes are provably the
//! same search) measures the per-round snapshot payload bytes and
//! snapshot allocations of each mode and writes the baseline to
//! `BENCH_wire.json` at the workspace root. CI reruns it with
//! `--wire-check`: the fresh delta-mode per-round bytes must not regress
//! more than 10% over the committed baseline, and the delta/full
//! reduction must stay ≥ 5×.
//!
//! Flags: `--wire-only` runs just the wire pair and rewrites the
//! baseline (the only mode that writes it); `--wire-check` runs just
//! the wire pair and *compares* (exit 1 on regression). The default
//! run prints the full table plus the wire pair and leaves the
//! committed baseline untouched.

use pts_bench::emit;
use pts_core::{
    take_snapshot_meter, AsyncEngine, ExecutionEngine, ProcEngine, Pts, QapDomain, RunBuilder,
    SimEngine, SnapshotMeter, SnapshotMode, ThreadEngine, VirtualEngine,
};
use pts_util::csv::CsvWriter;
use pts_util::table::{fmt_f64, Table};
use std::path::PathBuf;

fn builder(n_tsw: usize) -> RunBuilder {
    Pts::builder()
        .tsw_workers(n_tsw)
        .clw_workers(1)
        .global_iters(2)
        .local_iters(3)
        .candidates(5)
        .depth(2)
        .differentiate_streams(true)
        .seed(0xC0FFEE)
}

/// One wire-benchmark run: per-round snapshot payload bytes, snapshot
/// allocations, wall seconds, and the best cost (for the
/// trajectory-unchanged assertion).
struct WireRun {
    bytes_per_round: f64,
    allocs: u64,
    wall_seconds: f64,
    best_cost: f64,
    meter: SnapshotMeter,
}

/// The fixed wire-benchmark configuration: the communication-bound
/// regime the delta protocol targets — 1024 TSWs shipping QAP-256
/// solutions every round through the adaptive collection tree.
const WIRE_N_TSW: usize = 1024;
const WIRE_QAP_N: usize = 256;
const WIRE_GLOBAL_ITERS: u32 = 2;

fn wire_config(mode: SnapshotMode) -> pts_core::PtsRun {
    Pts::builder()
        .tsw_workers(WIRE_N_TSW)
        .clw_workers(1)
        .global_iters(WIRE_GLOBAL_ITERS)
        .local_iters(2)
        .candidates(4)
        .depth(2)
        .differentiate_streams(true)
        .sync(pts_core::SyncPolicy::WaitAll)
        .shard_fanout_auto()
        .snapshot_mode(mode)
        .seed(0xC0FFEE)
        .build()
        .expect("wire benchmark config is valid")
}

fn wire_run(domain: &QapDomain, mode: SnapshotMode) -> WireRun {
    let run = wire_config(mode);
    let _ = take_snapshot_meter(); // drain
    let out = run.execute(domain, &AsyncEngine::new());
    let meter = take_snapshot_meter();
    WireRun {
        bytes_per_round: meter.round_payload_bytes as f64 / WIRE_GLOBAL_ITERS as f64,
        allocs: meter.allocs,
        wall_seconds: out.report.wall_seconds,
        best_cost: out.outcome.best_cost,
        meter,
    }
}

/// Workspace root (this crate lives at `<root>/crates/bench`).
fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn baseline_path() -> PathBuf {
    workspace_root().join("BENCH_wire.json")
}

/// Extract `"key": <number>` from the flat baseline JSON (the file is
/// machine-written with unique keys; no general parser needed offline).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Run the delta-vs-full wire pair; returns (delta, full, reduction).
fn measure_wire(domain: &QapDomain) -> (WireRun, WireRun, f64) {
    println!(
        "== Wire benchmark: delta vs full snapshots, n_tsw = {WIRE_N_TSW}, QAP-{WIRE_QAP_N}, \
         async engine, shard fan-out auto =="
    );
    let full = wire_run(domain, SnapshotMode::Full);
    let delta = wire_run(domain, SnapshotMode::Delta);
    assert_eq!(
        delta.best_cost, full.best_cost,
        "delta mode changed the search outcome"
    );
    let reduction = full.bytes_per_round / delta.bytes_per_round;
    println!(
        "full : {:>12.0} snapshot B/round  {:>8} snapshot allocs  {:>7.3} s wall",
        full.bytes_per_round, full.allocs, full.wall_seconds
    );
    println!(
        "delta: {:>12.0} snapshot B/round  {:>8} snapshot allocs  {:>7.3} s wall",
        delta.bytes_per_round, delta.allocs, delta.wall_seconds
    );
    println!(
        "reduction: {reduction:.1}x per-round snapshot bytes (same best cost {:.1}; \
         Init fan-out excluded: {} B, identical in both modes)",
        full.best_cost, full.meter.init_payload_bytes
    );
    println!(
        "(zero-copy Arc fan-out: {} snapshot-bearing sends per run would each have been a deep \
         copy before the payload redesign — now {} / {} materializations in full / delta mode.)",
        full.meter.payload_sends, full.allocs, delta.allocs
    );
    (delta, full, reduction)
}

/// Report-only vt row for the wire benchmark: the same delta-mode run on
/// the virtual-time cooperative engine, which uniquely measures the
/// *virtual* timeline of the communication-bound regime — end time and
/// utilization on the paper cluster at `n_tsw = 1024`, numbers the
/// wall-clock engines cannot produce at this scale. No baseline gate:
/// this row contextualizes `BENCH_wire.json`, it does not anchor it.
fn report_wire_vt(domain: &QapDomain) {
    let run = wire_config(SnapshotMode::Delta);
    let _ = take_snapshot_meter(); // drain
    let out = run.execute(domain, &VirtualEngine::paper());
    let meter = take_snapshot_meter();
    println!(
        "vt   : {:>12.0} snapshot B/round  {:>8} snapshot allocs  {:>7.3} s wall  \
         (virtual: end {:.1} s, utilization {:.0}%, best cost {:.1}; report-only, no gate)",
        meter.round_payload_bytes as f64 / WIRE_GLOBAL_ITERS as f64,
        meter.allocs,
        out.report.wall_seconds,
        out.report.end_time,
        out.report.utilization() * 100.0,
        out.outcome.best_cost,
    );
}

fn write_baseline(delta: &WireRun, full: &WireRun, reduction: f64) {
    let path = baseline_path();
    let json = format!(
        "{{\n  \"n_tsw\": {WIRE_N_TSW},\n  \"qap_n\": {WIRE_QAP_N},\n  \
         \"global_iters\": {WIRE_GLOBAL_ITERS},\n  \
         \"engine\": \"async\",\n  \"shard_fanout\": \"auto\",\n  \
         \"full_snapshot_bytes_per_round\": {:.0},\n  \
         \"delta_snapshot_bytes_per_round\": {:.0},\n  \
         \"snapshot_bytes_reduction\": {:.2},\n  \
         \"full_snapshot_allocs\": {},\n  \"delta_snapshot_allocs\": {},\n  \
         \"full_wall_seconds\": {:.3},\n  \"delta_wall_seconds\": {:.3},\n  \
         \"best_cost\": {:.4}\n}}\n",
        full.bytes_per_round,
        delta.bytes_per_round,
        reduction,
        full.allocs,
        delta.allocs,
        full.wall_seconds,
        delta.wall_seconds,
        full.best_cost,
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("[baseline] wrote {}", path.display()),
        Err(e) => eprintln!("[baseline] failed to write {}: {e}", path.display()),
    }
}

/// Compare a fresh wire run against the committed baseline. Returns
/// `false` (and prints why) on regression.
fn check_baseline(delta: &WireRun, reduction: f64) -> bool {
    let path = baseline_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[wire-check] cannot read {}: {e}", path.display());
            return false;
        }
    };
    let committed = match json_number(&text, "delta_snapshot_bytes_per_round") {
        Some(v) => v,
        None => {
            eprintln!("[wire-check] baseline is missing delta_snapshot_bytes_per_round");
            return false;
        }
    };
    let mut ok = true;
    let limit = committed * 1.10;
    if delta.bytes_per_round > limit {
        eprintln!(
            "[wire-check] REGRESSION: delta per-round snapshot bytes {:.0} exceed committed \
             {committed:.0} by more than 10% (limit {limit:.0})",
            delta.bytes_per_round
        );
        ok = false;
    } else {
        println!(
            "[wire-check] delta per-round snapshot bytes {:.0} within 10% of committed {committed:.0}",
            delta.bytes_per_round
        );
    }
    if reduction < 5.0 {
        eprintln!("[wire-check] REGRESSION: delta/full reduction {reduction:.2}x fell below 5x");
        ok = false;
    } else {
        println!("[wire-check] delta/full reduction {reduction:.2}x (>= 5x required)");
    }
    ok
}

fn main() {
    // The proc rows spawn worker ranks by re-entering this binary.
    pts_core::proc::maybe_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let wire_check = args.iter().any(|a| a == "--wire-check");
    let wire_write = args.iter().any(|a| a == "--wire-only");

    if !wire_check && !wire_write {
        run_engine_table();
    }

    // One instance for the whole wire section: the vt report row must
    // measure the exact regime the gated pair (and BENCH_wire.json)
    // measures, not a same-constants reconstruction that could drift.
    let wire_domain = QapDomain::random(WIRE_QAP_N, 17);
    let (delta, full, reduction) = measure_wire(&wire_domain);
    report_wire_vt(&wire_domain);
    if wire_check {
        if !check_baseline(&delta, reduction) {
            std::process::exit(1);
        }
    } else if wire_write {
        // Only an explicit --wire-only rewrites the committed baseline —
        // a plain table run must never silently re-anchor the CI gate.
        write_baseline(&delta, &full, reduction);
    } else {
        println!(
            "(committed baseline untouched: rewrite deliberately with --wire-only, \
             compare with --wire-check)"
        );
    }
}

fn run_engine_table() {
    let full_profile = std::env::var("PTS_FULL").map(|v| v == "1").unwrap_or(false);
    println!("== Engine comparison: sim vs threads vs async vs vt vs proc, flat vs sharded, at n_tsw = 4, 64, 1024 ==\n");

    // One QAP instance for the whole sweep; workers outnumber facilities
    // at the top end (ranges wrap), so streams are differentiated.
    let domain = QapDomain::random(64, 17);

    let mut table = Table::new([
        "n_tsw",
        "engine",
        "master",
        "best cost",
        "host wall s",
        "messages",
        "root msgs",
        "wire MB",
        "snap allocs",
        "logical procs",
    ]);
    let mut csv = CsvWriter::new([
        "n_tsw",
        "engine",
        "master",
        "best_cost",
        "wall_seconds",
        "messages",
        "root_messages",
        "wire_mb",
        "snapshot_allocs",
        "procs",
    ]);

    for &n_tsw in &[4usize, 64, 1024] {
        // Fan-out sqrt(n_tsw): one level of sub-masters, root degree ==
        // fan-out. 0 = the flat single-master baseline. Clamped to >= 2
        // (a fan-out of 1 is rejected at validation) in case the sweep
        // ever gains a tiny point.
        let fanout = ((n_tsw as f64).sqrt().round() as usize).max(2);
        let proc_engine = ProcEngine::from_current_exe().expect("own path resolvable");
        let engines: [(&str, &dyn ExecutionEngine<QapDomain>); 5] = [
            ("sim", &SimEngine::paper()),
            ("threads", &ThreadEngine),
            ("async", &AsyncEngine::new()),
            ("vt", &VirtualEngine::paper()),
            // One OS process per rank over a socket star: the real
            // cross-process deployment the wire codec exists for.
            ("proc", &proc_engine),
        ];
        for (name, engine) in engines {
            for shard_fanout in [0usize, fanout] {
                let sharded = shard_fanout != 0 && shard_fanout < n_tsw;
                if shard_fanout != 0 && !sharded {
                    continue; // fan-out covers all TSWs: identical to flat
                }
                let master = if sharded {
                    format!("shard/{shard_fanout}")
                } else {
                    "flat".to_string()
                };
                let run = builder(n_tsw)
                    .shard_fanout(shard_fanout)
                    .build()
                    .expect("sweep configs are valid");
                // Thread-per-process engines at 1024 TSWs ask the OS for
                // 2049+ threads; keep that behind the full profile. The
                // sharded run is the async engine's headline, so the
                // thread-backed engines only run it under PTS_FULL too.
                let single_threaded = name == "async" || name == "vt";
                let skip = (n_tsw >= 1024 || sharded) && !single_threaded && !full_profile;
                if skip {
                    table.row([
                        n_tsw.to_string(),
                        name.to_string(),
                        master.clone(),
                        "- (PTS_FULL=1)".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        run.config().total_procs().to_string(),
                    ]);
                    // Keep the CSV row-complete: downstream plots must see
                    // "skipped", not a silently missing series.
                    csv.row([
                        n_tsw.to_string(),
                        name.to_string(),
                        master,
                        "skipped".to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        "skipped".to_string(),
                        run.config().total_procs().to_string(),
                    ]);
                    continue;
                }
                let _ = take_snapshot_meter(); // drain
                let out = run.execute(&domain, engine);
                let meter = take_snapshot_meter();
                let root = &out.report.per_proc[0];
                let root_msgs = root.messages_sent + root.messages_received;
                let wire_mb = out.report.total_bytes() as f64 / 1e6;
                table.row([
                    n_tsw.to_string(),
                    name.to_string(),
                    master.clone(),
                    fmt_f64(out.outcome.best_cost),
                    format!("{:.3}", out.report.wall_seconds),
                    out.report.total_messages().to_string(),
                    root_msgs.to_string(),
                    format!("{wire_mb:.2}"),
                    meter.allocs.to_string(),
                    out.report.num_procs().to_string(),
                ]);
                csv.row([
                    n_tsw.to_string(),
                    name.to_string(),
                    master,
                    fmt_f64(out.outcome.best_cost),
                    format!("{:.4}", out.report.wall_seconds),
                    out.report.total_messages().to_string(),
                    root_msgs.to_string(),
                    format!("{wire_mb:.4}"),
                    meter.allocs.to_string(),
                    out.report.num_procs().to_string(),
                ]);
            }
        }
    }

    emit("engine_compare", &table, &csv);
    println!("\n(sim/threads/proc at n_tsw = 1024 and all sharded sim/threads/proc rows run only with PTS_FULL=1 — proc at 1024 means 2049 OS processes.)");
    println!("(root msgs: rank-0 sent+received — O(n_tsw) flat, O(fan-out) sharded.)");
    println!("(wire MB / snap allocs: simulated traffic and full-solution materializations — both drop under the default delta snapshot mode; see BENCH_wire.json.)\n");
}
