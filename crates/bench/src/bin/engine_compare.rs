//! Engine comparison — the three execution substrates at growing worker
//! counts.
//!
//! Not a paper figure: the paper had one substrate (a twelve-workstation
//! PVM cluster). This harness measures what each of our engines costs as
//! `n_tsw` scales through 4 → 64 → 1024 on one host:
//!
//! * `sim` and `threads` spend one OS thread per logical process — at
//!   `n_tsw = 1024` that is 2049 threads, which is where hosts start to
//!   push back (and why they only run that point under `PTS_FULL=1`);
//! * `async` multiplexes all logical processes on the calling thread and
//!   runs every point.
//!
//! The search itself is identical protocol code on all three, so best
//! cost should be comparable across engines at each size while host cost
//! (wall seconds) diverges sharply.

use pts_bench::emit;
use pts_core::{AsyncEngine, ExecutionEngine, Pts, QapDomain, SimEngine, ThreadEngine};
use pts_util::csv::CsvWriter;
use pts_util::table::{fmt_f64, Table};

fn main() {
    let full = std::env::var("PTS_FULL").map(|v| v == "1").unwrap_or(false);
    println!("== Engine comparison: sim vs threads vs async at n_tsw = 4, 64, 1024 ==\n");

    // One QAP instance for the whole sweep; workers outnumber facilities
    // at the top end (ranges wrap), so streams are differentiated.
    let domain = QapDomain::random(64, 17);

    let mut table = Table::new([
        "n_tsw",
        "engine",
        "best cost",
        "host wall s",
        "messages",
        "logical procs",
    ]);
    let mut csv = CsvWriter::new([
        "n_tsw",
        "engine",
        "best_cost",
        "wall_seconds",
        "messages",
        "procs",
    ]);

    for &n_tsw in &[4usize, 64, 1024] {
        let run = Pts::builder()
            .tsw_workers(n_tsw)
            .clw_workers(1)
            .global_iters(2)
            .local_iters(3)
            .candidates(5)
            .depth(2)
            .differentiate_streams(true)
            .seed(0xC0FFEE)
            .build()
            .expect("sweep configs are valid");
        let engines: [(&str, &dyn ExecutionEngine<QapDomain>); 3] = [
            ("sim", &SimEngine::paper()),
            ("threads", &ThreadEngine),
            ("async", &AsyncEngine::new()),
        ];
        for (name, engine) in engines {
            // Thread-per-process engines at 1024 TSWs ask the OS for 2049
            // threads; keep that behind the full profile.
            if n_tsw >= 1024 && name != "async" && !full {
                table.row([
                    n_tsw.to_string(),
                    name.to_string(),
                    "- (PTS_FULL=1)".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    run.config().total_procs().to_string(),
                ]);
                // Keep the CSV row-complete: downstream plots must see
                // "skipped", not a silently missing series.
                csv.row([
                    n_tsw.to_string(),
                    name.to_string(),
                    "skipped".to_string(),
                    "skipped".to_string(),
                    "skipped".to_string(),
                    run.config().total_procs().to_string(),
                ]);
                continue;
            }
            let out = run.execute(&domain, engine);
            table.row([
                n_tsw.to_string(),
                name.to_string(),
                fmt_f64(out.outcome.best_cost),
                format!("{:.3}", out.report.wall_seconds),
                out.report.total_messages().to_string(),
                out.report.num_procs().to_string(),
            ]);
            csv.row([
                n_tsw.to_string(),
                name.to_string(),
                fmt_f64(out.outcome.best_cost),
                format!("{:.4}", out.report.wall_seconds),
                out.report.total_messages().to_string(),
                out.report.num_procs().to_string(),
            ]);
        }
    }

    emit("engine_compare", &table, &csv);
    println!("\n(sim/threads at n_tsw = 1024 run only with PTS_FULL=1: 2049 OS threads.)");
}
