//! Figure 8 — Speedup in reaching a target quality vs number of TSWs.
//!
//! Paper setup: TSWs 1..=8, CLWs = 1, two circuits (c532 and c3540 in the
//! paper). Speedups are seed-averaged (geometric mean). Expected shape:
//! speedup peaks around 4 TSWs ("the critical point occurred at 4 TSWs;
//! adding more TSWs degraded the speedup").

use pts_bench::{averaged_speedup_sweep, base_config, circuit, emit, fmt_opt, seeds, Profile};
use pts_util::csv::CsvWriter;
use pts_util::table::Table;

fn main() {
    let profile = Profile::from_env();
    println!("== Figure 8: speedup to reach quality x vs number of TSWs (CLWs = 1) ==\n");

    let circuits: Vec<&str> = match profile {
        Profile::Quick => vec!["c532", "c1355"],
        Profile::Full => vec!["c532", "c3540"],
    };
    let seed_list = seeds(profile);

    let mut table = Table::new([
        "circuit",
        "TSWs",
        "mean t(n,x)",
        "speedup (geo mean)",
        "seeds",
    ]);
    let mut csv = CsvWriter::new(["circuit", "tsws", "mean_time_to_x", "speedup", "samples"]);

    for name in circuits {
        let netlist = circuit(name);
        let base = {
            let mut b = base_config(profile);
            b.n_clw = 1;
            b
        };
        let ns: Vec<usize> = (1..=8).collect();
        let points = averaged_speedup_sweep(&netlist, &base, &ns, &seed_list, |cfg, n| {
            cfg.n_tsw = n;
        });
        for p in points {
            table.row([
                name.to_string(),
                p.n.to_string(),
                fmt_opt(p.mean_time),
                fmt_opt(p.speedup),
                p.samples.to_string(),
            ]);
            csv.row([
                name.to_string(),
                p.n.to_string(),
                fmt_opt(p.mean_time),
                fmt_opt(p.speedup),
                p.samples.to_string(),
            ]);
        }
    }
    emit("fig8_tsw_speedup", &table, &csv);
    println!("\nPaper shape to check: speedup peaks near 4 TSWs, then degrades.");
}
