//! Figure 11 — Best cost versus runtime: heterogeneous vs homogeneous runs.
//!
//! Paper setup: 4 TSWs × 4 CLWs on the twelve-machine cluster (7 fast /
//! 3 medium / 2 slow). The *heterogeneous* run uses the half-report policy
//! (parents force stragglers once half their children have reported); the
//! *homogeneous* run waits for all children. Same global iteration count.
//! Expected shape: the heterogeneous run finishes in much less (virtual)
//! time and "is doing either better than or at least as good as the
//! homogeneous run, but never performs worse" toward the end.

use pts_bench::{base_config, circuit, emit, run_on_paper_cluster, Profile};
use pts_core::SyncPolicy;
use pts_util::csv::CsvWriter;
use pts_util::table::Table;

fn main() {
    let profile = Profile::from_env();
    println!("== Figure 11: best cost vs runtime, half-report vs wait-all (4 TSW x 4 CLW) ==\n");

    let mut table = Table::new([
        "circuit",
        "policy",
        "end time [vsec]",
        "final best",
        "forced reports",
    ]);
    let mut csv = CsvWriter::new(["circuit", "policy", "time", "best_cost"]);

    for name in profile.circuits() {
        let netlist = circuit(name);
        for (label, sync) in [
            ("heterogeneous", SyncPolicy::HalfReport),
            ("homogeneous", SyncPolicy::WaitAll),
        ] {
            let mut cfg = base_config(profile);
            cfg.n_tsw = 4;
            cfg.n_clw = 4;
            cfg.tsw_sync = sync;
            cfg.clw_sync = sync;
            let out = run_on_paper_cluster(&cfg, netlist.clone());
            let o = &out.outcome;
            table.row([
                name.to_string(),
                label.to_string(),
                format!("{:.2}", o.end_time),
                format!("{:.4}", o.best_cost),
                o.forced_reports.to_string(),
            ]);
            // Full trace for the figure's curve.
            for p in o.trace.points() {
                csv.row([
                    name.to_string(),
                    label.to_string(),
                    p.time.to_string(),
                    p.best_cost.to_string(),
                ]);
            }
        }
        println!();
    }
    emit("fig11_heterogeneity", &table, &csv);
    println!(
        "\nPaper shape to check: half-report ends far earlier at equal-or-\n\
         better cost; near the end of the run its curve is never above the\n\
         wait-all curve."
    );
}
