//! Candidate-kernel microbenchmark — scalar vs batched trial evaluation.
//!
//! Prints ns/trial for the scalar path (`trial_cost` per candidate) and
//! the batched path (`trial_costs` over the whole list) across problem
//! sizes and candidate-list lengths, plus the speedup ratio. The batched
//! kernel is bit-identical to scalar by contract (see
//! `tests/batch_kernel.rs`); this binary shows what the row-hoisted walk
//! buys in time. The QAP-256 / batch-32 point is the one
//! `engine_compare --time-check` gates through `BENCH_time.json`.
//!
//! Run in release mode — debug timings are meaningless:
//! `cargo run --release -p pts-bench --bin kernel_bench`

use pts_bench::emit;
use pts_bench::kernel::bench_qap_kernel;
use pts_util::csv::CsvWriter;
use pts_util::table::Table;

fn main() {
    println!("== QAP candidate kernel: scalar trial_cost vs batched trial_costs ==\n");
    let mut table = Table::new([
        "qap n",
        "batch",
        "scalar ns/trial",
        "batched ns/trial",
        "speedup",
    ]);
    let mut csv = CsvWriter::new([
        "qap_n",
        "batch",
        "scalar_ns_per_trial",
        "batched_ns_per_trial",
        "speedup",
    ]);
    for &n in &[64usize, 256, 1024] {
        for &batch in &[4usize, 32, 256] {
            // Round count scaled down with problem size to keep the
            // whole sweep a few seconds.
            let rounds = (2_000_000 / (n * batch)).clamp(20, 4000);
            let b = bench_qap_kernel(n, batch, rounds, 17);
            table.row([
                n.to_string(),
                batch.to_string(),
                format!("{:.1}", b.scalar_ns_per_trial),
                format!("{:.1}", b.batched_ns_per_trial),
                format!("{:.2}x", b.speedup()),
            ]);
            csv.row([
                n.to_string(),
                batch.to_string(),
                format!("{:.2}", b.scalar_ns_per_trial),
                format!("{:.2}", b.batched_ns_per_trial),
                format!("{:.3}", b.speedup()),
            ]);
        }
    }
    emit("kernel_bench", &table, &csv);
    println!("(both paths are bit-identical by contract; the gated point is QAP-256 in BENCH_time.json.)");
}
