//! Ablation (beyond the paper): what actually differentiates the parallel
//! searches?
//!
//! The paper's design is MPSS — all TSWs run the *same* strategy and are
//! told apart only by the diversification step over private cell ranges.
//! A natural modern alternative gives every worker an independent RNG
//! stream. This harness compares four corners:
//!
//! | streams      | diversification | corresponds to |
//! |--------------|-----------------|----------------|
//! | shared       | on              | the paper (MPSS) |
//! | shared       | off             | the paper's Fig. 9 baseline |
//! | independent  | on              | extension |
//! | independent  | off             | extension (implicit differentiation) |

use pts_bench::{base_config, circuit, emit, mean_best_cost, seeds, Profile};
use pts_util::csv::CsvWriter;
use pts_util::table::Table;

fn main() {
    let profile = Profile::from_env();
    println!("== Ablation: search differentiation — RNG streams vs diversification ==\n");

    let seed_list = seeds(profile);
    let mut table = Table::new(["circuit", "streams", "diversify", "mean best cost"]);
    let mut csv = CsvWriter::new(["circuit", "streams", "diversify", "mean_best_cost"]);

    for name in profile.circuits() {
        let netlist = circuit(name);
        for (streams_label, differentiate) in [("shared", false), ("independent", true)] {
            for diversify in [true, false] {
                let mut cfg = base_config(profile);
                cfg.n_tsw = 4;
                cfg.n_clw = 1;
                cfg.differentiate_streams = differentiate;
                cfg.diversify = diversify;
                let mean = mean_best_cost(&cfg, &netlist, &seed_list);
                table.row([
                    name.to_string(),
                    streams_label.to_string(),
                    diversify.to_string(),
                    format!("{mean:.4}"),
                ]);
                csv.row([
                    name.to_string(),
                    streams_label.to_string(),
                    diversify.to_string(),
                    mean.to_string(),
                ]);
            }
        }
    }
    emit("ablation_streams", &table, &csv);
    println!(
        "\nReading: with shared streams (the paper's MPSS), diversification\n\
         is what makes multiple TSWs pay off (Fig. 9's message). Independent\n\
         streams differentiate implicitly and weaken that contrast."
    );
}
