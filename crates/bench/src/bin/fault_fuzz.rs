//! Seeded adversarial fault fuzzer for the vt engine (release-mode CI
//! sweep; the small always-on corpus lives in `tests/fault_scenarios.rs`).
//!
//! Sweeps `seeds × fault mixes × sync policies` small scenarios plus a
//! thousand-TSW sharded scenario per sync policy, all on one OS thread,
//! and asserts the fault invariants on every run:
//!
//! * the run terminates and the master deposits an outcome;
//! * the best cost is finite, no worse than the initial solution, and its
//!   snapshot re-evaluates to the reported cost;
//! * the per-round best trajectory never worsens;
//! * panics anywhere in the protocol are caught and reported as failures.
//!
//! Every violation prints one `FAULT-REPRO:` line carrying the complete
//! scenario coordinates — seed, mix, shape, sync, machines, horizon —
//! which rebuilds the identical run, bit for bit.
//!
//! Environment knobs: `FUZZ_SEEDS` (seeds per mix, default 100),
//! `FUZZ_LARGE` (`0` skips the n_tsw=1024 scenarios).

use pts_core::qap_domain::QapDomain;
use pts_core::{EngineOutput, FaultMix, FaultSpec, Pts, PtsRun, SyncPolicy, VirtualEngine};
use pts_vcluster::{ClusterSpec, LinkModel, LoadModel, Machine};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Paper-proportioned heterogeneous cluster (mirrors the integration
/// suites' `scaled_paper_cluster`, which lives outside this crate).
fn het_cluster(n: usize) -> ClusterSpec {
    let fast_end = (7 * n / 12).max(1);
    let medium_end = (10 * n / 12).max(fast_end + 1);
    let machines = (0..n)
        .map(|i| {
            if i < fast_end {
                Machine::new(format!("fast{i}"), 1.0)
            } else if i < medium_end {
                Machine::new(format!("medium{}", i - fast_end), 0.6)
            } else {
                Machine::new(format!("slow{}", i - medium_end), 0.35).with_load(
                    LoadModel::Periodic {
                        period: 20.0,
                        duty: 0.4,
                        busy_factor: 0.5,
                    },
                )
            }
        })
        .collect();
    ClusterSpec::new(machines, LinkModel::default())
}

struct Scenario {
    seed: u64,
    mix: FaultMix,
    sync: SyncPolicy,
    n_tsw: usize,
    n_clw: usize,
    machines: usize,
    horizon: f64,
    liveness: f64,
    sharded: bool,
}

impl Scenario {
    fn repro(&self) -> String {
        format!(
            "FAULT-REPRO: seed={:#x} mix={} n_tsw={} n_clw={} sync={:?} machines={} \
             horizon={} liveness={} sharded={}",
            self.seed,
            self.mix,
            self.n_tsw,
            self.n_clw,
            self.sync,
            self.machines,
            self.horizon,
            self.liveness,
            self.sharded,
        )
    }

    fn build_run(&self) -> PtsRun {
        let mut b = Pts::builder()
            .tsw_workers(self.n_tsw)
            .clw_workers(self.n_clw)
            .global_iters(2)
            .local_iters(2)
            .candidates(3)
            .depth(2)
            .sync(self.sync)
            .seed(self.seed ^ 0xF00D)
            .liveness_timeout(self.liveness);
        if self.sharded {
            b = b.shard_fanout_auto();
        }
        b.build().expect("valid fuzz configuration")
    }

    /// Execute and check invariants; returns an error string on any
    /// violation (panics included).
    fn check(&self, domain: &QapDomain) -> Result<(), String> {
        let run = self.build_run();
        let spec = FaultSpec::seeded(
            self.seed,
            self.mix,
            run.config(),
            self.machines,
            self.horizon,
        );
        let engine = VirtualEngine::new(het_cluster(self.machines)).with_faults(spec);
        let out: EngineOutput<QapDomain> =
            match catch_unwind(AssertUnwindSafe(|| run.execute(domain, &engine))) {
                Ok(out) => out,
                Err(p) => {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic".into());
                    return Err(format!("panicked: {msg}"));
                }
            };
        let o = &out.outcome;
        if !o.best_cost.is_finite() {
            return Err(format!("best cost not finite: {}", o.best_cost));
        }
        if o.best_cost > o.initial_cost {
            return Err(format!(
                "best {} worse than initial {}",
                o.best_cost, o.initial_cost
            ));
        }
        if o.best_per_global_iter.windows(2).any(|w| w[1] > w[0]) {
            return Err(format!(
                "best-per-iteration worsened: {:?}",
                o.best_per_global_iter
            ));
        }
        if let Some(&last) = o.best_per_global_iter.last() {
            if last != o.best_cost {
                return Err(format!("trajectory end {last} != best {}", o.best_cost));
            }
        }
        let recomputed = pts_core::PtsDomain::instantiate(domain, &o.best);
        let recomputed = pts_tabu::SearchProblem::cost(&recomputed);
        if (recomputed - o.best_cost).abs() > 1e-6 * o.best_cost.abs().max(1.0) {
            return Err(format!(
                "best snapshot re-evaluates to {recomputed}, reported {}",
                o.best_cost
            ));
        }
        if !(out.report.end_time.is_finite() && out.report.end_time > 0.0) {
            return Err(format!("bad end time {}", out.report.end_time));
        }
        Ok(())
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_seeds = env_u64("FUZZ_SEEDS", 100);
    let run_large = env_u64("FUZZ_LARGE", 1) != 0;
    let domain = QapDomain::random(12, 3);
    let started = std::time::Instant::now();

    let mut ran = 0usize;
    let mut failures: Vec<String> = Vec::new();
    let mut check = |s: &Scenario, domain: &QapDomain| {
        ran += 1;
        if let Err(why) = s.check(domain) {
            eprintln!("{}\n  -> {}", s.repro(), why);
            failures.push(s.repro());
        }
    };

    // Small-shape sweep: every mix × sync, n_seeds seeds each.
    for mix in FaultMix::ALL {
        for seed in 0..n_seeds {
            for sync in [SyncPolicy::WaitAll, SyncPolicy::HalfReport] {
                let s = Scenario {
                    seed,
                    mix,
                    sync,
                    n_tsw: 3,
                    n_clw: 2,
                    machines: 6,
                    horizon: 300.0,
                    liveness: 80.0,
                    sharded: false,
                };
                check(&s, &domain);
            }
        }
    }

    // Thousand-TSW sharded scenarios: one Mixed run per sync policy on a
    // 48-machine cluster — the scale where the sub-master tree, death
    // notices, and liveness timeouts all interact.
    if run_large {
        let large_domain = QapDomain::random(64, 7);
        for sync in [SyncPolicy::WaitAll, SyncPolicy::HalfReport] {
            let s = Scenario {
                seed: 0x1024,
                mix: FaultMix::Mixed,
                sync,
                n_tsw: 1024,
                n_clw: 1,
                machines: 48,
                horizon: 200.0,
                liveness: 60.0,
                sharded: true,
            };
            check(&s, &large_domain);
        }
    }

    println!(
        "fault-fuzz: {ran} scenarios, {} failures, {:.1}s",
        failures.len(),
        started.elapsed().as_secs_f64()
    );
    if !failures.is_empty() {
        eprintln!("failing scenarios:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
