//! Property tests for the tabu search engine over randomized QAP
//! instances and configurations.

use proptest::prelude::*;
use pts_tabu::aspiration::Aspiration;
use pts_tabu::qap::Qap;
use pts_tabu::search::{TabuPolicy, TabuSearch, TabuSearchConfig};
use pts_tabu::SearchProblem;

fn arb_config() -> impl Strategy<Value = TabuSearchConfig> {
    (
        0u64..30,      // tenure
        1usize..12,    // candidates
        1usize..5,     // depth
        10u64..120,    // iterations
        any::<bool>(), // early accept
        any::<bool>(), // aspiration on/off
        any::<bool>(), // tabu policy
        0u64..10_000,  // seed
    )
        .prop_map(
            |(tenure, candidates, depth, iterations, early, asp, policy, seed)| TabuSearchConfig {
                tenure,
                candidates,
                depth,
                iterations,
                aspiration: if asp {
                    Aspiration::BestCost
                } else {
                    Aspiration::None
                },
                early_accept: early,
                range: None,
                tabu_policy: if policy {
                    TabuPolicy::AnyConstituent
                } else {
                    TabuPolicy::FirstMoveOnly
                },
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_invariants_hold(cfg in arb_config(), n in 6usize..20, qseed in 0u64..500) {
        let mut qap = Qap::random(n, qseed);
        let start = qap.cost();
        let result = TabuSearch::new(cfg).run(&mut qap);

        // Accounting adds up.
        prop_assert_eq!(result.stats.iterations, cfg.iterations);
        prop_assert_eq!(
            result.stats.accepted + result.stats.rejected_tabu,
            cfg.iterations
        );
        prop_assert!(result.stats.aspirated <= result.stats.accepted);

        // Best never exceeds the start and matches the trace.
        prop_assert!(result.best_cost <= start + 1e-9);
        if let Some(trace_best) = result.trace.best_cost() {
            prop_assert!((trace_best - result.best_cost).abs() < 1e-9);
        }

        // Trace is strictly improving and time-ordered.
        for w in result.trace.points().windows(2) {
            prop_assert!(w[1].best_cost < w[0].best_cost);
            prop_assert!(w[1].time >= w[0].time);
            prop_assert!(w[1].iter >= w[0].iter);
        }

        // The problem ends restored to the best solution.
        prop_assert!((qap.cost() - result.best_cost).abs() < 1e-6);

        // Aspiration::None means no aspirated acceptances.
        if cfg.aspiration == Aspiration::None {
            prop_assert_eq!(result.stats.aspirated, 0);
        }
    }

    #[test]
    fn restricted_range_only_anchors_inside(
        n in 8usize..20,
        qseed in 0u64..100,
        lo_frac in 0.0f64..0.5,
    ) {
        let lo = (n as f64 * lo_frac) as usize;
        let hi = (lo + n / 3).min(n).max(lo + 1);
        let mut qap = Qap::random(n, qseed);
        let mut rng = pts_util::Rng::new(qseed ^ 77);
        for _ in 0..100 {
            let (a, _) = qap.sample_move(&mut rng, Some((lo, hi)));
            prop_assert!((lo..hi).contains(&a));
        }
    }

    #[test]
    fn zero_tenure_never_rejects(n in 6usize..14, qseed in 0u64..100) {
        let cfg = TabuSearchConfig {
            tenure: 0,
            iterations: 60,
            aspiration: Aspiration::None,
            seed: qseed,
            ..TabuSearchConfig::default()
        };
        let mut qap = Qap::random(n, qseed);
        let result = TabuSearch::new(cfg).run(&mut qap);
        prop_assert_eq!(result.stats.rejected_tabu, 0);
    }
}
