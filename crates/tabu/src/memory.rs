//! Long-term memory: move-attribute frequencies.
//!
//! Counts how often each attribute participated in accepted moves. The
//! diversification step biases toward rarely-moved items, pushing each
//! worker into genuinely new regions (Kelly, Laguna & Glover, 1994).

use std::collections::HashMap;
use std::hash::Hash;

/// Frequency counts over move attributes.
#[derive(Clone, Debug, Default)]
pub struct FrequencyMemory<A: Eq + Hash + Clone> {
    counts: HashMap<A, u64>,
    total: u64,
}

impl<A: Eq + Hash + Clone> FrequencyMemory<A> {
    pub fn new() -> Self {
        FrequencyMemory {
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Record one occurrence of an attribute.
    pub fn record(&mut self, attr: A) {
        *self.counts.entry(attr).or_insert(0) += 1;
        self.total += 1;
    }

    /// Raw count for an attribute.
    pub fn count(&self, attr: &A) -> u64 {
        self.counts.get(attr).copied().unwrap_or(0)
    }

    /// Total recordings.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized frequency in `[0, 1]`.
    pub fn frequency(&self, attr: &A) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(attr) as f64 / self.total as f64
        }
    }

    /// Penalty for diversification: proportional to how often the attribute
    /// has been used (frequently-moved items are discouraged).
    pub fn penalty(&self, attr: &A, weight: f64) -> f64 {
        weight * self.frequency(attr)
    }

    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut m: FrequencyMemory<u32> = FrequencyMemory::new();
        m.record(1);
        m.record(1);
        m.record(2);
        assert_eq!(m.count(&1), 2);
        assert_eq!(m.count(&2), 1);
        assert_eq!(m.count(&3), 0);
        assert_eq!(m.total(), 3);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn frequency_normalized() {
        let mut m: FrequencyMemory<u32> = FrequencyMemory::new();
        for _ in 0..3 {
            m.record(1);
        }
        m.record(2);
        assert!((m.frequency(&1) - 0.75).abs() < 1e-12);
        assert!((m.frequency(&2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_memory_has_zero_frequency() {
        let m: FrequencyMemory<u32> = FrequencyMemory::new();
        assert_eq!(m.frequency(&9), 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn penalty_scales_with_weight() {
        let mut m: FrequencyMemory<u32> = FrequencyMemory::new();
        m.record(1);
        assert!((m.penalty(&1, 2.0) - 2.0).abs() < 1e-12);
        assert_eq!(m.penalty(&2, 2.0), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut m: FrequencyMemory<u32> = FrequencyMemory::new();
        m.record(1);
        m.clear();
        assert_eq!(m.total(), 0);
        assert_eq!(m.count(&1), 0);
    }
}
