//! Compound moves: chains of up to `d` elementary moves.
//!
//! The paper's candidate-list worker "makes a compound move of a
//! predetermined depth and keeps computing the gain. If the current cost is
//! improved before reaching the maximum depth, the move is accepted without
//! further investigation. After finding the compound move that improves the
//! cost the most or degrades it the least", it reports its best solution.
//!
//! [`build_compound`] reproduces that: greedily chain best-of-`m` moves up
//! to depth `d`, stop early on improvement over the starting cost, and keep
//! only the best prefix of the chain.

use crate::candidate::{CandidateList, CandidateScratch};
use crate::problem::SearchProblem;
use pts_util::Rng;

/// A chain of moves with the cost reached at its end.
#[derive(Clone, Debug)]
pub struct CompoundMove<M> {
    /// Elementary moves in application order (possibly empty).
    pub moves: Vec<M>,
    /// Cost after applying all `moves` from the starting state.
    pub cost: f64,
    /// Cost of the starting state, for gain computation.
    pub start_cost: f64,
}

impl<M> CompoundMove<M> {
    /// Negative gain = improvement.
    pub fn gain(&self) -> f64 {
        self.cost - self.start_cost
    }

    pub fn is_improving(&self) -> bool {
        self.cost < self.start_cost
    }

    pub fn depth(&self) -> usize {
        self.moves.len()
    }
}

/// Build a compound move. On return the problem state has the chosen prefix
/// **applied**; use [`undo_compound`] to roll back.
///
/// * `m` — candidates sampled per elementary step,
/// * `depth` — maximum chain length (>= 1),
/// * `early_accept` — stop as soon as the chain improves on the start cost
///   (the paper's behaviour).
pub fn build_compound<P: SearchProblem>(
    problem: &mut P,
    rng: &mut Rng,
    range: Option<(usize, usize)>,
    m: usize,
    depth: usize,
    early_accept: bool,
) -> CompoundMove<P::Move> {
    let mut scratch = CandidateScratch::new();
    build_compound_with(problem, rng, range, m, depth, early_accept, &mut scratch)
}

/// [`build_compound`] with a caller-owned candidate scratch, so a search
/// loop building many compound moves reuses one set of batch buffers
/// instead of allocating per elementary step.
#[allow(clippy::too_many_arguments)]
pub fn build_compound_with<P: SearchProblem>(
    problem: &mut P,
    rng: &mut Rng,
    range: Option<(usize, usize)>,
    m: usize,
    depth: usize,
    early_accept: bool,
    scratch: &mut CandidateScratch<P::Move>,
) -> CompoundMove<P::Move> {
    assert!(depth >= 1, "compound depth must be at least 1");
    let sampler = CandidateList::new(m);
    let start_cost = problem.cost();

    let mut applied: Vec<P::Move> = Vec::with_capacity(depth);
    let mut cost_after: Vec<f64> = Vec::with_capacity(depth);
    for _ in 0..depth {
        let cand = sampler.sample_best_with(problem, rng, range, scratch);
        problem.apply(&cand.mv);
        applied.push(cand.mv);
        let c = problem.cost();
        cost_after.push(c);
        if early_accept && c < start_cost {
            break;
        }
    }

    // Best prefix: minimal cost; ties favour the shorter chain.
    let mut best_len = 0usize;
    let mut best_cost = start_cost;
    for (i, &c) in cost_after.iter().enumerate() {
        if c < best_cost {
            best_cost = c;
            best_len = i + 1;
        }
    }
    // The paper's CLW always proposes a move ("degrades it the least"):
    // if no prefix improves, keep the single least-bad elementary move
    // (total order, so a NaN-costed step cannot panic the worker; NaN
    // ranks above every real cost and is never picked against one).
    if best_len == 0 {
        let (idx, &c) = cost_after
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("depth >= 1");
        // Least-bad prefix is the one ending at the minimum cost.
        best_len = idx + 1;
        best_cost = c;
    }

    // Roll back moves beyond the chosen prefix.
    for mv in applied[best_len..].iter().rev() {
        problem.undo(mv);
    }
    applied.truncate(best_len);

    CompoundMove {
        moves: applied,
        cost: best_cost,
        start_cost,
    }
}

/// Undo a compound move previously applied (state returns to the start).
pub fn undo_compound<P: SearchProblem>(problem: &mut P, compound: &CompoundMove<P::Move>) {
    for mv in compound.moves.iter().rev() {
        problem.undo(mv);
    }
}

/// Re-apply a compound move (e.g. the one chosen among several workers').
pub fn apply_compound<P: SearchProblem>(problem: &mut P, compound: &CompoundMove<P::Move>) {
    for mv in &compound.moves {
        problem.apply(mv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap::Qap;

    #[test]
    fn state_matches_reported_cost() {
        let mut q = Qap::random(15, 7);
        let mut rng = Rng::new(1);
        for _ in 0..20 {
            let cm = build_compound(&mut q, &mut rng, None, 6, 4, true);
            assert!(
                (q.cost_exact() - cm.cost).abs() < 1e-6,
                "problem state must sit at the compound's end cost"
            );
            assert!(cm.depth() >= 1 && cm.depth() <= 4);
        }
    }

    #[test]
    fn undo_restores_start() {
        let mut q = Qap::random(15, 8);
        let mut rng = Rng::new(2);
        let before = q.snapshot_assignment();
        let start_cost = q.cost();
        let cm = build_compound(&mut q, &mut rng, None, 6, 4, false);
        undo_compound(&mut q, &cm);
        assert_eq!(q.snapshot_assignment(), before);
        assert!((q.cost() - start_cost).abs() < 1e-9);
    }

    #[test]
    fn apply_after_undo_reproduces_cost() {
        let mut q = Qap::random(12, 9);
        let mut rng = Rng::new(3);
        let cm = build_compound(&mut q, &mut rng, None, 5, 3, false);
        undo_compound(&mut q, &cm);
        apply_compound(&mut q, &cm);
        assert!((q.cost() - cm.cost).abs() < 1e-9);
    }

    #[test]
    fn early_accept_stops_on_improvement() {
        // With a large m on a random instance, the first best-of-m move
        // almost always improves; early accept should then stop at depth 1.
        let mut q = Qap::random(20, 10);
        let mut rng = Rng::new(4);
        let cm = build_compound(&mut q, &mut rng, None, 40, 5, true);
        if cm.is_improving() {
            assert_eq!(cm.depth(), 1, "early accept must cut the chain");
        }
    }

    #[test]
    fn best_prefix_never_worse_than_full_chain() {
        let mut q = Qap::random(15, 11);
        let mut rng = Rng::new(5);
        for _ in 0..10 {
            let cm = build_compound(&mut q, &mut rng, None, 3, 5, false);
            // The kept prefix cost can only be <= any longer chain cost we
            // discarded; in particular it is the state cost now.
            assert!((q.cost_exact() - cm.cost).abs() < 1e-6);
            undo_compound(&mut q, &cm);
        }
    }

    #[test]
    fn gain_sign_conventions() {
        let cm = CompoundMove::<u32> {
            moves: vec![],
            cost: 9.0,
            start_cost: 10.0,
        };
        assert!(cm.is_improving());
        assert!((cm.gain() + 1.0).abs() < 1e-12);
    }
}
