//! Candidate list construction: the subset `V*(s)` of the neighborhood the
//! search examines at each step.
//!
//! The paper's scheme samples `m` cell pairs per elementary move and takes
//! the best. Generalized here: sample `m` moves (optionally anchored in an
//! item range), trial-cost each, and rank.

use crate::problem::SearchProblem;
use pts_util::Rng;

/// A sampled move with its trial cost.
#[derive(Clone, Debug)]
pub struct Candidate<M> {
    pub mv: M,
    pub trial_cost: f64,
}

/// Reusable buffers for batched candidate sampling and evaluation.
///
/// The batched samplers fill `moves` via [`SearchProblem::sample_moves`]
/// and `costs` via [`SearchProblem::trial_costs`]; owning one scratch per
/// search loop (engine, CLW, compound builder) and threading it through
/// the `_with` samplers keeps the hot path free of per-step allocation.
/// The buffers are plain state — cloning an engine clones them, and stale
/// contents are overwritten (cleared) by every batch.
#[derive(Clone, Debug)]
pub struct CandidateScratch<M> {
    /// Sampled moves of the current batch.
    moves: Vec<M>,
    /// Trial costs, index-aligned with `moves`.
    costs: Vec<f64>,
}

impl<M> CandidateScratch<M> {
    /// Empty scratch; buffers grow to the candidate-list size on first use.
    pub fn new() -> CandidateScratch<M> {
        CandidateScratch {
            moves: Vec::new(),
            costs: Vec::new(),
        }
    }
}

impl<M> Default for CandidateScratch<M> {
    fn default() -> Self {
        CandidateScratch::new()
    }
}

/// Candidate list sampler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateList {
    /// Number of moves sampled per step (`m` in the paper).
    pub size: usize,
}

impl CandidateList {
    pub fn new(size: usize) -> CandidateList {
        assert!(size >= 1, "candidate list needs at least one entry");
        CandidateList { size }
    }

    /// Sample `size` moves and return them sorted by ascending trial cost.
    ///
    /// Convenience form of [`CandidateList::sample_sorted_with`] with a
    /// throwaway scratch; loops should hold their own scratch instead.
    pub fn sample_sorted<P: SearchProblem>(
        &self,
        problem: &mut P,
        rng: &mut Rng,
        range: Option<(usize, usize)>,
    ) -> Vec<Candidate<P::Move>> {
        let mut scratch = CandidateScratch::new();
        self.sample_sorted_with(problem, rng, range, &mut scratch)
    }

    /// Batched [`CandidateList::sample_sorted`]: one `sample_moves` +
    /// `trial_costs` round trip through `scratch`, then a stable sort by
    /// ascending trial cost ([`f64::total_cmp`], so a NaN-costed candidate
    /// ranks last instead of panicking mid-run).
    pub fn sample_sorted_with<P: SearchProblem>(
        &self,
        problem: &mut P,
        rng: &mut Rng,
        range: Option<(usize, usize)>,
        scratch: &mut CandidateScratch<P::Move>,
    ) -> Vec<Candidate<P::Move>> {
        problem.sample_moves(rng, range, self.size, &mut scratch.moves);
        problem.trial_costs(&scratch.moves, &mut scratch.costs);
        let mut out: Vec<Candidate<P::Move>> = scratch
            .moves
            .iter()
            .cloned()
            .zip(scratch.costs.iter().copied())
            .map(|(mv, trial_cost)| Candidate { mv, trial_cost })
            .collect();
        out.sort_by(|a, b| a.trial_cost.total_cmp(&b.trial_cost));
        out
    }

    /// Sample and return only the best move.
    ///
    /// Convenience form of [`CandidateList::sample_best_with`] with a
    /// throwaway scratch; loops should hold their own scratch instead.
    pub fn sample_best<P: SearchProblem>(
        &self,
        problem: &mut P,
        rng: &mut Rng,
        range: Option<(usize, usize)>,
    ) -> Candidate<P::Move> {
        let mut scratch = CandidateScratch::new();
        self.sample_best_with(problem, rng, range, &mut scratch)
    }

    /// Batched [`CandidateList::sample_best`]: the whole batch is sampled
    /// up front (`sample_moves` consumes exactly the scalar loop's RNG
    /// draws in the same order), trial-costed in one kernel call, and
    /// scanned for the first strict minimum — the same winner and
    /// tie-breaking as the one-at-a-time loop (earliest-sampled wins ties;
    /// a NaN cost never displaces an earlier candidate).
    pub fn sample_best_with<P: SearchProblem>(
        &self,
        problem: &mut P,
        rng: &mut Rng,
        range: Option<(usize, usize)>,
        scratch: &mut CandidateScratch<P::Move>,
    ) -> Candidate<P::Move> {
        problem.sample_moves(rng, range, self.size, &mut scratch.moves);
        problem.trial_costs(&scratch.moves, &mut scratch.costs);
        debug_assert_eq!(scratch.moves.len(), self.size);
        debug_assert_eq!(scratch.costs.len(), self.size);
        let mut best = 0;
        for i in 1..scratch.costs.len() {
            if scratch.costs[i] < scratch.costs[best] {
                best = i;
            }
        }
        Candidate {
            mv: scratch.moves[best].clone(),
            trial_cost: scratch.costs[best],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap::Qap;

    #[test]
    fn sorted_is_ascending() {
        let mut q = Qap::random(12, 3);
        let mut rng = Rng::new(1);
        let cl = CandidateList::new(8);
        let cands = cl.sample_sorted(&mut q, &mut rng, None);
        assert_eq!(cands.len(), 8);
        for w in cands.windows(2) {
            assert!(w[0].trial_cost <= w[1].trial_cost);
        }
    }

    #[test]
    fn best_matches_sorted_head() {
        let mut q = Qap::random(10, 4);
        let cl = CandidateList::new(6);
        // Same RNG stream ⇒ same sampled moves.
        let mut rng_a = Rng::new(9);
        let mut rng_b = Rng::new(9);
        let sorted = cl.sample_sorted(&mut q, &mut rng_a, None);
        let best = cl.sample_best(&mut q, &mut rng_b, None);
        assert!((best.trial_cost - sorted[0].trial_cost).abs() < 1e-9);
    }

    #[test]
    fn range_anchors_first_item() {
        let mut q = Qap::random(20, 5);
        let mut rng = Rng::new(2);
        let cl = CandidateList::new(16);
        let cands = cl.sample_sorted(&mut q, &mut rng, Some((0, 5)));
        for c in cands {
            let (a, _) = c.mv;
            assert!(a < 5, "anchored item must come from the range");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_list() {
        CandidateList::new(0);
    }

    #[test]
    fn batched_best_matches_scalar_reference_loop() {
        // The pre-batching reference semantics, inlined: sample one move at
        // a time, keep the first strict minimum.
        let mut q = Qap::random(18, 8);
        let cl = CandidateList::new(9);
        let mut rng_a = Rng::new(31);
        let mut rng_b = Rng::new(31);
        let mut scratch = CandidateScratch::new();
        for _ in 0..50 {
            let mut best: Option<Candidate<(usize, usize)>> = None;
            for _ in 0..cl.size {
                let mv = q.sample_move(&mut rng_a, Some((2, 11)));
                let trial_cost = q.trial_cost(&mv);
                if best.as_ref().is_none_or(|b| trial_cost < b.trial_cost) {
                    best = Some(Candidate { mv, trial_cost });
                }
            }
            let reference = best.unwrap();
            let batched = cl.sample_best_with(&mut q, &mut rng_b, Some((2, 11)), &mut scratch);
            assert_eq!(reference.mv, batched.mv, "winner diverged");
            assert_eq!(reference.trial_cost.to_bits(), batched.trial_cost.to_bits());
            // Both paths must leave the RNG streams aligned.
            q.apply(&batched.mv);
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
    }

    #[test]
    fn nan_costs_rank_last_without_panicking() {
        // A problem that costs one specific move as NaN: ranking must not
        // panic, and the NaN candidate must never win.
        struct NanProblem {
            q: Qap,
            poison: (usize, usize),
        }
        impl SearchProblem for NanProblem {
            type Move = (usize, usize);
            type Attribute = (u32, u32);
            type Snapshot = crate::qap::QapAssignment;
            fn cost(&self) -> f64 {
                self.q.cost()
            }
            fn domain_size(&self) -> usize {
                self.q.domain_size()
            }
            fn sample_move(&mut self, rng: &mut Rng, range: Option<(usize, usize)>) -> Self::Move {
                self.q.sample_move(rng, range)
            }
            fn trial_cost(&mut self, mv: &Self::Move) -> f64 {
                if *mv == self.poison {
                    f64::NAN
                } else {
                    self.q.trial_cost(mv)
                }
            }
            fn apply(&mut self, mv: &Self::Move) {
                self.q.apply(mv);
            }
            fn undo(&mut self, mv: &Self::Move) {
                self.q.undo(mv);
            }
            fn attributes(&self, mv: &Self::Move) -> crate::problem::AttrPair<Self::Attribute> {
                SearchProblem::attributes(&self.q, mv)
            }
            fn snapshot(&self) -> Self::Snapshot {
                self.q.snapshot()
            }
            fn restore(&mut self, snapshot: &Self::Snapshot) {
                self.q.restore(snapshot);
            }
        }
        let mut rng = Rng::new(12);
        let mut p = NanProblem {
            q: Qap::random(6, 2),
            poison: (0, 0),
        };
        // Find an actual samplable move to poison, then rank repeatedly.
        p.poison = p.q.sample_move(&mut rng, None);
        let cl = CandidateList::new(12);
        for _ in 0..20 {
            let sorted = cl.sample_sorted(&mut p, &mut rng, None);
            for w in sorted.windows(2) {
                assert!(w[0].trial_cost.total_cmp(&w[1].trial_cost).is_le());
            }
            if sorted.iter().any(|c| c.trial_cost.is_nan()) {
                assert!(
                    sorted.last().unwrap().trial_cost.is_nan(),
                    "NaN candidates must rank last"
                );
            }
            // Scalar first-wins semantics (preserved bit-for-bit by the
            // batched scan): a NaN in slot 0 is never displaced, because
            // `x < NaN` is false for every x. So the poisoned move may win
            // only when it was the *first* candidate sampled.
            let mut peek = rng.clone();
            let first_mv = p.sample_move(&mut peek, None);
            let best = cl.sample_best(&mut p, &mut rng, None);
            if best.trial_cost.is_nan() {
                assert_eq!(
                    first_mv, p.poison,
                    "a NaN candidate may only win from slot 0"
                );
            }
        }
    }
}
