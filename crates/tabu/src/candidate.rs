//! Candidate list construction: the subset `V*(s)` of the neighborhood the
//! search examines at each step.
//!
//! The paper's scheme samples `m` cell pairs per elementary move and takes
//! the best. Generalized here: sample `m` moves (optionally anchored in an
//! item range), trial-cost each, and rank.

use crate::problem::SearchProblem;
use pts_util::Rng;

/// A sampled move with its trial cost.
#[derive(Clone, Debug)]
pub struct Candidate<M> {
    pub mv: M,
    pub trial_cost: f64,
}

/// Candidate list sampler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateList {
    /// Number of moves sampled per step (`m` in the paper).
    pub size: usize,
}

impl CandidateList {
    pub fn new(size: usize) -> CandidateList {
        assert!(size >= 1, "candidate list needs at least one entry");
        CandidateList { size }
    }

    /// Sample `size` moves and return them sorted by ascending trial cost.
    pub fn sample_sorted<P: SearchProblem>(
        &self,
        problem: &mut P,
        rng: &mut Rng,
        range: Option<(usize, usize)>,
    ) -> Vec<Candidate<P::Move>> {
        let mut out = Vec::with_capacity(self.size);
        for _ in 0..self.size {
            let mv = problem.sample_move(rng, range);
            let trial_cost = problem.trial_cost(&mv);
            out.push(Candidate { mv, trial_cost });
        }
        out.sort_by(|a, b| {
            a.trial_cost
                .partial_cmp(&b.trial_cost)
                .expect("trial costs must not be NaN")
        });
        out
    }

    /// Sample and return only the best move.
    pub fn sample_best<P: SearchProblem>(
        &self,
        problem: &mut P,
        rng: &mut Rng,
        range: Option<(usize, usize)>,
    ) -> Candidate<P::Move> {
        let mut best: Option<Candidate<P::Move>> = None;
        for _ in 0..self.size {
            let mv = problem.sample_move(rng, range);
            let trial_cost = problem.trial_cost(&mv);
            if best.as_ref().is_none_or(|b| trial_cost < b.trial_cost) {
                best = Some(Candidate { mv, trial_cost });
            }
        }
        best.expect("size >= 1 guarantees a candidate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap::Qap;

    #[test]
    fn sorted_is_ascending() {
        let mut q = Qap::random(12, 3);
        let mut rng = Rng::new(1);
        let cl = CandidateList::new(8);
        let cands = cl.sample_sorted(&mut q, &mut rng, None);
        assert_eq!(cands.len(), 8);
        for w in cands.windows(2) {
            assert!(w[0].trial_cost <= w[1].trial_cost);
        }
    }

    #[test]
    fn best_matches_sorted_head() {
        let mut q = Qap::random(10, 4);
        let cl = CandidateList::new(6);
        // Same RNG stream ⇒ same sampled moves.
        let mut rng_a = Rng::new(9);
        let mut rng_b = Rng::new(9);
        let sorted = cl.sample_sorted(&mut q, &mut rng_a, None);
        let best = cl.sample_best(&mut q, &mut rng_b, None);
        assert!((best.trial_cost - sorted[0].trial_cost).abs() < 1e-9);
    }

    #[test]
    fn range_anchors_first_item() {
        let mut q = Qap::random(20, 5);
        let mut rng = Rng::new(2);
        let cl = CandidateList::new(16);
        let cands = cl.sample_sorted(&mut q, &mut rng, Some((0, 5)));
        for c in cands {
            let (a, _) = c.mv;
            assert!(a < 5, "anchored item must come from the range");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_list() {
        CandidateList::new(0);
    }
}
