//! Intensification: steering the search back toward known-good regions.
//!
//! The paper's introduction lists the second classic use of tabu memory:
//! "force the new solution to have some features that have been seen in
//! recent good solutions (intensification)". This module provides the two
//! standard mechanisms:
//!
//! * an [`ElitePool`] of the best solutions seen, and
//! * [`intensify`], which restarts the search from an elite solution and
//!   (optionally) walks it toward the *most frequent* attributes of the
//!   elite set — the mirror image of diversification's rare-attribute
//!   bias.
//!
//! These are extension features relative to the IPDPS'03 system (the paper
//! implements diversification only); they are exercised by tests and the
//! `intensification` example.

use crate::memory::FrequencyMemory;
use crate::problem::SearchProblem;
use pts_util::Rng;

/// A bounded pool of the best solutions encountered, kept sorted by cost
/// (best first).
#[derive(Clone, Debug)]
pub struct ElitePool<S> {
    capacity: usize,
    entries: Vec<(f64, S)>,
}

impl<S: Clone> ElitePool<S> {
    pub fn new(capacity: usize) -> ElitePool<S> {
        assert!(capacity >= 1, "elite pool needs capacity");
        ElitePool {
            capacity,
            entries: Vec::with_capacity(capacity + 1),
        }
    }

    /// Offer a solution; kept if it beats the worst member (or the pool is
    /// not full). Returns `true` if it entered the pool.
    pub fn offer(&mut self, cost: f64, solution: &S) -> bool {
        if self.entries.len() == self.capacity && cost >= self.entries.last().expect("non-empty").0
        {
            return false;
        }
        let pos = self
            .entries
            .iter()
            .position(|(c, _)| cost < *c)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, (cost, solution.clone()));
        self.entries.truncate(self.capacity);
        true
    }

    /// Best member.
    pub fn best(&self) -> Option<&(f64, S)> {
        self.entries.first()
    }

    /// A uniformly random member.
    pub fn sample(&self, rng: &mut Rng) -> Option<&(f64, S)> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.index(self.entries.len())])
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &(f64, S)> {
        self.entries.iter()
    }
}

/// Restart the problem from an elite solution and apply `depth` moves
/// biased toward the *most frequent* attributes in `memory` (features of
/// recent good solutions). With no memory the restart alone is the
/// intensification.
///
/// Returns the cost after intensification.
pub fn intensify<P: SearchProblem>(
    problem: &mut P,
    rng: &mut Rng,
    elite: &P::Snapshot,
    depth: usize,
    width: usize,
    memory: Option<&FrequencyMemory<P::Attribute>>,
) -> f64 {
    assert!(width >= 1);
    problem.restore(elite);
    for _ in 0..depth {
        let mut best_mv: Option<P::Move> = None;
        let mut best_score = f64::NEG_INFINITY;
        for _ in 0..width {
            let mv = problem.sample_move(rng, None);
            let score = match memory {
                Some(mem) if mem.total() > 0 => {
                    let (a, b) = problem.attributes(&mv);
                    let mut s = mem.frequency(&a);
                    if let Some(b) = b {
                        s += mem.frequency(&b);
                    }
                    s
                }
                _ => 0.0,
            };
            // Tie-break (and the no-memory case) on trial cost: prefer the
            // move that keeps the solution good.
            let score = score - 1e-6 * problem.trial_cost(&mv);
            if score > best_score {
                best_score = score;
                best_mv = Some(mv);
            }
        }
        let mv = best_mv.expect("width >= 1");
        problem.apply(&mv);
    }
    problem.cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap::Qap;
    use crate::search::{TabuSearch, TabuSearchConfig};

    #[test]
    fn pool_keeps_best_sorted() {
        let mut pool: ElitePool<u32> = ElitePool::new(3);
        assert!(pool.offer(5.0, &50));
        assert!(pool.offer(3.0, &30));
        assert!(pool.offer(4.0, &40));
        assert!(pool.offer(1.0, &10));
        // Capacity 3: the 5.0 entry fell out.
        assert_eq!(pool.len(), 3);
        let costs: Vec<f64> = pool.iter().map(|(c, _)| *c).collect();
        assert_eq!(costs, vec![1.0, 3.0, 4.0]);
        assert_eq!(pool.best().unwrap().1, 10);
    }

    #[test]
    fn pool_rejects_worse_than_worst_when_full() {
        let mut pool: ElitePool<u32> = ElitePool::new(2);
        pool.offer(1.0, &1);
        pool.offer(2.0, &2);
        assert!(!pool.offer(3.0, &3));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pool_sample_is_some_member() {
        let mut pool: ElitePool<u32> = ElitePool::new(4);
        for i in 0..4u32 {
            pool.offer(i as f64, &i);
        }
        let mut rng = Rng::new(1);
        for _ in 0..20 {
            let (_, v) = pool.sample(&mut rng).unwrap();
            assert!(*v < 4);
        }
        let empty: ElitePool<u32> = ElitePool::new(2);
        assert!(empty.sample(&mut rng).is_none());
    }

    #[test]
    fn intensify_restarts_from_elite() {
        let mut qap = Qap::random(15, 3);
        // Find a good solution first.
        let result = TabuSearch::new(TabuSearchConfig {
            iterations: 200,
            seed: 4,
            ..TabuSearchConfig::default()
        })
        .run(&mut qap);
        // Scramble the current state badly.
        let mut rng = Rng::new(5);
        for _ in 0..30 {
            let mv = qap.sample_move(&mut rng, None);
            qap.apply(&mv);
        }
        let scrambled = qap.cost();
        // Intensify back to the elite with a tiny perturbation.
        let cost = intensify(&mut qap, &mut rng, &result.best, 2, 4, None);
        assert!(
            cost < scrambled,
            "intensification must return near the elite ({cost} vs scrambled {scrambled})"
        );
        assert!((qap.cost() - cost).abs() < 1e-9);
    }

    #[test]
    fn intensify_depth_zero_is_pure_restart() {
        let mut qap = Qap::random(10, 7);
        let snap = qap.snapshot();
        let snap_cost = qap.cost();
        let mut rng = Rng::new(8);
        for _ in 0..10 {
            let mv = qap.sample_move(&mut rng, None);
            qap.apply(&mv);
        }
        let cost = intensify(&mut qap, &mut rng, &snap, 0, 3, None);
        assert!((cost - snap_cost).abs() < 1e-9);
        assert_eq!(qap.snapshot(), snap);
    }

    #[test]
    fn frequency_bias_prefers_common_attributes() {
        let mut qap = Qap::random(12, 9);
        let mut mem: FrequencyMemory<(u32, u32)> = FrequencyMemory::new();
        // Mark facility 0 at every location as "elite-frequent".
        for l in 0..12u32 {
            for _ in 0..100 {
                mem.record((0, l));
            }
        }
        let snap = qap.snapshot();
        let mut rng = Rng::new(10);
        let _ = intensify(&mut qap, &mut rng, &snap, 12, 6, Some(&mem));
        // No crash + state valid; the bias itself is statistical. Verify
        // the run applied the requested number of moves by distance.
        let moved = qap.snapshot().diff_from(&snap).len();
        assert!(moved > 0);
    }
}
