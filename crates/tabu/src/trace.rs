//! Best-cost traces and the paper's speedup metric.
//!
//! The paper defines speedup for non-deterministic algorithms as
//! `t(1,x) / t(n,x)`: the time for one worker to first reach an x-quality
//! solution over the time for `n` workers to reach the same quality. That
//! requires recording *when* each new best cost was found.

/// One improvement event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// Time of the improvement (wall seconds or virtual-cluster seconds).
    pub time: f64,
    /// Search iteration at the improvement.
    pub iter: u64,
    /// New best cost.
    pub best_cost: f64,
}

/// Monotone best-cost-over-time record.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    pub fn new() -> Trace {
        Trace { points: Vec::new() }
    }

    /// Rebuild a trace from raw points (e.g. shipped over the wire),
    /// re-enforcing the monotone-improvement invariant.
    pub fn from_points(points: impl IntoIterator<Item = TracePoint>) -> Trace {
        let mut t = Trace::new();
        for p in points {
            t.record(p.time, p.iter, p.best_cost);
        }
        t
    }

    /// Record a cost observation; kept only if it improves on the best.
    pub fn record(&mut self, time: f64, iter: u64, cost: f64) {
        if self.points.last().is_none_or(|p| cost < p.best_cost) {
            self.points.push(TracePoint {
                time,
                iter,
                best_cost: cost,
            });
        }
    }

    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Final (best) cost.
    pub fn best_cost(&self) -> Option<f64> {
        self.points.last().map(|p| p.best_cost)
    }

    /// First time the trace reached `quality` or better.
    pub fn time_to_reach(&self, quality: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.best_cost <= quality)
            .map(|p| p.time)
    }

    /// Best cost achieved by time `t` (None before the first point).
    pub fn best_at(&self, t: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.time <= t)
            .last()
            .map(|p| p.best_cost)
    }

    /// Merge several traces into the global best-cost-over-time curve
    /// (running minimum across all workers).
    pub fn merge<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Trace {
        let mut all: Vec<TracePoint> = traces
            .into_iter()
            .flat_map(|t| t.points.iter().copied())
            .collect();
        all.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("no NaN times")
                .then(a.iter.cmp(&b.iter))
        });
        let mut merged = Trace::new();
        for p in all {
            merged.record(p.time, p.iter, p.best_cost);
        }
        merged
    }
}

/// Speedup `t(1,x) / t(n,x)` from two traces; `None` if either never
/// reached the quality.
pub fn speedup(baseline: &Trace, parallel: &Trace, quality: f64) -> Option<f64> {
    let t1 = baseline.time_to_reach(quality)?;
    let tn = parallel.time_to_reach(quality)?;
    if tn <= 0.0 {
        return Some(f64::INFINITY);
    }
    Some(t1 / tn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_improvements() {
        let mut t = Trace::new();
        t.record(1.0, 1, 10.0);
        t.record(2.0, 2, 11.0); // worse: dropped
        t.record(3.0, 3, 9.0);
        assert_eq!(t.points().len(), 2);
        assert_eq!(t.best_cost(), Some(9.0));
    }

    #[test]
    fn time_to_reach_finds_first_crossing() {
        let mut t = Trace::new();
        t.record(1.0, 1, 10.0);
        t.record(2.0, 2, 8.0);
        t.record(5.0, 3, 4.0);
        assert_eq!(t.time_to_reach(10.0), Some(1.0));
        assert_eq!(t.time_to_reach(8.5), Some(2.0));
        assert_eq!(t.time_to_reach(4.0), Some(5.0));
        assert_eq!(t.time_to_reach(1.0), None);
    }

    #[test]
    fn best_at_steps() {
        let mut t = Trace::new();
        t.record(1.0, 1, 10.0);
        t.record(4.0, 2, 5.0);
        assert_eq!(t.best_at(0.5), None);
        assert_eq!(t.best_at(1.0), Some(10.0));
        assert_eq!(t.best_at(3.9), Some(10.0));
        assert_eq!(t.best_at(100.0), Some(5.0));
    }

    #[test]
    fn merge_takes_running_min_across_workers() {
        let mut a = Trace::new();
        a.record(1.0, 1, 10.0);
        a.record(6.0, 2, 3.0);
        let mut b = Trace::new();
        b.record(2.0, 1, 7.0);
        b.record(9.0, 2, 5.0); // worse than a's 3.0 at t=6: dropped
        let m = Trace::merge([&a, &b]);
        let costs: Vec<f64> = m.points().iter().map(|p| p.best_cost).collect();
        assert_eq!(costs, vec![10.0, 7.0, 3.0]);
        assert_eq!(m.time_to_reach(7.0), Some(2.0));
    }

    #[test]
    fn speedup_ratio() {
        let mut base = Trace::new();
        base.record(10.0, 1, 5.0);
        let mut par = Trace::new();
        par.record(2.0, 1, 5.0);
        assert_eq!(speedup(&base, &par, 5.0), Some(5.0));
        assert_eq!(speedup(&base, &par, 1.0), None);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.best_cost(), None);
        assert_eq!(t.time_to_reach(0.0), None);
    }
}
