//! Short-term memory: the tabu list.
//!
//! Attributes of recently accepted moves are forbidden for `tenure`
//! iterations, preventing the search from cycling back through just-visited
//! solutions. Stored as attribute → expiry-iteration with periodic
//! compaction, so `is_tabu` and `make_tabu` are O(1).

use std::collections::HashMap;
use std::hash::Hash;

/// Tenure-based tabu memory over move attributes.
#[derive(Clone, Debug)]
pub struct TabuList<A: Eq + Hash + Clone> {
    tenure: u64,
    expiry: HashMap<A, u64>,
    last_compaction: u64,
}

impl<A: Eq + Hash + Clone> TabuList<A> {
    /// Create a list with the given tenure (iterations a move stays tabu).
    pub fn new(tenure: u64) -> Self {
        TabuList {
            tenure,
            expiry: HashMap::new(),
            last_compaction: 0,
        }
    }

    /// The configured tenure.
    pub fn tenure(&self) -> u64 {
        self.tenure
    }

    /// Change the tenure for moves made tabu from now on. Entries already
    /// in the list keep the expiry they were inserted with — a strategy
    /// switch must not retroactively free (or extend) standing tabus.
    pub fn set_tenure(&mut self, tenure: u64) {
        self.tenure = tenure;
    }

    /// Number of attributes currently held (including expired entries not
    /// yet compacted).
    pub fn len(&self) -> usize {
        self.expiry.len()
    }

    pub fn is_empty(&self) -> bool {
        self.expiry.is_empty()
    }

    /// Is `attr` tabu at iteration `iter`?
    pub fn is_tabu(&self, attr: &A, iter: u64) -> bool {
        self.expiry.get(attr).is_some_and(|&e| e > iter)
    }

    /// Mark `attr` tabu starting at iteration `iter`.
    pub fn make_tabu(&mut self, attr: A, iter: u64) {
        self.expiry.insert(attr, iter + self.tenure);
        // Amortized cleanup: drop expired entries every few tenures.
        if iter >= self.last_compaction + 4 * self.tenure.max(1) {
            self.expiry.retain(|_, &mut e| e > iter);
            self.last_compaction = iter;
        }
    }

    /// Forget everything (used when adopting a broadcast solution whose
    /// tabu list replaces the local one).
    pub fn clear(&mut self) {
        self.expiry.clear();
    }

    /// Export active entries at `iter` as `(attribute, remaining)` pairs —
    /// this is the list the master and TSWs exchange alongside solutions.
    pub fn export(&self, iter: u64) -> Vec<(A, u64)> {
        self.expiry
            .iter()
            .filter(|&(_, &e)| e > iter)
            .map(|(a, &e)| (a.clone(), e - iter))
            .collect()
    }

    /// Import entries exported by [`TabuList::export`], re-anchored at
    /// local iteration `iter`.
    pub fn import(&mut self, entries: &[(A, u64)], iter: u64) {
        self.expiry.clear();
        for (a, remaining) in entries {
            self.expiry.insert(a.clone(), iter + remaining);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabu_expires_after_tenure() {
        let mut t: TabuList<u32> = TabuList::new(3);
        t.make_tabu(7, 10);
        assert!(t.is_tabu(&7, 10));
        assert!(t.is_tabu(&7, 12));
        assert!(!t.is_tabu(&7, 13), "expires exactly after tenure");
    }

    #[test]
    fn unknown_attribute_is_free() {
        let t: TabuList<u32> = TabuList::new(5);
        assert!(!t.is_tabu(&1, 0));
    }

    #[test]
    fn remaking_tabu_extends() {
        let mut t: TabuList<u32> = TabuList::new(3);
        t.make_tabu(7, 0);
        t.make_tabu(7, 2);
        assert!(t.is_tabu(&7, 4));
        assert!(!t.is_tabu(&7, 5));
    }

    #[test]
    fn compaction_drops_expired() {
        let mut t: TabuList<u32> = TabuList::new(2);
        for i in 0..100u64 {
            t.make_tabu(i as u32, i);
        }
        // After 100 iterations with tenure 2, nearly everything expired and
        // compaction must have run.
        assert!(t.len() < 100, "compaction keeps the map bounded");
    }

    #[test]
    fn export_import_roundtrip() {
        let mut t: TabuList<u32> = TabuList::new(10);
        t.make_tabu(1, 0); // expires at 10
        t.make_tabu(2, 5); // expires at 15
        let exported = t.export(7); // remaining: 3 and 8
        let mut fresh: TabuList<u32> = TabuList::new(10);
        fresh.import(&exported, 100);
        assert!(fresh.is_tabu(&1, 102));
        assert!(!fresh.is_tabu(&1, 103));
        assert!(fresh.is_tabu(&2, 107));
        assert!(!fresh.is_tabu(&2, 108));
    }

    #[test]
    fn export_skips_expired() {
        let mut t: TabuList<u32> = TabuList::new(2);
        t.make_tabu(1, 0);
        let e = t.export(50);
        assert!(e.is_empty());
    }

    #[test]
    fn clear_forgets() {
        let mut t: TabuList<u32> = TabuList::new(5);
        t.make_tabu(3, 0);
        t.clear();
        assert!(!t.is_tabu(&3, 1));
        assert!(t.is_empty());
    }

    #[test]
    fn zero_tenure_means_nothing_is_tabu() {
        let mut t: TabuList<u32> = TabuList::new(0);
        t.make_tabu(4, 2);
        assert!(!t.is_tabu(&4, 2));
    }
}
