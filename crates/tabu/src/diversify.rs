//! Diversification: jumping to a new search region.
//!
//! At the start of every global iteration each tabu search worker
//! "diversifies with respect to a different subset of cells so as to
//! enforce that TSWs don't search in overlapping areas", using the scheme
//! of Kelly, Laguna & Glover (1994): prefer moves involving items that have
//! participated in accepted moves the *least* (long-term frequency memory),
//! so the walk heads into genuinely unexplored territory.

use crate::memory::FrequencyMemory;
use crate::problem::SearchProblem;
use pts_util::Rng;

/// Problems that support the paper's Kelly-style diversification step.
///
/// The default implementation delegates to the free [`diversify`] routine —
/// frequency-guided moves anchored in a private item range. Domains with
/// structure-aware escape strategies (e.g. region-based re-placement)
/// override [`DiversifiableProblem::diversify`]; the parallel pipeline in
/// `pts-core` requires this trait so every wired-in problem states
/// explicitly how a tabu search worker jumps to a new search region.
pub trait DiversifiableProblem: SearchProblem {
    /// Apply `depth` diversification moves anchored in `range`; see
    /// [`diversify`].
    fn diversify(
        &mut self,
        rng: &mut Rng,
        range: (usize, usize),
        depth: usize,
        width: usize,
        memory: Option<&FrequencyMemory<Self::Attribute>>,
    ) -> Vec<Self::Move>
    where
        Self: Sized,
    {
        diversify(self, rng, range, depth, width, memory)
    }
}

impl DiversifiableProblem for crate::qap::Qap {}

/// Apply `depth` diversification moves anchored in `range`.
///
/// Each step samples `width` candidate moves with their anchor item inside
/// `range` and applies the one whose attributes are rarest in `memory`
/// (uniformly random when no memory is supplied or it is empty). Returns
/// the applied moves; the problem is left at the diversified state.
pub fn diversify<P: SearchProblem>(
    problem: &mut P,
    rng: &mut Rng,
    range: (usize, usize),
    depth: usize,
    width: usize,
    memory: Option<&FrequencyMemory<P::Attribute>>,
) -> Vec<P::Move> {
    assert!(width >= 1);
    let mut applied = Vec::with_capacity(depth);
    for _ in 0..depth {
        let mut best_mv: Option<P::Move> = None;
        let mut best_score = f64::INFINITY;
        for _ in 0..width {
            let mv = problem.sample_move(rng, Some(range));
            let score = match memory {
                Some(mem) if mem.total() > 0 => {
                    let (a, b) = problem.attributes(&mv);
                    let mut s = mem.frequency(&a);
                    if let Some(b) = b {
                        s += mem.frequency(&b);
                    }
                    s
                }
                // No memory: all moves equally novel; first sample wins,
                // which is a uniform choice.
                _ => 0.0,
            };
            if score < best_score {
                best_score = score;
                best_mv = Some(mv);
            }
        }
        let mv = best_mv.expect("width >= 1");
        problem.apply(&mv);
        applied.push(mv);
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap::Qap;

    #[test]
    fn diversify_moves_the_solution() {
        let mut q = Qap::random(20, 1);
        let before = q.snapshot_assignment();
        let mut rng = Rng::new(2);
        let moves = diversify(&mut q, &mut rng, (0, 20), 5, 4, None);
        assert_eq!(moves.len(), 5);
        assert_ne!(q.snapshot_assignment(), before);
    }

    #[test]
    fn disjoint_ranges_touch_disjoint_anchors() {
        let mut q = Qap::random(20, 3);
        let mut rng = Rng::new(4);
        let moves_a = diversify(&mut q, &mut rng, (0, 10), 6, 3, None);
        let moves_b = diversify(&mut q, &mut rng, (10, 20), 6, 3, None);
        for (a, _) in moves_a {
            assert!(a < 10);
        }
        for (a, _) in moves_b {
            assert!((10..20).contains(&a));
        }
    }

    #[test]
    fn frequency_memory_biases_to_rare_items() {
        let mut q = Qap::random(10, 5);
        let mut mem: FrequencyMemory<(u32, u32)> = FrequencyMemory::new();
        // Make facilities 0..8 look heavily used at every location; leave 8
        // and 9 untouched.
        for f in 0..8u32 {
            for l in 0..10u32 {
                for _ in 0..50 {
                    mem.record((f, l));
                }
            }
        }
        let mut rng = Rng::new(6);
        let moves = diversify(&mut q, &mut rng, (0, 10), 20, 8, Some(&mem));
        // Count how often a rare facility (8 or 9) anchors the chosen move.
        let rare_hits = moves.iter().filter(|&&(a, b)| a >= 8 || b >= 8).count();
        assert!(
            rare_hits > moves.len() / 2,
            "rare items should dominate diversification ({rare_hits}/{})",
            moves.len()
        );
    }

    #[test]
    fn depth_zero_is_identity() {
        let mut q = Qap::random(8, 7);
        let before = q.snapshot_assignment();
        let mut rng = Rng::new(8);
        let moves = diversify(&mut q, &mut rng, (0, 8), 0, 3, None);
        assert!(moves.is_empty());
        assert_eq!(q.snapshot_assignment(), before);
    }
}
