//! Generic sequential tabu search engine.
//!
//! Implements the algorithm of the paper's Figure 1 over an abstract
//! [`problem::SearchProblem`]:
//!
//! * short-term memory: a tenure-based [`tabu_list::TabuList`] over move
//!   attributes, preventing recently reversed moves,
//! * [`aspiration`]: tabu moves are still accepted when they beat the best
//!   known cost,
//! * candidate lists: `m` sampled moves per step, best taken
//!   ([`candidate`]),
//! * [`compound`] moves of depth `d` with early accept on improvement — the
//!   exact move structure the paper's candidate-list workers use,
//! * long-term [`memory`]: frequency counts driving
//!   [`diversify`]`::diversify`, the Kelly-et-al-style diversification the
//!   paper applies at the start of every global iteration,
//! * [`trace`]: best-cost-versus-time recording, from which the paper's
//!   speedup metric `t(1,x)/t(n,x)` is computed.
//!
//! The engine is domain-agnostic; [`qap`] provides a classic quadratic
//! assignment problem binding (the domain of the cited Kelly et al.
//! diversification study) used for tests, examples, and as a second proof
//! of the public API. The VLSI placement binding lives in `pts-core`.

pub mod aspiration;
pub mod candidate;
pub mod compound;
pub mod diversify;
pub mod intensify;
pub mod memory;
pub mod problem;
pub mod qap;
pub mod reactive;
pub mod search;
pub mod tabu_list;
pub mod trace;

pub use candidate::CandidateList;
pub use compound::{build_compound, CompoundMove};
pub use diversify::DiversifiableProblem;
pub use intensify::{intensify, ElitePool};
pub use memory::FrequencyMemory;
pub use problem::{AttrPair, SearchProblem};
pub use qap::{Qap, QapAssignment};
pub use reactive::{ReactiveConfig, ReactiveTenure};
pub use search::{SearchResult, TabuSearch, TabuSearchConfig};
pub use tabu_list::TabuList;
pub use trace::{Trace, TracePoint};
