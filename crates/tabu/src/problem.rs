//! The problem abstraction consumed by the tabu search engine.

use pts_util::Rng;

/// Tabu attributes of a move: one or two attribute values.
///
/// A swap move typically yields two attributes (one per moved item); simpler
/// moves yield one. Avoids allocation on the hot path.
pub type AttrPair<A> = (A, Option<A>);

/// A combinatorial optimization problem exposed as a mutable current state
/// plus sampled moves.
///
/// The engine drives the search: it samples candidate moves, trial-costs
/// them, applies/undoes them, and tracks tabu attributes. Implementations
/// keep whatever incremental caches they need — `trial_cost` takes `&mut
/// self` precisely so scratch space can live inside the problem.
pub trait SearchProblem {
    /// A move transforming the current state. Must be self-inverse under
    /// [`SearchProblem::undo`].
    type Move: Clone + std::fmt::Debug;
    /// Move attribute stored in tabu memory.
    type Attribute: Clone + Eq + std::hash::Hash + std::fmt::Debug;
    /// A full copy of a solution, for best-so-far tracking.
    ///
    /// Contract: [`SearchProblem::restore`] followed by
    /// [`SearchProblem::snapshot`] must reproduce the snapshot *exactly*
    /// (`==` if the type is comparable). Layers above rely on this —
    /// notably the parallel pipeline's delta-encoded snapshot protocol,
    /// which reconstructs broadcast solutions from a shared base plus a
    /// move delta and requires the reconstruction to be bit-identical to
    /// the full snapshot. Prefer a dedicated newtype over a bare standard
    /// container (e.g. [`crate::qap::QapAssignment`] rather than
    /// `Vec<usize>`) so the snapshot can carry its own wire-size and
    /// delta models without tripping the orphan rule.
    type Snapshot: Clone;

    /// Scalar cost of the current state (lower is better).
    fn cost(&self) -> f64;

    /// Number of items for range-based domain decomposition (e.g. cells).
    /// Ranges passed to [`SearchProblem::sample_move`] index into
    /// `0..domain_size()`.
    fn domain_size(&self) -> usize;

    /// Sample one candidate move. When `range` is `Some((lo, hi))` the move
    /// must be *anchored* in that item range (the paper: a candidate-list
    /// worker picks its first cell from its own range and the second from
    /// the whole cell space).
    fn sample_move(&mut self, rng: &mut Rng, range: Option<(usize, usize)>) -> Self::Move;

    /// Cost of the state that `mv` would produce, without mutating state.
    fn trial_cost(&mut self, mv: &Self::Move) -> f64;

    /// Apply a move.
    fn apply(&mut self, mv: &Self::Move);

    /// Revert a move previously applied (moves are self-inverse for swaps).
    fn undo(&mut self, mv: &Self::Move);

    /// Tabu attributes of a move in the *current* state (queried before the
    /// move is applied). These are the *source* attributes — e.g. `(item,
    /// current position)` pairs — recorded as tabu when a move is accepted,
    /// forbidding a quick return.
    fn attributes(&self, mv: &Self::Move) -> AttrPair<Self::Attribute>;

    /// Attributes of the state the move would *produce* — e.g. `(item,
    /// destination position)` pairs. A proposed move is tabu when a target
    /// attribute is held in the tabu list (it would re-create a recently
    /// destroyed configuration). Defaults to [`SearchProblem::attributes`]
    /// for problems where the distinction does not apply.
    fn target_attributes(&self, mv: &Self::Move) -> AttrPair<Self::Attribute> {
        self.attributes(mv)
    }

    /// Snapshot the current solution.
    fn snapshot(&self) -> Self::Snapshot;

    /// Restore a snapshot.
    fn restore(&mut self, snapshot: &Self::Snapshot);

    /// Sample `count` candidate moves into `out` (cleared first).
    ///
    /// Contract: consumes exactly the RNG draws of `count` successive
    /// [`SearchProblem::sample_move`] calls, in the same order — the
    /// parallel pipeline relies on batched and scalar sampling being
    /// RNG-stream-identical. The default does exactly that; override only
    /// to restructure the loop, never to change the draw sequence.
    fn sample_moves(
        &mut self,
        rng: &mut Rng,
        range: Option<(usize, usize)>,
        count: usize,
        out: &mut Vec<Self::Move>,
    ) {
        out.clear();
        out.reserve(count);
        for _ in 0..count {
            let mv = self.sample_move(rng, range);
            out.push(mv);
        }
    }

    /// Trial-cost a batch of moves into `out` (cleared first), without
    /// mutating state: `out[i]` must be bitwise equal to what
    /// `trial_cost(&moves[i])` would return in the current state.
    ///
    /// The default is the scalar loop; implementations override it to
    /// amortize cache traffic and per-call setup across the batch (the
    /// hot path of the candidate-list worker), but must keep every
    /// floating-point operation order intact so batched evaluation stays
    /// bit-identical to the scalar path.
    fn trial_costs(&mut self, moves: &[Self::Move], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(moves.len());
        for mv in moves {
            let c = self.trial_cost(mv);
            out.push(c);
        }
    }
}
