//! Reactive tenure (extension): self-tuning tabu list length.
//!
//! The paper uses a fixed tenure. Reactive tabu search (Battiti &
//! Tecchiolli, 1994) adapts it online: when the search *revisits* a
//! solution, the tenure grows (cycling detected — forbid more); after a
//! long stretch without revisits it shrinks (the list is over-
//! constraining). This module provides the detector + controller as a
//! composable component; `TabuSearchConfig.tenure` remains the fixed
//! paper-faithful default.

use std::collections::HashMap;

/// Configuration of the reactive controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReactiveConfig {
    /// Initial tenure.
    pub initial: u64,
    /// Multiplicative increase on a detected revisit (> 1).
    pub grow: f64,
    /// Multiplicative decay applied after `calm_window` iterations with no
    /// revisit (< 1).
    pub shrink: f64,
    /// Iterations without revisits before the tenure decays.
    pub calm_window: u64,
    /// Tenure bounds.
    pub min: u64,
    pub max: u64,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        ReactiveConfig {
            initial: 7,
            grow: 1.3,
            shrink: 0.9,
            calm_window: 50,
            min: 2,
            max: 200,
        }
    }
}

/// Revisit detector + tenure controller.
///
/// Solutions are identified by a caller-supplied 64-bit fingerprint (e.g.
/// a hash of the placement assignment). Collisions only cause a spurious
/// tenure bump — safe for a heuristic controller.
#[derive(Clone, Debug)]
pub struct ReactiveTenure {
    config: ReactiveConfig,
    tenure: f64,
    /// fingerprint → iteration last seen.
    seen: HashMap<u64, u64>,
    last_revisit: u64,
    revisits: u64,
}

impl ReactiveTenure {
    pub fn new(config: ReactiveConfig) -> ReactiveTenure {
        assert!(config.grow > 1.0 && config.shrink < 1.0);
        assert!(config.min >= 1 && config.min <= config.max);
        ReactiveTenure {
            tenure: config.initial.clamp(config.min, config.max) as f64,
            config,
            seen: HashMap::new(),
            last_revisit: 0,
            revisits: 0,
        }
    }

    /// Current tenure to use for the tabu list.
    pub fn tenure(&self) -> u64 {
        self.tenure.round() as u64
    }

    /// Number of revisits detected so far.
    pub fn revisits(&self) -> u64 {
        self.revisits
    }

    /// Record the solution visited at `iter`; adapts and returns the
    /// tenure to use from now on.
    pub fn observe(&mut self, fingerprint: u64, iter: u64) -> u64 {
        if let Some(_prev) = self.seen.insert(fingerprint, iter) {
            // Revisit: cycling — grow the tabu list.
            self.revisits += 1;
            self.last_revisit = iter;
            self.tenure = (self.tenure * self.config.grow)
                .clamp(self.config.min as f64, self.config.max as f64);
        } else if iter.saturating_sub(self.last_revisit) > self.config.calm_window {
            // Long calm stretch: relax.
            self.last_revisit = iter;
            self.tenure = (self.tenure * self.config.shrink)
                .clamp(self.config.min as f64, self.config.max as f64);
        }
        self.tenure()
    }

    /// Forget visit history (e.g. after adopting a foreign solution).
    pub fn reset_history(&mut self) {
        self.seen.clear();
    }
}

/// FNV-1a fingerprint of an assignment-like slice; the conventional cheap
/// solution hash for revisit detection.
pub fn fingerprint_slice<T: Copy + Into<u64>>(xs: &[T]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in xs {
        let v: u64 = x.into();
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revisit_grows_tenure() {
        let mut r = ReactiveTenure::new(ReactiveConfig::default());
        let t0 = r.tenure();
        r.observe(42, 1);
        assert_eq!(r.tenure(), t0, "first visit is not a revisit");
        let t1 = r.observe(42, 5);
        assert!(t1 > t0, "revisit must grow tenure ({t1} vs {t0})");
        assert_eq!(r.revisits(), 1);
    }

    #[test]
    fn calm_stretch_shrinks_tenure() {
        let cfg = ReactiveConfig {
            initial: 50,
            calm_window: 10,
            ..ReactiveConfig::default()
        };
        let mut r = ReactiveTenure::new(cfg);
        let t0 = r.tenure();
        // Unique solutions, far apart in iterations.
        let t1 = r.observe(1, 100);
        assert!(t1 < t0, "calm stretch must shrink tenure");
    }

    #[test]
    fn tenure_respects_bounds() {
        let cfg = ReactiveConfig {
            initial: 10,
            min: 5,
            max: 20,
            grow: 3.0,
            ..ReactiveConfig::default()
        };
        let mut r = ReactiveTenure::new(cfg);
        for i in 0..20 {
            r.observe(7, i); // constant revisits
        }
        assert_eq!(r.tenure(), 20, "growth saturates at max");
        let cfg = ReactiveConfig {
            initial: 6,
            min: 5,
            max: 20,
            shrink: 0.1,
            calm_window: 1,
            ..ReactiveConfig::default()
        };
        let mut r = ReactiveTenure::new(cfg);
        for i in 0..100 {
            r.observe(1000 + i, i * 10); // never revisit, always calm
        }
        assert_eq!(r.tenure(), 5, "decay saturates at min");
    }

    #[test]
    fn reset_history_forgets_revisits() {
        let mut r = ReactiveTenure::new(ReactiveConfig::default());
        r.observe(9, 1);
        r.reset_history();
        let before = r.tenure();
        r.observe(9, 2);
        assert_eq!(r.tenure(), before, "after reset, 9 is a fresh solution");
    }

    #[test]
    fn fingerprint_distinguishes_permutations() {
        let a: Vec<u32> = vec![0, 1, 2, 3];
        let b: Vec<u32> = vec![0, 2, 1, 3];
        assert_ne!(fingerprint_slice(&a), fingerprint_slice(&b));
        assert_eq!(fingerprint_slice(&a), fingerprint_slice(&a.clone()));
    }

    #[test]
    fn reactive_controller_on_a_real_search() {
        // Drive a tiny QAP walk and make sure the controller reacts to the
        // cycling a greedy 2-opt walk produces.
        use crate::qap::Qap;
        use crate::SearchProblem;
        let mut qap = Qap::random(8, 3);
        let mut rng = pts_util::Rng::new(4);
        let mut r = ReactiveTenure::new(ReactiveConfig {
            calm_window: 1_000,
            ..ReactiveConfig::default()
        });
        for iter in 0..300u64 {
            // Greedy best-of-4 move: prone to cycling without tabu.
            let mut best = None;
            for _ in 0..4 {
                let mv = qap.sample_move(&mut rng, None);
                let c = qap.trial_cost(&mv);
                if best.as_ref().map(|&(_, bc)| c < bc).unwrap_or(true) {
                    best = Some((mv, c));
                }
            }
            let (mv, _) = best.unwrap();
            qap.apply(&mv);
            let fp = fingerprint_slice(
                &qap.snapshot_assignment()
                    .iter()
                    .map(|&x| x as u32)
                    .collect::<Vec<_>>(),
            );
            r.observe(fp, iter);
        }
        assert!(
            r.revisits() > 0,
            "a greedy walk on a tiny instance must revisit solutions"
        );
        assert!(r.tenure() > ReactiveConfig::default().initial);
    }
}
