//! Quadratic assignment problem (QAP) binding.
//!
//! QAP is the domain of the diversification study the paper builds on
//! (Kelly, Laguna & Glover 1994). It doubles here as a compact second
//! domain proving the [`SearchProblem`] abstraction: n facilities with
//! pairwise flows are assigned to n locations with pairwise distances,
//! minimizing `Σ flow(i,j) · dist(loc(i), loc(j))`.

use crate::problem::{AttrPair, SearchProblem};
use pts_util::Rng;
use std::sync::Arc;

/// A facility → location assignment, the QAP solution snapshot.
///
/// A dedicated newtype rather than a bare `Vec<usize>`: downstream crates
/// attach per-domain capabilities (wire-size models, delta encoding) to
/// the snapshot type, and the orphan rule makes a global `impl` on
/// `Vec<usize>` the *only* model any bare-Vec domain could ever have. The
/// newtype keeps QAP's models its own.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QapAssignment(Vec<usize>);

impl QapAssignment {
    /// Wrap an explicit assignment (`loc_of[facility] = location`).
    pub fn new(loc_of: Vec<usize>) -> QapAssignment {
        QapAssignment(loc_of)
    }

    /// Number of facilities.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty assignment (never occurs in a valid instance).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw `facility → location` slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Unwrap into the raw assignment vector.
    pub fn into_vec(self) -> Vec<usize> {
        self.0
    }

    /// The facilities whose location differs from `base`, with their
    /// location in `self` — the QAP move delta. Empty when the
    /// assignments are equal.
    pub fn diff_from(&self, base: &QapAssignment) -> Vec<(u32, u32)> {
        assert_eq!(self.len(), base.len(), "assignments must be same size");
        self.0
            .iter()
            .zip(base.0.iter())
            .enumerate()
            .filter(|(_, (new, old))| new != old)
            .map(|(f, (new, _))| (f as u32, *new as u32))
            .collect()
    }

    /// Rebuild the assignment `changes` was diffed *to*, starting from
    /// `base` (the assignment it was diffed *against*). Inverse of
    /// [`QapAssignment::diff_from`].
    pub fn with_changes(base: &QapAssignment, changes: &[(u32, u32)]) -> QapAssignment {
        let mut loc_of = base.0.clone();
        for &(facility, location) in changes {
            loc_of[facility as usize] = location as usize;
        }
        QapAssignment(loc_of)
    }
}

impl std::ops::Index<usize> for QapAssignment {
    type Output = usize;

    fn index(&self, facility: usize) -> &usize {
        &self.0[facility]
    }
}

/// A QAP instance plus its current assignment.
///
/// The flow/distance matrices are behind [`Arc`]s: cloning an instance —
/// which the parallel pipeline does once per worker — shares the O(n²)
/// read-only data and copies only the O(n) assignment, so thousand-worker
/// runs don't multiply the matrices.
#[derive(Clone, Debug)]
pub struct Qap {
    n: usize,
    /// Row-major `n × n` flow matrix (symmetric, zero diagonal).
    flow: Arc<[f64]>,
    /// Row-major `n × n` distance matrix (symmetric, zero diagonal).
    dist: Arc<[f64]>,
    /// Location of each facility.
    loc_of: Vec<usize>,
    cost: f64,
}

impl Qap {
    /// Random symmetric instance with uniform flows/distances in `[0, 10)`,
    /// random initial assignment. Deterministic in `seed`.
    pub fn random(n: usize, seed: u64) -> Qap {
        assert!(n >= 2);
        let mut rng = Rng::new(seed);
        let mut flow = vec![0.0; n * n];
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let f = rng.range_f64(0.0, 10.0);
                let d = rng.range_f64(0.0, 10.0);
                flow[i * n + j] = f;
                flow[j * n + i] = f;
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let mut loc_of: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut loc_of);
        let mut qap = Qap {
            n,
            flow: flow.into(),
            dist: dist.into(),
            loc_of,
            cost: 0.0,
        };
        qap.cost = qap.cost_exact();
        qap
    }

    /// Build from explicit matrices and an identity assignment.
    pub fn from_matrices(flow: Vec<f64>, dist: Vec<f64>) -> Qap {
        let n = (flow.len() as f64).sqrt() as usize;
        assert_eq!(n * n, flow.len(), "flow must be square");
        assert_eq!(flow.len(), dist.len(), "matrices must match");
        assert!(n >= 2);
        let mut qap = Qap {
            n,
            flow: flow.into(),
            dist: dist.into(),
            loc_of: (0..n).collect(),
            cost: 0.0,
        };
        qap.cost = qap.cost_exact();
        qap
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The row-major `n × n` flow matrix.
    pub fn flow_matrix(&self) -> &[f64] {
        &self.flow
    }

    /// The row-major `n × n` distance matrix.
    pub fn dist_matrix(&self) -> &[f64] {
        &self.dist
    }

    #[inline]
    fn f(&self, i: usize, j: usize) -> f64 {
        self.flow[i * self.n + j]
    }

    #[inline]
    fn d(&self, a: usize, b: usize) -> f64 {
        self.dist[a * self.n + b]
    }

    /// Recompute the cost from scratch.
    pub fn cost_exact(&self) -> f64 {
        let mut c = 0.0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                c += self.f(i, j) * self.d(self.loc_of[i], self.loc_of[j]);
            }
        }
        c
    }

    /// Cost delta of swapping the locations of facilities `a` and `b`
    /// (O(n) incremental).
    pub fn swap_delta(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        let (la, lb) = (self.loc_of[a], self.loc_of[b]);
        let mut delta = 0.0;
        for k in 0..self.n {
            if k == a || k == b {
                continue;
            }
            let lk = self.loc_of[k];
            delta += self.f(a, k) * (self.d(lb, lk) - self.d(la, lk));
            delta += self.f(b, k) * (self.d(la, lk) - self.d(lb, lk));
        }
        delta
    }

    /// Current facility → location assignment (cloned).
    pub fn snapshot_assignment(&self) -> Vec<usize> {
        self.loc_of.clone()
    }

    /// Batched [`Qap::swap_delta`]: hoists the flow/distance rows of `a`
    /// and `b` out of the k-loop and walks k in three contiguous segments
    /// (below, between, above the swapped pair) instead of testing
    /// `k == a || k == b` every iteration. The accumulation visits the
    /// same k values in the same ascending order with the same two `+=`
    /// per k as the scalar kernel, so the result is bit-identical.
    #[inline]
    fn swap_delta_rows(&self, a: usize, b: usize) -> f64 {
        let n = self.n;
        let (la, lb) = (self.loc_of[a], self.loc_of[b]);
        let fa = &self.flow[a * n..a * n + n];
        let fb = &self.flow[b * n..b * n + n];
        let da = &self.dist[la * n..la * n + n];
        let db = &self.dist[lb * n..lb * n + n];
        let (first, second) = if a < b { (a, b) } else { (b, a) };
        let mut delta = 0.0;
        let seg = |delta: &mut f64, lo: usize, hi: usize| {
            for k in lo..hi {
                let lk = self.loc_of[k];
                *delta += fa[k] * (db[lk] - da[lk]);
                *delta += fb[k] * (da[lk] - db[lk]);
            }
        };
        seg(&mut delta, 0, first);
        seg(&mut delta, first + 1, second);
        seg(&mut delta, second + 1, n);
        delta
    }
}

impl SearchProblem for Qap {
    /// `(facility_a, facility_b)` whose locations swap.
    type Move = (usize, usize);
    /// `(facility, location)` pairs: re-placing a facility at a recently
    /// vacated location is tabu.
    type Attribute = (u32, u32);
    type Snapshot = QapAssignment;

    fn cost(&self) -> f64 {
        self.cost
    }

    fn domain_size(&self) -> usize {
        self.n
    }

    fn sample_move(&mut self, rng: &mut Rng, range: Option<(usize, usize)>) -> Self::Move {
        let (lo, hi) = range.unwrap_or((0, self.n));
        assert!(lo < hi && hi <= self.n, "bad range {lo}..{hi}");
        let a = rng.range(lo, hi);
        let mut b = rng.index(self.n);
        while b == a {
            b = rng.index(self.n);
        }
        (a, b)
    }

    fn trial_cost(&mut self, mv: &Self::Move) -> f64 {
        self.cost + self.swap_delta(mv.0, mv.1)
    }

    fn apply(&mut self, mv: &Self::Move) {
        self.cost += self.swap_delta(mv.0, mv.1);
        self.loc_of.swap(mv.0, mv.1);
    }

    fn undo(&mut self, mv: &Self::Move) {
        // Swaps are self-inverse.
        self.apply(mv);
    }

    fn attributes(&self, mv: &Self::Move) -> AttrPair<Self::Attribute> {
        // Source attribute = (facility, its *current* location): recorded
        // on acceptance, forbidding a quick return to that location.
        (
            (mv.0 as u32, self.loc_of[mv.0] as u32),
            Some((mv.1 as u32, self.loc_of[mv.1] as u32)),
        )
    }

    fn target_attributes(&self, mv: &Self::Move) -> AttrPair<Self::Attribute> {
        // Target attribute = (facility, destination location): the move is
        // tabu when it would re-create a recently destroyed pairing.
        (
            (mv.0 as u32, self.loc_of[mv.1] as u32),
            Some((mv.1 as u32, self.loc_of[mv.0] as u32)),
        )
    }

    fn snapshot(&self) -> Self::Snapshot {
        QapAssignment::new(self.loc_of.clone())
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) {
        assert_eq!(snapshot.len(), self.n);
        self.loc_of.clear();
        self.loc_of.extend_from_slice(snapshot.as_slice());
        self.cost = self.cost_exact();
    }

    fn trial_costs(&mut self, moves: &[Self::Move], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(moves.len());
        for &(a, b) in moves {
            let cost = if a == b {
                self.cost
            } else {
                self.cost + self.swap_delta_rows(a, b)
            };
            out.push(cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_cost_matches_exact() {
        let mut q = Qap::random(15, 1);
        let mut rng = Rng::new(2);
        for _ in 0..200 {
            let mv = q.sample_move(&mut rng, None);
            let predicted = q.trial_cost(&mv);
            q.apply(&mv);
            assert!(
                (q.cost() - predicted).abs() < 1e-6,
                "trial must predict applied cost"
            );
            assert!(
                (q.cost() - q.cost_exact()).abs() < 1e-6,
                "incremental cost drifted"
            );
        }
    }

    #[test]
    fn apply_undo_is_identity() {
        let mut q = Qap::random(10, 3);
        let snap = q.snapshot();
        let cost = q.cost();
        let mv = (2usize, 7usize);
        q.apply(&mv);
        q.undo(&mv);
        assert_eq!(q.snapshot(), snap);
        assert!((q.cost() - cost).abs() < 1e-9);
    }

    #[test]
    fn restore_resets_assignment_and_cost() {
        let mut q = Qap::random(10, 4);
        let snap = q.snapshot();
        let cost = q.cost();
        let mut rng = Rng::new(5);
        for _ in 0..20 {
            let mv = q.sample_move(&mut rng, None);
            q.apply(&mv);
        }
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
        assert!((q.cost() - cost).abs() < 1e-9);
    }

    #[test]
    fn same_facility_swap_is_zero_delta() {
        let q = Qap::random(8, 6);
        assert_eq!(q.swap_delta(3, 3), 0.0);
    }

    #[test]
    fn attributes_capture_current_locations() {
        let q = Qap::random(6, 7);
        let (a, b) = SearchProblem::attributes(&q, &(1, 4));
        assert_eq!(a.0, 1);
        assert_eq!(a.1 as usize, q.snapshot_assignment()[1]);
        let b = b.unwrap();
        assert_eq!(b.0, 4);
        assert_eq!(b.1 as usize, q.snapshot_assignment()[4]);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Qap::random(12, 42);
        let b = Qap::random(12, 42);
        assert_eq!(a.snapshot_assignment(), b.snapshot_assignment());
        assert!((a.cost() - b.cost()).abs() < 1e-12);
    }

    #[test]
    fn assignment_diff_roundtrips() {
        let base = QapAssignment::new(vec![0, 1, 2, 3, 4]);
        let new = QapAssignment::new(vec![0, 4, 2, 3, 1]);
        let delta = new.diff_from(&base);
        assert_eq!(delta, vec![(1, 4), (4, 1)]);
        assert_eq!(QapAssignment::with_changes(&base, &delta), new);
        // Empty delta between equal assignments.
        assert!(base.diff_from(&base).is_empty());
        assert_eq!(QapAssignment::with_changes(&base, &[]), base);
    }

    #[test]
    fn batched_trial_costs_bit_identical_to_scalar() {
        let mut q = Qap::random(23, 9);
        let mut rng = Rng::new(10);
        // Exercise the kernel from several states, including a==b moves
        // (degenerate but allowed by the batch API).
        for round in 0..10 {
            let mut moves = Vec::new();
            q.sample_moves(&mut rng, Some((3, 15)), 16, &mut moves);
            moves.push((round % 23, round % 23));
            let scalar: Vec<f64> = moves.iter().map(|mv| q.trial_cost(mv)).collect();
            let mut batched = Vec::new();
            q.trial_costs(&moves, &mut batched);
            for (s, b) in scalar.iter().zip(batched.iter()) {
                assert_eq!(s.to_bits(), b.to_bits(), "batched kernel diverged");
            }
            let mv = q.sample_move(&mut rng, None);
            q.apply(&mv);
        }
    }

    #[test]
    fn sample_moves_consumes_same_rng_stream_as_scalar() {
        let mut q = Qap::random(16, 5);
        let mut a = Rng::new(77);
        let mut b = Rng::new(77);
        let mut batch = Vec::new();
        q.sample_moves(&mut a, Some((2, 9)), 12, &mut batch);
        let scalar: Vec<(usize, usize)> = (0..12)
            .map(|_| q.sample_move(&mut b, Some((2, 9))))
            .collect();
        assert_eq!(batch, scalar);
        assert_eq!(a.next_u64(), b.next_u64(), "RNG streams diverged");
    }

    #[test]
    fn from_matrices_identity_assignment() {
        // 2 facilities, flow 5 between them, distance 3.
        let q = Qap::from_matrices(vec![0.0, 5.0, 5.0, 0.0], vec![0.0, 3.0, 3.0, 0.0]);
        assert!((q.cost() - 15.0).abs() < 1e-12);
    }
}
