//! The tabu search driver.
//!
//! [`TabuEngine`] is a *stepping* engine: one call to [`TabuEngine::step`]
//! performs one local iteration of the paper's Figure 1 (build a compound
//! move from the candidate list, tabu-test it, accept/reject, update
//! memories and the best-so-far). The parallel layers drive the same engine
//! one step at a time so they can poll mailboxes between iterations;
//! [`TabuSearch`] wraps it into a plain run-to-completion loop for
//! sequential use.

use crate::aspiration::Aspiration;
use crate::candidate::CandidateScratch;
use crate::compound::{apply_compound, build_compound_with, undo_compound, CompoundMove};
use crate::memory::FrequencyMemory;
use crate::problem::SearchProblem;
use crate::tabu_list::TabuList;
use crate::trace::Trace;
use pts_util::Rng;

/// How a compound move's tabu status is derived from its constituents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TabuPolicy {
    /// Tabu if *any* constituent elementary move is tabu (checked against
    /// the pre-compound state; strict).
    AnyConstituent,
    /// Tabu if the *first* elementary move is tabu (the move that actually
    /// leaves the current solution).
    FirstMoveOnly,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TabuSearchConfig {
    /// Tabu tenure in iterations.
    pub tenure: u64,
    /// Candidate pairs sampled per elementary move (`m`).
    pub candidates: usize,
    /// Compound move depth (`d`).
    pub depth: usize,
    /// Local iterations to run (per call to [`TabuSearch::run`]).
    pub iterations: u64,
    pub aspiration: Aspiration,
    /// Stop a compound chain as soon as it improves the starting cost.
    pub early_accept: bool,
    /// Restrict move anchors to an item range (domain decomposition).
    pub range: Option<(usize, usize)>,
    pub tabu_policy: TabuPolicy,
    /// RNG seed for the move sampler.
    pub seed: u64,
}

impl Default for TabuSearchConfig {
    fn default() -> Self {
        TabuSearchConfig {
            tenure: 7,
            candidates: 8,
            depth: 3,
            iterations: 100,
            aspiration: Aspiration::BestCost,
            early_accept: true,
            range: None,
            tabu_policy: TabuPolicy::AnyConstituent,
            seed: 0,
        }
    }
}

/// Counters describing a search run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    pub iterations: u64,
    pub accepted: u64,
    pub rejected_tabu: u64,
    pub aspirated: u64,
    pub improved_best: u64,
}

/// Outcome of one engine step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepOutcome {
    /// Move applied; `improved` = new global best found.
    Accepted { cost: f64, improved: bool },
    /// Move was tabu and failed aspiration; state unchanged.
    RejectedTabu,
}

/// Result of a run-to-completion search.
#[derive(Clone, Debug)]
pub struct SearchResult<S> {
    pub best_cost: f64,
    pub best: S,
    pub final_cost: f64,
    pub trace: Trace,
    pub stats: SearchStats,
}

/// The stepping tabu search engine (state across iterations).
#[derive(Clone, Debug)]
pub struct TabuEngine<P: SearchProblem> {
    config: TabuSearchConfig,
    rng: Rng,
    tabu: TabuList<P::Attribute>,
    memory: FrequencyMemory<P::Attribute>,
    best: P::Snapshot,
    best_cost: f64,
    iter: u64,
    stats: SearchStats,
    trace: Trace,
    /// Batch buffers for candidate sampling, reused across every step.
    scratch: CandidateScratch<P::Move>,
}

impl<P: SearchProblem> TabuEngine<P> {
    /// Create an engine anchored at the problem's current state.
    pub fn new(config: TabuSearchConfig, problem: &P, now: f64) -> TabuEngine<P> {
        let best = problem.snapshot();
        let best_cost = problem.cost();
        let mut trace = Trace::new();
        trace.record(now, 0, best_cost);
        TabuEngine {
            rng: Rng::new(config.seed),
            config,
            tabu: TabuList::new(config.tenure),
            memory: FrequencyMemory::new(),
            best,
            best_cost,
            iter: 0,
            stats: SearchStats::default(),
            trace,
            scratch: CandidateScratch::new(),
        }
    }

    #[inline]
    pub fn config(&self) -> &TabuSearchConfig {
        &self.config
    }

    #[inline]
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }

    #[inline]
    pub fn best(&self) -> &P::Snapshot {
        &self.best
    }

    #[inline]
    pub fn iteration(&self) -> u64 {
        self.iter
    }

    #[inline]
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    #[inline]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    #[inline]
    pub fn memory(&self) -> &FrequencyMemory<P::Attribute> {
        &self.memory
    }

    #[inline]
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Export the active tabu entries (what the master/TSW protocol ships
    /// alongside solutions).
    pub fn export_tabu(&self) -> Vec<(P::Attribute, u64)> {
        self.tabu.export(self.iter)
    }

    /// Switch the engine's search knobs mid-run (a portfolio strategy
    /// reassignment). The best-so-far, trace, statistics, frequency
    /// memory, and RNG stream all carry over untouched; standing tabu
    /// entries keep the expiry they were inserted with, new entries use
    /// the new tenure.
    pub fn reconfigure(&mut self, tenure: u64, candidates: usize, depth: usize, asp: Aspiration) {
        self.config.tenure = tenure;
        self.config.candidates = candidates;
        self.config.depth = depth;
        self.config.aspiration = asp;
        self.tabu.set_tenure(tenure);
    }

    /// Adopt a foreign solution plus its tabu list (master broadcast).
    pub fn adopt(
        &mut self,
        problem: &mut P,
        snapshot: &P::Snapshot,
        tabu_entries: &[(P::Attribute, u64)],
        now: f64,
    ) {
        problem.restore(snapshot);
        self.tabu.import(tabu_entries, self.iter);
        let cost = problem.cost();
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best = snapshot.clone();
            self.trace.record(now, self.iter, cost);
        }
    }

    /// Run one local iteration: build a compound move locally and feed it
    /// through the tabu test.
    pub fn step(&mut self, problem: &mut P, now: f64) -> StepOutcome {
        let compound = build_compound_with(
            problem,
            &mut self.rng,
            self.config.range,
            self.config.candidates,
            self.config.depth,
            self.config.early_accept,
            &mut self.scratch,
        );
        // `build_compound` leaves the chain applied; the tabu test needs the
        // pre-compound state.
        undo_compound(problem, &compound);
        self.step_with(problem, &compound, now)
    }

    /// One local iteration with an externally built compound move (the
    /// parallel TSW receives these from its candidate-list workers). The
    /// problem must be in the pre-compound state; on acceptance the moves
    /// are applied.
    pub fn step_with(
        &mut self,
        problem: &mut P,
        compound: &CompoundMove<P::Move>,
        now: f64,
    ) -> StepOutcome {
        self.iter += 1;
        self.stats.iterations += 1;

        let is_tabu = self.compound_is_tabu(problem, compound);
        let aspirated = is_tabu && self.config.aspiration.admits(compound.cost, self.best_cost);
        if is_tabu && !aspirated {
            self.stats.rejected_tabu += 1;
            return StepOutcome::RejectedTabu;
        }
        if aspirated {
            self.stats.aspirated += 1;
        }

        // Accept: apply each elementary move, recording its *source*
        // attributes (pre-apply, per move) in tabu + frequency memory.
        for mv in &compound.moves {
            let (a, b) = problem.attributes(mv);
            self.tabu.make_tabu(a.clone(), self.iter);
            self.memory.record(a);
            if let Some(b) = b {
                self.tabu.make_tabu(b.clone(), self.iter);
                self.memory.record(b);
            }
            problem.apply(mv);
        }
        self.stats.accepted += 1;

        let cost = problem.cost();
        let improved = cost < self.best_cost;
        if improved {
            self.best_cost = cost;
            self.best = problem.snapshot();
            self.stats.improved_best += 1;
            self.trace.record(now, self.iter, cost);
        }
        StepOutcome::Accepted { cost, improved }
    }

    fn compound_is_tabu(&self, problem: &P, compound: &CompoundMove<P::Move>) -> bool {
        let check = |mv: &P::Move| {
            let (a, b) = problem.target_attributes(mv);
            self.tabu.is_tabu(&a, self.iter)
                || b.map(|b| self.tabu.is_tabu(&b, self.iter)).unwrap_or(false)
        };
        match self.config.tabu_policy {
            TabuPolicy::FirstMoveOnly => compound.moves.first().map(check).unwrap_or(false),
            // Constituents beyond the first are checked against the
            // pre-compound state — exact for the first move, a sound
            // approximation for deeper ones (chains are short).
            TabuPolicy::AnyConstituent => compound.moves.iter().any(check),
        }
    }

    /// Finish: restore the best solution into the problem and produce the
    /// result record.
    pub fn into_result(self, problem: &mut P) -> SearchResult<P::Snapshot> {
        let final_cost = problem.cost();
        problem.restore(&self.best);
        SearchResult {
            best_cost: self.best_cost,
            best: self.best,
            final_cost,
            trace: self.trace,
            stats: self.stats,
        }
    }
}

/// Run-to-completion sequential tabu search (the paper's Figure 1).
#[derive(Clone, Debug)]
pub struct TabuSearch {
    config: TabuSearchConfig,
}

impl TabuSearch {
    pub fn new(config: TabuSearchConfig) -> TabuSearch {
        TabuSearch { config }
    }

    /// Run with wall-clock trace timestamps.
    pub fn run<P: SearchProblem>(&self, problem: &mut P) -> SearchResult<P::Snapshot> {
        let start = std::time::Instant::now();
        self.run_with_clock(problem, move || start.elapsed().as_secs_f64())
    }

    /// Run with a caller-supplied clock (the virtual cluster passes
    /// simulated time).
    pub fn run_with_clock<P: SearchProblem>(
        &self,
        problem: &mut P,
        mut clock: impl FnMut() -> f64,
    ) -> SearchResult<P::Snapshot> {
        let mut engine = TabuEngine::new(self.config, problem, clock());
        for _ in 0..self.config.iterations {
            engine.step(problem, clock());
        }
        engine.into_result(problem)
    }
}

/// Re-apply helper exposed for the parallel layers.
pub fn apply_moves<P: SearchProblem>(problem: &mut P, compound: &CompoundMove<P::Move>) {
    apply_compound(problem, compound);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap::Qap;

    fn config(iters: u64, seed: u64) -> TabuSearchConfig {
        TabuSearchConfig {
            iterations: iters,
            seed,
            ..TabuSearchConfig::default()
        }
    }

    #[test]
    fn search_improves_random_qap() {
        let mut q = Qap::random(20, 1);
        let start = q.cost();
        let result = TabuSearch::new(config(300, 2)).run(&mut q);
        assert!(
            result.best_cost < start * 0.95,
            "300 iterations should improve a random QAP by >5% (got {} from {start})",
            result.best_cost
        );
        // Problem ends restored at the best solution.
        assert!((q.cost() - result.best_cost).abs() < 1e-6);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut q1 = Qap::random(15, 3);
        let mut q2 = Qap::random(15, 3);
        let r1 = TabuSearch::new(config(100, 9)).run(&mut q1);
        let r2 = TabuSearch::new(config(100, 9)).run(&mut q2);
        assert_eq!(r1.best_cost, r2.best_cost);
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(q1.snapshot_assignment(), q2.snapshot_assignment());
    }

    #[test]
    fn different_seeds_explore_differently() {
        let mut q1 = Qap::random(15, 3);
        let mut q2 = Qap::random(15, 3);
        let r1 = TabuSearch::new(config(50, 1)).run(&mut q1);
        let r2 = TabuSearch::new(config(50, 2)).run(&mut q2);
        // Costs could coincide, but full stats equality is vanishingly
        // unlikely across different streams.
        assert!(
            r1.best_cost != r2.best_cost || r1.stats != r2.stats,
            "independent streams should differ somewhere"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let mut q = Qap::random(12, 4);
        let r = TabuSearch::new(config(200, 5)).run(&mut q);
        assert_eq!(r.stats.iterations, 200);
        assert_eq!(r.stats.accepted + r.stats.rejected_tabu, 200);
        assert!(r.stats.improved_best >= 1);
        assert!(r.stats.aspirated <= r.stats.accepted);
    }

    #[test]
    fn trace_is_monotone_decreasing() {
        let mut q = Qap::random(12, 6);
        let r = TabuSearch::new(config(200, 7)).run(&mut q);
        let pts = r.trace.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].best_cost < w[0].best_cost);
            assert!(w[1].time >= w[0].time);
        }
        assert_eq!(r.trace.best_cost(), Some(r.best_cost));
    }

    #[test]
    fn range_restriction_is_respected() {
        // Anchoring all moves in a sub-range must still work end to end.
        let mut q = Qap::random(20, 8);
        let cfg = TabuSearchConfig {
            range: Some((0, 5)),
            iterations: 100,
            seed: 11,
            ..TabuSearchConfig::default()
        };
        let start = q.cost();
        let r = TabuSearch::new(cfg).run(&mut q);
        assert!(r.best_cost <= start);
    }

    #[test]
    fn tabu_rejections_occur_with_long_tenure_and_no_aspiration() {
        let mut q = Qap::random(8, 9);
        let cfg = TabuSearchConfig {
            tenure: 50,
            candidates: 2,
            depth: 1,
            iterations: 300,
            aspiration: Aspiration::None,
            seed: 13,
            ..TabuSearchConfig::default()
        };
        let r = TabuSearch::new(cfg).run(&mut q);
        assert!(
            r.stats.rejected_tabu > 0,
            "tiny instance + long tenure must hit tabu rejections"
        );
    }

    #[test]
    fn aspiration_rescues_improving_tabu_moves() {
        let mut q_no = Qap::random(8, 10);
        let mut q_yes = Qap::random(8, 10);
        let base = TabuSearchConfig {
            tenure: 50,
            candidates: 4,
            depth: 1,
            iterations: 300,
            seed: 13,
            ..TabuSearchConfig::default()
        };
        let no = TabuSearch::new(TabuSearchConfig {
            aspiration: Aspiration::None,
            ..base
        })
        .run(&mut q_no);
        let yes = TabuSearch::new(TabuSearchConfig {
            aspiration: Aspiration::BestCost,
            ..base
        })
        .run(&mut q_yes);
        assert!(yes.stats.aspirated > 0, "aspiration should fire");
        assert!(
            yes.best_cost <= no.best_cost + 1e-9,
            "aspiration never hurts on this setup"
        );
    }

    #[test]
    fn engine_adopt_takes_foreign_solution() {
        let mut q = Qap::random(12, 14);
        let mut engine = TabuEngine::new(config(0, 15), &q, 0.0);
        // Manufacture a better snapshot by running a quick search on a copy.
        let mut copy = q.clone();
        let r = TabuSearch::new(config(200, 16)).run(&mut copy);
        assert!(r.best_cost < engine.best_cost());
        engine.adopt(&mut q, &r.best, &[], 1.0);
        // The adopted cost is recomputed exactly; allow float slack vs the
        // incrementally tracked value.
        assert!((engine.best_cost() - r.best_cost).abs() < 1e-6);
        assert!((q.cost() - r.best_cost).abs() < 1e-6);
    }

    #[test]
    fn step_with_rejects_tabu_compound() {
        let mut q = Qap::random(10, 17);
        let cfg = TabuSearchConfig {
            tenure: 100,
            aspiration: Aspiration::None,
            seed: 18,
            ..TabuSearchConfig::default()
        };
        let mut engine = TabuEngine::new(cfg, &q, 0.0);
        // Accept one compound.
        let out = engine.step(&mut q, 0.0);
        let StepOutcome::Accepted { .. } = out else {
            panic!("first step should accept");
        };
        // Build the exact reverse move by hand: re-swapping the same pair
        // recreates the source attributes that are now tabu.
        let accepted_iter = engine.iteration();
        assert!(accepted_iter >= 1);
        // A full reversal compound: undo the last accepted chain.
        // (Use step_with on a manually reversed compound of depth 1.)
        let reverse = crate::compound::CompoundMove {
            moves: vec![],
            cost: q.cost(),
            start_cost: q.cost(),
        };
        // An empty compound is trivially non-tabu and "accepted" as a
        // no-op; this asserts step_with tolerates degenerate input.
        let out = engine.step_with(&mut q, &reverse, 0.0);
        assert!(matches!(out, StepOutcome::Accepted { .. }));
    }
}
