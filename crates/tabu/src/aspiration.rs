//! Aspiration criteria: when a tabu move is accepted anyway.
//!
//! The classic (and the paper's) criterion is *best-cost aspiration*: a
//! tabu move leading to a solution better than the best found so far is
//! always admissible — tabu status exists to prevent cycling, and a new
//! global best cannot be a revisit.

/// Aspiration policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Aspiration {
    /// Never override tabu status.
    None,
    /// Accept a tabu move if its trial cost beats the best known cost.
    #[default]
    BestCost,
}

impl Aspiration {
    /// Does a tabu move with `trial_cost` qualify, given the best cost so
    /// far?
    #[inline]
    pub fn admits(self, trial_cost: f64, best_cost: f64) -> bool {
        match self {
            Aspiration::None => false,
            Aspiration::BestCost => trial_cost < best_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_cost_admits_strict_improvement_only() {
        let a = Aspiration::BestCost;
        assert!(a.admits(0.9, 1.0));
        assert!(!a.admits(1.0, 1.0));
        assert!(!a.admits(1.1, 1.0));
    }

    #[test]
    fn none_never_admits() {
        let a = Aspiration::None;
        assert!(!a.admits(0.0, 1.0));
    }

    #[test]
    fn default_is_best_cost() {
        assert_eq!(Aspiration::default(), Aspiration::BestCost);
    }
}
