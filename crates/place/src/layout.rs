//! The placement grid: rows of uniform slots.
//!
//! Standard-cell placement arranges cells in horizontal rows. Following the
//! slot-based model used by the paper's research group, the layout is a grid
//! of `num_rows × num_cols` uniform slots; a cell occupies exactly one slot
//! and a *move* swaps the slot assignment of two cells. Cell widths still
//! matter: they drive the row-width (area) objective.

/// Index of a slot on the layout grid (row-major).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

impl SlotId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SlotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A row-based placement grid.
#[derive(Clone, Debug, PartialEq)]
pub struct Layout {
    num_rows: usize,
    num_cols: usize,
    /// Vertical pitch between row centers.
    row_height: f64,
    /// Horizontal pitch between slot centers.
    site_pitch: f64,
}

impl Layout {
    /// Create a grid. Panics on a degenerate (empty) grid.
    pub fn new(num_rows: usize, num_cols: usize, row_height: f64, site_pitch: f64) -> Layout {
        assert!(num_rows >= 1 && num_cols >= 1, "layout must be non-empty");
        assert!(row_height > 0.0 && site_pitch > 0.0);
        Layout {
            num_rows,
            num_cols,
            row_height,
            site_pitch,
        }
    }

    /// A layout sized for `n_cells` with the conventional wide-row aspect:
    /// roughly four times as many columns as rows. Always provides at least
    /// `n_cells` slots (the excess stays empty).
    pub fn for_cells(n_cells: usize) -> Layout {
        assert!(n_cells >= 1);
        let rows = (((n_cells as f64) / 4.0).sqrt().round() as usize).max(2);
        let cols = n_cells.div_ceil(rows);
        Layout::new(rows, cols, 2.0, 1.0)
    }

    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    #[inline]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    #[inline]
    pub fn num_slots(&self) -> usize {
        self.num_rows * self.num_cols
    }

    #[inline]
    pub fn row_height(&self) -> f64 {
        self.row_height
    }

    #[inline]
    pub fn site_pitch(&self) -> f64 {
        self.site_pitch
    }

    /// Slot at `(row, col)`.
    #[inline]
    pub fn slot(&self, row: usize, col: usize) -> SlotId {
        debug_assert!(row < self.num_rows && col < self.num_cols);
        SlotId((row * self.num_cols + col) as u32)
    }

    /// Row containing a slot.
    #[inline]
    pub fn row_of(&self, slot: SlotId) -> usize {
        slot.index() / self.num_cols
    }

    /// Column of a slot within its row.
    #[inline]
    pub fn col_of(&self, slot: SlotId) -> usize {
        slot.index() % self.num_cols
    }

    /// Center coordinates of a slot.
    #[inline]
    pub fn position(&self, slot: SlotId) -> (f64, f64) {
        let row = self.row_of(slot);
        let col = self.col_of(slot);
        (
            (col as f64 + 0.5) * self.site_pitch,
            (row as f64 + 0.5) * self.row_height,
        )
    }

    /// All slots in row-major order.
    pub fn slots(&self) -> impl Iterator<Item = SlotId> {
        (0..self.num_slots() as u32).map(SlotId)
    }

    /// Total die height.
    pub fn height(&self) -> f64 {
        self.num_rows as f64 * self.row_height
    }

    /// Total die width.
    pub fn width(&self) -> f64 {
        self.num_cols as f64 * self.site_pitch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_row_col_roundtrip() {
        let l = Layout::new(3, 5, 2.0, 1.0);
        for row in 0..3 {
            for col in 0..5 {
                let s = l.slot(row, col);
                assert_eq!(l.row_of(s), row);
                assert_eq!(l.col_of(s), col);
            }
        }
    }

    #[test]
    fn positions_are_center_of_pitch() {
        let l = Layout::new(2, 2, 2.0, 1.0);
        assert_eq!(l.position(l.slot(0, 0)), (0.5, 1.0));
        assert_eq!(l.position(l.slot(1, 1)), (1.5, 3.0));
    }

    #[test]
    fn for_cells_has_enough_slots() {
        for n in [1, 2, 10, 56, 395, 1451, 2243] {
            let l = Layout::for_cells(n);
            assert!(l.num_slots() >= n, "{n} cells need {n} slots");
            // Not wasteful: less than one extra row's worth of slack + a row.
            assert!(l.num_slots() < n + l.num_cols() + l.num_rows());
        }
    }

    #[test]
    fn for_cells_wide_aspect() {
        let l = Layout::for_cells(1000);
        assert!(l.num_cols() >= 2 * l.num_rows());
    }

    #[test]
    fn dimensions() {
        let l = Layout::new(4, 10, 2.0, 1.5);
        assert_eq!(l.height(), 8.0);
        assert_eq!(l.width(), 15.0);
        assert_eq!(l.num_slots(), 40);
        assert_eq!(l.slots().count(), 40);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        Layout::new(0, 3, 2.0, 1.0);
    }
}
