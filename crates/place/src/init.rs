//! Initial placement construction.
//!
//! The paper starts every worker from the same initial solution ("selected
//! randomly or using any constructive algorithm"). Both options are
//! provided: uniform random, and a cheap constructive heuristic that lays
//! cells out in timing-topological order along snaking rows, which groups
//! connected cells and gives a noticeably better starting wirelength.

use crate::layout::Layout;
use crate::placement::Placement;
use pts_netlist::{CellId, CellKind, Netlist, TimingGraph};
use pts_util::Rng;

/// Uniform random placement on an auto-sized layout.
pub fn random_placement(netlist: &Netlist, seed: u64) -> Placement {
    let mut rng = Rng::new(seed);
    Placement::random(
        Layout::for_cells(netlist.num_cells()),
        netlist.num_cells(),
        &mut rng,
    )
}

/// Constructive placement: cells sorted by (timing level, kind, id) and
/// written into rows in a snake pattern, so topologically adjacent cells
/// land near each other.
pub fn constructive_placement(netlist: &Netlist, timing: &TimingGraph) -> Placement {
    let layout = Layout::for_cells(netlist.num_cells());
    let mut order: Vec<CellId> = netlist.cell_ids().collect();
    let kind_rank = |k: CellKind| match k {
        CellKind::Input => 0u32,
        CellKind::FlipFlop => 1,
        CellKind::Logic => 2,
        CellKind::Output => 3,
    };
    order.sort_by_key(|&c| (timing.level(c), kind_rank(netlist.cell(c).kind), c.index()));

    let mut placement = Placement::sequential(layout.clone(), netlist.num_cells());
    // Re-assign: walk slots in snake order and put the sorted cells there.
    // Build via swaps on the sequential placement to preserve invariants.
    let mut target_slot_of_cell = vec![0u32; netlist.num_cells()];
    for (slot_cursor, &cell) in order.iter().enumerate() {
        let row = slot_cursor / layout.num_cols();
        let col_raw = slot_cursor % layout.num_cols();
        let col = if row.is_multiple_of(2) {
            col_raw
        } else {
            layout.num_cols() - 1 - col_raw
        };
        target_slot_of_cell[cell.index()] = layout.slot(row, col).0;
    }
    apply_target(&mut placement, &target_slot_of_cell);
    placement
}

/// Rearrange `placement` so every cell sits in its target slot, using swaps
/// and moves-to-empty only (keeps the bijection invariant at every step).
fn apply_target(placement: &mut Placement, target: &[u32]) {
    for (i, &t) in target.iter().enumerate() {
        let cell = CellId(i as u32);
        let want = crate::layout::SlotId(t);
        let have = placement.slot_of(cell);
        if have == want {
            continue;
        }
        match placement.cell_at(want) {
            Some(occupant) => placement.swap_cells(cell, occupant),
            None => placement.move_to_empty(cell, want),
        }
    }
}

/// Perturb a placement with `n` random swaps (used to spread worker starts
/// in tests; the real diversification lives in `pts-tabu`).
pub fn perturb(placement: &mut Placement, n: usize, rng: &mut Rng) {
    let cells = placement.num_cells();
    if cells < 2 {
        return;
    }
    for _ in 0..n {
        let a = CellId(rng.index(cells) as u32);
        let mut b = a;
        while b == a {
            b = CellId(rng.index(cells) as u32);
        }
        placement.swap_cells(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wirelength::WirelengthModel;
    use pts_netlist::c532;

    #[test]
    fn random_is_seed_deterministic() {
        let nl = c532();
        let a = random_placement(&nl, 9);
        let b = random_placement(&nl, 9);
        assert_eq!(a, b);
        let c = random_placement(&nl, 10);
        assert!(a.hamming_distance(&c) > 0);
    }

    #[test]
    fn constructive_beats_random_wirelength() {
        let nl = c532();
        let tg = TimingGraph::build(&nl).unwrap();
        let random = random_placement(&nl, 1);
        let constructive = constructive_placement(&nl, &tg);
        constructive.check_consistency().unwrap();
        let wl_rand = WirelengthModel::new(&nl, &random).total();
        let wl_cons = WirelengthModel::new(&nl, &constructive).total();
        assert!(
            wl_cons < wl_rand,
            "constructive ({wl_cons}) should beat random ({wl_rand})"
        );
    }

    #[test]
    fn constructive_is_deterministic() {
        let nl = c532();
        let tg = TimingGraph::build(&nl).unwrap();
        let a = constructive_placement(&nl, &tg);
        let b = constructive_placement(&nl, &tg);
        assert_eq!(a, b);
    }

    #[test]
    fn perturb_changes_exactly_some_cells() {
        let nl = c532();
        let mut p = random_placement(&nl, 2);
        let original = p.clone();
        let mut rng = Rng::new(4);
        perturb(&mut p, 10, &mut rng);
        p.check_consistency().unwrap();
        let d = p.hamming_distance(&original);
        assert!(
            d > 0 && d <= 20,
            "10 swaps move at most 20 cells, moved {d}"
        );
    }
}
