//! The placement assignment: a bijection between cells and a subset of slots.

use crate::layout::{Layout, SlotId};
use pts_netlist::{CellId, Netlist};
use pts_util::Rng;

/// Cell → slot assignment over a [`Layout`].
///
/// Invariant: `slot_of(c) = s` ⇔ `cell_at(s) = Some(c)`; every cell is
/// placed; a slot holds at most one cell. Slots beyond the number of cells
/// remain empty.
#[derive(Clone, Debug, PartialEq)]
pub struct Placement {
    layout: Layout,
    slot_of_cell: Vec<SlotId>,
    cell_in_slot: Vec<Option<CellId>>,
}

impl Placement {
    /// Place cells row-major in id order — the deterministic constructive
    /// start used by tests and the greedy initializer.
    pub fn sequential(layout: Layout, n_cells: usize) -> Placement {
        assert!(layout.num_slots() >= n_cells, "layout too small");
        let mut cell_in_slot = vec![None; layout.num_slots()];
        let mut slot_of_cell = Vec::with_capacity(n_cells);
        for (i, slot) in cell_in_slot.iter_mut().enumerate().take(n_cells) {
            slot_of_cell.push(SlotId(i as u32));
            *slot = Some(CellId(i as u32));
        }
        Placement {
            layout,
            slot_of_cell,
            cell_in_slot,
        }
    }

    /// Uniformly random placement.
    pub fn random(layout: Layout, n_cells: usize, rng: &mut Rng) -> Placement {
        assert!(layout.num_slots() >= n_cells, "layout too small");
        let mut slots: Vec<u32> = (0..layout.num_slots() as u32).collect();
        rng.shuffle(&mut slots);
        let mut cell_in_slot = vec![None; layout.num_slots()];
        let mut slot_of_cell = Vec::with_capacity(n_cells);
        for (i, &s) in slots.iter().enumerate().take(n_cells) {
            let slot = SlotId(s);
            slot_of_cell.push(slot);
            cell_in_slot[slot.index()] = Some(CellId(i as u32));
        }
        Placement {
            layout,
            slot_of_cell,
            cell_in_slot,
        }
    }

    /// Rebuild a placement from an explicit cell → slot assignment (the
    /// inverse of reading [`Placement::slot_of`] for every cell) — the
    /// wire-decoder's constructor. Fails when the assignment is not a
    /// bijection into the layout's slots.
    pub fn from_slot_assignment(
        layout: Layout,
        slot_of_cell: Vec<SlotId>,
    ) -> Result<Placement, String> {
        if slot_of_cell.len() > layout.num_slots() {
            return Err(format!(
                "{} cells do not fit {} slots",
                slot_of_cell.len(),
                layout.num_slots()
            ));
        }
        let mut cell_in_slot = vec![None; layout.num_slots()];
        for (ci, &slot) in slot_of_cell.iter().enumerate() {
            if slot.index() >= cell_in_slot.len() {
                return Err(format!("cell c{ci} assigned to out-of-range slot"));
            }
            if cell_in_slot[slot.index()].is_some() {
                return Err(format!("slot {slot} assigned twice"));
            }
            cell_in_slot[slot.index()] = Some(CellId(ci as u32));
        }
        Ok(Placement {
            layout,
            slot_of_cell,
            cell_in_slot,
        })
    }

    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    #[inline]
    pub fn num_cells(&self) -> usize {
        self.slot_of_cell.len()
    }

    #[inline]
    pub fn slot_of(&self, cell: CellId) -> SlotId {
        self.slot_of_cell[cell.index()]
    }

    #[inline]
    pub fn cell_at(&self, slot: SlotId) -> Option<CellId> {
        self.cell_in_slot[slot.index()]
    }

    /// Center coordinates of a cell's slot.
    #[inline]
    pub fn position(&self, cell: CellId) -> (f64, f64) {
        self.layout.position(self.slot_of(cell))
    }

    /// Row index of a cell's slot.
    #[inline]
    pub fn row_of(&self, cell: CellId) -> usize {
        self.layout.row_of(self.slot_of(cell))
    }

    /// Exchange the slots of two distinct cells.
    pub fn swap_cells(&mut self, a: CellId, b: CellId) {
        debug_assert_ne!(a, b, "swap requires distinct cells");
        let sa = self.slot_of_cell[a.index()];
        let sb = self.slot_of_cell[b.index()];
        self.slot_of_cell[a.index()] = sb;
        self.slot_of_cell[b.index()] = sa;
        self.cell_in_slot[sa.index()] = Some(b);
        self.cell_in_slot[sb.index()] = Some(a);
    }

    /// Move a cell to an empty slot (extension beyond the paper's pair
    /// swaps; used by diversification).
    pub fn move_to_empty(&mut self, cell: CellId, slot: SlotId) {
        debug_assert!(self.cell_at(slot).is_none(), "target slot occupied");
        let old = self.slot_of_cell[cell.index()];
        self.cell_in_slot[old.index()] = None;
        self.cell_in_slot[slot.index()] = Some(cell);
        self.slot_of_cell[cell.index()] = slot;
    }

    /// Empty slots, if any.
    pub fn empty_slots(&self) -> Vec<SlotId> {
        self.cell_in_slot
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| SlotId(i as u32))
            .collect()
    }

    /// Verify the bijection invariant; used by tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut seen = vec![false; self.cell_in_slot.len()];
        for (ci, &slot) in self.slot_of_cell.iter().enumerate() {
            if slot.index() >= self.cell_in_slot.len() {
                return Err(format!("cell c{ci} assigned to out-of-range slot"));
            }
            if seen[slot.index()] {
                return Err(format!("slot {slot} assigned twice"));
            }
            seen[slot.index()] = true;
            if self.cell_in_slot[slot.index()] != Some(CellId(ci as u32)) {
                return Err(format!("slot {slot} does not map back to cell c{ci}"));
            }
        }
        let occupied = self.cell_in_slot.iter().filter(|c| c.is_some()).count();
        if occupied != self.slot_of_cell.len() {
            return Err(format!(
                "{} slots occupied but {} cells placed",
                occupied,
                self.slot_of_cell.len()
            ));
        }
        Ok(())
    }

    /// The cells whose slot differs from `base`, with their slot in
    /// `self` — the placement move delta. Empty when the placements are
    /// equal. Both placements must be over the same layout.
    pub fn diff_from(&self, base: &Placement) -> Vec<(CellId, SlotId)> {
        assert_eq!(
            self.num_cells(),
            base.num_cells(),
            "placements must place the same cells"
        );
        self.slot_of_cell
            .iter()
            .zip(base.slot_of_cell.iter())
            .enumerate()
            .filter(|(_, (new, old))| new != old)
            .map(|(c, (new, _))| (CellId(c as u32), *new))
            .collect()
    }

    /// Apply a [`Placement::diff_from`] result onto this placement (a
    /// copy of the base the diff was taken against), reproducing the
    /// placement the diff was taken *from*. Two passes keep the
    /// cell ↔ slot bijection intact: every moved cell first vacates its
    /// old slot, then all moved cells land on their new slots (which are
    /// each either freshly vacated or already empty).
    pub fn apply_diff(&mut self, moves: &[(CellId, SlotId)]) {
        for &(cell, _) in moves {
            let old = self.slot_of_cell[cell.index()];
            self.cell_in_slot[old.index()] = None;
        }
        for &(cell, slot) in moves {
            self.slot_of_cell[cell.index()] = slot;
            self.cell_in_slot[slot.index()] = Some(cell);
        }
        debug_assert_eq!(self.check_consistency(), Ok(()));
    }

    /// Distance between two placements: number of cells in different slots.
    /// Used by diversification tests.
    pub fn hamming_distance(&self, other: &Placement) -> usize {
        assert_eq!(self.num_cells(), other.num_cells());
        self.slot_of_cell
            .iter()
            .zip(other.slot_of_cell.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Build a placement for a netlist with an automatically sized layout.
    pub fn auto_random(netlist: &Netlist, rng: &mut Rng) -> Placement {
        Placement::random(
            Layout::for_cells(netlist.num_cells()),
            netlist.num_cells(),
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_consistent() {
        let p = Placement::sequential(Layout::new(3, 4, 2.0, 1.0), 10);
        p.check_consistency().unwrap();
        assert_eq!(p.num_cells(), 10);
        assert_eq!(p.empty_slots().len(), 2);
    }

    #[test]
    fn random_is_consistent_and_seeded() {
        let mut rng = Rng::new(5);
        let p1 = Placement::random(Layout::new(4, 4, 2.0, 1.0), 16, &mut rng);
        p1.check_consistency().unwrap();
        let mut rng2 = Rng::new(5);
        let p2 = Placement::random(Layout::new(4, 4, 2.0, 1.0), 16, &mut rng2);
        assert_eq!(p1, p2, "same seed, same placement");
    }

    #[test]
    fn swap_exchanges_slots() {
        let mut p = Placement::sequential(Layout::new(2, 4, 2.0, 1.0), 8);
        let a = CellId(1);
        let b = CellId(6);
        let (sa, sb) = (p.slot_of(a), p.slot_of(b));
        p.swap_cells(a, b);
        assert_eq!(p.slot_of(a), sb);
        assert_eq!(p.slot_of(b), sa);
        p.check_consistency().unwrap();
        // Swapping back restores the original.
        p.swap_cells(a, b);
        assert_eq!(p.slot_of(a), sa);
        assert_eq!(p.slot_of(b), sb);
    }

    #[test]
    fn move_to_empty_works() {
        let mut p = Placement::sequential(Layout::new(2, 4, 2.0, 1.0), 6);
        let empty = p.empty_slots()[0];
        let c = CellId(0);
        let old = p.slot_of(c);
        p.move_to_empty(c, empty);
        assert_eq!(p.slot_of(c), empty);
        assert_eq!(p.cell_at(old), None);
        p.check_consistency().unwrap();
    }

    #[test]
    fn hamming_distance_counts_moved_cells() {
        let mut a = Placement::sequential(Layout::new(2, 4, 2.0, 1.0), 8);
        let b = a.clone();
        assert_eq!(a.hamming_distance(&b), 0);
        a.swap_cells(CellId(0), CellId(3));
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    fn diff_apply_roundtrips() {
        let mut rng = Rng::new(11);
        let base = Placement::random(Layout::new(4, 5, 2.0, 1.0), 16, &mut rng);
        let mut new = base.clone();
        // A chain of swaps plus a move into an empty slot: exercises both
        // cell↔cell exchanges and occupancy changes.
        new.swap_cells(CellId(0), CellId(7));
        new.swap_cells(CellId(7), CellId(12));
        let empty = new.empty_slots()[0];
        new.move_to_empty(CellId(3), empty);

        let delta = new.diff_from(&base);
        assert_eq!(delta.len(), new.hamming_distance(&base));
        let mut rebuilt = base.clone();
        rebuilt.apply_diff(&delta);
        assert_eq!(rebuilt, new);
        rebuilt.check_consistency().unwrap();

        // Empty delta between equal placements.
        assert!(base.diff_from(&base).is_empty());
        let mut same = base.clone();
        same.apply_diff(&[]);
        assert_eq!(same, base);
    }

    #[test]
    fn positions_track_layout() {
        let p = Placement::sequential(Layout::new(2, 4, 2.0, 1.0), 8);
        assert_eq!(p.position(CellId(0)), (0.5, 1.0));
        assert_eq!(p.position(CellId(4)), (0.5, 3.0));
        assert_eq!(p.row_of(CellId(4)), 1);
    }

    #[test]
    #[should_panic(expected = "layout too small")]
    fn rejects_undersized_layout() {
        Placement::sequential(Layout::new(1, 3, 2.0, 1.0), 4);
    }
}
