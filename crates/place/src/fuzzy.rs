//! Fuzzy goal-based multi-objective aggregation.
//!
//! The paper handles the multiobjective nature of placement "using a fuzzy
//! goal-based cost computation" (citing Sait, Youssef & Ali, CEC'99). Each
//! objective gets a piecewise-linear membership function anchored at a
//! *goal* value derived from the initial solution; memberships are combined
//! with Yager's ordered weighted average (OWA):
//!
//! ```text
//! mu(s) = beta * min_i mu_i(s) + (1 - beta) * mean_i mu_i(s)
//! ```
//!
//! `beta = 1` is the pure fuzzy AND (worst objective dominates); `beta = 0`
//! is a plain average. The scalar cost minimized by the search is
//! `1 - mu(s)`.

/// Membership anchor for one objective: `mu = 1` at or below `target`,
/// `mu = 0` at or above `zero`, linear in between.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Goal {
    pub target: f64,
    pub zero: f64,
}

impl Goal {
    pub fn new(target: f64, zero: f64) -> Goal {
        assert!(
            target < zero,
            "goal target {target} must be below zero-membership point {zero}"
        );
        Goal { target, zero }
    }

    /// Membership of objective value `x` (lower objective = higher
    /// membership).
    #[inline]
    pub fn membership(&self, x: f64) -> f64 {
        if x <= self.target {
            1.0
        } else if x >= self.zero {
            0.0
        } else {
            (self.zero - x) / (self.zero - self.target)
        }
    }
}

/// How goals are derived from the initial solution's objective values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GoalConfig {
    /// `target = target_frac * initial` — the aspiration level.
    pub target_frac: f64,
    /// `zero = zero_frac * initial` — where membership bottoms out.
    pub zero_frac: f64,
}

impl Default for GoalConfig {
    fn default() -> Self {
        // Aim for 25% improvement; tolerate 30% degradation before an
        // objective's membership hits zero.
        GoalConfig {
            target_frac: 0.75,
            zero_frac: 1.30,
        }
    }
}

impl GoalConfig {
    pub fn goal_for(&self, initial: f64) -> Goal {
        assert!(initial.is_finite());
        let base = if initial > 0.0 { initial } else { 1.0 };
        Goal::new(self.target_frac * base, self.zero_frac * base)
    }
}

/// Goals for the three placement objectives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FuzzyGoals {
    pub wire: Goal,
    pub delay: Goal,
    pub area: Goal,
}

impl FuzzyGoals {
    pub fn from_initial(wire: f64, delay: f64, area: f64, cfg: &GoalConfig) -> FuzzyGoals {
        FuzzyGoals {
            wire: cfg.goal_for(wire),
            delay: cfg.goal_for(delay),
            area: cfg.goal_for(area),
        }
    }

    /// Per-objective memberships.
    pub fn memberships(&self, wire: f64, delay: f64, area: f64) -> [f64; 3] {
        [
            self.wire.membership(wire),
            self.delay.membership(delay),
            self.area.membership(area),
        ]
    }
}

/// Yager OWA aggregation of memberships.
#[inline]
pub fn owa(memberships: &[f64], beta: f64) -> f64 {
    debug_assert!(!memberships.is_empty());
    let min = memberships.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = memberships.iter().sum::<f64>() / memberships.len() as f64;
    beta * min + (1.0 - beta) * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_shape() {
        let g = Goal::new(10.0, 20.0);
        assert_eq!(g.membership(5.0), 1.0);
        assert_eq!(g.membership(10.0), 1.0);
        assert_eq!(g.membership(20.0), 0.0);
        assert_eq!(g.membership(25.0), 0.0);
        assert!((g.membership(15.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn membership_monotone_nonincreasing() {
        let g = Goal::new(3.0, 9.0);
        let mut prev = f64::INFINITY;
        for i in 0..100 {
            let x = i as f64 * 0.12;
            let m = g.membership(x);
            assert!(m <= prev + 1e-12, "membership must not increase with cost");
            prev = m;
        }
    }

    #[test]
    fn goal_config_scales_initial() {
        let cfg = GoalConfig::default();
        let g = cfg.goal_for(100.0);
        assert!((g.target - 75.0).abs() < 1e-12);
        assert!((g.zero - 130.0).abs() < 1e-12);
    }

    #[test]
    fn goal_config_handles_zero_initial() {
        let cfg = GoalConfig::default();
        let g = cfg.goal_for(0.0);
        assert!(g.target < g.zero);
    }

    #[test]
    fn owa_extremes() {
        let ms = [0.2, 0.6, 1.0];
        assert!((owa(&ms, 1.0) - 0.2).abs() < 1e-12, "beta=1 is min");
        assert!((owa(&ms, 0.0) - 0.6).abs() < 1e-12, "beta=0 is mean");
        let mid = owa(&ms, 0.5);
        assert!(mid > 0.2 && mid < 0.6);
    }

    #[test]
    fn owa_bounded_by_components() {
        let ms = [0.3, 0.7];
        for beta in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = owa(&ms, beta);
            assert!((0.3..=0.7).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn rejects_inverted_goal() {
        Goal::new(5.0, 5.0);
    }

    #[test]
    fn goals_from_initial() {
        let g = FuzzyGoals::from_initial(100.0, 10.0, 40.0, &GoalConfig::default());
        let ms = g.memberships(100.0, 10.0, 40.0);
        // At the initial point each membership is (1.30-1)/(1.30-0.75).
        let expected = (1.30 - 1.0) / (1.30 - 0.75);
        for m in ms {
            assert!((m - expected).abs() < 1e-9);
        }
    }
}
