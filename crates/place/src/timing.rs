//! Static timing analysis with a placement-dependent net delay model.
//!
//! Net delay is linear in HPWL: `d(net) = alpha * hpwl(net)`. Arrival times
//! propagate from timing sources (input pads, flip-flop outputs) through
//! combinational logic to endpoints (output pads, flip-flop inputs); the
//! **critical delay** is the longest such path.
//!
//! # Incremental trial evaluation
//!
//! A full forward sweep runs on every committed move (one O(V+E) pass),
//! caching per-cell arrivals and per-net delays. For a *trial* move that
//! changes the lengths of a few nets, the new critical delay is computed
//! **exactly** by incremental re-propagation: starting from the sinks of
//! the changed nets, arrival times are recomputed in topological order (a
//! min-heap on cached topo positions) into an epoch-stamped *overlay* — the
//! cached state is never mutated, so no undo is needed and consecutive
//! trials are independent. Work is bounded by the affected fan-out cone,
//! which for a two-cell swap is a tiny fraction of the circuit.

use crate::wirelength::WirelengthModel;
use pts_netlist::{CellId, CellKind, NetId, Netlist, TimingGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cached timing state for one placement.
#[derive(Clone, Debug)]
pub struct StaModel {
    alpha: f64,
    /// Arrival time at each cell's *output* (sources and logic).
    arrival_out: Vec<f64>,
    /// Arrival time at each cell's *input* (logic and endpoints).
    arrival_in: Vec<f64>,
    /// Cached delay of each net under the current placement.
    net_delay: Vec<f64>,
    /// Current critical (longest) path delay.
    critical: f64,
    /// Position of each logic cell in the topological order (`u32::MAX`
    /// for non-logic cells).
    topo_pos: Vec<u32>,
    // --- trial-evaluation scratch (epoch-stamped overlay) ---
    overlay_out: Vec<f64>,
    overlay_in: Vec<f64>,
    overlay_stamp: Vec<u32>,
    queued_stamp: Vec<u32>,
    endpoint_dirty_stamp: Vec<u32>,
    gen: u32,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Logic cells whose overlay entries changed in the current epoch.
    touched: Vec<CellId>,
}

impl StaModel {
    /// Build and run the first full analysis.
    pub fn new(
        netlist: &Netlist,
        timing: &TimingGraph,
        wirelength: &WirelengthModel,
        alpha: f64,
    ) -> StaModel {
        assert!(alpha >= 0.0, "net-delay coefficient must be non-negative");
        let n = netlist.num_cells();
        let mut topo_pos = vec![u32::MAX; n];
        for (pos, &c) in timing.topo_logic().iter().enumerate() {
            topo_pos[c.index()] = pos as u32;
        }
        let mut model = StaModel {
            alpha,
            arrival_out: vec![0.0; n],
            arrival_in: vec![0.0; n],
            net_delay: vec![0.0; netlist.num_nets()],
            critical: 0.0,
            topo_pos,
            overlay_out: vec![0.0; n],
            overlay_in: vec![0.0; n],
            overlay_stamp: vec![0; n],
            queued_stamp: vec![0; n],
            endpoint_dirty_stamp: vec![0; n],
            gen: 0,
            heap: BinaryHeap::new(),
            touched: Vec::new(),
        };
        model.refresh(netlist, timing, wirelength);
        model
    }

    /// Net-delay coefficient.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current critical path delay.
    #[inline]
    pub fn critical(&self) -> f64 {
        self.critical
    }

    /// Arrival time at a cell's output.
    #[inline]
    pub fn arrival_out(&self, cell: CellId) -> f64 {
        self.arrival_out[cell.index()]
    }

    /// Arrival time at a cell's input (meaningful for logic and endpoints).
    #[inline]
    pub fn arrival_in(&self, cell: CellId) -> f64 {
        self.arrival_in[cell.index()]
    }

    /// Cached delay of a net under the current placement.
    #[inline]
    pub fn net_delay(&self, net: NetId) -> f64 {
        self.net_delay[net.index()]
    }

    /// Full forward refresh using cached HPWLs.
    pub fn refresh(
        &mut self,
        netlist: &Netlist,
        timing: &TimingGraph,
        wirelength: &WirelengthModel,
    ) {
        self.refresh_from_lengths(netlist, timing, |net| wirelength.net_hpwl(net));
    }

    /// Full refresh with an arbitrary net-length source (exposed for tests
    /// and what-if analysis).
    pub fn refresh_from_lengths(
        &mut self,
        netlist: &Netlist,
        timing: &TimingGraph,
        net_hpwl: impl Fn(NetId) -> f64,
    ) {
        for nid in netlist.net_ids() {
            self.net_delay[nid.index()] = self.alpha * net_hpwl(nid);
        }
        for &s in timing.sources() {
            self.arrival_out[s.index()] = netlist.cell(s).intrinsic_delay;
            self.arrival_in[s.index()] = 0.0;
        }
        for &v in timing.topo_logic() {
            let mut a_in = 0.0f64;
            for e in timing.in_edges(v) {
                let a = self.arrival_out[e.from.index()] + self.net_delay[e.net.index()];
                a_in = a_in.max(a);
            }
            self.arrival_in[v.index()] = a_in;
            self.arrival_out[v.index()] = a_in + netlist.cell(v).intrinsic_delay;
        }
        let mut critical = 0.0f64;
        for &v in timing.endpoints() {
            let mut a_in = 0.0f64;
            for e in timing.in_edges(v) {
                let a = self.arrival_out[e.from.index()] + self.net_delay[e.net.index()];
                a_in = a_in.max(a);
            }
            self.arrival_in[v.index()] = a_in;
            critical = critical.max(a_in);
        }
        self.critical = critical;
    }

    #[inline]
    fn overlay_arrival_out(&self, cell: CellId) -> f64 {
        if self.overlay_stamp[cell.index()] == self.gen {
            self.overlay_out[cell.index()]
        } else {
            self.arrival_out[cell.index()]
        }
    }

    /// Exact critical delay if the given nets took the given new HPWLs.
    ///
    /// Incremental forward re-propagation over the affected cone; cached
    /// state is untouched (results live in an epoch-stamped overlay that is
    /// invalidated wholesale on the next call). Because consecutive calls
    /// are independent and the overlay/heap scratch lives inside the
    /// model, a batched candidate evaluation can call this once per
    /// candidate against the same cached state with zero allocation after
    /// warm-up and bit-identical results to one-at-a-time trials.
    pub fn estimate(
        &mut self,
        netlist: &Netlist,
        timing: &TimingGraph,
        changed: &[(NetId, f64)],
    ) -> f64 {
        if changed.is_empty() {
            return self.critical;
        }
        self.propagate(netlist, timing, changed)
    }

    /// Apply new net lengths permanently: the same cone-bounded
    /// re-propagation as [`StaModel::estimate`], but the overlay is written
    /// back into the caches — an O(cone) alternative to
    /// [`StaModel::refresh`]'s O(V+E) sweep, exact by the same argument
    /// (verified against full refreshes in tests).
    pub fn commit_changes(
        &mut self,
        netlist: &Netlist,
        timing: &TimingGraph,
        changed: &[(NetId, f64)],
    ) {
        if changed.is_empty() {
            return;
        }
        let critical = self.propagate(netlist, timing, changed);
        // Write back: touched logic cells take their overlay arrivals...
        for i in 0..self.touched.len() {
            let c = self.touched[i];
            self.arrival_out[c.index()] = self.overlay_out[c.index()];
            self.arrival_in[c.index()] = self.overlay_in[c.index()];
        }
        // ...dirty endpoints take their recomputed input arrivals (their
        // output side — a flip-flop's launch — is unaffected)...
        for &ep in timing.endpoints() {
            if self.endpoint_dirty_stamp[ep.index()] == self.gen {
                self.arrival_in[ep.index()] = self.overlay_in[ep.index()];
            }
        }
        // ...and the changed nets take their new delays.
        for &(nid, h) in changed {
            self.net_delay[nid.index()] = self.alpha * h;
        }
        self.critical = critical;
    }

    /// Shared cone re-propagation. Fills the overlay (arrivals of affected
    /// logic cells, input arrivals of dirty endpoints, `touched` list) and
    /// returns the new critical delay. Cached state is not modified.
    fn propagate(
        &mut self,
        netlist: &Netlist,
        timing: &TimingGraph,
        changed: &[(NetId, f64)],
    ) -> f64 {
        // Fresh epoch for overlay / queued / endpoint-dirty stamps.
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.overlay_stamp.iter_mut().for_each(|s| *s = 0);
            self.queued_stamp.iter_mut().for_each(|s| *s = 0);
            self.endpoint_dirty_stamp.iter_mut().for_each(|s| *s = 0);
            self.gen = 1;
        }
        self.heap.clear();
        self.touched.clear();

        // The changed list is tiny; linear scan beats a map.
        let delay_of = |model: &StaModel, n: NetId| -> f64 {
            for &(c, h) in changed {
                if c == n {
                    return model.alpha * h;
                }
            }
            model.net_delay[n.index()]
        };

        // Seed: every sink of a changed net must re-derive its arrival.
        for &(nid, _) in changed {
            let net = netlist.net(nid);
            for &sink in &net.sinks {
                self.enqueue(netlist, sink);
            }
        }

        // Process in topological order; predecessors always finalize first.
        while let Some(Reverse((_, cell_raw))) = self.heap.pop() {
            let v = CellId(cell_raw);
            let mut a_in = 0.0f64;
            for e in timing.in_edges(v) {
                let a = self.overlay_arrival_out(e.from) + delay_of(self, e.net);
                a_in = a_in.max(a);
            }
            let a_out = a_in + netlist.cell(v).intrinsic_delay;
            if (a_out - self.overlay_arrival_out(v)).abs() > 1e-15 {
                self.overlay_out[v.index()] = a_out;
                self.overlay_in[v.index()] = a_in;
                self.overlay_stamp[v.index()] = self.gen;
                self.touched.push(v);
                for e in timing.out_edges(v) {
                    self.enqueue(netlist, e.to);
                }
            }
        }

        // Critical = max over endpoints, re-deriving dirty ones.
        let mut critical = 0.0f64;
        for &ep in timing.endpoints() {
            let a_in = if self.endpoint_dirty_stamp[ep.index()] == self.gen {
                let mut a = 0.0f64;
                for e in timing.in_edges(ep) {
                    let v = self.overlay_arrival_out(e.from) + delay_of(self, e.net);
                    a = a.max(v);
                }
                self.overlay_in[ep.index()] = a;
                a
            } else {
                self.arrival_in[ep.index()]
            };
            critical = critical.max(a_in);
        }
        critical
    }

    fn enqueue(&mut self, netlist: &Netlist, cell: CellId) {
        match netlist.cell(cell).kind {
            CellKind::Logic => {
                if self.queued_stamp[cell.index()] != self.gen {
                    self.queued_stamp[cell.index()] = self.gen;
                    self.heap
                        .push(Reverse((self.topo_pos[cell.index()], cell.0)));
                }
            }
            // Endpoints are not propagated through; they are re-derived in
            // the final max. (A flip-flop's output arrival is fixed — only
            // its input side is affected.)
            CellKind::Output | CellKind::FlipFlop => {
                self.endpoint_dirty_stamp[cell.index()] = self.gen;
            }
            CellKind::Input => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::placement::Placement;
    use pts_netlist::{generate, Cell, CellKind, CircuitSpec, NetlistBuilder, TimingGraph};
    use pts_util::Rng;

    /// in(0) -> g1(1) -> g2(2) -> out(3), one row of 4 slots.
    fn chain() -> (Netlist, TimingGraph, Placement) {
        let mut b = NetlistBuilder::new("chain");
        let i = b.add_cell(Cell::new("i", CellKind::Input, 1, 0.0));
        let g1 = b.add_cell(Cell::new("g1", CellKind::Logic, 1, 1.0));
        let g2 = b.add_cell(Cell::new("g2", CellKind::Logic, 1, 2.0));
        let o = b.add_cell(Cell::new("o", CellKind::Output, 1, 0.0));
        b.add_net("n0", i, vec![g1]).unwrap();
        b.add_net("n1", g1, vec![g2]).unwrap();
        b.add_net("n2", g2, vec![o]).unwrap();
        let nl = b.finish().unwrap();
        let tg = TimingGraph::build(&nl).unwrap();
        let p = Placement::sequential(Layout::new(1, 4, 2.0, 1.0), 4);
        (nl, tg, p)
    }

    #[test]
    fn chain_critical_is_sum_of_stage_delays() {
        let (nl, tg, p) = chain();
        let wl = WirelengthModel::new(&nl, &p);
        let sta = StaModel::new(&nl, &tg, &wl, 0.5);
        // Each adjacent pair is 1.0 apart: net delay = 0.5 each.
        // Path: in(0) +0.5 +g1(1.0) +0.5 +g2(2.0) +0.5 = 4.5
        assert!(
            (sta.critical() - 4.5).abs() < 1e-9,
            "got {}",
            sta.critical()
        );
    }

    #[test]
    fn estimate_with_no_changes_returns_critical() {
        let (nl, tg, p) = chain();
        let wl = WirelengthModel::new(&nl, &p);
        let mut sta = StaModel::new(&nl, &tg, &wl, 0.5);
        let est = sta.estimate(&nl, &tg, &[]);
        assert!((est - sta.critical()).abs() < 1e-12);
    }

    #[test]
    fn estimate_tracks_increases_and_decreases_exactly() {
        let (nl, tg, p) = chain();
        let wl = WirelengthModel::new(&nl, &p);
        let mut sta = StaModel::new(&nl, &tg, &wl, 0.5);
        for new_len in [5.0, 0.2, 1.0, 3.7] {
            let changed = [(NetId(1), new_len)];
            let est = sta.estimate(&nl, &tg, &changed);
            let mut scratch = sta.clone();
            scratch.refresh_from_lengths(&nl, &tg, |n| {
                if n == NetId(1) {
                    new_len
                } else {
                    wl.net_hpwl(n)
                }
            });
            assert!(
                (est - scratch.critical()).abs() < 1e-9,
                "len {new_len}: estimate {est} vs exact {}",
                scratch.critical()
            );
        }
    }

    #[test]
    fn estimate_does_not_mutate_cached_state() {
        let (nl, tg, p) = chain();
        let wl = WirelengthModel::new(&nl, &p);
        let mut sta = StaModel::new(&nl, &tg, &wl, 0.5);
        let before = sta.critical();
        let _ = sta.estimate(&nl, &tg, &[(NetId(1), 100.0)]);
        assert_eq!(sta.critical(), before);
        // And a second estimate with no changes still agrees with cache.
        let est = sta.estimate(&nl, &tg, &[]);
        assert!((est - before).abs() < 1e-12);
    }

    #[test]
    fn refresh_matches_fresh_model_after_swaps() {
        let spec = CircuitSpec {
            name: "sta".into(),
            n_inputs: 6,
            n_outputs: 5,
            n_flipflops: 5,
            n_logic: 50,
            depth: 6,
            fanout_tail: 0.15,
            seed: 42,
        };
        let nl = generate(&spec);
        let tg = TimingGraph::build(&nl).unwrap();
        let mut rng = Rng::new(11);
        let mut p = Placement::random(Layout::for_cells(nl.num_cells()), nl.num_cells(), &mut rng);
        let mut wl = WirelengthModel::new(&nl, &p);
        let mut sta = StaModel::new(&nl, &tg, &wl, 0.2);
        for _ in 0..100 {
            let a = CellId(rng.index(nl.num_cells()) as u32);
            let mut b = a;
            while b == a {
                b = CellId(rng.index(nl.num_cells()) as u32);
            }
            p.swap_cells(a, b);
            wl.commit_swap(&nl, &p, a, b);
            sta.refresh(&nl, &tg, &wl);
            let fresh = StaModel::new(&nl, &tg, &wl, 0.2);
            assert!(
                (sta.critical() - fresh.critical()).abs() < 1e-9,
                "cached refresh drifted from scratch"
            );
        }
    }

    #[test]
    fn estimate_is_exact_for_random_swaps() {
        let spec = CircuitSpec {
            name: "sta2".into(),
            n_inputs: 6,
            n_outputs: 5,
            n_flipflops: 5,
            n_logic: 60,
            depth: 6,
            fanout_tail: 0.2,
            seed: 77,
        };
        let nl = generate(&spec);
        let tg = TimingGraph::build(&nl).unwrap();
        let mut rng = Rng::new(3);
        let p = Placement::random(Layout::for_cells(nl.num_cells()), nl.num_cells(), &mut rng);
        let mut wl = WirelengthModel::new(&nl, &p);
        let mut sta = StaModel::new(&nl, &tg, &wl, 0.2);
        for _ in 0..200 {
            let a = CellId(rng.index(nl.num_cells()) as u32);
            let mut b = a;
            while b == a {
                b = CellId(rng.index(nl.num_cells()) as u32);
            }
            let trial = wl.trial_swap(&nl, &p, a, b);
            let est = sta.estimate(&nl, &tg, &trial.nets);
            let mut scratch = sta.clone();
            scratch.refresh_from_lengths(&nl, &tg, |n| {
                trial
                    .nets
                    .iter()
                    .find(|&&(c, _)| c == n)
                    .map(|&(_, h)| h)
                    .unwrap_or_else(|| wl.net_hpwl(n))
            });
            assert!(
                (est - scratch.critical()).abs() < 1e-9,
                "estimate {est} vs exact {}",
                scratch.critical()
            );
        }
    }

    #[test]
    fn commit_changes_equals_full_refresh() {
        let spec = CircuitSpec {
            name: "commit".into(),
            n_inputs: 7,
            n_outputs: 6,
            n_flipflops: 6,
            n_logic: 70,
            depth: 7,
            fanout_tail: 0.2,
            seed: 123,
        };
        let nl = generate(&spec);
        let tg = TimingGraph::build(&nl).unwrap();
        let mut rng = Rng::new(9);
        let mut p = Placement::random(Layout::for_cells(nl.num_cells()), nl.num_cells(), &mut rng);
        let mut wl = WirelengthModel::new(&nl, &p);
        let mut incremental = StaModel::new(&nl, &tg, &wl, 0.2);
        for step in 0..300 {
            let a = CellId(rng.index(nl.num_cells()) as u32);
            let mut b = a;
            while b == a {
                b = CellId(rng.index(nl.num_cells()) as u32);
            }
            let trial = wl.trial_swap(&nl, &p, a, b);
            p.swap_cells(a, b);
            wl.commit_swap(&nl, &p, a, b);
            incremental.commit_changes(&nl, &tg, &trial.nets);
            // Arrival caches must match a scratch-built model exactly.
            let fresh = StaModel::new(&nl, &tg, &wl, 0.2);
            assert!(
                (incremental.critical() - fresh.critical()).abs() < 1e-9,
                "step {step}: critical drifted ({} vs {})",
                incremental.critical(),
                fresh.critical()
            );
            for c in nl.cell_ids() {
                assert!(
                    (incremental.arrival_out(c) - fresh.arrival_out(c)).abs() < 1e-9,
                    "step {step}: arrival_out({c}) drifted"
                );
                assert!(
                    (incremental.arrival_in(c) - fresh.arrival_in(c)).abs() < 1e-9,
                    "step {step}: arrival_in({c}) drifted"
                );
            }
            for nid in nl.net_ids() {
                assert!(
                    (incremental.net_delay(nid) - fresh.net_delay(nid)).abs() < 1e-12,
                    "step {step}: net_delay({nid}) drifted"
                );
            }
        }
    }

    #[test]
    fn commit_changes_then_estimate_is_consistent() {
        let (nl, tg, p) = chain();
        let wl = WirelengthModel::new(&nl, &p);
        let mut sta = StaModel::new(&nl, &tg, &wl, 0.5);
        sta.commit_changes(&nl, &tg, &[(NetId(1), 5.0)]);
        // 0 + 0.5 + 1 + 2.5 + 2 + 0.5 = 6.5
        assert!(
            (sta.critical() - 6.5).abs() < 1e-9,
            "got {}",
            sta.critical()
        );
        // A follow-up estimate with no changes returns the committed value.
        let est = sta.estimate(&nl, &tg, &[]);
        assert!((est - 6.5).abs() < 1e-9);
        // And committing the reverse restores the original.
        sta.commit_changes(&nl, &tg, &[(NetId(1), 1.0)]);
        assert!((sta.critical() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn alpha_zero_reduces_to_pure_gate_delay() {
        let (nl, tg, p) = chain();
        let wl = WirelengthModel::new(&nl, &p);
        let sta = StaModel::new(&nl, &tg, &wl, 0.0);
        assert!((sta.critical() - 3.0).abs() < 1e-12); // 0 + 1 + 2
    }

    #[test]
    fn net_delay_cache_matches_alpha_times_hpwl() {
        let (nl, tg, p) = chain();
        let wl = WirelengthModel::new(&nl, &p);
        let sta = StaModel::new(&nl, &tg, &wl, 0.5);
        for nid in nl.net_ids() {
            assert!((sta.net_delay(nid) - 0.5 * wl.net_hpwl(nid)).abs() < 1e-12);
        }
    }
}
