//! Row-width (area) objective.
//!
//! With fixed die height, chip area is driven by the widest row: the area
//! objective is `max_row_width` (in sites). Swapping two cells in different
//! rows with different widths shifts row occupancy; the model keeps the
//! per-row sums plus the top-3 widest rows so a trial move computes the new
//! maximum in O(1).

use crate::placement::Placement;
use pts_netlist::Netlist;

/// Cached per-row cell-width sums.
#[derive(Clone, Debug)]
pub struct RowAreaModel {
    row_width: Vec<u64>,
    /// Top-3 `(width, row)` entries, descending by width; rows distinct.
    top3: Vec<(u64, usize)>,
    total_width: u64,
}

impl RowAreaModel {
    pub fn new(netlist: &Netlist, placement: &Placement) -> RowAreaModel {
        let mut row_width = vec![0u64; placement.layout().num_rows()];
        for (id, cell) in netlist.cells() {
            row_width[placement.row_of(id)] += cell.width as u64;
        }
        let total_width = row_width.iter().sum();
        let mut model = RowAreaModel {
            row_width,
            top3: Vec::with_capacity(3),
            total_width,
        };
        model.rebuild_top3();
        model
    }

    fn rebuild_top3(&mut self) {
        self.top3.clear();
        for (row, &w) in self.row_width.iter().enumerate() {
            let pos = self
                .top3
                .iter()
                .position(|&(tw, _)| tw < w)
                .unwrap_or(self.top3.len());
            if pos < 3 {
                self.top3.insert(pos, (w, row));
                self.top3.truncate(3);
            }
        }
    }

    /// Current widest-row width: the area objective.
    #[inline]
    pub fn max_width(&self) -> u64 {
        self.top3.first().map(|&(w, _)| w).unwrap_or(0)
    }

    /// Width of a specific row.
    #[inline]
    pub fn row_width(&self, row: usize) -> u64 {
        self.row_width[row]
    }

    /// Sum of all cell widths (invariant under swaps).
    #[inline]
    pub fn total_width(&self) -> u64 {
        self.total_width
    }

    /// Perfectly balanced row width — the lower bound of `max_width`.
    pub fn ideal_width(&self) -> f64 {
        self.total_width as f64 / self.row_width.len() as f64
    }

    /// Imbalance ratio `max / ideal`, `>= 1`.
    pub fn imbalance(&self) -> f64 {
        self.max_width() as f64 / self.ideal_width().max(1e-9)
    }

    /// New `max_width` if a cell of width `wa` in `row_a` swapped with a
    /// cell of width `wb` in `row_b`.
    ///
    /// Read-only and O(1) against the cached top-3, so the batched
    /// candidate evaluator calls it once per candidate with no per-batch
    /// setup to hoist.
    #[inline]
    pub fn trial_max(&self, row_a: usize, wa: u64, row_b: usize, wb: u64) -> u64 {
        if row_a == row_b || wa == wb {
            return self.max_width();
        }
        let new_a = self.row_width[row_a] - wa + wb;
        let new_b = self.row_width[row_b] - wb + wa;
        let rest = self
            .top3
            .iter()
            .find(|&&(_, r)| r != row_a && r != row_b)
            .map(|&(w, _)| w)
            .unwrap_or_else(|| {
                // Fewer than three distinct rows cached (tiny layouts):
                // scan exactly.
                self.row_width
                    .iter()
                    .enumerate()
                    .filter(|&(r, _)| r != row_a && r != row_b)
                    .map(|(_, &w)| w)
                    .max()
                    .unwrap_or(0)
            });
        new_a.max(new_b).max(rest)
    }

    /// Apply a committed swap: widths `wa` (was in `row_a`) and `wb` (was in
    /// `row_b`) exchange rows.
    pub fn apply_swap(&mut self, row_a: usize, wa: u64, row_b: usize, wb: u64) {
        if row_a == row_b || wa == wb {
            return;
        }
        self.row_width[row_a] = self.row_width[row_a] - wa + wb;
        self.row_width[row_b] = self.row_width[row_b] - wb + wa;
        self.rebuild_top3();
    }

    /// Recompute from scratch (tests / after placement replacement).
    pub fn rebuild(&mut self, netlist: &Netlist, placement: &Placement) {
        *self = RowAreaModel::new(netlist, placement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use pts_netlist::{generate, CellId, CircuitSpec};
    use pts_util::Rng;

    fn setup(seed: u64) -> (Netlist, Placement) {
        let nl = generate(&CircuitSpec {
            name: "area".into(),
            n_inputs: 5,
            n_outputs: 4,
            n_flipflops: 4,
            n_logic: 35,
            depth: 4,
            fanout_tail: 0.1,
            seed,
        });
        let mut rng = Rng::new(seed);
        let p = Placement::random(Layout::for_cells(nl.num_cells()), nl.num_cells(), &mut rng);
        (nl, p)
    }

    #[test]
    fn max_width_matches_scan() {
        let (nl, p) = setup(1);
        let m = RowAreaModel::new(&nl, &p);
        let scan = (0..p.layout().num_rows())
            .map(|r| m.row_width(r))
            .max()
            .unwrap();
        assert_eq!(m.max_width(), scan);
    }

    #[test]
    fn trial_matches_apply() {
        let (nl, mut p) = setup(2);
        let mut m = RowAreaModel::new(&nl, &p);
        let mut rng = Rng::new(17);
        for _ in 0..300 {
            let a = CellId(rng.index(nl.num_cells()) as u32);
            let mut b = a;
            while b == a {
                b = CellId(rng.index(nl.num_cells()) as u32);
            }
            let (ra, rb) = (p.row_of(a), p.row_of(b));
            let (wa, wb) = (nl.cell(a).width as u64, nl.cell(b).width as u64);
            let predicted = m.trial_max(ra, wa, rb, wb);
            p.swap_cells(a, b);
            m.apply_swap(ra, wa, rb, wb);
            assert_eq!(predicted, m.max_width(), "trial must predict commit");
            // Cross-check against scratch.
            let fresh = RowAreaModel::new(&nl, &p);
            assert_eq!(m.max_width(), fresh.max_width());
            assert_eq!(m.total_width(), fresh.total_width());
        }
    }

    #[test]
    fn same_row_swap_is_neutral() {
        let (nl, p) = setup(3);
        let m = RowAreaModel::new(&nl, &p);
        // Find two cells in the same row.
        let mut pair = None;
        'outer: for i in 0..nl.num_cells() {
            for j in i + 1..nl.num_cells() {
                let (a, b) = (CellId(i as u32), CellId(j as u32));
                if p.row_of(a) == p.row_of(b) {
                    pair = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("some row has two cells");
        let r = p.row_of(a);
        let t = m.trial_max(r, nl.cell(a).width as u64, r, nl.cell(b).width as u64);
        assert_eq!(t, m.max_width());
    }

    #[test]
    fn imbalance_at_least_one() {
        let (nl, p) = setup(4);
        let m = RowAreaModel::new(&nl, &p);
        assert!(m.imbalance() >= 1.0);
        assert!(m.ideal_width() > 0.0);
    }

    #[test]
    fn total_width_invariant_under_swaps() {
        let (nl, mut p) = setup(5);
        let mut m = RowAreaModel::new(&nl, &p);
        let before = m.total_width();
        let mut rng = Rng::new(5);
        for _ in 0..50 {
            let a = CellId(rng.index(nl.num_cells()) as u32);
            let mut b = a;
            while b == a {
                b = CellId(rng.index(nl.num_cells()) as u32);
            }
            let (ra, rb) = (p.row_of(a), p.row_of(b));
            p.swap_cells(a, b);
            m.apply_swap(ra, nl.cell(a).width as u64, rb, nl.cell(b).width as u64);
        }
        assert_eq!(m.total_width(), before);
    }
}
