//! Scalar cost schemes over the three placement objectives.

use crate::fuzzy::{owa, FuzzyGoals, GoalConfig};

/// Raw objective values of a placement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawObjectives {
    /// Total HPWL.
    pub wire: f64,
    /// Critical path delay.
    pub delay: f64,
    /// Widest-row width.
    pub area: f64,
}

/// A fixed scalarization of the three objectives.
///
/// Schemes are frozen from the *initial* solution (goals / normalizers do
/// not drift during the search) so that costs are comparable across workers
/// and across time — the master derives one scheme and ships it to every
/// worker.
#[derive(Clone, Debug, PartialEq)]
pub enum CostScheme {
    /// The paper's fuzzy goal-based cost: `1 - OWA(memberships)`.
    Fuzzy { beta: f64, goals: FuzzyGoals },
    /// Classic normalized weighted sum (baseline / ablation).
    WeightedSum {
        weights: [f64; 3],
        norm: RawObjectives,
    },
}

impl CostScheme {
    /// Fuzzy scheme with goals anchored at the initial objectives.
    pub fn fuzzy_from_initial(initial: &RawObjectives, beta: f64, cfg: &GoalConfig) -> CostScheme {
        assert!((0.0..=1.0).contains(&beta));
        CostScheme::Fuzzy {
            beta,
            goals: FuzzyGoals::from_initial(initial.wire, initial.delay, initial.area, cfg),
        }
    }

    /// Weighted-sum scheme normalized by the initial objectives.
    pub fn weighted_from_initial(initial: &RawObjectives, weights: [f64; 3]) -> CostScheme {
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "weights must not all be zero");
        CostScheme::WeightedSum {
            weights: [weights[0] / sum, weights[1] / sum, weights[2] / sum],
            norm: RawObjectives {
                wire: initial.wire.max(1e-9),
                delay: initial.delay.max(1e-9),
                area: initial.area.max(1e-9),
            },
        }
    }

    /// Scalar cost (lower is better). Fuzzy costs lie in `[0, 1]`.
    pub fn cost(&self, o: &RawObjectives) -> f64 {
        match self {
            CostScheme::Fuzzy { beta, goals } => {
                let ms = goals.memberships(o.wire, o.delay, o.area);
                1.0 - owa(&ms, *beta)
            }
            CostScheme::WeightedSum { weights, norm } => {
                weights[0] * (o.wire / norm.wire)
                    + weights[1] * (o.delay / norm.delay)
                    + weights[2] * (o.area / norm.area)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init() -> RawObjectives {
        RawObjectives {
            wire: 200.0,
            delay: 30.0,
            area: 60.0,
        }
    }

    #[test]
    fn fuzzy_cost_decreases_when_objectives_improve() {
        let scheme = CostScheme::fuzzy_from_initial(&init(), 0.6, &GoalConfig::default());
        let c0 = scheme.cost(&init());
        let better = RawObjectives {
            wire: 150.0,
            delay: 25.0,
            area: 55.0,
        };
        assert!(scheme.cost(&better) < c0);
        let worse = RawObjectives {
            wire: 260.0,
            delay: 40.0,
            area: 70.0,
        };
        assert!(scheme.cost(&worse) > c0);
    }

    #[test]
    fn fuzzy_cost_in_unit_interval() {
        let scheme = CostScheme::fuzzy_from_initial(&init(), 0.5, &GoalConfig::default());
        for scale in [0.1, 0.5, 1.0, 2.0, 10.0] {
            let o = RawObjectives {
                wire: 200.0 * scale,
                delay: 30.0 * scale,
                area: 60.0 * scale,
            };
            let c = scheme.cost(&o);
            assert!((0.0..=1.0).contains(&c), "cost {c} out of [0,1]");
        }
    }

    #[test]
    fn fuzzy_beta_one_tracks_worst_objective() {
        let scheme = CostScheme::fuzzy_from_initial(&init(), 1.0, &GoalConfig::default());
        // Only wire degrades badly; min-membership dominates.
        let o = RawObjectives {
            wire: 400.0, // membership 0
            delay: 20.0, // membership 1
            area: 40.0,  // membership 1
        };
        assert!((scheme.cost(&o) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_is_one_at_initial() {
        let scheme = CostScheme::weighted_from_initial(&init(), [0.5, 0.3, 0.2]);
        assert!((scheme.cost(&init()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_respects_weights() {
        let scheme = CostScheme::weighted_from_initial(&init(), [1.0, 0.0, 0.0]);
        let halved_wire = RawObjectives {
            wire: 100.0,
            delay: 300.0,
            area: 600.0,
        };
        assert!((scheme.cost(&halved_wire) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn rejects_zero_weights() {
        CostScheme::weighted_from_initial(&init(), [0.0, 0.0, 0.0]);
    }
}
