//! Incremental half-perimeter wirelength (HPWL).
//!
//! Each net's bounding box is cached; a trial swap recomputes only the nets
//! incident to the two cells (found by a stamp-based dedup, no allocation in
//! the hot path) against hypothetical swapped positions. Committing updates
//! the caches. `total()` is maintained as a running sum with periodic exact
//! resummation guarded by tests.

use crate::placement::Placement;
use pts_netlist::{CellId, NetId, Netlist};

/// Axis-aligned bounding box of a net's cell centers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetBox {
    pub min_x: f64,
    pub max_x: f64,
    pub min_y: f64,
    pub max_y: f64,
}

impl NetBox {
    #[inline]
    pub fn hpwl(&self) -> f64 {
        (self.max_x - self.min_x) + (self.max_y - self.min_y)
    }
}

/// Cached per-net bounding boxes + total HPWL.
#[derive(Clone, Debug)]
pub struct WirelengthModel {
    boxes: Vec<NetBox>,
    hpwl: Vec<f64>,
    total: f64,
    /// Stamp array for deduplicating affected nets across two cells.
    stamp: Vec<u32>,
    stamp_gen: u32,
    /// Scratch list of affected nets reused across calls.
    affected: Vec<NetId>,
}

/// Result of a trial swap: total HPWL change and per-net new lengths.
#[derive(Clone, Debug)]
pub struct WireTrial {
    pub delta: f64,
    /// (net, new_hpwl) for every net touched by the swap.
    pub nets: Vec<(NetId, f64)>,
}

impl WirelengthModel {
    /// Build caches for the current placement.
    pub fn new(netlist: &Netlist, placement: &Placement) -> WirelengthModel {
        let mut boxes = Vec::with_capacity(netlist.num_nets());
        let mut hpwl = Vec::with_capacity(netlist.num_nets());
        let mut total = 0.0;
        for (_, net) in netlist.nets() {
            let b = compute_box(net.cells(), placement);
            total += b.hpwl();
            hpwl.push(b.hpwl());
            boxes.push(b);
        }
        WirelengthModel {
            boxes,
            hpwl,
            total,
            stamp: vec![0; netlist.num_nets()],
            stamp_gen: 0,
            affected: Vec::new(),
        }
    }

    /// Current total HPWL.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Cached HPWL of one net.
    #[inline]
    pub fn net_hpwl(&self, net: NetId) -> f64 {
        self.hpwl[net.index()]
    }

    /// Cached bounding box of one net.
    #[inline]
    pub fn net_box(&self, net: NetId) -> &NetBox {
        &self.boxes[net.index()]
    }

    /// Collect the nets incident to `a` or `b`, deduplicated, into the
    /// internal scratch list.
    fn collect_affected(&mut self, netlist: &Netlist, a: CellId, b: CellId) {
        self.stamp_gen = self.stamp_gen.wrapping_add(1);
        if self.stamp_gen == 0 {
            // Wrapped: clear stamps to stay sound.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp_gen = 1;
        }
        self.affected.clear();
        for &cell in &[a, b] {
            for &net in netlist.nets_of(cell) {
                let s = &mut self.stamp[net.index()];
                if *s != self.stamp_gen {
                    *s = self.stamp_gen;
                    self.affected.push(net);
                }
            }
        }
    }

    /// Evaluate the HPWL effect of swapping `a` and `b` without mutating
    /// anything. Returns the total delta and new per-net lengths.
    pub fn trial_swap(
        &mut self,
        netlist: &Netlist,
        placement: &Placement,
        a: CellId,
        b: CellId,
    ) -> WireTrial {
        let mut nets = Vec::new();
        let delta = self.trial_swap_into(netlist, placement, a, b, &mut nets);
        WireTrial { delta, nets }
    }

    /// [`WirelengthModel::trial_swap`] into a caller-owned buffer: `nets`
    /// is cleared and refilled with the `(net, new_hpwl)` pairs; the total
    /// delta is returned. Same computation in the same order as the
    /// allocating form — this is the batch kernel's entry point, letting
    /// one buffer serve a whole candidate batch.
    pub fn trial_swap_into(
        &mut self,
        netlist: &Netlist,
        placement: &Placement,
        a: CellId,
        b: CellId,
        nets: &mut Vec<(NetId, f64)>,
    ) -> f64 {
        self.collect_affected(netlist, a, b);
        let pa = placement.position(a);
        let pb = placement.position(b);
        let mut delta = 0.0;
        nets.clear();
        nets.reserve(self.affected.len());
        for i in 0..self.affected.len() {
            let nid = self.affected[i];
            let net = netlist.net(nid);
            let b_new = compute_box_swapped(net.cells(), placement, a, pb, b, pa);
            let new_len = b_new.hpwl();
            delta += new_len - self.hpwl[nid.index()];
            nets.push((nid, new_len));
        }
        delta
    }

    /// Apply a swap that the placement is about to make (or just made):
    /// update cached boxes and the running total. Call with the placement
    /// *already swapped*.
    pub fn commit_swap(&mut self, netlist: &Netlist, placement: &Placement, a: CellId, b: CellId) {
        self.collect_affected(netlist, a, b);
        for i in 0..self.affected.len() {
            let nid = self.affected[i];
            let net = netlist.net(nid);
            let bx = compute_box(net.cells(), placement);
            let new_len = bx.hpwl();
            self.total += new_len - self.hpwl[nid.index()];
            self.hpwl[nid.index()] = new_len;
            self.boxes[nid.index()] = bx;
        }
    }

    /// Recompute everything from scratch (used by tests and periodic
    /// drift-correction).
    pub fn rebuild(&mut self, netlist: &Netlist, placement: &Placement) {
        let mut total = 0.0;
        for (nid, net) in netlist.nets() {
            let b = compute_box(net.cells(), placement);
            total += b.hpwl();
            self.hpwl[nid.index()] = b.hpwl();
            self.boxes[nid.index()] = b;
        }
        self.total = total;
    }
}

fn compute_box(cells: impl Iterator<Item = CellId>, placement: &Placement) -> NetBox {
    let mut b = NetBox {
        min_x: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        min_y: f64::INFINITY,
        max_y: f64::NEG_INFINITY,
    };
    for c in cells {
        let (x, y) = placement.position(c);
        b.min_x = b.min_x.min(x);
        b.max_x = b.max_x.max(x);
        b.min_y = b.min_y.min(y);
        b.max_y = b.max_y.max(y);
    }
    b
}

/// Bounding box with the positions of `a` and `b` exchanged.
fn compute_box_swapped(
    cells: impl Iterator<Item = CellId>,
    placement: &Placement,
    a: CellId,
    pos_a_new: (f64, f64),
    b: CellId,
    pos_b_new: (f64, f64),
) -> NetBox {
    let mut bx = NetBox {
        min_x: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        min_y: f64::INFINITY,
        max_y: f64::NEG_INFINITY,
    };
    for c in cells {
        let (x, y) = if c == a {
            pos_a_new
        } else if c == b {
            pos_b_new
        } else {
            placement.position(c)
        };
        bx.min_x = bx.min_x.min(x);
        bx.max_x = bx.max_x.max(x);
        bx.min_y = bx.min_y.min(y);
        bx.max_y = bx.max_y.max(y);
    }
    bx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use pts_netlist::{generate, CircuitSpec};
    use pts_util::Rng;

    fn setup(seed: u64) -> (pts_netlist::Netlist, Placement) {
        let nl = generate(&CircuitSpec {
            name: "wl".into(),
            n_inputs: 6,
            n_outputs: 4,
            n_flipflops: 4,
            n_logic: 40,
            depth: 5,
            fanout_tail: 0.2,
            seed,
        });
        let mut rng = Rng::new(seed ^ 0xABCD);
        let p = Placement::random(Layout::for_cells(nl.num_cells()), nl.num_cells(), &mut rng);
        (nl, p)
    }

    #[test]
    fn total_matches_scratch_sum() {
        let (nl, p) = setup(1);
        let wl = WirelengthModel::new(&nl, &p);
        let scratch: f64 = nl
            .nets()
            .map(|(_, net)| compute_box(net.cells(), &p).hpwl())
            .sum();
        assert!((wl.total() - scratch).abs() < 1e-9);
    }

    #[test]
    fn trial_matches_commit() {
        let (nl, mut p) = setup(2);
        let mut wl = WirelengthModel::new(&nl, &p);
        let mut rng = Rng::new(99);
        for _ in 0..200 {
            let a = CellId(rng.index(nl.num_cells()) as u32);
            let mut b = a;
            while b == a {
                b = CellId(rng.index(nl.num_cells()) as u32);
            }
            let trial = wl.trial_swap(&nl, &p, a, b);
            let before = wl.total();
            p.swap_cells(a, b);
            wl.commit_swap(&nl, &p, a, b);
            assert!(
                (wl.total() - (before + trial.delta)).abs() < 1e-6,
                "trial delta must predict committed total"
            );
        }
    }

    #[test]
    fn incremental_total_matches_rebuild_after_many_swaps() {
        let (nl, mut p) = setup(3);
        let mut wl = WirelengthModel::new(&nl, &p);
        let mut rng = Rng::new(7);
        for _ in 0..500 {
            let a = CellId(rng.index(nl.num_cells()) as u32);
            let mut b = a;
            while b == a {
                b = CellId(rng.index(nl.num_cells()) as u32);
            }
            p.swap_cells(a, b);
            wl.commit_swap(&nl, &p, a, b);
        }
        let incremental = wl.total();
        wl.rebuild(&nl, &p);
        assert!(
            (incremental - wl.total()).abs() < 1e-6,
            "incremental {incremental} vs rebuilt {}",
            wl.total()
        );
    }

    #[test]
    fn swap_within_same_nets_is_neutral_for_disjoint_nets() {
        // Swapping two cells that share every net leaves those nets' HPWL
        // unchanged (the set of positions is identical).
        let (nl, p) = setup(4);
        let mut wl = WirelengthModel::new(&nl, &p);
        // Find two cells on the same single net if any; otherwise skip.
        for (_, net) in nl.nets() {
            if net.sinks.len() >= 2 {
                let a = net.sinks[0];
                let b = net.sinks[1];
                if nl.nets_of(a).len() == 1 && nl.nets_of(b).len() == 1 {
                    let trial = wl.trial_swap(&nl, &p, a, b);
                    assert!(trial.delta.abs() < 1e-9);
                    return;
                }
            }
        }
    }

    #[test]
    fn trial_swap_into_matches_allocating_form_bitwise() {
        let (nl, p) = setup(6);
        let mut wl = WirelengthModel::new(&nl, &p);
        let mut rng = Rng::new(13);
        let mut buf: Vec<(NetId, f64)> = Vec::new();
        for _ in 0..100 {
            let a = CellId(rng.index(nl.num_cells()) as u32);
            let mut b = a;
            while b == a {
                b = CellId(rng.index(nl.num_cells()) as u32);
            }
            // Reused buffer (stale contents from the previous iteration)
            // must not leak into the result.
            let delta = wl.trial_swap_into(&nl, &p, a, b, &mut buf);
            let trial = wl.trial_swap(&nl, &p, a, b);
            assert_eq!(delta.to_bits(), trial.delta.to_bits());
            assert_eq!(buf, trial.nets);
        }
    }

    #[test]
    fn netbox_hpwl() {
        let b = NetBox {
            min_x: 1.0,
            max_x: 4.0,
            min_y: 2.0,
            max_y: 3.0,
        };
        assert!((b.hpwl() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_pin_pair_net_hpwl_is_manhattan_distance() {
        use pts_netlist::{Cell, CellKind, NetlistBuilder};
        let mut bld = NetlistBuilder::new("pair");
        let a = bld.add_cell(Cell::new("a", CellKind::Input, 1, 0.0));
        let b = bld.add_cell(Cell::new("b", CellKind::Output, 1, 0.0));
        bld.add_net("n", a, vec![b]).unwrap();
        let nl = bld.finish().unwrap();
        let p = Placement::sequential(Layout::new(1, 2, 2.0, 1.0), 2);
        let wl = WirelengthModel::new(&nl, &p);
        // positions (0.5,1.0) and (1.5,1.0): HPWL = 1.0
        assert!((wl.total() - 1.0).abs() < 1e-12);
    }
}
