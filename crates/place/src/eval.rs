//! The placement evaluator: trial/commit swap evaluation over all three
//! objectives plus the scalar cost scheme.
//!
//! This is the interface the tabu search layers consume. A *trial* is
//! read-only (no placement mutation) and cheap: incremental HPWL over
//! affected nets, O(1) row-width max, first-order timing estimate. A
//! *commit* mutates the placement and restores exact caches (full STA
//! refresh).

use crate::area::RowAreaModel;
use crate::cost::{CostScheme, RawObjectives};
use crate::fuzzy::GoalConfig;
use crate::placement::Placement;
use crate::timing::StaModel;
use crate::wirelength::WirelengthModel;
use pts_netlist::{CellId, NetId, Netlist, TimingGraph};
use std::sync::Arc;

/// Scalarization choice before the scheme is frozen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchemeChoice {
    /// Fuzzy goal-based cost (the paper's scheme).
    Fuzzy { beta: f64 },
    /// Normalized weighted sum (baseline).
    WeightedSum { weights: [f64; 3] },
}

/// Evaluator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalConfig {
    /// Net delay per unit HPWL.
    pub alpha: f64,
    pub scheme: SchemeChoice,
    pub goal: GoalConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            alpha: 0.15,
            scheme: SchemeChoice::Fuzzy { beta: 0.6 },
            goal: GoalConfig::default(),
        }
    }
}

/// Result of evaluating a candidate swap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialCost {
    pub cost: f64,
    pub wire: f64,
    pub delay: f64,
    pub area: f64,
}

/// Full placement evaluation state.
///
/// Cloneable: candidate-list workers hold their own copy and mutate it
/// independently; the netlist and timing graph are shared read-only.
#[derive(Clone, Debug)]
pub struct Evaluator {
    netlist: Arc<Netlist>,
    timing: Arc<TimingGraph>,
    placement: Placement,
    wirelength: WirelengthModel,
    sta: StaModel,
    area: RowAreaModel,
    scheme: CostScheme,
    alpha: f64,
    /// Affected-net scratch for [`Evaluator::trial_swaps`]: one buffer
    /// serves every candidate in a batch instead of a fresh `Vec` per
    /// trial. Owned here (not by callers) so the batch path allocates
    /// nothing after warm-up.
    trial_nets: Vec<(NetId, f64)>,
}

impl Evaluator {
    /// Build an evaluator, freezing the cost scheme from the *initial*
    /// placement's objectives.
    pub fn new(
        netlist: Arc<Netlist>,
        timing: Arc<TimingGraph>,
        placement: Placement,
        config: EvalConfig,
    ) -> Evaluator {
        let wirelength = WirelengthModel::new(&netlist, &placement);
        let sta = StaModel::new(&netlist, &timing, &wirelength, config.alpha);
        let area = RowAreaModel::new(&netlist, &placement);
        let initial = RawObjectives {
            wire: wirelength.total(),
            delay: sta.critical(),
            area: area.max_width() as f64,
        };
        let scheme = match config.scheme {
            SchemeChoice::Fuzzy { beta } => {
                CostScheme::fuzzy_from_initial(&initial, beta, &config.goal)
            }
            SchemeChoice::WeightedSum { weights } => {
                CostScheme::weighted_from_initial(&initial, weights)
            }
        };
        Evaluator {
            netlist,
            timing,
            placement,
            wirelength,
            sta,
            area,
            scheme,
            alpha: config.alpha,
            trial_nets: Vec::new(),
        }
    }

    /// Build an evaluator with an externally fixed cost scheme (workers
    /// adopt the master's frozen scheme so costs stay comparable).
    pub fn with_scheme(
        netlist: Arc<Netlist>,
        timing: Arc<TimingGraph>,
        placement: Placement,
        alpha: f64,
        scheme: CostScheme,
    ) -> Evaluator {
        let wirelength = WirelengthModel::new(&netlist, &placement);
        let sta = StaModel::new(&netlist, &timing, &wirelength, alpha);
        let area = RowAreaModel::new(&netlist, &placement);
        Evaluator {
            netlist,
            timing,
            placement,
            wirelength,
            sta,
            area,
            scheme,
            alpha,
            trial_nets: Vec::new(),
        }
    }

    #[inline]
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    #[inline]
    pub fn timing_graph(&self) -> &Arc<TimingGraph> {
        &self.timing
    }

    #[inline]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    #[inline]
    pub fn scheme(&self) -> &CostScheme {
        &self.scheme
    }

    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current raw objective values.
    pub fn objectives(&self) -> RawObjectives {
        RawObjectives {
            wire: self.wirelength.total(),
            delay: self.sta.critical(),
            area: self.area.max_width() as f64,
        }
    }

    /// Current scalar cost.
    pub fn cost(&self) -> f64 {
        self.scheme.cost(&self.objectives())
    }

    /// Evaluate swapping cells `a` and `b` without mutating state.
    pub fn trial_swap(&mut self, a: CellId, b: CellId) -> TrialCost {
        debug_assert_ne!(a, b);
        let wire_trial = self
            .wirelength
            .trial_swap(&self.netlist, &self.placement, a, b);
        let wire = self.wirelength.total() + wire_trial.delta;
        let delay = self
            .sta
            .estimate(&self.netlist, &self.timing, &wire_trial.nets);
        let (ra, rb) = (self.placement.row_of(a), self.placement.row_of(b));
        let (wa, wb) = (
            self.netlist.cell(a).width as u64,
            self.netlist.cell(b).width as u64,
        );
        let area = self.area.trial_max(ra, wa, rb, wb) as f64;
        let cost = self.scheme.cost(&RawObjectives { wire, delay, area });
        TrialCost {
            cost,
            wire,
            delay,
            area,
        }
    }

    /// Batched [`Evaluator::trial_swap`]: push the scalar cost of every
    /// swap in `pairs` onto `out` (cleared first), bit-identical to
    /// calling `trial_swap` per pair in order.
    ///
    /// This is the candidate-list hot path. The per-trial computation is
    /// unchanged (same incremental HPWL, exact cone-bounded STA, O(1) row
    /// max, same floating-point order); what the batch amortizes is the
    /// per-trial setup — the affected-net list lands in the evaluator's
    /// own reusable scratch instead of a freshly allocated `Vec`, and the
    /// running wirelength total is read once per batch instead of per
    /// candidate (it cannot change during trials, which never mutate
    /// state).
    pub fn trial_swaps(&mut self, pairs: &[(CellId, CellId)], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(pairs.len());
        let total = self.wirelength.total();
        for &(a, b) in pairs {
            debug_assert_ne!(a, b);
            let delta = self.wirelength.trial_swap_into(
                &self.netlist,
                &self.placement,
                a,
                b,
                &mut self.trial_nets,
            );
            let wire = total + delta;
            let delay = self
                .sta
                .estimate(&self.netlist, &self.timing, &self.trial_nets);
            let (ra, rb) = (self.placement.row_of(a), self.placement.row_of(b));
            let (wa, wb) = (
                self.netlist.cell(a).width as u64,
                self.netlist.cell(b).width as u64,
            );
            let area = self.area.trial_max(ra, wa, rb, wb) as f64;
            let cost = self.scheme.cost(&RawObjectives { wire, delay, area });
            out.push(cost);
        }
    }

    /// Apply a swap and restore exact caches. Timing is updated with the
    /// cone-bounded incremental commit (O(affected cone), not O(V+E));
    /// equivalence with a full refresh is property-tested.
    pub fn commit_swap(&mut self, a: CellId, b: CellId) {
        debug_assert_ne!(a, b);
        let (ra, rb) = (self.placement.row_of(a), self.placement.row_of(b));
        let (wa, wb) = (
            self.netlist.cell(a).width as u64,
            self.netlist.cell(b).width as u64,
        );
        // New net lengths, captured before mutation for the timing commit.
        let wire_trial = self
            .wirelength
            .trial_swap(&self.netlist, &self.placement, a, b);
        self.placement.swap_cells(a, b);
        self.wirelength
            .commit_swap(&self.netlist, &self.placement, a, b);
        self.area.apply_swap(ra, wa, rb, wb);
        self.sta
            .commit_changes(&self.netlist, &self.timing, &wire_trial.nets);
    }

    /// Replace the placement wholesale (e.g. adopting the master's
    /// broadcast best) and rebuild all caches. The cost scheme is kept.
    pub fn adopt_placement(&mut self, placement: Placement) {
        assert_eq!(placement.num_cells(), self.netlist.num_cells());
        self.placement = placement;
        self.wirelength = WirelengthModel::new(&self.netlist, &self.placement);
        self.sta = StaModel::new(&self.netlist, &self.timing, &self.wirelength, self.alpha);
        self.area = RowAreaModel::new(&self.netlist, &self.placement);
    }

    /// Clone out the current placement.
    pub fn snapshot(&self) -> Placement {
        self.placement.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use pts_netlist::{generate, CircuitSpec};
    use pts_util::Rng;

    fn setup(seed: u64) -> Evaluator {
        let nl = Arc::new(generate(&CircuitSpec {
            name: "eval".into(),
            n_inputs: 6,
            n_outputs: 5,
            n_flipflops: 5,
            n_logic: 44,
            depth: 5,
            fanout_tail: 0.15,
            seed,
        }));
        let tg = Arc::new(TimingGraph::build(&nl).unwrap());
        let mut rng = Rng::new(seed ^ 0xF00D);
        let p = Placement::random(Layout::for_cells(nl.num_cells()), nl.num_cells(), &mut rng);
        Evaluator::new(nl, tg, p, EvalConfig::default())
    }

    #[test]
    fn trial_wire_and_area_match_commit_exactly() {
        let mut ev = setup(1);
        let mut rng = Rng::new(2);
        for _ in 0..100 {
            let n = ev.netlist().num_cells();
            let a = CellId(rng.index(n) as u32);
            let mut b = a;
            while b == a {
                b = CellId(rng.index(n) as u32);
            }
            let trial = ev.trial_swap(a, b);
            ev.commit_swap(a, b);
            let o = ev.objectives();
            assert!((trial.wire - o.wire).abs() < 1e-6, "wire prediction");
            assert!((trial.area - o.area).abs() < 1e-9, "area prediction");
            assert!(
                (trial.delay - o.delay).abs() < 1e-9,
                "incremental delay must be exact: {} vs {}",
                trial.delay,
                o.delay
            );
        }
    }

    #[test]
    fn batched_trial_swaps_bit_identical_to_scalar() {
        let mut ev = setup(7);
        let mut rng = Rng::new(71);
        let n = ev.netlist().num_cells();
        for _ in 0..20 {
            let mut pairs = Vec::new();
            for _ in 0..8 {
                let a = CellId(rng.index(n) as u32);
                let mut b = a;
                while b == a {
                    b = CellId(rng.index(n) as u32);
                }
                pairs.push((a, b));
            }
            let scalar: Vec<f64> = pairs
                .iter()
                .map(|&(a, b)| ev.trial_swap(a, b).cost)
                .collect();
            let mut batched = Vec::new();
            ev.trial_swaps(&pairs, &mut batched);
            for (s, b) in scalar.iter().zip(batched.iter()) {
                assert_eq!(s.to_bits(), b.to_bits(), "batched evaluator diverged");
            }
            let (a, b) = pairs[0];
            ev.commit_swap(a, b);
        }
    }

    #[test]
    fn swap_back_restores_objectives() {
        let mut ev = setup(3);
        let before = ev.objectives();
        let a = CellId(0);
        let b = CellId(10);
        ev.commit_swap(a, b);
        ev.commit_swap(a, b);
        let after = ev.objectives();
        assert!((before.wire - after.wire).abs() < 1e-6);
        assert!((before.delay - after.delay).abs() < 1e-9);
        assert!((before.area - after.area).abs() < 1e-9);
    }

    #[test]
    fn cost_scheme_is_frozen_at_initial() {
        let ev = setup(4);
        // Fuzzy cost at initial point: all memberships equal, derived from
        // GoalConfig::default(): (1.30-1)/(1.30-0.75).
        let expected_membership = (1.30 - 1.0) / (1.30 - 0.75);
        let expected_cost = 1.0 - expected_membership;
        assert!((ev.cost() - expected_cost).abs() < 1e-9);
    }

    #[test]
    fn adopt_placement_rebuilds_consistently() {
        let mut ev = setup(5);
        let mut rng = Rng::new(55);
        let nl = ev.netlist().clone();
        let alt = Placement::random(Layout::for_cells(nl.num_cells()), nl.num_cells(), &mut rng);
        let scheme_before = ev.scheme().clone();
        ev.adopt_placement(alt.clone());
        assert_eq!(ev.scheme(), &scheme_before, "scheme survives adoption");
        // Fresh evaluator over the same placement agrees on objectives.
        let tg = ev.timing_graph().clone();
        let fresh = Evaluator::with_scheme(nl, tg, alt, ev.alpha(), scheme_before);
        let (a, b) = (ev.objectives(), fresh.objectives());
        assert!((a.wire - b.wire).abs() < 1e-9);
        assert!((a.delay - b.delay).abs() < 1e-9);
        assert!((a.area - b.area).abs() < 1e-9);
    }

    #[test]
    fn clone_is_independent() {
        let mut ev = setup(6);
        let mut copy = ev.clone();
        copy.commit_swap(CellId(1), CellId(2));
        // Original unchanged.
        assert_eq!(ev.placement().slot_of(CellId(1)), {
            let s = ev.placement().slot_of(CellId(1));
            s
        });
        let o1 = ev.objectives();
        ev.commit_swap(CellId(3), CellId(4));
        let o2 = copy.objectives();
        let _ = (o1, o2);
        copy.placement().check_consistency().unwrap();
        ev.placement().check_consistency().unwrap();
    }
}
