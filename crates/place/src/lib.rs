//! VLSI standard-cell placement model for the parallel tabu search paper.
//!
//! A placement assigns every cell of a [`pts_netlist::Netlist`] to a slot on
//! a row-based layout grid. Solutions are evaluated against the paper's
//! three noisy objectives:
//!
//! * **wirelength** — half-perimeter bounding box (HPWL) summed over nets,
//!   maintained incrementally per swap ([`wirelength`]),
//! * **critical-path delay** — static timing with a linear net-delay model,
//!   using an incremental estimate for trial moves and an exact refresh on
//!   commit ([`timing`]),
//! * **area** — the widest row (row-width balance), since total chip area is
//!   `max_row_width × total_height` ([`area`]).
//!
//! The objectives are combined with the fuzzy goal-based scheme the paper
//! cites (piecewise-linear memberships + ordered-weighted-average, see
//! [`fuzzy`]) into a single scalar cost minimized by tabu search.
//!
//! [`eval::Evaluator`] packages all of this behind a `trial_swap` /
//! `commit_swap` interface — the contract the tabu search layers build on.

pub mod area;
pub mod cost;
pub mod eval;
pub mod fuzzy;
pub mod init;
pub mod layout;
pub mod placement;
pub mod timing;
pub mod wirelength;

pub use cost::{CostScheme, RawObjectives};
pub use eval::{Evaluator, TrialCost};
pub use fuzzy::{FuzzyGoals, GoalConfig};
pub use layout::{Layout, SlotId};
pub use placement::Placement;
