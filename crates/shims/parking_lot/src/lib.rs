//! Std-backed stand-in for the `parking_lot` crate.
//!
//! This workspace builds in offline environments with no crates.io access,
//! so the few `parking_lot` APIs the code uses are provided here on top of
//! `std::sync`. Semantics follow `parking_lot` where they differ from std:
//! `lock()` returns the guard directly and poisoning is ignored (a panicked
//! holder does not wedge the lock).

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutex whose `lock` never fails (poisoning is swallowed, as in
/// `parking_lot`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(sync::PoisonError::into_inner),
        ))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Guard wrapper: holds the std guard in an `Option` so [`Condvar::wait`]
/// can temporarily move it out while re-blocking in place.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// Condition variable with `parking_lot`'s in-place `wait(&mut guard)`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present when waiting");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
