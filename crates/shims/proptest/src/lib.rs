//! Deterministic stand-in for the `proptest` crate.
//!
//! This workspace builds in offline environments with no crates.io access,
//! so the subset of proptest the test suites use is reimplemented here:
//! range / tuple / `prop_map` / `collection::vec` strategies driven by a
//! seeded splitmix64 stream, and a `proptest!` macro that expands each
//! property into a plain `#[test]` looping over `ProptestConfig::cases`
//! generated inputs. No shrinking — a failing case panics with the normal
//! assert message, and the run is fully reproducible (the seed is derived
//! from the test name and case index only).

use std::marker::PhantomData;
use std::ops::Range;

/// Splitmix64 generator seeding each test case.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Seed derived from a test name (FNV-1a) and case index.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (the proptest `Strategy` trait, minus shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical unconstrained strategy (`any::<T>()`).
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing unconstrained values of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block configuration (only `cases` is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The names tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Expand property functions into plain `#[test]`s looping over generated
/// cases. Supports the `#![proptest_config(...)]` header used by the test
/// suites.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($body:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($body)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strategy:expr),* $(,)?
    ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = ($cfg).cases as u64;
            for __case in 0..__cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a: u64 = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("t", 3));
        let b: u64 = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("t", 3));
        let c: u64 = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c, "different cases should (almost surely) differ");
    }

    #[test]
    fn vec_strategy_respects_len() {
        let s = crate::collection::vec(0u32..5, 2..6);
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(x in 1u32..10, flip in any::<bool>()) {
            prop_assert!((1..10).contains(&x));
            let _ = flip;
        }

        #[test]
        fn macro_supports_prop_map(y in (1u32..4, 1u32..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&y));
        }
    }
}
