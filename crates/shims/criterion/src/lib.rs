//! Wall-clock stand-in for the `criterion` crate.
//!
//! This workspace builds in offline environments with no crates.io access,
//! so the criterion API surface the benches use is provided here over
//! `std::time::Instant`: warm-up, timed sampling, and a mean/min report per
//! benchmark printed to stdout. No statistical analysis, plots, or
//! baselines — the point is that `cargo bench` compiles, runs, and prints
//! comparable numbers anywhere.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints (accepted for API compatibility; batches are always
/// per-iteration here so setup cost never pollutes the measurement).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            sample_size: 50,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let id = id.to_string();
        self.benchmark_group(id.clone()).run_one(&id, f);
        self
    }
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.run_one(&label, f);
        self
    }

    pub fn finish(self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, mut f: F) {
        // Warm up: run until the warm-up budget elapses.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher::default();
        while Instant::now() < warm_deadline {
            f(&mut bencher);
            if bencher.iters == 0 {
                break; // routine never calls iter(); avoid spinning
            }
        }

        // Measure: collect samples until the measurement budget elapses.
        let deadline = Instant::now() + self.measurement_time;
        let mut samples: Vec<f64> = Vec::new();
        while Instant::now() < deadline && samples.len() < self.sample_size {
            bencher = Bencher::default();
            f(&mut bencher);
            if bencher.iters == 0 {
                break;
            }
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }

        if samples.is_empty() {
            println!("{label:<40} (no iterations)");
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{label:<40} mean {:>12}  min {:>12}  ({} samples)",
            format_time(mean),
            format_time(min),
            samples.len()
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Per-sample measurement driver passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        const BATCH: u64 = 16;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }

    /// Time `routine` on inputs produced by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        const BATCH: u64 = 4;
        for _ in 0..BATCH {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += BATCH;
    }
}

/// Declare a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(5));
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0, "routine must actually run");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::default();
        b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with("s"));
    }
}
