//! A single-threaded cooperative task runtime: thousands of logical
//! processes on one OS thread.
//!
//! [`SimBuilder`](crate::runtime::SimBuilder) gives every simulated
//! process its own OS thread (only one ever runs, admitted by a token).
//! That is faithful to the paper's PVM testbed but caps the process count
//! at what the host will give us in threads and stacks — far below the
//! "thousands of simulated workers on one host" target. This module is the
//! scale-oriented substrate: every logical process is a *future*, polled
//! by a deterministic FIFO executor, and a blocking receive is simply a
//! poll that returns [`Poll::Pending`] until a message lands in the
//! task's mailbox.
//!
//! Design notes:
//!
//! * **No timers, no wakers, no I/O.** Progress in a message-passing
//!   protocol comes only from messages, so the executor's ready queue is
//!   driven entirely by [`TaskCtx::send`]: delivering to a parked task
//!   schedules it. A task that returns `Pending` is parked until someone
//!   sends to it.
//! * **Deterministic.** The ready queue is FIFO, tasks are polled on one
//!   thread in a fixed order, and nothing consults real time for
//!   scheduling — identical inputs replay identical executions, like the
//!   virtual cluster.
//! * **Accounting matches the virtual cluster's shape.** Each task fills
//!   a [`ProcStats`]: messages, bytes, charged work units, and wall-clock
//!   time spent parked in `recv`. Clocks are host wall-clock seconds
//!   (there is no virtual time here; this runtime trades the timing model
//!   for scale).
//!
//! Deadlock (every live task parked with an empty mailbox) panics with
//! the list of stuck tasks, mirroring the virtual cluster's poisoning.

use crate::metrics::{ProcStats, RunReport};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// Shared state of one cooperative run: mailboxes, ready queue, stats.
struct Hub<M> {
    start: Instant,
    mailboxes: Vec<RefCell<VecDeque<M>>>,
    /// FIFO of task ids scheduled to be polled.
    ready: RefCell<VecDeque<usize>>,
    /// Whether a task id is already in `ready` (dedup guard).
    queued: RefCell<Vec<bool>>,
    /// Completed tasks are never rescheduled; sends to them are dropped
    /// (the virtual cluster's "undeliverable" semantics).
    done: RefCell<Vec<bool>>,
    stats: RefCell<Vec<ProcStats>>,
    /// When each task last parked in `recv` (wall-clock wait accounting).
    parked_since: RefCell<Vec<Option<Instant>>>,
}

impl<M> Hub<M> {
    fn new(n: usize) -> Hub<M> {
        Hub {
            start: Instant::now(),
            mailboxes: (0..n).map(|_| RefCell::new(VecDeque::new())).collect(),
            ready: RefCell::new((0..n).collect()),
            queued: RefCell::new(vec![true; n]),
            done: RefCell::new(vec![false; n]),
            stats: RefCell::new(vec![ProcStats::default(); n]),
            parked_since: RefCell::new(vec![None; n]),
        }
    }

    fn schedule(&self, id: usize) {
        let mut queued = self.queued.borrow_mut();
        if !queued[id] && !self.done.borrow()[id] {
            queued[id] = true;
            self.ready.borrow_mut().push_back(id);
        }
    }

    fn next_ready(&self) -> Option<usize> {
        let id = self.ready.borrow_mut().pop_front()?;
        self.queued.borrow_mut()[id] = false;
        Some(id)
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn send(&self, src: usize, dst: usize, msg: M, bytes: u64) {
        assert!(dst < self.mailboxes.len(), "send to unknown task {dst}");
        {
            let mut stats = self.stats.borrow_mut();
            stats[src].messages_sent += 1;
            stats[src].bytes_sent += bytes;
        }
        if self.done.borrow()[dst] {
            return; // undeliverable: receiver already finished
        }
        self.mailboxes[dst].borrow_mut().push_back(msg);
        self.schedule(dst);
    }

    /// One `recv` poll: pop a message or park the task.
    fn poll_recv(&self, id: usize) -> Poll<M> {
        match self.mailboxes[id].borrow_mut().pop_front() {
            Some(msg) => {
                let mut stats = self.stats.borrow_mut();
                stats[id].messages_received += 1;
                if let Some(t0) = self.parked_since.borrow_mut()[id].take() {
                    stats[id].wait_time += t0.elapsed().as_secs_f64();
                }
                Poll::Ready(msg)
            }
            None => {
                let mut parked = self.parked_since.borrow_mut();
                if parked[id].is_none() {
                    parked[id] = Some(Instant::now());
                }
                Poll::Pending
            }
        }
    }

    fn try_recv(&self, id: usize) -> Option<M> {
        let msg = self.mailboxes[id].borrow_mut().pop_front()?;
        self.stats.borrow_mut()[id].messages_received += 1;
        Some(msg)
    }

    fn retire(&self, id: usize) {
        self.done.borrow_mut()[id] = true;
        self.stats.borrow_mut()[id].finished_at = self.now();
    }
}

/// Handle through which a task interacts with the runtime — the
/// cooperative analogue of [`crate::process::ProcCtx`].
///
/// Cheap to clone (shares the hub); `recv` is the only suspension point.
pub struct TaskCtx<M> {
    id: usize,
    hub: Rc<Hub<M>>,
}

impl<M> TaskCtx<M> {
    /// This task's id (spawn order).
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of tasks in the run.
    pub fn num_tasks(&self) -> usize {
        self.hub.mailboxes.len()
    }

    /// Wall-clock seconds since the run started.
    pub fn now(&self) -> f64 {
        self.hub.now()
    }

    /// Record `work` charged units. Real computation takes real wall time;
    /// like the thread transport, only the units are accounted.
    pub fn compute(&self, work: f64) {
        assert!(work >= 0.0, "work must be non-negative");
        self.hub.stats.borrow_mut()[self.id].work_done += work;
    }

    /// Deliver a message to task `dst`, scheduling it if parked. Sends to
    /// finished tasks are dropped. `bytes` feeds the traffic accounting.
    pub fn send_sized(&self, dst: usize, msg: M, bytes: u64) {
        self.hub.send(self.id, dst, msg, bytes);
    }

    /// [`TaskCtx::send_sized`] with the default 1 KiB accounting size.
    pub fn send(&self, dst: usize, msg: M) {
        self.send_sized(dst, msg, 1024);
    }

    /// Take a message if one is queued; never suspends.
    pub fn try_recv(&self) -> Option<M> {
        self.hub.try_recv(self.id)
    }

    /// Wait for the next message. This is the main cooperative scheduling
    /// point: an empty mailbox parks the task until a send arrives.
    pub fn recv(&self) -> impl Future<Output = M> + '_ {
        std::future::poll_fn(move |_cx| self.hub.poll_recv(self.id))
    }

    /// Hand the executor back to the other ready tasks and resume at the
    /// back of the FIFO. Long compute-only stretches (no `recv`) should
    /// yield between chunks so peers can make progress — and so messages
    /// they send mid-stretch (e.g. a cut-short request) can actually
    /// arrive before the stretch completes.
    pub fn yield_now(&self) -> impl Future<Output = ()> + '_ {
        let mut yielded = false;
        std::future::poll_fn(move |_cx| {
            if yielded {
                Poll::Ready(())
            } else {
                yielded = true;
                // Re-enqueue ourselves: the executor will re-poll this
                // task after everything currently ahead in the queue.
                self.hub.schedule(self.id);
                Poll::Pending
            }
        })
    }
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Builder + executor: spawn logical processes as futures, then run the
/// whole cohort to completion on the calling thread.
pub struct TaskCluster<M> {
    spawners: Vec<Box<dyn FnOnce(TaskCtx<M>) -> TaskFuture>>,
}

impl<M> Default for TaskCluster<M> {
    fn default() -> Self {
        TaskCluster::new()
    }
}

impl<M> TaskCluster<M> {
    /// An empty cluster; add tasks with [`TaskCluster::spawn`].
    pub fn new() -> TaskCluster<M> {
        TaskCluster {
            spawners: Vec::new(),
        }
    }

    /// Register a task; returns its id (spawn order). `f` receives the
    /// task's [`TaskCtx`] and returns the future to drive. Futures need
    /// not be `Send` — the whole cohort runs on one thread.
    pub fn spawn<F, Fut>(&mut self, f: F) -> usize
    where
        F: FnOnce(TaskCtx<M>) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        let id = self.spawners.len();
        self.spawners.push(Box::new(move |ctx| Box::pin(f(ctx))));
        id
    }

    /// Number of tasks registered so far.
    pub fn num_spawned(&self) -> usize {
        self.spawners.len()
    }

    /// Drive every task to completion and report per-task metrics.
    ///
    /// Panics if the cohort deadlocks (all live tasks parked in `recv`
    /// with empty mailboxes) or any task panics.
    pub fn run(self) -> RunReport {
        assert!(!self.spawners.is_empty(), "no tasks spawned");
        let n = self.spawners.len();
        let hub: Rc<Hub<M>> = Rc::new(Hub::new(n));
        let mut tasks: Vec<Option<TaskFuture>> = self
            .spawners
            .into_iter()
            .enumerate()
            .map(|(id, f)| {
                Some(f(TaskCtx {
                    id,
                    hub: Rc::clone(&hub),
                }))
            })
            .collect();

        // Wakers carry no information here — readiness is tracked by the
        // hub's queue, driven by sends.
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut live = n;
        while let Some(id) = hub.next_ready() {
            // A task can complete while still queued (e.g. it scheduled
            // itself on its final poll); skip retired entries.
            let Some(task) = tasks[id].as_mut() else {
                continue;
            };
            if task.as_mut().poll(&mut cx).is_ready() {
                tasks[id] = None; // release the task's state eagerly
                hub.retire(id);
                live -= 1;
            }
        }
        if live > 0 {
            let stuck: Vec<usize> = tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_some())
                .map(|(i, _)| i)
                .collect();
            panic!(
                "task cluster deadlock: tasks {stuck:?} parked in recv with no pending messages"
            );
        }

        let stats = hub.stats.borrow();
        RunReport {
            end_time: stats.iter().map(|p| p.finished_at).fold(0.0, f64::max),
            per_proc: stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn messages_route_between_tasks() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut cluster: TaskCluster<u32> = TaskCluster::new();
        let g = Arc::clone(&got);
        let rx = cluster.spawn(move |ctx| async move {
            for _ in 0..3 {
                let msg = ctx.recv().await;
                g.lock().unwrap().push(msg);
            }
        });
        cluster.spawn(move |ctx| async move {
            for i in 0..3 {
                ctx.send(rx, i);
            }
        });
        let report = cluster.run();
        assert_eq!(*got.lock().unwrap(), vec![0, 1, 2]);
        assert_eq!(report.per_proc[0].messages_received, 3);
        assert_eq!(report.per_proc[1].messages_sent, 3);
        assert_eq!(report.per_proc[1].bytes_sent, 3 * 1024);
    }

    #[test]
    fn recv_parks_until_send_arrives() {
        // The receiver is spawned first and polled first: its mailbox is
        // empty, so it must park and resume only after the sender runs.
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut cluster: TaskCluster<&'static str> = TaskCluster::new();
        let o = Arc::clone(&order);
        cluster.spawn(move |ctx| async move {
            let msg = ctx.recv().await;
            o.lock().unwrap().push(msg);
        });
        let o = Arc::clone(&order);
        cluster.spawn(move |ctx| async move {
            o.lock().unwrap().push("sender ran");
            ctx.send(0, "delivered");
        });
        cluster.run();
        assert_eq!(*order.lock().unwrap(), vec!["sender ran", "delivered"]);
    }

    #[test]
    fn try_recv_never_suspends() {
        let seen = Arc::new(Mutex::new((None, None)));
        let mut cluster: TaskCluster<u32> = TaskCluster::new();
        let s = Arc::clone(&seen);
        cluster.spawn(move |ctx| async move {
            let early = ctx.try_recv(); // nothing yet
            let bounced = ctx.recv().await; // parks; sender runs meanwhile
            ctx.send(1, bounced);
            s.lock().unwrap().0 = early;
        });
        let s = Arc::clone(&seen);
        cluster.spawn(move |ctx| async move {
            ctx.send(0, 7);
            let back = ctx.recv().await;
            s.lock().unwrap().1 = ctx.try_recv().or(Some(back));
        });
        cluster.run();
        assert_eq!(*seen.lock().unwrap(), (None, Some(7)));
    }

    #[test]
    fn send_to_finished_task_is_dropped() {
        let mut cluster: TaskCluster<u32> = TaskCluster::new();
        let early = cluster.spawn(|_ctx| async move {});
        cluster.spawn(move |ctx| async move {
            let _ = ctx.recv().await; // wait until `early` is long dead
        });
        cluster.spawn(move |ctx| async move {
            ctx.send(early, 5); // receiver finished before this runs
            ctx.send_sized(1, 9, 0);
        });
        let report = cluster.run();
        assert_eq!(report.per_proc[0].messages_received, 0);
        assert_eq!(report.per_proc[2].messages_sent, 2);
    }

    #[test]
    fn work_and_wait_are_accounted() {
        let mut cluster: TaskCluster<u32> = TaskCluster::new();
        cluster.spawn(|ctx| async move {
            let _ = ctx.recv().await;
            ctx.compute(2.5);
        });
        cluster.spawn(|ctx| async move {
            ctx.compute(1.5);
            ctx.send(0, 1);
        });
        let report = cluster.run();
        assert!((report.per_proc[0].work_done - 2.5).abs() < 1e-12);
        assert!((report.total_work() - 4.0).abs() < 1e-12);
        assert!(report.per_proc[0].wait_time >= 0.0);
        assert!(report.end_time >= 0.0);
    }

    #[test]
    fn deterministic_fifo_schedule() {
        fn run_once() -> Vec<(u32, u32)> {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut cluster: TaskCluster<(u32, u32)> = TaskCluster::new();
            let l = Arc::clone(&log);
            let master = cluster.spawn(move |ctx| async move {
                for _ in 0..9 {
                    let msg = ctx.recv().await;
                    l.lock().unwrap().push(msg);
                }
            });
            for w in 0..3u32 {
                cluster.spawn(move |ctx| async move {
                    for i in 0..3u32 {
                        ctx.send(master, (w, i));
                    }
                });
            }
            cluster.run();
            let out = log.lock().unwrap().clone();
            out
        }
        let a = run_once();
        assert_eq!(a, run_once(), "same inputs must replay identically");
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn scales_to_thousands_of_tasks() {
        // The point of this runtime: far more logical processes than the
        // host has threads. 2001 tasks ping a collector once each.
        let mut cluster: TaskCluster<u64> = TaskCluster::new();
        const N: u64 = 2000;
        cluster.spawn(move |ctx| async move {
            let mut sum = 0u64;
            for _ in 0..N {
                sum += ctx.recv().await;
            }
            assert_eq!(sum, N * (N + 1) / 2);
        });
        for i in 1..=N {
            cluster.spawn(move |ctx| async move {
                ctx.send(0, i);
            });
        }
        let report = cluster.run();
        assert_eq!(report.per_proc.len(), N as usize + 1);
        assert_eq!(report.per_proc[0].messages_received, N);
    }

    #[test]
    fn yield_now_interleaves_compute_stretches() {
        // Two workers log their steps, yielding between them: the log
        // must interleave deterministically instead of running each
        // worker to completion.
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut cluster: TaskCluster<u32> = TaskCluster::new();
        for w in 0..2u32 {
            let l = Arc::clone(&log);
            cluster.spawn(move |ctx| async move {
                for step in 0..3u32 {
                    l.lock().unwrap().push((w, step));
                    ctx.yield_now().await;
                }
            });
        }
        cluster.run();
        assert_eq!(
            *log.lock().unwrap(),
            vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        );
    }

    #[test]
    fn message_sent_mid_stretch_arrives_before_stretch_ends() {
        // The cut-short pattern: a worker yielding between steps must be
        // able to observe a message sent after its stretch began.
        let cut_at = Arc::new(Mutex::new(None));
        let mut cluster: TaskCluster<&'static str> = TaskCluster::new();
        let c = Arc::clone(&cut_at);
        cluster.spawn(move |ctx| async move {
            for step in 0..100u32 {
                ctx.yield_now().await;
                if ctx.try_recv().is_some() {
                    *c.lock().unwrap() = Some(step);
                    return;
                }
            }
        });
        cluster.spawn(move |ctx| async move {
            ctx.yield_now().await; // let the worker start its stretch
            ctx.send(0, "cut");
        });
        cluster.run();
        let cut = cut_at.lock().unwrap().expect("worker must see the cut");
        assert!((1..100).contains(&cut), "cut mid-stretch, got step {cut}");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut cluster: TaskCluster<u32> = TaskCluster::new();
        cluster.spawn(|ctx| async move {
            let _ = ctx.recv().await; // nobody will ever send
        });
        cluster.spawn(|ctx| async move {
            ctx.compute(1.0);
        });
        cluster.run();
    }
}
