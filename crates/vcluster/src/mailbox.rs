//! Per-process mailboxes ordered by delivery time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A message annotated with its virtual arrival time and a global send
/// sequence number (total order tie-breaker ⇒ deterministic delivery).
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    pub deliver_at: f64,
    pub seq: u64,
    pub msg: M,
}

// Orderings compare only (deliver_at, seq); the payload is opaque.
impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Envelope<M> {}
impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .deliver_at
            .total_cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Delivery-time-ordered mailbox.
#[derive(Clone, Debug)]
pub struct Mailbox<M> {
    heap: BinaryHeap<Envelope<M>>,
}

impl<M> Default for Mailbox<M> {
    fn default() -> Self {
        Mailbox {
            heap: BinaryHeap::new(),
        }
    }
}

impl<M> Mailbox<M> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, envelope: Envelope<M>) {
        self.heap.push(envelope);
    }

    /// Earliest delivery time of any pending message.
    pub fn earliest(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.deliver_at)
    }

    /// Pop the earliest message if it has arrived by time `now`.
    pub fn pop_ready(&mut self, now: f64) -> Option<Envelope<M>> {
        if self.earliest().is_some_and(|t| t <= now + 1e-12) {
            self.heap.pop()
        } else {
            None
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(t: f64, seq: u64, msg: u32) -> Envelope<u32> {
        Envelope {
            deliver_at: t,
            seq,
            msg,
        }
    }

    #[test]
    fn pops_in_delivery_order() {
        let mut mb = Mailbox::new();
        mb.push(env(3.0, 1, 30));
        mb.push(env(1.0, 2, 10));
        mb.push(env(2.0, 3, 20));
        assert_eq!(mb.pop_ready(10.0).unwrap().msg, 10);
        assert_eq!(mb.pop_ready(10.0).unwrap().msg, 20);
        assert_eq!(mb.pop_ready(10.0).unwrap().msg, 30);
        assert!(mb.pop_ready(10.0).is_none());
    }

    #[test]
    fn sequence_breaks_time_ties() {
        let mut mb = Mailbox::new();
        mb.push(env(1.0, 7, 77));
        mb.push(env(1.0, 3, 33));
        assert_eq!(mb.pop_ready(1.0).unwrap().msg, 33);
        assert_eq!(mb.pop_ready(1.0).unwrap().msg, 77);
    }

    #[test]
    fn not_ready_before_delivery_time() {
        let mut mb = Mailbox::new();
        mb.push(env(5.0, 1, 1));
        assert!(mb.pop_ready(4.9).is_none());
        assert_eq!(mb.earliest(), Some(5.0));
        assert!(mb.pop_ready(5.0).is_some());
    }

    #[test]
    fn len_tracks() {
        let mut mb: Mailbox<u32> = Mailbox::new();
        assert!(mb.is_empty());
        mb.push(env(1.0, 1, 1));
        assert_eq!(mb.len(), 1);
    }
}
