//! The token scheduler: deterministic virtual-time execution.
//!
//! Every simulated process runs on its own OS thread, but a single *token*
//! (the `current` field) admits exactly one at a time. When the running
//! process blocks (compute/sleep/recv), it computes its wake-up time,
//! hands the token to the ready process with the smallest `(wake, pid)`,
//! and parks on a condvar. The global clock jumps to the chosen process's
//! wake-up. Because every scheduling decision is a deterministic function
//! of virtual times and pids — never of OS scheduling — identical inputs
//! replay identical executions, which the determinism tests assert.

use crate::machine::Machine;
use crate::mailbox::{Envelope, Mailbox};
use crate::metrics::{ProcStats, RunReport};
use crate::process::{ProcCtx, ProcId};
use crate::topology::ClusterSpec;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Status {
    /// Will be runnable at the given virtual time.
    Ready(f64),
    /// Currently holds the token.
    Running,
    /// Blocked in `recv` with an empty mailbox.
    BlockedRecv,
    Dead,
}

struct ProcState<M> {
    status: Status,
    machine: usize,
    mailbox: Mailbox<M>,
    stats: ProcStats,
}

struct SimState<M> {
    now: f64,
    current: Option<usize>,
    procs: Vec<ProcState<M>>,
    send_seq: u64,
    /// Last delivery time per (src, dst) pair: enforces FIFO channels (a
    /// small message never overtakes a large one on the same route), as
    /// PVM/TCP guarantee.
    pair_last: std::collections::HashMap<(usize, usize), f64>,
    poisoned: Option<String>,
}

/// Shared scheduler state (one per simulation).
pub struct Shared<M> {
    state: Mutex<SimState<M>>,
    cv: Condvar,
    cluster: ClusterSpec,
}

impl<M: Send + 'static> Shared<M> {
    pub(crate) fn num_procs(&self) -> usize {
        self.state.lock().procs.len()
    }

    pub(crate) fn now(&self) -> f64 {
        self.state.lock().now
    }

    pub(crate) fn machine_of(&self, id: usize) -> usize {
        self.state.lock().procs[id].machine
    }

    fn machine(&self, idx: usize) -> &Machine {
        &self.cluster.machines[idx]
    }

    /// Pick the next process to run and move the clock. Caller holds the
    /// lock and has already parked the current process's status.
    fn schedule_next(&self, state: &mut SimState<M>) {
        let mut best: Option<(f64, usize)> = None;
        let mut any_alive = false;
        for (id, p) in state.procs.iter().enumerate() {
            match p.status {
                Status::Ready(wake) => {
                    if best.is_none_or(|(bw, bid)| (wake, id) < (bw, bid)) {
                        best = Some((wake, id));
                    }
                    any_alive = true;
                }
                Status::BlockedRecv => any_alive = true,
                Status::Running => {
                    unreachable!("scheduler invoked while a process still runs")
                }
                Status::Dead => {}
            }
        }
        match best {
            Some((wake, id)) => {
                state.now = state.now.max(wake);
                state.procs[id].status = Status::Running;
                state.current = Some(id);
            }
            None if !any_alive => {
                state.current = None;
            }
            None => {
                let stuck: Vec<usize> = state
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.status == Status::BlockedRecv)
                    .map(|(i, _)| i)
                    .collect();
                state.poisoned = Some(format!(
                    "deadlock at t={}: processes {stuck:?} blocked in recv with no pending messages",
                    state.now
                ));
            }
        }
    }

    /// Park the calling process (status already set by the caller), hand
    /// the token over, and wait for it to come back.
    fn yield_and_wait(&self, state: &mut parking_lot::MutexGuard<'_, SimState<M>>, id: usize) {
        self.schedule_next(state);
        self.cv.notify_all();
        loop {
            if let Some(msg) = &state.poisoned {
                let msg = msg.clone();
                // Wake everyone so all threads observe the poison.
                self.cv.notify_all();
                panic!("virtual cluster poisoned: {msg}");
            }
            if state.current == Some(id) {
                break;
            }
            self.cv.wait(state);
        }
    }

    /// Wait for the very first turn (process start).
    fn wait_initial(&self, id: usize) {
        let mut state = self.state.lock();
        loop {
            if let Some(msg) = &state.poisoned {
                let msg = msg.clone();
                self.cv.notify_all();
                panic!("virtual cluster poisoned: {msg}");
            }
            if state.current == Some(id) {
                break;
            }
            self.cv.wait(&mut state);
        }
    }

    pub(crate) fn compute(&self, id: usize, work: f64) {
        assert!(work >= 0.0, "work must be non-negative");
        let mut state = self.state.lock();
        let now = state.now;
        let machine_idx = state.procs[id].machine;
        let end = self.machine(machine_idx).compute_end(now, work);
        {
            let p = &mut state.procs[id];
            p.stats.busy_time += end - now;
            p.stats.work_done += work;
            p.status = Status::Ready(end);
        }
        self.yield_and_wait(&mut state, id);
    }

    pub(crate) fn sleep(&self, id: usize, dt: f64) {
        assert!(dt >= 0.0);
        let mut state = self.state.lock();
        let wake = state.now + dt;
        state.procs[id].status = Status::Ready(wake);
        self.yield_and_wait(&mut state, id);
    }

    pub(crate) fn send(&self, src: usize, dst: usize, msg: M, bytes: u64) {
        let overhead = self.cluster.link.send_overhead_work;
        let mut state = self.state.lock();
        assert!(dst < state.procs.len(), "send to unknown process p{dst}");
        let src_machine = state.procs[src].machine;
        let dst_machine = state.procs[dst].machine;
        let mut deliver_at = state.now
            + self
                .cluster
                .link
                .transfer_time(src_machine, dst_machine, bytes);
        // FIFO per route: never deliver before an earlier send on the same
        // (src, dst) pair.
        let last = state.pair_last.entry((src, dst)).or_insert(0.0);
        deliver_at = deliver_at.max(*last);
        *last = deliver_at;
        state.send_seq += 1;
        let seq = state.send_seq;
        {
            let sp = &mut state.procs[src];
            sp.stats.messages_sent += 1;
            sp.stats.bytes_sent += bytes;
        }
        let dp = &mut state.procs[dst];
        if dp.status == Status::Dead {
            // Message to a finished process is dropped (PVM semantics:
            // undeliverable).
            return;
        }
        dp.mailbox.push(Envelope {
            deliver_at,
            seq,
            msg,
        });
        if dp.status == Status::BlockedRecv {
            dp.status = Status::Ready(deliver_at);
        }
        drop(state);
        // Charge marshalling cost to the sender, if configured.
        if overhead > 0.0 {
            self.compute(src, overhead);
        }
    }

    pub(crate) fn recv(&self, id: usize) -> M {
        let mut state = self.state.lock();
        loop {
            let now = state.now;
            if let Some(env) = state.procs[id].mailbox.pop_ready(now) {
                state.procs[id].stats.messages_received += 1;
                return env.msg;
            }
            let blocked_from = state.now;
            state.procs[id].status = match state.procs[id].mailbox.earliest() {
                Some(t) => Status::Ready(t),
                None => Status::BlockedRecv,
            };
            self.yield_and_wait(&mut state, id);
            let waited = state.now - blocked_from;
            state.procs[id].stats.wait_time += waited;
        }
    }

    pub(crate) fn try_recv(&self, id: usize) -> Option<M> {
        let mut state = self.state.lock();
        let now = state.now;
        let env = state.procs[id].mailbox.pop_ready(now)?;
        state.procs[id].stats.messages_received += 1;
        Some(env.msg)
    }

    /// Mark a process dead and pass the token on. Runs from the process's
    /// thread on exit (normal or panic).
    fn retire(&self, id: usize, panicked: bool) {
        let mut state = self.state.lock();
        state.procs[id].status = Status::Dead;
        state.procs[id].stats.finished_at = state.now;
        if panicked && state.poisoned.is_none() {
            state.poisoned = Some(format!("process p{id} panicked"));
        }
        if state.current == Some(id) {
            state.current = None;
            if state.poisoned.is_none() {
                self.schedule_next(&mut state);
            }
        }
        self.cv.notify_all();
    }
}

type ProcBody<M> = Box<dyn FnOnce(ProcCtx<M>) + Send + 'static>;

/// Builder: declare the cluster, spawn processes, run to completion.
pub struct SimBuilder<M: Send + 'static> {
    cluster: ClusterSpec,
    bodies: Vec<(usize, ProcBody<M>)>,
}

impl<M: Send + 'static> SimBuilder<M> {
    pub fn new(cluster: ClusterSpec) -> SimBuilder<M> {
        SimBuilder {
            cluster,
            bodies: Vec::new(),
        }
    }

    /// Register a process on the given machine; returns its [`ProcId`]
    /// (spawn order).
    pub fn spawn(&mut self, machine: usize, f: impl FnOnce(ProcCtx<M>) + Send + 'static) -> ProcId {
        assert!(
            machine < self.cluster.num_machines(),
            "machine index {machine} out of range"
        );
        let id = ProcId(self.bodies.len());
        self.bodies.push((machine, Box::new(f)));
        id
    }

    /// Number of processes registered so far.
    pub fn num_spawned(&self) -> usize {
        self.bodies.len()
    }

    /// Run the simulation to completion and report metrics.
    ///
    /// Panics (propagating the original message) if any process panicked
    /// or the system deadlocked.
    pub fn run(self) -> RunReport {
        assert!(!self.bodies.is_empty(), "no processes spawned");
        let procs: Vec<ProcState<M>> = self
            .bodies
            .iter()
            .map(|&(machine, _)| ProcState {
                status: Status::Ready(0.0),
                machine,
                mailbox: Mailbox::new(),
                stats: ProcStats {
                    machine,
                    ..ProcStats::default()
                },
            })
            .collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(SimState {
                now: 0.0,
                current: None,
                procs,
                send_seq: 0,
                pair_last: std::collections::HashMap::new(),
                poisoned: None,
            }),
            cv: Condvar::new(),
            cluster: self.cluster,
        });

        let handles: Vec<_> = self
            .bodies
            .into_iter()
            .enumerate()
            .map(|(id, (_machine, body))| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sim-p{id}"))
                    .spawn(move || {
                        struct Retire<M: Send + 'static> {
                            shared: Arc<Shared<M>>,
                            id: usize,
                            done: bool,
                        }
                        impl<M: Send + 'static> Drop for Retire<M> {
                            fn drop(&mut self) {
                                self.shared.retire(self.id, !self.done);
                            }
                        }
                        let mut guard = Retire {
                            shared: Arc::clone(&shared),
                            id,
                            done: false,
                        };
                        shared.wait_initial(id);
                        let ctx = ProcCtx { id, shared };
                        body(ctx);
                        guard.done = true;
                    })
                    .expect("spawn simulation thread")
            })
            .collect();

        // Hand the token to the first process.
        {
            let mut state = shared.state.lock();
            shared.schedule_next(&mut state);
            shared.cv.notify_all();
        }

        let mut panic_payload = None;
        for h in handles {
            if let Err(e) = h.join() {
                panic_payload.get_or_insert(e);
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }

        let state = shared.state.lock();
        RunReport {
            end_time: state
                .procs
                .iter()
                .map(|p| p.stats.finished_at)
                .fold(0.0, f64::max),
            per_proc: state.procs.iter().map(|p| p.stats.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{LoadModel, Machine};
    use crate::message::LinkModel;
    use crate::topology::{homogeneous, ClusterSpec};
    use std::sync::Mutex as StdMutex;

    fn two_machines(speed_b: f64) -> ClusterSpec {
        ClusterSpec::new(
            vec![Machine::new("a", 1.0), Machine::new("b", speed_b)],
            LinkModel {
                latency: 0.5,
                local_latency: 0.01,
                bytes_per_sec: 1e9,
                send_overhead_work: 0.0,
            },
        )
    }

    #[test]
    fn compute_advances_virtual_time_by_speed() {
        let mut sim: SimBuilder<()> = SimBuilder::new(two_machines(0.5));
        let t_fast = Arc::new(StdMutex::new(0.0));
        let t_slow = Arc::new(StdMutex::new(0.0));
        let (tf, ts) = (Arc::clone(&t_fast), Arc::clone(&t_slow));
        sim.spawn(0, move |ctx| {
            ctx.compute(10.0);
            *tf.lock().unwrap() = ctx.now();
        });
        sim.spawn(1, move |ctx| {
            ctx.compute(10.0);
            *ts.lock().unwrap() = ctx.now();
        });
        let report = sim.run();
        assert!((*t_fast.lock().unwrap() - 10.0).abs() < 1e-9);
        assert!((*t_slow.lock().unwrap() - 20.0).abs() < 1e-9);
        assert!((report.end_time - 20.0).abs() < 1e-9);
        assert!((report.per_proc[0].busy_time - 10.0).abs() < 1e-9);
        assert!((report.per_proc[1].busy_time - 20.0).abs() < 1e-9);
    }

    #[test]
    fn messages_arrive_after_latency() {
        let mut sim: SimBuilder<f64> = SimBuilder::new(two_machines(1.0));
        let arrival = Arc::new(StdMutex::new((0.0, 0.0)));
        let arr = Arc::clone(&arrival);
        let receiver = sim.spawn(1, move |ctx| {
            let sent_at = ctx.recv();
            *arr.lock().unwrap() = (sent_at, ctx.now());
        });
        sim.spawn(0, move |ctx| {
            ctx.compute(2.0);
            ctx.send_sized(receiver, ctx.now(), 0);
        });
        sim.run();
        let (sent_at, received_at) = *arrival.lock().unwrap();
        assert!((sent_at - 2.0).abs() < 1e-9);
        assert!((received_at - 2.5).abs() < 1e-9, "latency 0.5 applies");
    }

    #[test]
    fn recv_accounts_wait_time() {
        let mut sim: SimBuilder<u32> = SimBuilder::new(two_machines(1.0));
        let rx = sim.spawn(0, move |ctx| {
            let _ = ctx.recv();
        });
        sim.spawn(1, move |ctx| {
            ctx.compute(4.0);
            ctx.send_sized(rx, 1, 0);
        });
        let report = sim.run();
        assert!(
            (report.per_proc[0].wait_time - 4.5).abs() < 1e-9,
            "receiver waits from t=0 to t=4.5, got {}",
            report.per_proc[0].wait_time
        );
        assert_eq!(report.per_proc[0].messages_received, 1);
        assert_eq!(report.per_proc[1].messages_sent, 1);
    }

    #[test]
    fn fifo_between_same_pair() {
        let mut sim: SimBuilder<u32> = SimBuilder::new(homogeneous(2));
        let order = Arc::new(StdMutex::new(Vec::new()));
        let o = Arc::clone(&order);
        let rx = sim.spawn(0, move |ctx| {
            for _ in 0..3 {
                o.lock().unwrap().push(ctx.recv());
            }
        });
        sim.spawn(1, move |ctx| {
            for i in 0..3 {
                ctx.send_sized(rx, i, 64);
            }
        });
        sim.run();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn deterministic_replay() {
        fn run_once() -> Vec<(u64, u64)> {
            // Three workers ping a master in a deterministic pattern; log
            // (worker, value at master).
            let log = Arc::new(StdMutex::new(Vec::new()));
            let mut sim: SimBuilder<(u64, u64)> = SimBuilder::new(homogeneous(4));
            let l = Arc::clone(&log);
            let master = sim.spawn(0, move |ctx| {
                for _ in 0..9 {
                    l.lock().unwrap().push(ctx.recv());
                }
            });
            for w in 0..3u64 {
                sim.spawn(1 + w as usize, move |ctx| {
                    for i in 0..3u64 {
                        ctx.compute(1.0 + w as f64 * 0.3 + i as f64);
                        ctx.send(master, (w, i));
                    }
                });
            }
            sim.run();
            let result = log.lock().unwrap().clone();
            result
        }
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "same inputs must replay identically");
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn try_recv_never_blocks() {
        let mut sim: SimBuilder<u32> = SimBuilder::new(homogeneous(2));
        let got = Arc::new(StdMutex::new((None, None)));
        let g = Arc::clone(&got);
        let rx = sim.spawn(0, move |ctx| {
            let early = ctx.try_recv(); // nothing yet
            ctx.sleep(10.0);
            let late = ctx.try_recv(); // message arrived meanwhile
            *g.lock().unwrap() = (early, late);
        });
        sim.spawn(1, move |ctx| {
            ctx.compute(1.0);
            ctx.send_sized(rx, 7, 0);
        });
        sim.run();
        let (early, late) = *got.lock().unwrap();
        assert_eq!(early, None);
        assert_eq!(late, Some(7));
    }

    #[test]
    fn loaded_machine_is_slower() {
        let cluster = ClusterSpec::new(
            vec![
                Machine::new("free", 1.0),
                Machine::new("busy", 1.0).with_load(LoadModel::Periodic {
                    period: 4.0,
                    duty: 0.5,
                    busy_factor: 0.25,
                }),
            ],
            LinkModel::default(),
        );
        let mut sim: SimBuilder<()> = SimBuilder::new(cluster);
        let times = Arc::new(StdMutex::new((0.0, 0.0)));
        let (ta, tb) = (Arc::clone(&times), Arc::clone(&times));
        sim.spawn(0, move |ctx| {
            ctx.compute(8.0);
            ta.lock().unwrap().0 = ctx.now();
        });
        sim.spawn(1, move |ctx| {
            ctx.compute(8.0);
            tb.lock().unwrap().1 = ctx.now();
        });
        sim.run();
        let (free, busy) = *times.lock().unwrap();
        assert!((free - 8.0).abs() < 1e-9);
        assert!(busy > free + 1.0, "load must slow the busy machine");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut sim: SimBuilder<u32> = SimBuilder::new(homogeneous(2));
        sim.spawn(0, |ctx| {
            let _ = ctx.recv(); // nobody will ever send
        });
        sim.spawn(1, |ctx| {
            ctx.compute(1.0);
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn process_panic_propagates() {
        let mut sim: SimBuilder<u32> = SimBuilder::new(homogeneous(2));
        sim.spawn(0, |ctx| {
            ctx.compute(1.0);
            panic!("boom");
        });
        sim.spawn(1, |ctx| {
            ctx.compute(0.5);
        });
        sim.run();
    }

    #[test]
    fn send_to_dead_process_is_dropped() {
        let mut sim: SimBuilder<u32> = SimBuilder::new(homogeneous(2));
        let early = sim.spawn(0, |ctx| {
            ctx.compute(0.1); // dies immediately after
        });
        sim.spawn(1, move |ctx| {
            ctx.compute(5.0);
            ctx.send(early, 1); // receiver long dead
            ctx.compute(1.0);
        });
        let report = sim.run();
        assert_eq!(report.per_proc[0].messages_received, 0);
    }

    #[test]
    fn sleep_advances_time_without_busy_accounting() {
        let mut sim: SimBuilder<()> = SimBuilder::new(homogeneous(1));
        sim.spawn(0, |ctx| {
            ctx.sleep(3.0);
            assert!((ctx.now() - 3.0).abs() < 1e-12);
        });
        let report = sim.run();
        assert_eq!(report.per_proc[0].busy_time, 0.0);
        assert!((report.end_time - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_holds_when_small_message_follows_large() {
        // A 1 MB message takes ~1 s on the default link; a 0-byte message
        // sent right after must NOT overtake it.
        let mut sim: SimBuilder<u32> = SimBuilder::new(homogeneous(2));
        let order = Arc::new(StdMutex::new(Vec::new()));
        let o = Arc::clone(&order);
        let rx = sim.spawn(0, move |ctx| {
            o.lock().unwrap().push(ctx.recv());
            o.lock().unwrap().push(ctx.recv());
        });
        sim.spawn(1, move |ctx| {
            ctx.send_sized(rx, 1, 1_000_000); // slow
            ctx.send_sized(rx, 2, 0); // fast, but must queue behind
        });
        sim.run();
        assert_eq!(*order.lock().unwrap(), vec![1, 2]);
    }

    #[test]
    fn send_overhead_charges_sender() {
        let cluster = ClusterSpec::new(
            vec![Machine::new("a", 1.0), Machine::new("b", 1.0)],
            LinkModel {
                latency: 0.0,
                local_latency: 0.0,
                bytes_per_sec: 1e12,
                send_overhead_work: 2.0,
            },
        );
        let mut sim: SimBuilder<u32> = SimBuilder::new(cluster);
        let rx = sim.spawn(0, |ctx| {
            let _ = ctx.recv();
        });
        sim.spawn(1, move |ctx| {
            ctx.send(rx, 1);
            assert!((ctx.now() - 2.0).abs() < 1e-9, "marshalling cost charged");
        });
        let report = sim.run();
        assert!((report.per_proc[1].busy_time - 2.0).abs() < 1e-9);
    }
}
