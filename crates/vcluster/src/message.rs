//! The network link model.

/// Uniform link characteristics between cluster machines (a LAN, per the
/// paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// One-way latency between distinct machines, in virtual seconds.
    pub latency: f64,
    /// Loopback latency for processes on the same machine.
    pub local_latency: f64,
    /// Bandwidth in bytes per virtual second.
    pub bytes_per_sec: f64,
    /// CPU work units charged to the *sender* per message (marshalling /
    /// PVM pack cost).
    pub send_overhead_work: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        // 10BaseT-era LAN, in the spirit of the paper's testbed: ~1 ms
        // latency, ~1 MB/s effective bandwidth.
        LinkModel {
            latency: 1e-3,
            local_latency: 5e-5,
            bytes_per_sec: 1e6,
            send_overhead_work: 0.0,
        }
    }
}

impl LinkModel {
    /// Delivery delay for a message of `bytes` between machines `src` and
    /// `dst` (indices; equal indices use loopback latency).
    pub fn transfer_time(&self, src_machine: usize, dst_machine: usize, bytes: u64) -> f64 {
        let base = if src_machine == dst_machine {
            self.local_latency
        } else {
            self.latency
        };
        base + bytes as f64 / self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_slower_than_local() {
        let l = LinkModel::default();
        assert!(l.transfer_time(0, 1, 100) > l.transfer_time(0, 0, 100));
    }

    #[test]
    fn bandwidth_scales_with_size() {
        let l = LinkModel {
            latency: 0.0,
            local_latency: 0.0,
            bytes_per_sec: 1000.0,
            send_overhead_work: 0.0,
        };
        assert!((l.transfer_time(0, 1, 500) - 0.5).abs() < 1e-12);
        assert!((l.transfer_time(0, 1, 2000) - 2.0).abs() < 1e-12);
    }
}
