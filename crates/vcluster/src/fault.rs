//! Deterministic fault injection and machine contention for the
//! virtual-time runtime.
//!
//! A [`FaultPlan`] is a *schedule* of adversity, fixed before the run
//! starts and replayed against the discrete-event queue: machines slow
//! down, pause, or crash at chosen virtual times; routes drop, delay, or
//! jitter messages inside time windows; tasks die, optionally notifying
//! their protocol neighbours (the PVM `pvm_notify` model — the runtime,
//! not the corpse, delivers the death notice). Everything is a pure
//! function of the plan and the workload, so a failing scenario replays
//! bit-for-bit from `(seed, plan)`.
//!
//! [`Contention`] is orthogonal: it changes how *concurrent* computes on
//! one machine share it, with or without any faults. Under
//! [`Contention::Exclusive`] (the historical default) co-located procs
//! compute as if alone; under [`Contention::TimeSliced`] `k` runnable
//! procs each advance at `1/k` of the machine's rate — round-robin time
//! slicing in the fluid limit — so oversubscribed runs cost more virtual
//! time. A machine hosting a single proc behaves bit-identically in both
//! modes (its share is exactly `1.0`).

/// How multiple runnable procs on one machine share its cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Contention {
    /// Every proc computes as if it had the machine to itself (the
    /// historical model, and what the pinned goldens assume).
    #[default]
    Exclusive,
    /// Processor sharing: `k` concurrently-computing procs each advance
    /// at `1/k` of the machine's effective rate, re-partitioned whenever
    /// a compute starts or ends. The fluid limit of round-robin
    /// scheduling with an infinitesimal quantum.
    TimeSliced,
}

/// What an active [`RouteFault`] does to messages crossing its route.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RouteAction {
    /// The message silently vanishes (counted on the sender as
    /// [`crate::metrics::ProcStats::messages_dropped`]).
    Drop,
    /// Delivery is postponed by the given extra latency; FIFO order on
    /// the route is preserved (the whole route stalls).
    Delay(f64),
    /// Delivery is postponed by a deterministic pseudo-random extra
    /// latency in `[0, spread)` drawn per message from the plan seed,
    /// *without* the per-route FIFO clamp — later messages may overtake
    /// earlier ones (reordering).
    Jitter(f64),
}

/// A time-windowed fault on messages from `src` to `dst` (task ids;
/// `None` = wildcard). Active while `from <= now < until`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteFault {
    /// Sending task, or `None` for any sender.
    pub src: Option<usize>,
    /// Receiving task, or `None` for any receiver.
    pub dst: Option<usize>,
    /// Virtual time the fault switches on.
    pub from: f64,
    /// Virtual time the fault switches off.
    pub until: f64,
    /// What happens to matching messages.
    pub action: RouteAction,
}

impl RouteFault {
    pub(crate) fn matches(&self, src: usize, dst: usize, now: f64) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && now >= self.from
            && now < self.until
    }
}

/// A machine-level fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MachineEvent {
    /// Multiply the machine's effective speed by `factor` (e.g. `0.2` =
    /// slowed 5×) from now on, until overwritten by a later event.
    Slow {
        /// New speed multiplier (must be positive and finite).
        factor: f64,
    },
    /// Freeze the machine until the given virtual time: in-flight
    /// computes park and resume where they left off.
    Pause {
        /// Virtual time the machine thaws.
        until: f64,
    },
    /// Stop the machine forever. The runtime does **not** kill the tasks
    /// hosted there — pair the crash with [`FaultPlan::kill_task`]
    /// entries (as the pts-core fault resolver does) or their computes
    /// stall and the tasks end [`crate::metrics::TaskFate::Orphaned`].
    Crash,
}

pub(crate) enum FaultKind<M> {
    Machine {
        machine: usize,
        event: MachineEvent,
    },
    /// Internal: re-evaluate a machine's rate when a pause may expire.
    Thaw {
        machine: usize,
    },
    Kill {
        task: usize,
        notify: Vec<(usize, M)>,
    },
}

pub(crate) struct TimedFault<M> {
    pub at: f64,
    pub kind: FaultKind<M>,
}

/// A deterministic schedule of machine, route, and task faults for one
/// [`crate::VirtualTaskCluster`] run. Build it with the `*_machine` /
/// [`kill_task`](FaultPlan::kill_task) / [`route`](FaultPlan::route)
/// methods and install it with
/// [`crate::VirtualTaskCluster::set_fault_plan`].
pub struct FaultPlan<M> {
    pub(crate) timeline: Vec<TimedFault<M>>,
    pub(crate) routes: Vec<RouteFault>,
    pub(crate) seed: u64,
}

impl<M> FaultPlan<M> {
    /// An empty plan; `seed` feeds the per-message jitter draws.
    pub fn new(seed: u64) -> FaultPlan<M> {
        FaultPlan {
            timeline: Vec::new(),
            routes: Vec::new(),
            seed,
        }
    }

    fn push(&mut self, at: f64, kind: FaultKind<M>) {
        assert!(
            at.is_finite() && at >= 0.0,
            "fault time must be finite and >= 0, got {at}"
        );
        self.timeline.push(TimedFault { at, kind });
    }

    /// Multiply `machine`'s speed by `factor` from virtual time `at`.
    pub fn slow_machine(&mut self, at: f64, machine: usize, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "slow factor must be positive and finite, got {factor}"
        );
        self.push(
            at,
            FaultKind::Machine {
                machine,
                event: MachineEvent::Slow { factor },
            },
        );
    }

    /// Freeze `machine` over `[at, until)`.
    pub fn pause_machine(&mut self, at: f64, machine: usize, until: f64) {
        assert!(
            until > at,
            "pause must end after it starts ({at} .. {until})"
        );
        assert!(until.is_finite(), "use crash_machine for a permanent stall");
        self.push(
            at,
            FaultKind::Machine {
                machine,
                event: MachineEvent::Pause { until },
            },
        );
        // The thaw wake-up: without it nothing would reschedule the
        // parked computes when the pause expires.
        self.push(until, FaultKind::Thaw { machine });
    }

    /// Stop `machine` forever from virtual time `at` (see
    /// [`MachineEvent::Crash`] for the task-kill caveat).
    pub fn crash_machine(&mut self, at: f64, machine: usize) {
        self.push(
            at,
            FaultKind::Machine {
                machine,
                event: MachineEvent::Crash,
            },
        );
    }

    /// Kill `task` at virtual time `at`. Each `(dst, msg)` in `notify` is
    /// delivered to `dst` at the kill instant by the runtime itself
    /// (no sender stats, no route faults, no FIFO clamp — death notices
    /// are out-of-band, like PVM's `pvm_notify`).
    pub fn kill_task(&mut self, at: f64, task: usize, notify: Vec<(usize, M)>) {
        self.push(at, FaultKind::Kill { task, notify });
    }

    /// Add a time-windowed route fault.
    pub fn route(&mut self, fault: RouteFault) {
        assert!(
            fault.until > fault.from,
            "route fault window must be non-empty ({} .. {})",
            fault.from,
            fault.until
        );
        self.routes.push(fault);
    }

    /// `true` when the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty() && self.routes.is_empty()
    }

    /// The scheduled kills as `(at, task, notified task ids)`, in
    /// insertion order — lets higher-level resolvers assert what they
    /// lowered without exposing the timeline representation.
    pub fn kills(&self) -> Vec<(f64, usize, Vec<usize>)> {
        self.timeline
            .iter()
            .filter_map(|e| match &e.kind {
                FaultKind::Kill { task, notify } => {
                    Some((e.at, *task, notify.iter().map(|&(to, _)| to).collect()))
                }
                _ => None,
            })
            .collect()
    }

    /// Number of scheduled timeline events (thaws included).
    pub fn len(&self) -> usize {
        self.timeline.len()
    }

    /// Sort the timeline by time, stably — simultaneous faults apply in
    /// insertion order. Called once when the plan is installed.
    pub(crate) fn finalize(&mut self) {
        self.timeline.sort_by(|a, b| a.at.total_cmp(&b.at));
    }
}

/// One deterministic draw in `[0, 1)` for jitter: splitmix64 of the plan
/// seed and the message's global send sequence.
pub(crate) fn jitter_unit(seed: u64, send_seq: u64) -> f64 {
    let mut z = seed ^ send_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_stably_by_time() {
        let mut plan: FaultPlan<()> = FaultPlan::new(1);
        plan.slow_machine(5.0, 0, 0.5);
        plan.crash_machine(2.0, 1);
        plan.slow_machine(2.0, 2, 0.25);
        plan.finalize();
        let order: Vec<(f64, usize)> = plan
            .timeline
            .iter()
            .map(|tf| match tf.kind {
                FaultKind::Machine { machine, .. } | FaultKind::Thaw { machine } => {
                    (tf.at, machine)
                }
                FaultKind::Kill { task, .. } => (tf.at, task),
            })
            .collect();
        assert_eq!(order, vec![(2.0, 1), (2.0, 2), (5.0, 0)]);
    }

    #[test]
    fn pause_schedules_its_thaw() {
        let mut plan: FaultPlan<u32> = FaultPlan::new(0);
        plan.pause_machine(1.0, 3, 4.0);
        assert_eq!(plan.len(), 2);
        plan.finalize();
        assert!(matches!(
            plan.timeline[1].kind,
            FaultKind::Thaw { machine: 3 }
        ));
        assert_eq!(plan.timeline[1].at, 4.0);
    }

    #[test]
    fn route_matching_honors_wildcards_and_window() {
        let rf = RouteFault {
            src: None,
            dst: Some(7),
            from: 1.0,
            until: 2.0,
            action: RouteAction::Drop,
        };
        assert!(rf.matches(3, 7, 1.5));
        assert!(rf.matches(9, 7, 1.0));
        assert!(!rf.matches(3, 8, 1.5), "dst must match");
        assert!(!rf.matches(3, 7, 2.0), "window is half-open");
        assert!(!rf.matches(3, 7, 0.5));
    }

    #[test]
    fn jitter_is_deterministic_and_in_unit_range() {
        for seq in 0..1000 {
            let a = jitter_unit(0xDEAD, seq);
            let b = jitter_unit(0xDEAD, seq);
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
        }
        assert_ne!(jitter_unit(1, 5), jitter_unit(2, 5), "seed must matter");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinite_fault_times() {
        FaultPlan::<()>::new(0).crash_machine(f64::INFINITY, 0);
    }
}
