//! A deterministic virtual-time heterogeneous cluster runtime.
//!
//! The paper runs its parallel tabu search with PVM on twelve physical
//! workstations of three speed classes. This crate substitutes that
//! testbed with a simulated cluster that reproduces exactly the properties
//! the experiments measure — *relative* execution speed, background load,
//! and message latency — while being fully deterministic and runnable
//! anywhere:
//!
//! * every process is an OS thread, but exactly **one runs at a time**; a
//!   token scheduler advances a global **virtual clock** to the next
//!   process wake-up in `(time, pid)` order, so runs are exactly
//!   reproducible,
//! * CPU work is charged explicitly via [`process::ProcCtx::compute`] in
//!   abstract *work units*; a machine of speed `s` executes `s` units per
//!   virtual second, modulated by its background [`machine::LoadModel`],
//! * messages travel through a [`message::LinkModel`] with latency and
//!   bandwidth; mailbox delivery order is `(arrival time, send sequence)`,
//! * per-process [`metrics`] (busy time, message counts) feed the
//!   experiment harness.
//!
//! The paper's twelve-machine cluster (7 fast / 3 medium / 2 slow) is
//! provided by [`topology::paper_cluster`].
//!
//! For scale beyond what one-thread-per-process affords, the crate also
//! ships two cooperative runtimes that multiplex thousands of logical
//! processes as futures on a single OS thread:
//!
//! * [`async_runtime`] — deterministic FIFO scheduling, wall-clock
//!   accounting (no virtual time);
//! * [`virtual_runtime`] — a discrete-event scheduler with the *same
//!   virtual clock and machine model* as the token scheduler: runs are
//!   bit-identical in timeline and accounting to [`runtime::SimBuilder`],
//!   so paper-style heterogeneity measurements scale to thousands of
//!   workers.

pub mod async_runtime;
pub mod fault;
pub mod machine;
pub mod mailbox;
pub mod message;
pub mod metrics;
pub mod process;
pub mod runtime;
pub mod topology;
pub mod virtual_runtime;

pub use async_runtime::{TaskCluster, TaskCtx};
pub use fault::{Contention, FaultPlan, MachineEvent, RouteAction, RouteFault};
pub use machine::{LoadModel, Machine};
pub use message::LinkModel;
pub use metrics::{ProcStats, RunReport, TaskFate};
pub use process::{ProcCtx, ProcId};
pub use runtime::SimBuilder;
pub use topology::ClusterSpec;
pub use virtual_runtime::{EventQueue, VirtualTaskCluster, VirtualTaskCtx};
