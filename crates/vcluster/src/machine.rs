//! Machines: speed classes and background load.

/// Background load on a machine, modeled as a time-varying multiplier on
/// its effective speed. Deterministic by construction.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadModel {
    /// No background load: full speed at all times.
    None,
    /// Periodic load: within each `period`, the first `duty` fraction runs
    /// at `busy_factor` × speed (e.g. 0.5 = half speed), the rest at full
    /// speed. Models a workstation shared with other users, the paper's
    /// "load heterogeneity".
    Periodic {
        period: f64,
        duty: f64,
        busy_factor: f64,
    },
}

impl LoadModel {
    /// Speed multiplier at virtual time `t` (in `(0, 1]`).
    pub fn factor_at(&self, t: f64) -> f64 {
        match *self {
            LoadModel::None => 1.0,
            LoadModel::Periodic {
                period,
                duty,
                busy_factor,
            } => {
                let phase = t.rem_euclid(period);
                if phase < duty * period {
                    busy_factor
                } else {
                    1.0
                }
            }
        }
    }

    /// Next time *strictly after* `t` at which the factor may change
    /// (`f64::INFINITY` when constant). The strictness matters: when `t`
    /// sits exactly on a boundary, rounding in `rem_euclid` could otherwise
    /// return `t` itself and stall integration loops.
    pub fn next_boundary(&self, t: f64) -> f64 {
        match *self {
            LoadModel::None => f64::INFINITY,
            LoadModel::Periodic { period, duty, .. } => {
                let phase = t.rem_euclid(period);
                let base = t - phase;
                let switch = duty * period;
                let candidate = if phase < switch {
                    base + switch
                } else {
                    base + period
                };
                if candidate > t {
                    candidate
                } else if phase < switch {
                    // t ≈ base + switch after rounding: next change is the
                    // end of this period.
                    base + period
                } else {
                    // t ≈ base + period after rounding: next change is the
                    // following switch point.
                    base + period + switch
                }
            }
        }
    }
}

/// A workstation in the cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct Machine {
    pub name: String,
    /// Work units per virtual second when unloaded.
    pub speed: f64,
    pub load: LoadModel,
}

impl Machine {
    pub fn new(name: impl Into<String>, speed: f64) -> Machine {
        assert!(speed > 0.0, "machine speed must be positive");
        Machine {
            name: name.into(),
            speed,
            load: LoadModel::None,
        }
    }

    pub fn with_load(mut self, load: LoadModel) -> Machine {
        self.load = load;
        self
    }

    /// Virtual time to execute `work` units starting at time `start`
    /// (integrates across load boundaries).
    pub fn compute_end(&self, start: f64, work: f64) -> f64 {
        self.compute_end_scaled(start, work, 1.0)
    }

    /// [`Machine::compute_end`] with the effective rate multiplied by
    /// `rate_scale` — the contention/fault hook: a proc holding `1/k` of
    /// a time-sliced machine (or a machine slowed to `f×` by a fault)
    /// integrates at `speed × load × rate_scale`. A scale of exactly
    /// `1.0` is bit-identical to the unscaled integration (IEEE
    /// multiplication by one is exact), which is what keeps
    /// uncontended runs on the goldens.
    pub fn compute_end_scaled(&self, start: f64, work: f64, rate_scale: f64) -> f64 {
        assert!(work >= 0.0);
        assert!(
            rate_scale > 0.0 && rate_scale.is_finite(),
            "rate_scale must be positive and finite, got {rate_scale}"
        );
        let mut remaining = work;
        let mut t = start;
        let mut guard = 0u32;
        while remaining > 0.0 {
            let factor = self.load.factor_at(t);
            let boundary = self.load.next_boundary(t);
            let rate = self.speed * factor * rate_scale;
            if rate <= 0.0 {
                // Fully stalled until the next boundary.
                assert!(
                    boundary.is_finite(),
                    "machine permanently stalled at zero speed"
                );
                t = boundary;
            } else {
                let span = boundary - t;
                let capacity = span * rate;
                if capacity >= remaining || !boundary.is_finite() {
                    return t + remaining / rate;
                }
                remaining -= capacity;
                t = boundary;
            }
            guard += 1;
            assert!(guard < 1_000_000, "compute_end failed to converge");
        }
        t
    }

    /// Work units this machine executes between virtual times `from` and
    /// `to` at full allocation (speed × load integrated across
    /// boundaries) — the settling half of the contention model: the
    /// caller multiplies by the proc's share of the machine.
    pub fn work_between(&self, from: f64, to: f64) -> f64 {
        assert!(to >= from, "work_between requires from <= to");
        let mut total = 0.0;
        let mut t = from;
        let mut guard = 0u32;
        while t < to {
            let factor = self.load.factor_at(t);
            let boundary = self.load.next_boundary(t).min(to);
            total += (boundary - t) * self.speed * factor;
            t = boundary;
            guard += 1;
            assert!(guard < 1_000_000, "work_between failed to converge");
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_machine_runs_at_speed() {
        let m = Machine::new("fast", 2.0);
        assert!((m.compute_end(10.0, 6.0) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_factor_shape() {
        let l = LoadModel::Periodic {
            period: 10.0,
            duty: 0.3,
            busy_factor: 0.5,
        };
        assert_eq!(l.factor_at(0.0), 0.5);
        assert_eq!(l.factor_at(2.9), 0.5);
        assert_eq!(l.factor_at(3.0), 1.0);
        assert_eq!(l.factor_at(9.9), 1.0);
        assert_eq!(l.factor_at(10.0), 0.5); // wraps
    }

    #[test]
    fn periodic_boundaries() {
        let l = LoadModel::Periodic {
            period: 10.0,
            duty: 0.3,
            busy_factor: 0.5,
        };
        assert!((l.next_boundary(0.0) - 3.0).abs() < 1e-12);
        assert!((l.next_boundary(2.0) - 3.0).abs() < 1e-12);
        assert!((l.next_boundary(3.0) - 10.0).abs() < 1e-12);
        assert!((l.next_boundary(9.9) - 10.0).abs() < 1e-12);
        assert_eq!(LoadModel::None.next_boundary(5.0), f64::INFINITY);
    }

    #[test]
    fn next_boundary_is_strictly_increasing() {
        // Awkward duty/period combinations where boundaries land on values
        // that do not round exactly; walking boundary-to-boundary must
        // always make progress.
        for &(period, duty) in &[(5.0, 0.30000000001), (0.7, 0.142857), (3.1, 0.9)] {
            let l = LoadModel::Periodic {
                period,
                duty,
                busy_factor: 0.5,
            };
            let mut t = 0.0;
            for _ in 0..10_000 {
                let b = l.next_boundary(t);
                assert!(b > t, "boundary {b} must be strictly after {t}");
                t = b;
            }
        }
    }

    #[test]
    fn loaded_compute_integrates_across_boundaries() {
        // speed 1, busy half-speed for the first half of each 10s period.
        let m = Machine::new("shared", 1.0).with_load(LoadModel::Periodic {
            period: 10.0,
            duty: 0.5,
            busy_factor: 0.5,
        });
        // Starting at t=0: 5s at 0.5 speed = 2.5 units, then 5s at 1.0 =
        // 5 units. 6 units total → 2.5 in busy window + 3.5 after = ends at
        // 5 + 3.5 = 8.5.
        assert!((m.compute_end(0.0, 6.0) - 8.5).abs() < 1e-9);
        // Tiny work inside the busy window.
        assert!((m.compute_end(0.0, 1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn compute_across_multiple_periods() {
        let m = Machine::new("shared", 1.0).with_load(LoadModel::Periodic {
            period: 2.0,
            duty: 0.5,
            busy_factor: 0.5,
        });
        // Each 2s period: 0.5 units (busy half) + 1.0 units = 1.5 units.
        // 4.5 units = exactly 3 periods = 6s.
        assert!((m.compute_end(0.0, 4.5) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_is_instant() {
        let m = Machine::new("x", 3.0);
        assert_eq!(m.compute_end(7.0, 0.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_speed() {
        Machine::new("broken", 0.0);
    }

    #[test]
    fn scaled_compute_is_bitwise_unscaled_at_one() {
        let m = Machine::new("shared", 1.3).with_load(LoadModel::Periodic {
            period: 7.0,
            duty: 0.4,
            busy_factor: 0.6,
        });
        for &(start, work) in &[(0.0, 6.0), (2.5, 0.1), (11.0, 40.0), (3.0, 0.0)] {
            assert_eq!(
                m.compute_end(start, work),
                m.compute_end_scaled(start, work, 1.0),
                "scale 1.0 must be exact"
            );
        }
    }

    #[test]
    fn half_scale_takes_twice_as_long_unloaded() {
        let m = Machine::new("x", 2.0);
        assert!((m.compute_end_scaled(0.0, 6.0, 0.5) - 6.0).abs() < 1e-12);
        assert!((m.compute_end(0.0, 6.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn work_between_inverts_compute_end() {
        let m = Machine::new("shared", 1.0).with_load(LoadModel::Periodic {
            period: 10.0,
            duty: 0.5,
            busy_factor: 0.5,
        });
        for &work in &[0.5, 2.5, 6.0, 17.25] {
            let end = m.compute_end(0.0, work);
            let back = m.work_between(0.0, end);
            assert!(
                (back - work).abs() < 1e-9,
                "work_between(0, compute_end(0, {work})) = {back}"
            );
        }
        assert_eq!(m.work_between(3.0, 3.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate_scale")]
    fn rejects_zero_rate_scale() {
        Machine::new("x", 1.0).compute_end_scaled(0.0, 1.0, 0.0);
    }
}
