//! Execution metrics collected by the runtime.

/// How a process's run ended. Fault-free runs always report
/// [`TaskFate::Completed`]; the other fates only appear under a
/// [`crate::fault::FaultPlan`] on the virtual-time runtime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TaskFate {
    /// The process's future ran to completion.
    #[default]
    Completed,
    /// Killed by a fault-plan event (worker death / machine crash).
    Killed,
    /// Still parked when the run drained: its peers died or its machine
    /// stalled forever, and nothing could ever wake it again.
    Orphaned,
}

/// Per-process counters (virtual-time accounting).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProcStats {
    /// Machine index the process ran on.
    pub machine: usize,
    /// Virtual seconds spent in `compute` (including load stalls).
    pub busy_time: f64,
    /// Virtual seconds spent blocked in `recv`.
    pub wait_time: f64,
    /// Total work units charged.
    pub work_done: f64,
    pub messages_sent: u64,
    pub messages_received: u64,
    pub bytes_sent: u64,
    /// Sends swallowed by an active route fault (counted on the sender).
    pub messages_dropped: u64,
    /// Virtual time when the process finished.
    pub finished_at: f64,
    /// How the process ended ([`TaskFate::Completed`] unless faults ran).
    pub fate: TaskFate,
}

/// Whole-run report.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Virtual time when the last process finished.
    pub end_time: f64,
    pub per_proc: Vec<ProcStats>,
}

impl RunReport {
    pub fn total_messages(&self) -> u64 {
        self.per_proc.iter().map(|p| p.messages_sent).sum()
    }

    pub fn total_work(&self) -> f64 {
        self.per_proc.iter().map(|p| p.work_done).sum()
    }

    /// Fraction of total virtual process-time spent computing (vs waiting).
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.per_proc.iter().map(|p| p.busy_time).sum();
        let wait: f64 = self.per_proc.iter().map(|p| p.wait_time).sum();
        if busy + wait == 0.0 {
            0.0
        } else {
            busy / (busy + wait)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let report = RunReport {
            end_time: 10.0,
            per_proc: vec![
                ProcStats {
                    busy_time: 6.0,
                    wait_time: 2.0,
                    messages_sent: 3,
                    work_done: 6.0,
                    ..ProcStats::default()
                },
                ProcStats {
                    busy_time: 2.0,
                    wait_time: 6.0,
                    messages_sent: 1,
                    work_done: 2.0,
                    ..ProcStats::default()
                },
            ],
        };
        assert_eq!(report.total_messages(), 4);
        assert!((report.total_work() - 8.0).abs() < 1e-12);
        assert!((report.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_utilization_zero() {
        assert_eq!(RunReport::default().utilization(), 0.0);
    }
}
