//! Virtual-time cooperative runtime: the timing model of the token
//! scheduler ([`crate::runtime::SimBuilder`]) without its
//! thread-per-process cost.
//!
//! [`SimBuilder`](crate::runtime::SimBuilder) gives every simulated
//! process an OS thread and advances a virtual clock by handing a token
//! to the ready process with the smallest `(wake, pid)`. That timing
//! model is what the paper's measurements need — per-machine speed,
//! background load, message latency — but one thread per logical process
//! caps runs at tens of workers. [`crate::async_runtime::TaskCluster`]
//! scales to thousands of logical processes on one thread, but only
//! knows wall clock.
//!
//! [`VirtualTaskCluster`] is both at once: every logical process is a
//! *future* (like the task cluster), and the executor is a discrete-event
//! scheduler over an [`EventQueue`] of `(virtual_time, task)` wake-ups
//! (like the token scheduler). `compute` charges work against the task's
//! machine — integrating speed and [`crate::machine::LoadModel`] exactly
//! as the token scheduler does — and suspends the future until the
//! charged end time; `recv` parks the future until a message's
//! [`Envelope::deliver_at`] is reached. Because every scheduling decision
//! is the same deterministic function of virtual times and task ids that
//! the token scheduler uses (`(wake, pid)` order, mailbox delivery by
//! `(arrival, send seq)`, per-route FIFO), a run here is **bit-identical
//! in timeline and accounting** to the same program under `SimBuilder` —
//! which the cross-runtime property tests assert — while thousands of
//! tasks fit in one OS thread.
//!
//! One deliberate restriction:
//! [`crate::message::LinkModel::send_overhead_work`] must be zero. Charging marshalling work inside `send` would make `send` a
//! suspension point, and this runtime keeps `send` synchronous (only
//! `compute` and `recv` suspend). [`VirtualTaskCluster::new`] rejects
//! clusters that configure it; use the token scheduler for those.

use crate::mailbox::{Envelope, Mailbox};
use crate::metrics::{ProcStats, RunReport};
use crate::topology::ClusterSpec;
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// One pending wake-up in the [`EventQueue`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Virtual time at which the task becomes runnable.
    pub time: f64,
    /// Schedule ticket: monotonically increasing insertion sequence.
    pub seq: u64,
    /// Task to wake.
    pub task: usize,
}

// Orderings compare (time, task, seq) — reversed, because BinaryHeap is a
// max-heap and the queue pops the earliest event first.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then(other.task.cmp(&self.task))
            .then(other.seq.cmp(&self.seq))
    }
}

/// Discrete-event wake-up queue: schedule `(time, task)` entries, pop
/// them in deterministic earliest-first order, cancel lazily.
///
/// Pop order is `(time, task id, schedule seq)`. Breaking time ties by
/// *task id* — not insertion order — mirrors the token scheduler's
/// `(wake, pid)` rule, which is what makes the virtual-time executor
/// bit-identical to [`crate::runtime::SimBuilder`]; the monotonically
/// increasing `seq` totalizes the order when one task holds several
/// entries at the same instant (the executor never does, but the queue
/// does not rely on that).
///
/// Cancellation is lazy: a cancelled ticket stays in the heap and is
/// skipped on pop, so both `schedule` and `cancel` are `O(log n)` /
/// `O(1)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    /// Tickets scheduled and neither popped nor cancelled yet.
    live: HashSet<u64>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule `task` to wake at `time`; returns the ticket with which
    /// the entry can be cancelled. `time` must be finite (a wake-up at
    /// infinity would silently deadlock the drain).
    pub fn schedule(&mut self, time: f64, task: usize) -> u64 {
        assert!(time.is_finite(), "wake-up time must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, task });
        self.live.insert(seq);
        seq
    }

    /// Cancel a scheduled entry. Returns `true` if the ticket was still
    /// live (not yet popped or cancelled).
    pub fn cancel(&mut self, ticket: u64) -> bool {
        self.live.remove(&ticket)
    }

    /// Pop the earliest live event in `(time, task, seq)` order.
    pub fn pop(&mut self) -> Option<Event> {
        while let Some(ev) = self.heap.pop() {
            if self.live.remove(&ev.seq) {
                return Some(ev);
            }
        }
        None
    }

    /// Number of live (scheduled, not yet popped or cancelled) entries.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

/// Lifecycle of one task, mirroring the token scheduler's process status.
#[derive(Clone, Copy, Debug, PartialEq)]
enum TaskStatus {
    /// Has exactly one wake-up in the event queue (initial start, a
    /// `compute` end, or an already-scheduled mailbox delivery).
    Scheduled,
    /// Currently being polled by the executor.
    Running,
    /// Parked in `recv` with an empty mailbox; a send will schedule it.
    BlockedRecv,
    /// Finished; sends to it are dropped (undeliverable).
    Done,
}

/// Per-task state.
struct Slot<M> {
    status: TaskStatus,
    machine: usize,
    mailbox: Mailbox<M>,
    stats: ProcStats,
    /// Virtual time the current `recv` started blocking (wait accounting).
    blocked_since: Option<f64>,
}

/// Shared state of one virtual-time cooperative run.
struct VHub<M> {
    cluster: ClusterSpec,
    now: Cell<f64>,
    send_seq: Cell<u64>,
    queue: RefCell<EventQueue>,
    slots: RefCell<Vec<Slot<M>>>,
    /// Last delivery time per (src, dst) pair: enforces FIFO channels
    /// exactly like the token scheduler (a small message never overtakes
    /// a large one on the same route).
    pair_last: RefCell<HashMap<(usize, usize), f64>>,
}

impl<M> VHub<M> {
    /// Charge `work` units on the task's machine: advance its busy/work
    /// accounting and schedule its wake-up at the integrated end time.
    fn begin_compute(&self, id: usize, work: f64) {
        assert!(work >= 0.0, "work must be non-negative");
        let now = self.now.get();
        let end = {
            let mut slots = self.slots.borrow_mut();
            let machine = slots[id].machine;
            let end = self.cluster.machines[machine].compute_end(now, work);
            let s = &mut slots[id];
            s.stats.busy_time += end - now;
            s.stats.work_done += work;
            s.status = TaskStatus::Scheduled;
            end
        };
        self.queue.borrow_mut().schedule(end, id);
    }

    /// One `recv` poll: pop an arrived message, or park the task until
    /// the earliest pending delivery (or until a send schedules it).
    fn poll_recv(&self, id: usize) -> Poll<M> {
        let now = self.now.get();
        let mut slots = self.slots.borrow_mut();
        let s = &mut slots[id];
        if let Some(env) = s.mailbox.pop_ready(now) {
            s.stats.messages_received += 1;
            if let Some(t0) = s.blocked_since.take() {
                s.stats.wait_time += now - t0;
            }
            return Poll::Ready(env.msg);
        }
        if s.blocked_since.is_none() {
            s.blocked_since = Some(now);
        }
        match s.mailbox.earliest() {
            Some(t) => {
                // A message is in flight: wake when it arrives. Matching
                // the token scheduler, a later send with an earlier
                // delivery does NOT move this wake-up forward.
                s.status = TaskStatus::Scheduled;
                drop(slots);
                self.queue.borrow_mut().schedule(t, id);
            }
            None => s.status = TaskStatus::BlockedRecv,
        }
        Poll::Pending
    }

    fn try_recv(&self, id: usize) -> Option<M> {
        let now = self.now.get();
        let mut slots = self.slots.borrow_mut();
        let env = slots[id].mailbox.pop_ready(now)?;
        slots[id].stats.messages_received += 1;
        Some(env.msg)
    }

    fn send(&self, src: usize, dst: usize, msg: M, bytes: u64) {
        let now = self.now.get();
        let mut slots = self.slots.borrow_mut();
        assert!(dst < slots.len(), "send to unknown task {dst}");
        let src_machine = slots[src].machine;
        let dst_machine = slots[dst].machine;
        let mut deliver_at = now
            + self
                .cluster
                .link
                .transfer_time(src_machine, dst_machine, bytes);
        {
            let mut pair = self.pair_last.borrow_mut();
            let last = pair.entry((src, dst)).or_insert(0.0);
            deliver_at = deliver_at.max(*last);
            *last = deliver_at;
        }
        let seq = self.send_seq.get() + 1;
        self.send_seq.set(seq);
        {
            let sp = &mut slots[src];
            sp.stats.messages_sent += 1;
            sp.stats.bytes_sent += bytes;
        }
        let dp = &mut slots[dst];
        if dp.status == TaskStatus::Done {
            return; // undeliverable: receiver already finished
        }
        dp.mailbox.push(Envelope {
            deliver_at,
            seq,
            msg,
        });
        if dp.status == TaskStatus::BlockedRecv {
            dp.status = TaskStatus::Scheduled;
            drop(slots);
            self.queue.borrow_mut().schedule(deliver_at, dst);
        }
    }
}

/// Handle through which a task interacts with the virtual-time runtime —
/// the cooperative analogue of [`crate::process::ProcCtx`], with
/// `compute` and `recv` as the suspension points.
///
/// Cheap to clone (shares the hub).
pub struct VirtualTaskCtx<M> {
    id: usize,
    hub: Rc<VHub<M>>,
}

impl<M> VirtualTaskCtx<M> {
    /// This task's id (spawn order).
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of tasks in the run.
    pub fn num_tasks(&self) -> usize {
        self.hub.slots.borrow().len()
    }

    /// Index of the machine this task runs on.
    pub fn machine(&self) -> usize {
        self.hub.slots.borrow()[self.id].machine
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.hub.now.get()
    }

    /// Charge `work` units on this task's machine and suspend until the
    /// charged end time (speed and background load integrate exactly as
    /// in [`crate::machine::Machine::compute_end`]). Even zero work
    /// yields through the scheduler, matching the token hand-off of the
    /// thread-backed runtime.
    pub fn compute(&self, work: f64) -> impl Future<Output = ()> + '_ {
        let mut begun = false;
        std::future::poll_fn(move |_cx| {
            if begun {
                // The executor woke us at the charged end time.
                Poll::Ready(())
            } else {
                begun = true;
                self.hub.begin_compute(self.id, work);
                Poll::Pending
            }
        })
    }

    /// Deliver a message to task `dst` after the link's transfer time,
    /// scheduling `dst` if it is parked in `recv`. Sends to finished
    /// tasks are dropped. `bytes` feeds traffic accounting *and* the
    /// transfer time.
    pub fn send_sized(&self, dst: usize, msg: M, bytes: u64) {
        self.hub.send(self.id, dst, msg, bytes);
    }

    /// [`VirtualTaskCtx::send_sized`] with the default 1 KiB size.
    pub fn send(&self, dst: usize, msg: M) {
        self.send_sized(dst, msg, 1024);
    }

    /// Take a message that has already *arrived* (its delivery time has
    /// been reached); never suspends.
    pub fn try_recv(&self) -> Option<M> {
        self.hub.try_recv(self.id)
    }

    /// Wait for the next message, advancing virtual time to its arrival.
    pub fn recv(&self) -> impl Future<Output = M> + '_ {
        std::future::poll_fn(move |_cx| self.hub.poll_recv(self.id))
    }
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;
type Spawner<M> = Box<dyn FnOnce(VirtualTaskCtx<M>) -> TaskFuture>;

/// Builder + discrete-event executor: declare the cluster, spawn logical
/// processes as futures on machines, then run the whole cohort to
/// completion on the calling thread under the virtual clock.
pub struct VirtualTaskCluster<M> {
    cluster: ClusterSpec,
    spawners: Vec<(usize, Spawner<M>)>,
}

impl<M> VirtualTaskCluster<M> {
    /// A cluster with no tasks yet; add them with
    /// [`VirtualTaskCluster::spawn`].
    ///
    /// # Panics
    ///
    /// If the cluster's
    /// [`send_overhead_work`](crate::message::LinkModel::send_overhead_work)
    /// is non-zero:
    /// this runtime's `send` never suspends, so it cannot charge
    /// marshalling work to the sender (use
    /// [`crate::runtime::SimBuilder`] for such clusters).
    pub fn new(cluster: ClusterSpec) -> VirtualTaskCluster<M> {
        assert!(
            cluster.link.send_overhead_work == 0.0,
            "the virtual-time task runtime does not support send_overhead_work \
             (send is not a suspension point); use SimBuilder instead"
        );
        VirtualTaskCluster {
            cluster,
            spawners: Vec::new(),
        }
    }

    /// Register a task on the given machine; returns its id (spawn
    /// order). `f` receives the task's [`VirtualTaskCtx`] and returns the
    /// future to drive. Futures need not be `Send` — the whole cohort
    /// runs on one thread.
    pub fn spawn<F, Fut>(&mut self, machine: usize, f: F) -> usize
    where
        F: FnOnce(VirtualTaskCtx<M>) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        assert!(
            machine < self.cluster.num_machines(),
            "machine index {machine} out of range"
        );
        let id = self.spawners.len();
        self.spawners
            .push((machine, Box::new(move |ctx| Box::pin(f(ctx)))));
        id
    }

    /// Number of tasks registered so far.
    pub fn num_spawned(&self) -> usize {
        self.spawners.len()
    }

    /// Drive every task to completion under the virtual clock and report
    /// per-task metrics (virtual-time accounting, like the token
    /// scheduler's).
    ///
    /// Panics if the cohort deadlocks (all live tasks parked in `recv`
    /// with no scheduled wake-ups) or any task panics.
    pub fn run(self) -> RunReport {
        assert!(!self.spawners.is_empty(), "no tasks spawned");
        let n = self.spawners.len();
        let mut queue = EventQueue::new();
        let slots: Vec<Slot<M>> = self
            .spawners
            .iter()
            .enumerate()
            .map(|(id, &(machine, _))| {
                // Every task starts runnable at t = 0, like the token
                // scheduler's initial Ready(0.0) states.
                queue.schedule(0.0, id);
                Slot {
                    status: TaskStatus::Scheduled,
                    machine,
                    mailbox: Mailbox::new(),
                    stats: ProcStats {
                        machine,
                        ..ProcStats::default()
                    },
                    blocked_since: None,
                }
            })
            .collect();
        let hub: Rc<VHub<M>> = Rc::new(VHub {
            cluster: self.cluster,
            now: Cell::new(0.0),
            send_seq: Cell::new(0),
            queue: RefCell::new(queue),
            slots: RefCell::new(slots),
            pair_last: RefCell::new(HashMap::new()),
        });
        let mut tasks: Vec<Option<TaskFuture>> = self
            .spawners
            .into_iter()
            .enumerate()
            .map(|(id, (_machine, f))| {
                Some(f(VirtualTaskCtx {
                    id,
                    hub: Rc::clone(&hub),
                }))
            })
            .collect();

        // Wakers carry no information — readiness lives in the event
        // queue, driven by compute end times and message deliveries.
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut live = n;
        loop {
            let ev = hub.queue.borrow_mut().pop();
            let Some(ev) = ev else { break };
            let id = ev.task;
            // The clock only moves forward, to the chosen wake-up.
            hub.now.set(hub.now.get().max(ev.time));
            {
                let mut slots = hub.slots.borrow_mut();
                debug_assert_ne!(slots[id].status, TaskStatus::Done);
                slots[id].status = TaskStatus::Running;
            }
            let task = tasks[id].as_mut().expect("live tasks have futures");
            if task.as_mut().poll(&mut cx).is_ready() {
                tasks[id] = None; // release the task's state eagerly
                let mut slots = hub.slots.borrow_mut();
                slots[id].status = TaskStatus::Done;
                slots[id].stats.finished_at = hub.now.get();
                live -= 1;
            }
            // On Pending the suspension point already parked the task:
            // Scheduled (a queue entry exists) or BlockedRecv.
        }
        if live > 0 {
            let stuck: Vec<usize> = tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_some())
                .map(|(i, _)| i)
                .collect();
            panic!(
                "virtual task cluster deadlock at t={}: tasks {stuck:?} parked in recv \
                 with no pending messages",
                hub.now.get()
            );
        }

        let slots = hub.slots.borrow();
        RunReport {
            end_time: slots
                .iter()
                .map(|s| s.stats.finished_at)
                .fold(0.0, f64::max),
            per_proc: slots.iter().map(|s| s.stats.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{LoadModel, Machine};
    use crate::message::LinkModel;
    use crate::topology::homogeneous;
    use std::sync::{Arc, Mutex};

    fn two_machines(speed_b: f64) -> ClusterSpec {
        ClusterSpec::new(
            vec![Machine::new("a", 1.0), Machine::new("b", speed_b)],
            LinkModel {
                latency: 0.5,
                local_latency: 0.01,
                bytes_per_sec: 1e9,
                send_overhead_work: 0.0,
            },
        )
    }

    #[test]
    fn event_queue_pops_in_time_then_task_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 1);
        q.schedule(1.0, 9);
        q.schedule(1.0, 3);
        q.schedule(3.0, 0);
        let order: Vec<(f64, usize)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time, e.task))).collect();
        assert_eq!(order, vec![(1.0, 3), (1.0, 9), (2.0, 1), (3.0, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn event_queue_same_task_same_time_pops_in_schedule_order() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, 4);
        let b = q.schedule(1.0, 4);
        assert_eq!(q.pop().unwrap().seq, a);
        assert_eq!(q.pop().unwrap().seq, b);
    }

    #[test]
    fn event_queue_cancel_is_lazy_and_exact() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, 0);
        let b = q.schedule(2.0, 1);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports dead ticket");
        assert_eq!(q.len(), 1);
        let popped = q.pop().unwrap();
        assert_eq!((popped.seq, popped.task), (b, 1));
        assert!(!q.cancel(b), "popped ticket is no longer live");
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn event_queue_rejects_infinite_times() {
        EventQueue::new().schedule(f64::INFINITY, 0);
    }

    #[test]
    fn compute_advances_virtual_time_by_speed() {
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(two_machines(0.5));
        let times = Arc::new(Mutex::new((0.0, 0.0)));
        let (tf, ts) = (Arc::clone(&times), Arc::clone(&times));
        vt.spawn(0, move |ctx| async move {
            ctx.compute(10.0).await;
            tf.lock().unwrap().0 = ctx.now();
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(10.0).await;
            ts.lock().unwrap().1 = ctx.now();
        });
        let report = vt.run();
        let (fast, slow) = *times.lock().unwrap();
        assert!((fast - 10.0).abs() < 1e-9);
        assert!((slow - 20.0).abs() < 1e-9);
        assert!((report.end_time - 20.0).abs() < 1e-9);
        assert!((report.per_proc[0].busy_time - 10.0).abs() < 1e-9);
        assert!((report.per_proc[1].busy_time - 20.0).abs() < 1e-9);
        assert_eq!(report.per_proc[1].machine, 1);
    }

    #[test]
    fn messages_arrive_after_latency() {
        let mut vt: VirtualTaskCluster<f64> = VirtualTaskCluster::new(two_machines(1.0));
        let arrival = Arc::new(Mutex::new((0.0, 0.0)));
        let arr = Arc::clone(&arrival);
        let receiver = vt.spawn(1, move |ctx| async move {
            let sent_at = ctx.recv().await;
            *arr.lock().unwrap() = (sent_at, ctx.now());
        });
        vt.spawn(0, move |ctx| async move {
            ctx.compute(2.0).await;
            ctx.send_sized(receiver, ctx.now(), 0);
        });
        vt.run();
        let (sent_at, received_at) = *arrival.lock().unwrap();
        assert!((sent_at - 2.0).abs() < 1e-9);
        assert!((received_at - 2.5).abs() < 1e-9, "latency 0.5 applies");
    }

    #[test]
    fn recv_accounts_wait_time() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(two_machines(1.0));
        let rx = vt.spawn(0, move |ctx| async move {
            let _ = ctx.recv().await;
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(4.0).await;
            ctx.send_sized(rx, 1, 0);
        });
        let report = vt.run();
        assert!(
            (report.per_proc[0].wait_time - 4.5).abs() < 1e-9,
            "receiver waits from t=0 to t=4.5, got {}",
            report.per_proc[0].wait_time
        );
        assert_eq!(report.per_proc[0].messages_received, 1);
        assert_eq!(report.per_proc[1].messages_sent, 1);
    }

    #[test]
    fn fifo_holds_when_small_message_follows_large() {
        // A 1 MB message takes ~1 s on the default link; a 0-byte message
        // sent right after must NOT overtake it.
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        let rx = vt.spawn(0, move |ctx| async move {
            for _ in 0..2 {
                let msg = ctx.recv().await;
                o.lock().unwrap().push(msg);
            }
        });
        vt.spawn(1, move |ctx| async move {
            ctx.send_sized(rx, 1, 1_000_000); // slow
            ctx.send_sized(rx, 2, 0); // fast, but must queue behind
        });
        vt.run();
        assert_eq!(*order.lock().unwrap(), vec![1, 2]);
    }

    #[test]
    fn simultaneous_wakes_run_in_task_id_order() {
        // Two receivers get messages deliverable at the same instant; the
        // lower task id must run first — the token scheduler's
        // `(wake, pid)` rule.
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(1));
        for w in 0..2usize {
            let l = Arc::clone(&log);
            vt.spawn(0, move |ctx| async move {
                let _ = ctx.recv().await;
                l.lock().unwrap().push(w);
            });
        }
        vt.spawn(0, move |ctx| async move {
            // Deliberately send to the higher id first: delivery times tie
            // (same route latency, same size), so id order must win.
            ctx.send_sized(1, 7, 0);
            ctx.send_sized(0, 7, 0);
        });
        vt.run();
        assert_eq!(*log.lock().unwrap(), vec![0, 1]);
    }

    #[test]
    fn try_recv_respects_delivery_time() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(two_machines(1.0));
        let got = Arc::new(Mutex::new((None, None)));
        let g = Arc::clone(&got);
        let rx = vt.spawn(0, move |ctx| async move {
            let early = ctx.try_recv(); // nothing has arrived at t=0
            ctx.compute(10.0).await;
            let late = ctx.try_recv(); // sent at t~1, arrived long ago
            *g.lock().unwrap() = (early, late);
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(1.0).await;
            ctx.send_sized(rx, 7, 0);
        });
        vt.run();
        assert_eq!(*got.lock().unwrap(), (None, Some(7)));
    }

    #[test]
    fn loaded_machine_is_slower() {
        let cluster = ClusterSpec::new(
            vec![
                Machine::new("free", 1.0),
                Machine::new("busy", 1.0).with_load(LoadModel::Periodic {
                    period: 4.0,
                    duty: 0.5,
                    busy_factor: 0.25,
                }),
            ],
            LinkModel::default(),
        );
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(cluster);
        let times = Arc::new(Mutex::new((0.0, 0.0)));
        let (ta, tb) = (Arc::clone(&times), Arc::clone(&times));
        vt.spawn(0, move |ctx| async move {
            ctx.compute(8.0).await;
            ta.lock().unwrap().0 = ctx.now();
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(8.0).await;
            tb.lock().unwrap().1 = ctx.now();
        });
        vt.run();
        let (free, busy) = *times.lock().unwrap();
        assert!((free - 8.0).abs() < 1e-9);
        assert!(busy > free + 1.0, "load must slow the busy machine");
    }

    #[test]
    fn send_to_finished_task_is_dropped() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
        let early = vt.spawn(0, |ctx| async move {
            ctx.compute(0.1).await; // dies immediately after
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(5.0).await;
            ctx.send(early, 1); // receiver long dead
            ctx.compute(1.0).await;
        });
        let report = vt.run();
        assert_eq!(report.per_proc[0].messages_received, 0);
        assert_eq!(report.per_proc[1].messages_sent, 1, "send still counted");
    }

    #[test]
    fn deterministic_replay() {
        fn run_once() -> (Vec<(u64, u64, f64)>, f64) {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut vt: VirtualTaskCluster<(u64, u64)> = VirtualTaskCluster::new(homogeneous(4));
            let l = Arc::clone(&log);
            let master = vt.spawn(0, move |ctx| async move {
                for _ in 0..9 {
                    let msg = ctx.recv().await;
                    let t = ctx.now();
                    l.lock().unwrap().push((msg.0, msg.1, t));
                }
            });
            for w in 0..3u64 {
                vt.spawn(1 + w as usize, move |ctx| async move {
                    for i in 0..3u64 {
                        ctx.compute(1.0 + w as f64 * 0.3 + i as f64).await;
                        ctx.send(master, (w, i));
                    }
                });
            }
            let report = vt.run();
            let out = log.lock().unwrap().clone();
            (out, report.end_time)
        }
        let (a, end_a) = run_once();
        let (b, end_b) = run_once();
        assert_eq!(a, b, "same inputs must replay identically");
        assert_eq!(end_a, end_b);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn scales_to_thousands_of_tasks() {
        // The point of this runtime: virtual-time measurements at worker
        // counts the thread-backed scheduler cannot reach. 2001 tasks on
        // a heterogeneous cluster, one OS thread.
        let mut vt: VirtualTaskCluster<u64> = VirtualTaskCluster::new(homogeneous(12));
        const N: u64 = 2000;
        vt.spawn(0, move |ctx| async move {
            let mut sum = 0u64;
            for _ in 0..N {
                sum += ctx.recv().await;
            }
            assert_eq!(sum, N * (N + 1) / 2);
        });
        for i in 1..=N {
            vt.spawn((i % 12) as usize, move |ctx| async move {
                ctx.compute(1.0).await;
                ctx.send(0, i);
            });
        }
        let report = vt.run();
        assert_eq!(report.per_proc.len(), N as usize + 1);
        assert_eq!(report.per_proc[0].messages_received, N);
        assert!(report.end_time > 0.0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
        vt.spawn(0, |ctx| async move {
            let _ = ctx.recv().await; // nobody will ever send
        });
        vt.spawn(1, |ctx| async move {
            ctx.compute(1.0).await;
        });
        vt.run();
    }

    #[test]
    #[should_panic(expected = "send_overhead_work")]
    fn rejects_marshalling_overhead() {
        let cluster = ClusterSpec::new(
            vec![Machine::new("a", 1.0)],
            LinkModel {
                send_overhead_work: 2.0,
                ..LinkModel::default()
            },
        );
        let _: VirtualTaskCluster<u32> = VirtualTaskCluster::new(cluster);
    }
}
