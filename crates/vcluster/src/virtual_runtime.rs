//! Virtual-time cooperative runtime: the timing model of the token
//! scheduler ([`crate::runtime::SimBuilder`]) without its
//! thread-per-process cost.
//!
//! [`SimBuilder`](crate::runtime::SimBuilder) gives every simulated
//! process an OS thread and advances a virtual clock by handing a token
//! to the ready process with the smallest `(wake, pid)`. That timing
//! model is what the paper's measurements need — per-machine speed,
//! background load, message latency — but one thread per logical process
//! caps runs at tens of workers. [`crate::async_runtime::TaskCluster`]
//! scales to thousands of logical processes on one thread, but only
//! knows wall clock.
//!
//! [`VirtualTaskCluster`] is both at once: every logical process is a
//! *future* (like the task cluster), and the executor is a discrete-event
//! scheduler over an [`EventQueue`] of `(virtual_time, task)` wake-ups
//! (like the token scheduler). `compute` charges work against the task's
//! machine — integrating speed and [`crate::machine::LoadModel`] exactly
//! as the token scheduler does — and suspends the future until the
//! charged end time; `recv` parks the future until a message's
//! [`Envelope::deliver_at`] is reached. Because every scheduling decision
//! is the same deterministic function of virtual times and task ids that
//! the token scheduler uses (`(wake, pid)` order, mailbox delivery by
//! `(arrival, send seq)`, per-route FIFO), a run here is **bit-identical
//! in timeline and accounting** to the same program under `SimBuilder` —
//! which the cross-runtime property tests assert — while thousands of
//! tasks fit in one OS thread.
//!
//! One deliberate restriction:
//! [`crate::message::LinkModel::send_overhead_work`] must be zero. Charging marshalling work inside `send` would make `send` a
//! suspension point, and this runtime keeps `send` synchronous (only
//! `compute` and `recv` suspend). [`VirtualTaskCluster::new`] rejects
//! clusters that configure it; use the token scheduler for those.
//!
//! # Contention and faults
//!
//! Two opt-in layers extend the model without disturbing it when off:
//!
//! * [`Contention::TimeSliced`] makes co-located computes share their
//!   machine (processor sharing — `k` runnable procs each at `1/k` of
//!   the rate). A machine hosting a single proc is bit-identical to the
//!   default [`Contention::Exclusive`] model.
//! * A [`FaultPlan`] replays machine slowdowns/pauses/crashes, route
//!   drops/delays/jitter, and task kills (with out-of-band death
//!   notices) at fixed virtual times. With a plan installed, the
//!   deadlock panic becomes *orphan cleanup*: tasks that can never run
//!   again are finished with [`TaskFate::Orphaned`] so the run always
//!   terminates and reports.
//!
//! Either layer switches the runtime to *tracked computes*: in-flight
//! work is carried as a remaining-work balance that is settled and
//! rescheduled whenever the machine's allocation changes. With exactly
//! one proc per machine and no fault ever touching it, every settle
//! multiplies by `1.0` and reproduces the untracked arithmetic bit for
//! bit — which is what keeps the pinned goldens valid.

use crate::fault::{
    jitter_unit, Contention, FaultKind, FaultPlan, MachineEvent, RouteAction, RouteFault,
    TimedFault,
};
use crate::mailbox::{Envelope, Mailbox};
use crate::metrics::{ProcStats, RunReport, TaskFate};
use crate::topology::ClusterSpec;
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// One pending wake-up in the [`EventQueue`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Virtual time at which the task becomes runnable.
    pub time: f64,
    /// Schedule ticket: monotonically increasing insertion sequence.
    pub seq: u64,
    /// Task to wake.
    pub task: usize,
}

// Orderings compare (time, task, seq) — reversed, because BinaryHeap is a
// max-heap and the queue pops the earliest event first.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then(other.task.cmp(&self.task))
            .then(other.seq.cmp(&self.seq))
    }
}

/// Discrete-event wake-up queue: schedule `(time, task)` entries, pop
/// them in deterministic earliest-first order, cancel lazily.
///
/// Pop order is `(time, task id, schedule seq)`. Breaking time ties by
/// *task id* — not insertion order — mirrors the token scheduler's
/// `(wake, pid)` rule, which is what makes the virtual-time executor
/// bit-identical to [`crate::runtime::SimBuilder`]; the monotonically
/// increasing `seq` totalizes the order when one task holds several
/// entries at the same instant (the executor never does, but the queue
/// does not rely on that).
///
/// Cancellation is lazy: a cancelled ticket stays in the heap and is
/// skipped on pop, so both `schedule` and `cancel` are `O(log n)` /
/// `O(1)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    /// Tickets scheduled and neither popped nor cancelled yet.
    live: HashSet<u64>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule `task` to wake at `time`; returns the ticket with which
    /// the entry can be cancelled. `time` must be finite (a wake-up at
    /// infinity would silently deadlock the drain).
    pub fn schedule(&mut self, time: f64, task: usize) -> u64 {
        assert!(time.is_finite(), "wake-up time must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, task });
        self.live.insert(seq);
        seq
    }

    /// Cancel a scheduled entry. Returns `true` if the ticket was still
    /// live (not yet popped or cancelled).
    pub fn cancel(&mut self, ticket: u64) -> bool {
        self.live.remove(&ticket)
    }

    /// Pop the earliest live event in `(time, task, seq)` order.
    pub fn pop(&mut self) -> Option<Event> {
        while let Some(ev) = self.heap.pop() {
            if self.live.remove(&ev.seq) {
                return Some(ev);
            }
        }
        None
    }

    /// Time of the earliest live event without popping it (prunes
    /// cancelled entries from the top of the heap).
    pub fn peek_time(&mut self) -> Option<f64> {
        while let Some(ev) = self.heap.peek() {
            if self.live.contains(&ev.seq) {
                return Some(ev.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (scheduled, not yet popped or cancelled) entries.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

/// Lifecycle of one task, mirroring the token scheduler's process status.
#[derive(Clone, Copy, Debug, PartialEq)]
enum TaskStatus {
    /// Has exactly one wake-up in the event queue (initial start, a
    /// `compute` end, or an already-scheduled mailbox delivery).
    Scheduled,
    /// Currently being polled by the executor.
    Running,
    /// Parked in `recv` with an empty mailbox; a send will schedule it.
    BlockedRecv,
    /// Finished; sends to it are dropped (undeliverable).
    Done,
}

/// Per-task state.
struct Slot<M> {
    status: TaskStatus,
    machine: usize,
    mailbox: Mailbox<M>,
    stats: ProcStats,
    /// Virtual time the current `recv` started blocking (wait accounting).
    blocked_since: Option<f64>,
}

/// One in-flight tracked compute.
struct Job {
    /// Work units still to be executed.
    remaining: f64,
    /// Queue ticket of the currently scheduled end event (`None` while
    /// the machine is paused/crashed — the job is parked).
    ticket: Option<u64>,
}

/// Per-machine contention/fault bookkeeping (tracked mode only).
struct MachineRt {
    /// In-flight computes by task id; a `BTreeMap` so settles and
    /// reschedules iterate in deterministic task-id order.
    jobs: BTreeMap<usize, Job>,
    /// Last time the jobs' remaining-work balances were brought current.
    last_settle: f64,
    /// Fault speed multiplier from Slow events (1.0 = healthy).
    base_mul: f64,
    /// Multiplier in effect since `last_settle` (0.0 while paused or
    /// crashed).
    cur_mul: f64,
    paused_until: f64,
    crashed: bool,
}

/// Installed fault/contention state of a tracked run.
struct FaultRt<M> {
    contention: Contention,
    machines: Vec<MachineRt>,
    /// Time-sorted fault events; `cursor` advances as they apply.
    timeline: Vec<TimedFault<M>>,
    cursor: usize,
    routes: Vec<RouteFault>,
    seed: u64,
    /// Whether the plan scheduled any actual faults: orphan cleanup
    /// replaces the deadlock panic only then (pure contention keeps the
    /// panic — a deadlock there is still a bug in the workload).
    has_faults: bool,
}

impl<M> FaultRt<M> {
    /// Fraction of the machine each of `k` concurrent jobs receives.
    fn share(&self, k: usize) -> f64 {
        match self.contention {
            Contention::Exclusive => 1.0,
            Contention::TimeSliced => 1.0 / k as f64,
        }
    }
}

/// Shared state of one virtual-time cooperative run.
struct VHub<M> {
    cluster: ClusterSpec,
    now: Cell<f64>,
    send_seq: Cell<u64>,
    queue: RefCell<EventQueue>,
    slots: RefCell<Vec<Slot<M>>>,
    /// Last delivery time per (src, dst) pair: enforces FIFO channels
    /// exactly like the token scheduler (a small message never overtakes
    /// a large one on the same route).
    pair_last: RefCell<HashMap<(usize, usize), f64>>,
    /// Tracked-compute + fault state; `None` on the historical fast path
    /// (no contention model, no fault plan).
    faults: RefCell<Option<FaultRt<M>>>,
}

impl<M> VHub<M> {
    /// Charge `work` units on the task's machine: advance its busy/work
    /// accounting and schedule its wake-up at the integrated end time.
    fn begin_compute(&self, id: usize, work: f64) {
        assert!(work >= 0.0, "work must be non-negative");
        if self.faults.borrow().is_some() {
            return self.begin_compute_tracked(id, work);
        }
        let now = self.now.get();
        let end = {
            let mut slots = self.slots.borrow_mut();
            let machine = slots[id].machine;
            let end = self.cluster.machines[machine].compute_end(now, work);
            let s = &mut slots[id];
            s.stats.busy_time += end - now;
            s.stats.work_done += work;
            s.status = TaskStatus::Scheduled;
            end
        };
        self.queue.borrow_mut().schedule(end, id);
    }

    /// Tracked-mode `compute` start: settle the machine, register the
    /// job, and re-partition the machine across its (now `k`) jobs.
    /// Busy time is charged at settle points rather than eagerly, so a
    /// later fault or contention change re-prices the in-flight work.
    fn begin_compute_tracked(&self, id: usize, work: f64) {
        let now = self.now.get();
        let machine = {
            let mut slots = self.slots.borrow_mut();
            let s = &mut slots[id];
            s.stats.work_done += work;
            s.status = TaskStatus::Scheduled;
            s.machine
        };
        self.settle_machine(machine, now);
        {
            let mut faults = self.faults.borrow_mut();
            let f = faults.as_mut().expect("tracked mode");
            f.machines[machine].jobs.insert(
                id,
                Job {
                    remaining: work,
                    ticket: None,
                },
            );
        }
        self.reschedule_machine(machine, now);
    }

    /// Tracked-mode `compute` end: the task's end event fired — settle,
    /// drop the job, and re-partition the machine across the survivors.
    /// A no-op on the untracked fast path.
    fn finish_compute(&self, id: usize) {
        if self.faults.borrow().is_none() {
            return;
        }
        let now = self.now.get();
        let machine = self.slots.borrow()[id].machine;
        self.settle_machine(machine, now);
        {
            let mut faults = self.faults.borrow_mut();
            let f = faults.as_mut().expect("tracked mode");
            // The end event that woke us *was* this job's ticket (already
            // popped from the queue) — nothing to cancel.
            f.machines[machine].jobs.remove(&id);
        }
        self.reschedule_machine(machine, now);
    }

    /// Bring `machine`'s job balances current to `now`: subtract the
    /// work each job executed since the last settle (at the share and
    /// fault multiplier in effect over that span) and charge the span to
    /// their busy time.
    fn settle_machine(&self, machine: usize, now: f64) {
        let ids: Vec<usize>;
        let from;
        {
            let mut faults = self.faults.borrow_mut();
            let Some(f) = faults.as_mut() else { return };
            let share = f.share(f.machines[machine].jobs.len().max(1));
            let rt = &mut f.machines[machine];
            from = rt.last_settle;
            rt.last_settle = now;
            if now <= from || rt.jobs.is_empty() {
                return;
            }
            let scale = rt.cur_mul * share;
            let done = if scale > 0.0 {
                self.cluster.machines[machine].work_between(from, now) * scale
            } else {
                0.0
            };
            ids = rt.jobs.keys().copied().collect();
            for id in &ids {
                let job = rt.jobs.get_mut(id).expect("settling a live job");
                job.remaining = (job.remaining - done).max(0.0);
            }
        }
        let mut slots = self.slots.borrow_mut();
        for id in ids {
            slots[id].stats.busy_time += now - from;
        }
    }

    /// Re-derive every job's end event on `machine` from its remaining
    /// work and the machine's current allocation. Jobs on a stalled
    /// machine park (no event) until a Slow/Thaw event re-prices them.
    fn reschedule_machine(&self, machine: usize, now: f64) {
        let mut faults = self.faults.borrow_mut();
        let Some(f) = faults.as_mut() else { return };
        let share = f.share(f.machines[machine].jobs.len().max(1));
        let rt = &mut f.machines[machine];
        let scale = rt.cur_mul * share;
        let spec = &self.cluster.machines[machine];
        let mut queue = self.queue.borrow_mut();
        for (&id, job) in rt.jobs.iter_mut() {
            if let Some(ticket) = job.ticket.take() {
                queue.cancel(ticket);
            }
            if job.remaining <= 0.0 {
                job.ticket = Some(queue.schedule(now, id));
            } else if scale > 0.0 {
                let end = spec.compute_end_scaled(now, job.remaining, scale);
                job.ticket = Some(queue.schedule(end, id));
            }
        }
    }

    /// Kill a task outright (fault-plan worker death): mark it done with
    /// [`TaskFate::Killed`], abandon any in-flight compute, and give the
    /// freed machine share back to the survivors. Returns `false` if the
    /// task had already finished.
    fn kill_task(&self, id: usize) -> bool {
        let now = self.now.get();
        let machine;
        {
            let mut slots = self.slots.borrow_mut();
            let s = &mut slots[id];
            if s.status == TaskStatus::Done {
                return false;
            }
            machine = s.machine;
            s.status = TaskStatus::Done;
            s.stats.finished_at = now;
            s.stats.fate = TaskFate::Killed;
            if let Some(t0) = s.blocked_since.take() {
                s.stats.wait_time += now - t0;
            }
        }
        self.settle_machine(machine, now);
        let had_job = {
            let mut faults = self.faults.borrow_mut();
            let f = faults.as_mut().expect("kills only run under a fault plan");
            match f.machines[machine].jobs.remove(&id) {
                Some(job) => {
                    if let Some(ticket) = job.ticket {
                        self.queue.borrow_mut().cancel(ticket);
                    }
                    true
                }
                None => false,
            }
        };
        if had_job {
            self.reschedule_machine(machine, now);
        }
        true
    }

    /// Deliver a runtime-originated message (a death notice) to `dst` at
    /// the current instant: no sender stats, no route faults, no FIFO
    /// clamp — the runtime, not a task, is the sender.
    fn deliver_system(&self, dst: usize, msg: M) {
        let now = self.now.get();
        let seq = self.send_seq.get() + 1;
        self.send_seq.set(seq);
        let mut slots = self.slots.borrow_mut();
        let dp = &mut slots[dst];
        if dp.status == TaskStatus::Done {
            return;
        }
        dp.mailbox.push(Envelope {
            deliver_at: now,
            seq,
            msg,
        });
        if dp.status == TaskStatus::BlockedRecv {
            dp.status = TaskStatus::Scheduled;
            drop(slots);
            self.queue.borrow_mut().schedule(now, dst);
        }
    }

    /// Earliest unapplied fault-plan time, if any remain.
    fn next_fault_time(&self) -> Option<f64> {
        let faults = self.faults.borrow();
        let f = faults.as_ref()?;
        f.timeline.get(f.cursor).map(|tf| tf.at)
    }

    /// Apply the fault event at the cursor; returns the tasks it killed
    /// (their futures are the caller's to drop).
    fn apply_next_fault(&self) -> Vec<usize> {
        let kind = {
            let mut faults = self.faults.borrow_mut();
            let f = faults.as_mut().expect("caller checked next_fault_time");
            let idx = f.cursor;
            f.cursor += 1;
            // Tombstone the consumed entry (the cursor never revisits
            // it); Kill owns its notify list, so it must be moved out.
            std::mem::replace(&mut f.timeline[idx].kind, FaultKind::Thaw { machine: 0 })
        };
        let now = self.now.get();
        match kind {
            FaultKind::Machine { machine, event } => {
                self.settle_machine(machine, now);
                {
                    let mut faults = self.faults.borrow_mut();
                    let rt = &mut faults.as_mut().expect("tracked mode").machines[machine];
                    match event {
                        MachineEvent::Slow { factor } => rt.base_mul = factor,
                        MachineEvent::Pause { until } => {
                            rt.paused_until = rt.paused_until.max(until)
                        }
                        MachineEvent::Crash => rt.crashed = true,
                    }
                    rt.cur_mul = if rt.crashed || now < rt.paused_until {
                        0.0
                    } else {
                        rt.base_mul
                    };
                }
                self.reschedule_machine(machine, now);
                Vec::new()
            }
            FaultKind::Thaw { machine } => {
                self.settle_machine(machine, now);
                {
                    let mut faults = self.faults.borrow_mut();
                    let rt = &mut faults.as_mut().expect("tracked mode").machines[machine];
                    rt.cur_mul = if rt.crashed || now < rt.paused_until {
                        0.0
                    } else {
                        rt.base_mul
                    };
                }
                self.reschedule_machine(machine, now);
                Vec::new()
            }
            FaultKind::Kill { task, notify } => {
                if self.kill_task(task) {
                    for (dst, msg) in notify {
                        self.deliver_system(dst, msg);
                    }
                    vec![task]
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// One `recv` poll: pop an arrived message, or park the task until
    /// the earliest pending delivery (or until a send schedules it).
    fn poll_recv(&self, id: usize) -> Poll<M> {
        let now = self.now.get();
        let mut slots = self.slots.borrow_mut();
        let s = &mut slots[id];
        if let Some(env) = s.mailbox.pop_ready(now) {
            s.stats.messages_received += 1;
            if let Some(t0) = s.blocked_since.take() {
                s.stats.wait_time += now - t0;
            }
            return Poll::Ready(env.msg);
        }
        if s.blocked_since.is_none() {
            s.blocked_since = Some(now);
        }
        match s.mailbox.earliest() {
            Some(t) => {
                // A message is in flight: wake when it arrives. Matching
                // the token scheduler, a later send with an earlier
                // delivery does NOT move this wake-up forward.
                s.status = TaskStatus::Scheduled;
                drop(slots);
                self.queue.borrow_mut().schedule(t, id);
            }
            None => s.status = TaskStatus::BlockedRecv,
        }
        Poll::Pending
    }

    fn try_recv(&self, id: usize) -> Option<M> {
        let now = self.now.get();
        let mut slots = self.slots.borrow_mut();
        let env = slots[id].mailbox.pop_ready(now)?;
        slots[id].stats.messages_received += 1;
        Some(env.msg)
    }

    fn send(&self, src: usize, dst: usize, msg: M, bytes: u64) {
        let now = self.now.get();
        let mut slots = self.slots.borrow_mut();
        assert!(dst < slots.len(), "send to unknown task {dst}");
        let src_machine = slots[src].machine;
        let dst_machine = slots[dst].machine;
        let mut deliver_at = now
            + self
                .cluster
                .link
                .transfer_time(src_machine, dst_machine, bytes);
        let seq = self.send_seq.get() + 1;
        self.send_seq.set(seq);
        {
            let sp = &mut slots[src];
            sp.stats.messages_sent += 1;
            sp.stats.bytes_sent += bytes;
        }
        // Route faults apply before the FIFO clamp: a Delay stalls the
        // whole route (later messages queue behind), Jitter bypasses the
        // clamp entirely (reordering), a Drop vanishes the message.
        let mut fifo = true;
        if let Some(f) = self.faults.borrow().as_ref() {
            match f
                .routes
                .iter()
                .find(|r| r.matches(src, dst, now))
                .map(|r| r.action)
            {
                Some(RouteAction::Drop) => {
                    slots[src].stats.messages_dropped += 1;
                    return;
                }
                Some(RouteAction::Delay(extra)) => deliver_at += extra,
                Some(RouteAction::Jitter(spread)) => {
                    deliver_at += jitter_unit(f.seed, seq) * spread;
                    fifo = false;
                }
                None => {}
            }
        }
        if fifo {
            let mut pair = self.pair_last.borrow_mut();
            let last = pair.entry((src, dst)).or_insert(0.0);
            deliver_at = deliver_at.max(*last);
            *last = deliver_at;
        }
        let dp = &mut slots[dst];
        if dp.status == TaskStatus::Done {
            return; // undeliverable: receiver already finished
        }
        dp.mailbox.push(Envelope {
            deliver_at,
            seq,
            msg,
        });
        if dp.status == TaskStatus::BlockedRecv {
            dp.status = TaskStatus::Scheduled;
            drop(slots);
            self.queue.borrow_mut().schedule(deliver_at, dst);
        }
    }

    /// One `recv_deadline` poll: like [`VHub::poll_recv`], but gives up
    /// (`Ready(None)`) once the virtual clock reaches `deadline`.
    fn poll_recv_deadline(&self, id: usize, deadline: f64) -> Poll<Option<M>> {
        let now = self.now.get();
        let mut slots = self.slots.borrow_mut();
        let s = &mut slots[id];
        if let Some(env) = s.mailbox.pop_ready(now) {
            s.stats.messages_received += 1;
            if let Some(t0) = s.blocked_since.take() {
                s.stats.wait_time += now - t0;
            }
            return Poll::Ready(Some(env.msg));
        }
        if now + 1e-12 >= deadline {
            if let Some(t0) = s.blocked_since.take() {
                s.stats.wait_time += now - t0;
            }
            return Poll::Ready(None);
        }
        if s.blocked_since.is_none() {
            s.blocked_since = Some(now);
        }
        // Exactly one wake-up is pending while parked here: the earlier
        // of the next in-flight delivery and the deadline. Status stays
        // Scheduled, so sends do not stack extra wake-ups; like
        // `poll_recv`, a later send with an earlier delivery waits for
        // this wake-up.
        let wake = s.mailbox.earliest().map_or(deadline, |t| t.min(deadline));
        s.status = TaskStatus::Scheduled;
        drop(slots);
        self.queue.borrow_mut().schedule(wake, id);
        Poll::Pending
    }
}

/// Handle through which a task interacts with the virtual-time runtime —
/// the cooperative analogue of [`crate::process::ProcCtx`], with
/// `compute` and `recv` as the suspension points.
///
/// Cheap to clone (shares the hub).
pub struct VirtualTaskCtx<M> {
    id: usize,
    hub: Rc<VHub<M>>,
}

impl<M> VirtualTaskCtx<M> {
    /// This task's id (spawn order).
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of tasks in the run.
    pub fn num_tasks(&self) -> usize {
        self.hub.slots.borrow().len()
    }

    /// Index of the machine this task runs on.
    pub fn machine(&self) -> usize {
        self.hub.slots.borrow()[self.id].machine
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.hub.now.get()
    }

    /// Charge `work` units on this task's machine and suspend until the
    /// charged end time (speed and background load integrate exactly as
    /// in [`crate::machine::Machine::compute_end`]). Even zero work
    /// yields through the scheduler, matching the token hand-off of the
    /// thread-backed runtime.
    pub fn compute(&self, work: f64) -> impl Future<Output = ()> + '_ {
        let mut begun = false;
        std::future::poll_fn(move |_cx| {
            if begun {
                // The executor woke us at the charged end time. Under a
                // contention model or fault plan this retires the
                // tracked job and re-partitions the machine; on the fast
                // path it is a no-op.
                self.hub.finish_compute(self.id);
                Poll::Ready(())
            } else {
                begun = true;
                self.hub.begin_compute(self.id, work);
                Poll::Pending
            }
        })
    }

    /// Deliver a message to task `dst` after the link's transfer time,
    /// scheduling `dst` if it is parked in `recv`. Sends to finished
    /// tasks are dropped. `bytes` feeds traffic accounting *and* the
    /// transfer time.
    pub fn send_sized(&self, dst: usize, msg: M, bytes: u64) {
        self.hub.send(self.id, dst, msg, bytes);
    }

    /// [`VirtualTaskCtx::send_sized`] with the default 1 KiB size.
    pub fn send(&self, dst: usize, msg: M) {
        self.send_sized(dst, msg, 1024);
    }

    /// Take a message that has already *arrived* (its delivery time has
    /// been reached); never suspends.
    pub fn try_recv(&self) -> Option<M> {
        self.hub.try_recv(self.id)
    }

    /// Wait for the next message, advancing virtual time to its arrival.
    pub fn recv(&self) -> impl Future<Output = M> + '_ {
        std::future::poll_fn(move |_cx| self.hub.poll_recv(self.id))
    }

    /// Wait for the next message, but give up (returning `None`) once
    /// the virtual clock reaches `deadline` — the liveness hatch that
    /// keeps barrier-style protocols from hanging on a crashed peer.
    /// `deadline` must be finite.
    pub fn recv_deadline(&self, deadline: f64) -> impl Future<Output = Option<M>> + '_ {
        assert!(deadline.is_finite(), "recv deadline must be finite");
        std::future::poll_fn(move |_cx| self.hub.poll_recv_deadline(self.id, deadline))
    }
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;
type Spawner<M> = Box<dyn FnOnce(VirtualTaskCtx<M>) -> TaskFuture>;

/// Builder + discrete-event executor: declare the cluster, spawn logical
/// processes as futures on machines, then run the whole cohort to
/// completion on the calling thread under the virtual clock.
pub struct VirtualTaskCluster<M> {
    cluster: ClusterSpec,
    spawners: Vec<(usize, Spawner<M>)>,
    contention: Contention,
    fault_plan: Option<FaultPlan<M>>,
}

impl<M> VirtualTaskCluster<M> {
    /// A cluster with no tasks yet; add them with
    /// [`VirtualTaskCluster::spawn`].
    ///
    /// # Panics
    ///
    /// If the cluster's
    /// [`send_overhead_work`](crate::message::LinkModel::send_overhead_work)
    /// is non-zero:
    /// this runtime's `send` never suspends, so it cannot charge
    /// marshalling work to the sender (use
    /// [`crate::runtime::SimBuilder`] for such clusters).
    pub fn new(cluster: ClusterSpec) -> VirtualTaskCluster<M> {
        assert!(
            cluster.link.send_overhead_work == 0.0,
            "the virtual-time task runtime does not support send_overhead_work \
             (send is not a suspension point); use SimBuilder instead"
        );
        VirtualTaskCluster {
            cluster,
            spawners: Vec::new(),
            contention: Contention::Exclusive,
            fault_plan: None,
        }
    }

    /// Select the machine-sharing model (default
    /// [`Contention::Exclusive`]: co-located computes do not interfere,
    /// the historical behaviour).
    pub fn set_contention(&mut self, contention: Contention) {
        self.contention = contention;
    }

    /// Install a [`FaultPlan`] to replay during
    /// [`VirtualTaskCluster::run`]. Also switches the deadlock panic to
    /// orphan cleanup (a fault can legitimately strand tasks) when the
    /// plan is non-empty.
    pub fn set_fault_plan(&mut self, plan: FaultPlan<M>) {
        self.fault_plan = Some(plan);
    }

    /// Register a task on the given machine; returns its id (spawn
    /// order). `f` receives the task's [`VirtualTaskCtx`] and returns the
    /// future to drive. Futures need not be `Send` — the whole cohort
    /// runs on one thread.
    pub fn spawn<F, Fut>(&mut self, machine: usize, f: F) -> usize
    where
        F: FnOnce(VirtualTaskCtx<M>) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        assert!(
            machine < self.cluster.num_machines(),
            "machine index {machine} out of range"
        );
        let id = self.spawners.len();
        self.spawners
            .push((machine, Box::new(move |ctx| Box::pin(f(ctx)))));
        id
    }

    /// Number of tasks registered so far.
    pub fn num_spawned(&self) -> usize {
        self.spawners.len()
    }

    /// Drive every task to completion under the virtual clock and report
    /// per-task metrics (virtual-time accounting, like the token
    /// scheduler's).
    ///
    /// Panics if the cohort deadlocks (all live tasks parked in `recv`
    /// with no scheduled wake-ups) or any task panics — unless a
    /// non-empty [`FaultPlan`] is installed, in which case stranded
    /// tasks are finished as [`TaskFate::Orphaned`] instead (a fault can
    /// legitimately leave a survivor waiting on a dead peer forever).
    pub fn run(mut self) -> RunReport {
        assert!(!self.spawners.is_empty(), "no tasks spawned");
        let n = self.spawners.len();
        let num_machines = self.cluster.num_machines();
        let tracked = self.contention != Contention::Exclusive
            || self.fault_plan.as_ref().is_some_and(|p| !p.is_empty());
        let fault_rt = tracked.then(|| {
            let mut plan = self.fault_plan.take().unwrap_or_else(|| FaultPlan::new(0));
            plan.finalize();
            for tf in &plan.timeline {
                match &tf.kind {
                    FaultKind::Machine { machine, .. } | FaultKind::Thaw { machine } => {
                        assert!(
                            *machine < num_machines,
                            "fault on unknown machine {machine}"
                        )
                    }
                    FaultKind::Kill { task, notify } => {
                        assert!(*task < n, "fault kills unknown task {task}");
                        for (dst, _) in notify {
                            assert!(*dst < n, "death notice to unknown task {dst}");
                        }
                    }
                }
            }
            let has_faults = !plan.is_empty();
            FaultRt {
                contention: self.contention,
                machines: (0..num_machines)
                    .map(|_| MachineRt {
                        jobs: BTreeMap::new(),
                        last_settle: 0.0,
                        base_mul: 1.0,
                        cur_mul: 1.0,
                        paused_until: f64::NEG_INFINITY,
                        crashed: false,
                    })
                    .collect(),
                timeline: plan.timeline,
                cursor: 0,
                routes: plan.routes,
                seed: plan.seed,
                has_faults,
            }
        });
        let has_faults = fault_rt.as_ref().is_some_and(|f| f.has_faults);
        let mut queue = EventQueue::new();
        let slots: Vec<Slot<M>> = self
            .spawners
            .iter()
            .enumerate()
            .map(|(id, &(machine, _))| {
                // Every task starts runnable at t = 0, like the token
                // scheduler's initial Ready(0.0) states.
                queue.schedule(0.0, id);
                Slot {
                    status: TaskStatus::Scheduled,
                    machine,
                    mailbox: Mailbox::new(),
                    stats: ProcStats {
                        machine,
                        ..ProcStats::default()
                    },
                    blocked_since: None,
                }
            })
            .collect();
        let hub: Rc<VHub<M>> = Rc::new(VHub {
            cluster: self.cluster,
            now: Cell::new(0.0),
            send_seq: Cell::new(0),
            queue: RefCell::new(queue),
            slots: RefCell::new(slots),
            pair_last: RefCell::new(HashMap::new()),
            faults: RefCell::new(fault_rt),
        });
        let mut tasks: Vec<Option<TaskFuture>> = self
            .spawners
            .into_iter()
            .enumerate()
            .map(|(id, (_machine, f))| {
                Some(f(VirtualTaskCtx {
                    id,
                    hub: Rc::clone(&hub),
                }))
            })
            .collect();

        // Wakers carry no information — readiness lives in the event
        // queue, driven by compute end times and message deliveries.
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut live = n;
        loop {
            // Fault events interleave with the queue in time order; a
            // fault due at or before the next wake-up applies first.
            if live > 0 {
                if let Some(fault_at) = hub.next_fault_time() {
                    let next_wake = hub.queue.borrow_mut().peek_time();
                    if next_wake.is_none_or(|t| fault_at <= t) {
                        hub.now.set(hub.now.get().max(fault_at));
                        for id in hub.apply_next_fault() {
                            if tasks[id].is_some() {
                                tasks[id] = None;
                                live -= 1;
                            }
                        }
                        continue;
                    }
                }
            }
            let ev = hub.queue.borrow_mut().pop();
            let Some(ev) = ev else { break };
            let id = ev.task;
            // The clock only moves forward, to the chosen wake-up.
            hub.now.set(hub.now.get().max(ev.time));
            {
                let mut slots = hub.slots.borrow_mut();
                if slots[id].status == TaskStatus::Done {
                    // A wake-up outliving its (killed) task — only kills
                    // leave these behind.
                    debug_assert!(has_faults, "stale wake-up for finished task {id}");
                    continue;
                }
                slots[id].status = TaskStatus::Running;
            }
            let task = tasks[id].as_mut().expect("live tasks have futures");
            if task.as_mut().poll(&mut cx).is_ready() {
                tasks[id] = None; // release the task's state eagerly
                let mut slots = hub.slots.borrow_mut();
                slots[id].status = TaskStatus::Done;
                slots[id].stats.finished_at = hub.now.get();
                live -= 1;
            }
            // On Pending the suspension point already parked the task:
            // Scheduled (a queue entry exists) or BlockedRecv.
        }
        if live > 0 {
            if has_faults {
                // Orphan cleanup: nothing can ever wake these tasks
                // again (their peers died or their machine stalled
                // forever) — finish them so the run reports. Futures are
                // dropped before slots are borrowed, in case a drop
                // handler touches the hub.
                let orphans: Vec<usize> = tasks
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(id, task)| task.take().map(|_| id))
                    .collect();
                let now = hub.now.get();
                let mut slots = hub.slots.borrow_mut();
                for id in orphans {
                    let s = &mut slots[id];
                    s.status = TaskStatus::Done;
                    s.stats.finished_at = now;
                    s.stats.fate = TaskFate::Orphaned;
                    if let Some(t0) = s.blocked_since.take() {
                        s.stats.wait_time += now - t0;
                    }
                }
            } else {
                let stuck: Vec<usize> = tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.is_some())
                    .map(|(i, _)| i)
                    .collect();
                panic!(
                    "virtual task cluster deadlock at t={}: tasks {stuck:?} parked in recv \
                     with no pending messages",
                    hub.now.get()
                );
            }
        }

        let slots = hub.slots.borrow();
        RunReport {
            end_time: slots
                .iter()
                .map(|s| s.stats.finished_at)
                .fold(0.0, f64::max),
            per_proc: slots.iter().map(|s| s.stats.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{LoadModel, Machine};
    use crate::message::LinkModel;
    use crate::topology::homogeneous;
    use std::sync::{Arc, Mutex};

    fn two_machines(speed_b: f64) -> ClusterSpec {
        ClusterSpec::new(
            vec![Machine::new("a", 1.0), Machine::new("b", speed_b)],
            LinkModel {
                latency: 0.5,
                local_latency: 0.01,
                bytes_per_sec: 1e9,
                send_overhead_work: 0.0,
            },
        )
    }

    #[test]
    fn event_queue_pops_in_time_then_task_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 1);
        q.schedule(1.0, 9);
        q.schedule(1.0, 3);
        q.schedule(3.0, 0);
        let order: Vec<(f64, usize)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time, e.task))).collect();
        assert_eq!(order, vec![(1.0, 3), (1.0, 9), (2.0, 1), (3.0, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn event_queue_same_task_same_time_pops_in_schedule_order() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, 4);
        let b = q.schedule(1.0, 4);
        assert_eq!(q.pop().unwrap().seq, a);
        assert_eq!(q.pop().unwrap().seq, b);
    }

    #[test]
    fn event_queue_cancel_is_lazy_and_exact() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, 0);
        let b = q.schedule(2.0, 1);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports dead ticket");
        assert_eq!(q.len(), 1);
        let popped = q.pop().unwrap();
        assert_eq!((popped.seq, popped.task), (b, 1));
        assert!(!q.cancel(b), "popped ticket is no longer live");
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn event_queue_rejects_infinite_times() {
        EventQueue::new().schedule(f64::INFINITY, 0);
    }

    #[test]
    fn compute_advances_virtual_time_by_speed() {
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(two_machines(0.5));
        let times = Arc::new(Mutex::new((0.0, 0.0)));
        let (tf, ts) = (Arc::clone(&times), Arc::clone(&times));
        vt.spawn(0, move |ctx| async move {
            ctx.compute(10.0).await;
            tf.lock().unwrap().0 = ctx.now();
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(10.0).await;
            ts.lock().unwrap().1 = ctx.now();
        });
        let report = vt.run();
        let (fast, slow) = *times.lock().unwrap();
        assert!((fast - 10.0).abs() < 1e-9);
        assert!((slow - 20.0).abs() < 1e-9);
        assert!((report.end_time - 20.0).abs() < 1e-9);
        assert!((report.per_proc[0].busy_time - 10.0).abs() < 1e-9);
        assert!((report.per_proc[1].busy_time - 20.0).abs() < 1e-9);
        assert_eq!(report.per_proc[1].machine, 1);
    }

    #[test]
    fn messages_arrive_after_latency() {
        let mut vt: VirtualTaskCluster<f64> = VirtualTaskCluster::new(two_machines(1.0));
        let arrival = Arc::new(Mutex::new((0.0, 0.0)));
        let arr = Arc::clone(&arrival);
        let receiver = vt.spawn(1, move |ctx| async move {
            let sent_at = ctx.recv().await;
            *arr.lock().unwrap() = (sent_at, ctx.now());
        });
        vt.spawn(0, move |ctx| async move {
            ctx.compute(2.0).await;
            ctx.send_sized(receiver, ctx.now(), 0);
        });
        vt.run();
        let (sent_at, received_at) = *arrival.lock().unwrap();
        assert!((sent_at - 2.0).abs() < 1e-9);
        assert!((received_at - 2.5).abs() < 1e-9, "latency 0.5 applies");
    }

    #[test]
    fn recv_accounts_wait_time() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(two_machines(1.0));
        let rx = vt.spawn(0, move |ctx| async move {
            let _ = ctx.recv().await;
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(4.0).await;
            ctx.send_sized(rx, 1, 0);
        });
        let report = vt.run();
        assert!(
            (report.per_proc[0].wait_time - 4.5).abs() < 1e-9,
            "receiver waits from t=0 to t=4.5, got {}",
            report.per_proc[0].wait_time
        );
        assert_eq!(report.per_proc[0].messages_received, 1);
        assert_eq!(report.per_proc[1].messages_sent, 1);
    }

    #[test]
    fn fifo_holds_when_small_message_follows_large() {
        // A 1 MB message takes ~1 s on the default link; a 0-byte message
        // sent right after must NOT overtake it.
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        let rx = vt.spawn(0, move |ctx| async move {
            for _ in 0..2 {
                let msg = ctx.recv().await;
                o.lock().unwrap().push(msg);
            }
        });
        vt.spawn(1, move |ctx| async move {
            ctx.send_sized(rx, 1, 1_000_000); // slow
            ctx.send_sized(rx, 2, 0); // fast, but must queue behind
        });
        vt.run();
        assert_eq!(*order.lock().unwrap(), vec![1, 2]);
    }

    #[test]
    fn simultaneous_wakes_run_in_task_id_order() {
        // Two receivers get messages deliverable at the same instant; the
        // lower task id must run first — the token scheduler's
        // `(wake, pid)` rule.
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(1));
        for w in 0..2usize {
            let l = Arc::clone(&log);
            vt.spawn(0, move |ctx| async move {
                let _ = ctx.recv().await;
                l.lock().unwrap().push(w);
            });
        }
        vt.spawn(0, move |ctx| async move {
            // Deliberately send to the higher id first: delivery times tie
            // (same route latency, same size), so id order must win.
            ctx.send_sized(1, 7, 0);
            ctx.send_sized(0, 7, 0);
        });
        vt.run();
        assert_eq!(*log.lock().unwrap(), vec![0, 1]);
    }

    #[test]
    fn try_recv_respects_delivery_time() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(two_machines(1.0));
        let got = Arc::new(Mutex::new((None, None)));
        let g = Arc::clone(&got);
        let rx = vt.spawn(0, move |ctx| async move {
            let early = ctx.try_recv(); // nothing has arrived at t=0
            ctx.compute(10.0).await;
            let late = ctx.try_recv(); // sent at t~1, arrived long ago
            *g.lock().unwrap() = (early, late);
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(1.0).await;
            ctx.send_sized(rx, 7, 0);
        });
        vt.run();
        assert_eq!(*got.lock().unwrap(), (None, Some(7)));
    }

    #[test]
    fn loaded_machine_is_slower() {
        let cluster = ClusterSpec::new(
            vec![
                Machine::new("free", 1.0),
                Machine::new("busy", 1.0).with_load(LoadModel::Periodic {
                    period: 4.0,
                    duty: 0.5,
                    busy_factor: 0.25,
                }),
            ],
            LinkModel::default(),
        );
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(cluster);
        let times = Arc::new(Mutex::new((0.0, 0.0)));
        let (ta, tb) = (Arc::clone(&times), Arc::clone(&times));
        vt.spawn(0, move |ctx| async move {
            ctx.compute(8.0).await;
            ta.lock().unwrap().0 = ctx.now();
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(8.0).await;
            tb.lock().unwrap().1 = ctx.now();
        });
        vt.run();
        let (free, busy) = *times.lock().unwrap();
        assert!((free - 8.0).abs() < 1e-9);
        assert!(busy > free + 1.0, "load must slow the busy machine");
    }

    #[test]
    fn send_to_finished_task_is_dropped() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
        let early = vt.spawn(0, |ctx| async move {
            ctx.compute(0.1).await; // dies immediately after
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(5.0).await;
            ctx.send(early, 1); // receiver long dead
            ctx.compute(1.0).await;
        });
        let report = vt.run();
        assert_eq!(report.per_proc[0].messages_received, 0);
        assert_eq!(report.per_proc[1].messages_sent, 1, "send still counted");
    }

    #[test]
    fn deterministic_replay() {
        fn run_once() -> (Vec<(u64, u64, f64)>, f64) {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut vt: VirtualTaskCluster<(u64, u64)> = VirtualTaskCluster::new(homogeneous(4));
            let l = Arc::clone(&log);
            let master = vt.spawn(0, move |ctx| async move {
                for _ in 0..9 {
                    let msg = ctx.recv().await;
                    let t = ctx.now();
                    l.lock().unwrap().push((msg.0, msg.1, t));
                }
            });
            for w in 0..3u64 {
                vt.spawn(1 + w as usize, move |ctx| async move {
                    for i in 0..3u64 {
                        ctx.compute(1.0 + w as f64 * 0.3 + i as f64).await;
                        ctx.send(master, (w, i));
                    }
                });
            }
            let report = vt.run();
            let out = log.lock().unwrap().clone();
            (out, report.end_time)
        }
        let (a, end_a) = run_once();
        let (b, end_b) = run_once();
        assert_eq!(a, b, "same inputs must replay identically");
        assert_eq!(end_a, end_b);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn scales_to_thousands_of_tasks() {
        // The point of this runtime: virtual-time measurements at worker
        // counts the thread-backed scheduler cannot reach. 2001 tasks on
        // a heterogeneous cluster, one OS thread.
        let mut vt: VirtualTaskCluster<u64> = VirtualTaskCluster::new(homogeneous(12));
        const N: u64 = 2000;
        vt.spawn(0, move |ctx| async move {
            let mut sum = 0u64;
            for _ in 0..N {
                sum += ctx.recv().await;
            }
            assert_eq!(sum, N * (N + 1) / 2);
        });
        for i in 1..=N {
            vt.spawn((i % 12) as usize, move |ctx| async move {
                ctx.compute(1.0).await;
                ctx.send(0, i);
            });
        }
        let report = vt.run();
        assert_eq!(report.per_proc.len(), N as usize + 1);
        assert_eq!(report.per_proc[0].messages_received, N);
        assert!(report.end_time > 0.0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
        vt.spawn(0, |ctx| async move {
            let _ = ctx.recv().await; // nobody will ever send
        });
        vt.spawn(1, |ctx| async move {
            ctx.compute(1.0).await;
        });
        vt.run();
    }

    #[test]
    #[should_panic(expected = "send_overhead_work")]
    fn rejects_marshalling_overhead() {
        let cluster = ClusterSpec::new(
            vec![Machine::new("a", 1.0)],
            LinkModel {
                send_overhead_work: 2.0,
                ..LinkModel::default()
            },
        );
        let _: VirtualTaskCluster<u32> = VirtualTaskCluster::new(cluster);
    }

    /// Two equal computes on one machine, finish times collected by task.
    fn co_located_pair(contention: Contention) -> (f64, f64, RunReport) {
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(homogeneous(1));
        vt.set_contention(contention);
        let times = Arc::new(Mutex::new((0.0, 0.0)));
        let (ta, tb) = (Arc::clone(&times), Arc::clone(&times));
        vt.spawn(0, move |ctx| async move {
            ctx.compute(10.0).await;
            ta.lock().unwrap().0 = ctx.now();
        });
        vt.spawn(0, move |ctx| async move {
            ctx.compute(10.0).await;
            tb.lock().unwrap().1 = ctx.now();
        });
        let report = vt.run();
        let (a, b) = *times.lock().unwrap();
        (a, b, report)
    }

    #[test]
    fn time_sliced_computes_share_the_machine() {
        // Exclusive: both 10-unit computes on the speed-1 machine end at
        // t=10, as if alone. TimeSliced: both hold half the machine the
        // whole way and end at t=20.
        let (a, b, _) = co_located_pair(Contention::Exclusive);
        assert!((a - 10.0).abs() < 1e-9 && (b - 10.0).abs() < 1e-9);
        let (a, b, report) = co_located_pair(Contention::TimeSliced);
        assert!((a - 20.0).abs() < 1e-9, "shared machine: {a}");
        assert!((b - 20.0).abs() < 1e-9, "shared machine: {b}");
        // The whole span counts as busy (runnable procs queue, they do
        // not wait on messages).
        assert!((report.per_proc[0].busy_time - 20.0).abs() < 1e-9);
    }

    #[test]
    fn staggered_time_slicing_repartitions_on_arrival() {
        // Task 0 computes 10 units from t=0; task 1 joins at t=4 (after
        // a 4-unit solo compute on machine 1... keep it same-machine:
        // task 1 waits via a message). Simpler: task 1 computes 2 units
        // starting at t=0 on the same machine — both share from the
        // start, task 1's 2 units at half speed end at t=4; task 0 then
        // runs alone: 10 = 2 (by t=4, half speed) + 8 alone → ends 12.
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(homogeneous(1));
        vt.set_contention(Contention::TimeSliced);
        let times = Arc::new(Mutex::new((0.0, 0.0)));
        let (ta, tb) = (Arc::clone(&times), Arc::clone(&times));
        vt.spawn(0, move |ctx| async move {
            ctx.compute(10.0).await;
            ta.lock().unwrap().0 = ctx.now();
        });
        vt.spawn(0, move |ctx| async move {
            ctx.compute(2.0).await;
            tb.lock().unwrap().1 = ctx.now();
        });
        vt.run();
        let (long, short) = *times.lock().unwrap();
        assert!((short - 4.0).abs() < 1e-9, "2 units at half speed: {short}");
        assert!((long - 12.0).abs() < 1e-9, "2 shared + 8 alone: {long}");
    }

    #[test]
    fn single_proc_per_machine_is_bit_identical_under_time_slicing() {
        // One proc per machine: every share is exactly 1.0 and the
        // tracked arithmetic must reproduce the untracked run bit for
        // bit — timeline, accounting, everything.
        fn staged(contention: Contention) -> (Vec<(u64, u64, f64)>, RunReport) {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut vt: VirtualTaskCluster<(u64, u64)> = VirtualTaskCluster::new(two_machines(0.7));
            vt.set_contention(contention);
            let l = Arc::clone(&log);
            let hub = vt.spawn(0, move |ctx| async move {
                for _ in 0..4 {
                    let m = ctx.recv().await;
                    let t = ctx.now();
                    l.lock().unwrap().push((m.0, m.1, t));
                }
            });
            vt.spawn(1, move |ctx| async move {
                for i in 0..4u64 {
                    ctx.compute(1.5 + i as f64).await;
                    ctx.send(hub, (7, i));
                }
            });
            let report = vt.run();
            let out = log.lock().unwrap().clone();
            (out, report)
        }
        let (log_ex, rep_ex) = staged(Contention::Exclusive);
        let (log_ts, rep_ts) = staged(Contention::TimeSliced);
        assert_eq!(log_ex, log_ts);
        assert_eq!(rep_ex.end_time, rep_ts.end_time);
        assert_eq!(rep_ex.per_proc, rep_ts.per_proc);
    }

    #[test]
    fn slow_fault_stretches_an_inflight_compute() {
        // 10 units on a speed-1 machine, slowed to 0.5× at t=5: 5 units
        // done, the rest at half speed → ends at 5 + 5/0.5 = 15.
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(homogeneous(2));
        let mut plan: FaultPlan<()> = FaultPlan::new(0);
        plan.slow_machine(5.0, 0, 0.5);
        vt.set_fault_plan(plan);
        let t_end = Arc::new(Mutex::new(0.0));
        let te = Arc::clone(&t_end);
        vt.spawn(0, move |ctx| async move {
            ctx.compute(10.0).await;
            *te.lock().unwrap() = ctx.now();
        });
        let report = vt.run();
        assert!((*t_end.lock().unwrap() - 15.0).abs() < 1e-9);
        assert!((report.per_proc[0].busy_time - 15.0).abs() < 1e-9);
        assert_eq!(report.per_proc[0].fate, TaskFate::Completed);
    }

    #[test]
    fn pause_fault_parks_and_resumes_a_compute() {
        // 10 units on speed 1, machine frozen over [2, 6): 2 done, 4
        // stalled, 8 after → ends at 14.
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(homogeneous(1));
        let mut plan: FaultPlan<()> = FaultPlan::new(0);
        plan.pause_machine(2.0, 0, 6.0);
        vt.set_fault_plan(plan);
        let t_end = Arc::new(Mutex::new(0.0));
        let te = Arc::clone(&t_end);
        vt.spawn(0, move |ctx| async move {
            ctx.compute(10.0).await;
            *te.lock().unwrap() = ctx.now();
        });
        vt.run();
        assert!((*t_end.lock().unwrap() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn killed_task_notifies_and_survivor_continues() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
        let mut plan: FaultPlan<u32> = FaultPlan::new(0);
        // Task 1 dies at t=3 mid-compute; the runtime hands task 0 the
        // death notice (message 99).
        plan.kill_task(3.0, 1, vec![(0, 99)]);
        vt.set_fault_plan(plan);
        let got = Arc::new(Mutex::new(0u32));
        let g = Arc::clone(&got);
        vt.spawn(0, move |ctx| async move {
            let m = ctx.recv().await;
            *g.lock().unwrap() = m;
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(100.0).await; // never finishes
            ctx.send(0, 1);
        });
        let report = vt.run();
        assert_eq!(*got.lock().unwrap(), 99);
        assert_eq!(report.per_proc[1].fate, TaskFate::Killed);
        assert!((report.per_proc[1].finished_at - 3.0).abs() < 1e-9);
        assert!(
            (report.per_proc[1].busy_time - 3.0).abs() < 1e-9,
            "killed mid-compute: busy up to the kill only"
        );
        assert_eq!(report.per_proc[0].fate, TaskFate::Completed);
    }

    #[test]
    fn crashed_machine_strands_tasks_as_orphans() {
        // The machine crashes mid-compute with no kill entries: the
        // task can never finish, and a fault-plan run must terminate
        // with the task orphaned instead of panicking.
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(homogeneous(2));
        let mut plan: FaultPlan<()> = FaultPlan::new(0);
        plan.crash_machine(4.0, 1);
        vt.set_fault_plan(plan);
        vt.spawn(0, |ctx| async move {
            ctx.compute(1.0).await;
        });
        vt.spawn(1, |ctx| async move {
            ctx.compute(50.0).await;
        });
        let report = vt.run();
        assert_eq!(report.per_proc[0].fate, TaskFate::Completed);
        assert_eq!(report.per_proc[1].fate, TaskFate::Orphaned);
    }

    #[test]
    fn dropped_route_counts_on_the_sender() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
        let mut plan: FaultPlan<u32> = FaultPlan::new(0);
        plan.route(RouteFault {
            src: Some(1),
            dst: Some(0),
            from: 0.0,
            until: 5.0,
            action: RouteAction::Drop,
        });
        vt.set_fault_plan(plan);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        vt.spawn(0, move |ctx| async move {
            // Only the post-window message arrives.
            let msg = ctx.recv().await;
            g.lock().unwrap().push(msg);
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(1.0).await;
            ctx.send(0, 111); // t=1: inside the drop window
            ctx.compute(9.0).await;
            ctx.send(0, 222); // t=10: window closed
        });
        let report = vt.run();
        assert_eq!(*got.lock().unwrap(), vec![222]);
        assert_eq!(report.per_proc[1].messages_dropped, 1);
        assert_eq!(
            report.per_proc[1].messages_sent, 2,
            "drops still count as sends"
        );
        assert_eq!(report.per_proc[0].messages_received, 1);
    }

    #[test]
    fn jitter_can_reorder_a_route() {
        // Two back-to-back zero-byte sends; with a huge jitter spread
        // some seed reorders them. Determinism: the same seed gives the
        // same order every run.
        fn run_with_seed(seed: u64) -> Vec<u32> {
            let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
            let mut plan: FaultPlan<u32> = FaultPlan::new(seed);
            plan.route(RouteFault {
                src: Some(1),
                dst: Some(0),
                from: 0.0,
                until: 1e9,
                action: RouteAction::Jitter(100.0),
            });
            vt.set_fault_plan(plan);
            let got = Arc::new(Mutex::new(Vec::new()));
            let g = Arc::clone(&got);
            vt.spawn(0, move |ctx| async move {
                for _ in 0..2 {
                    let m = ctx.recv().await;
                    g.lock().unwrap().push(m);
                }
            });
            vt.spawn(1, move |ctx| async move {
                ctx.send_sized(0, 1, 0);
                ctx.send_sized(0, 2, 0);
            });
            vt.run();
            let out = got.lock().unwrap().clone();
            out
        }
        let mut saw_reorder = false;
        for seed in 0..32 {
            let once = run_with_seed(seed);
            assert_eq!(once, run_with_seed(seed), "jitter must replay per seed");
            if once == vec![2, 1] {
                saw_reorder = true;
            }
        }
        assert!(saw_reorder, "some seed in 0..32 must reorder the route");
    }

    #[test]
    fn recv_deadline_times_out_and_accounts_wait() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(homogeneous(2));
        let outcome = Arc::new(Mutex::new((None, 0.0)));
        let o = Arc::clone(&outcome);
        vt.spawn(0, move |ctx| async move {
            let got = ctx.recv_deadline(3.0).await;
            *o.lock().unwrap() = (got, ctx.now());
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(10.0).await;
            ctx.send(0, 5); // far past the deadline; dropped (rx done)
        });
        let report = vt.run();
        let (got, when) = *outcome.lock().unwrap();
        assert_eq!(got, None);
        assert!((when - 3.0).abs() < 1e-9, "woke at the deadline: {when}");
        assert!((report.per_proc[0].wait_time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn recv_deadline_returns_an_early_message() {
        let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(two_machines(1.0));
        let outcome = Arc::new(Mutex::new(None));
        let o = Arc::clone(&outcome);
        vt.spawn(0, move |ctx| async move {
            *o.lock().unwrap() = ctx.recv_deadline(100.0).await;
        });
        vt.spawn(1, move |ctx| async move {
            ctx.compute(2.0).await;
            ctx.send_sized(0, 42, 0);
        });
        vt.run();
        assert_eq!(*outcome.lock().unwrap(), Some(42));
    }

    #[test]
    fn fault_free_plan_off_path_is_bit_identical() {
        // Installing NO plan and leaving contention Exclusive keeps the
        // historical fast path; a run with an (empty) tracked setup via
        // TimeSliced on single-proc machines matches it bitwise. This is
        // the golden-compatibility contract in miniature.
        fn run_once(tracked: bool) -> (f64, Vec<ProcStats>) {
            let mut vt: VirtualTaskCluster<u32> = VirtualTaskCluster::new(two_machines(0.5));
            if tracked {
                vt.set_contention(Contention::TimeSliced);
            }
            vt.spawn(0, |ctx| async move {
                let _ = ctx.recv().await;
                ctx.compute(3.0).await;
            });
            vt.spawn(1, |ctx| async move {
                ctx.compute(4.0).await;
                ctx.send(0, 9);
            });
            let r = vt.run();
            (r.end_time, r.per_proc)
        }
        let (end_a, procs_a) = run_once(false);
        let (end_b, procs_b) = run_once(true);
        assert_eq!(end_a, end_b);
        assert_eq!(procs_a, procs_b);
    }
}
