//! The process-side API: what code running *inside* the simulated cluster
//! can do.

use crate::runtime::Shared;
use std::sync::Arc;

/// Identifier of a simulated process (spawn order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

impl ProcId {
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Handle through which a simulated process interacts with the cluster.
///
/// All virtual time flows through these calls: plain Rust code between them
/// executes at *zero* virtual cost, so CPU-intensive work must be accounted
/// for explicitly with [`ProcCtx::compute`].
pub struct ProcCtx<M: Send + 'static> {
    pub(crate) id: usize,
    pub(crate) shared: Arc<Shared<M>>,
}

impl<M: Send + 'static> ProcCtx<M> {
    /// This process's id.
    #[inline]
    pub fn id(&self) -> ProcId {
        ProcId(self.id)
    }

    /// Number of processes in the simulation.
    pub fn num_procs(&self) -> usize {
        self.shared.num_procs()
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.shared.now()
    }

    /// Charge `work` units of CPU; virtual time advances by
    /// `work / effective_speed` of this process's machine (integrating
    /// background load).
    pub fn compute(&self, work: f64) {
        self.shared.compute(self.id, work);
    }

    /// Sleep for `dt` virtual seconds.
    pub fn sleep(&self, dt: f64) {
        self.shared.sleep(self.id, dt);
    }

    /// Send a message of the default size (1 KiB) to another process.
    pub fn send(&self, dst: ProcId, msg: M) {
        self.send_sized(dst, msg, 1024);
    }

    /// Send a message of `bytes` size; delivery time follows the cluster's
    /// link model.
    pub fn send_sized(&self, dst: ProcId, msg: M, bytes: u64) {
        self.shared.send(self.id, dst.0, msg, bytes);
    }

    /// Block until the next message arrives (earliest delivery time first,
    /// send order breaking ties).
    pub fn recv(&self) -> M {
        self.shared.recv(self.id)
    }

    /// Take a message if one has already arrived; never blocks and never
    /// advances time.
    pub fn try_recv(&self) -> Option<M> {
        self.shared.try_recv(self.id)
    }

    /// Machine index this process runs on.
    pub fn machine(&self) -> usize {
        self.shared.machine_of(self.id)
    }
}
