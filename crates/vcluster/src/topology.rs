//! Cluster presets.

use crate::machine::{LoadModel, Machine};
use crate::message::LinkModel;

/// A cluster: machines plus the LAN connecting them.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    pub machines: Vec<Machine>,
    pub link: LinkModel,
}

impl ClusterSpec {
    pub fn new(machines: Vec<Machine>, link: LinkModel) -> ClusterSpec {
        assert!(!machines.is_empty(), "cluster needs at least one machine");
        ClusterSpec { machines, link }
    }

    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }
}

/// The paper's testbed: twelve heterogeneous workstations — seven
/// high-speed, three medium-speed, two low-speed — on one LAN.
///
/// Speed ratios are not given in the paper; 1.0 / 0.6 / 0.35 reflects the
/// typical spread of a 2003-era lab. The two slow machines also carry
/// periodic background load ("speed **and load** differences").
pub fn paper_cluster() -> ClusterSpec {
    let mut machines = Vec::with_capacity(12);
    for i in 0..7 {
        machines.push(Machine::new(format!("fast{i}"), 1.0));
    }
    for i in 0..3 {
        machines.push(Machine::new(format!("medium{i}"), 0.6));
    }
    for i in 0..2 {
        machines.push(
            Machine::new(format!("slow{i}"), 0.35).with_load(LoadModel::Periodic {
                period: 20.0,
                duty: 0.4,
                busy_factor: 0.5,
            }),
        );
    }
    ClusterSpec::new(machines, LinkModel::default())
}

/// A homogeneous cluster of `n` unit-speed machines (control condition).
pub fn homogeneous(n: usize) -> ClusterSpec {
    assert!(n >= 1);
    let machines = (0..n)
        .map(|i| Machine::new(format!("node{i}"), 1.0))
        .collect();
    ClusterSpec::new(machines, LinkModel::default())
}

/// Round-robin assignment of `n_procs` processes onto the machines,
/// fastest machines first — the placement strategy the experiments use.
pub fn round_robin_assignment(cluster: &ClusterSpec, n_procs: usize) -> Vec<usize> {
    // Sort machine indices by descending speed (stable: index breaks ties).
    let mut order: Vec<usize> = (0..cluster.num_machines()).collect();
    order.sort_by(|&a, &b| {
        cluster.machines[b]
            .speed
            .partial_cmp(&cluster.machines[a].speed)
            .expect("speeds are finite")
            .then(a.cmp(&b))
    });
    (0..n_procs).map(|i| order[i % order.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_has_twelve_machines_in_three_classes() {
        let c = paper_cluster();
        assert_eq!(c.num_machines(), 12);
        let fast = c.machines.iter().filter(|m| m.speed == 1.0).count();
        let medium = c.machines.iter().filter(|m| m.speed == 0.6).count();
        let slow = c.machines.iter().filter(|m| m.speed == 0.35).count();
        assert_eq!((fast, medium, slow), (7, 3, 2));
    }

    #[test]
    fn slow_machines_carry_load() {
        let c = paper_cluster();
        let loaded = c
            .machines
            .iter()
            .filter(|m| m.load != LoadModel::None)
            .count();
        assert_eq!(loaded, 2);
    }

    #[test]
    fn round_robin_prefers_fast_machines() {
        let c = paper_cluster();
        let assignment = round_robin_assignment(&c, 5);
        for &m in &assignment {
            assert_eq!(c.machines[m].speed, 1.0, "first 5 procs go to fast nodes");
        }
        // 13th process wraps around to the fastest machine again.
        let wrap = round_robin_assignment(&c, 13);
        assert_eq!(wrap[12], wrap[0]);
    }

    #[test]
    fn homogeneous_uniform_speed() {
        let c = homogeneous(4);
        assert!(c.machines.iter().all(|m| m.speed == 1.0));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn rejects_empty_cluster() {
        ClusterSpec::new(vec![], LinkModel::default());
    }
}
