//! Property tests for the virtual-time runtimes: determinism, clock
//! monotonicity, message conservation, and FIFO ordering over randomized
//! process/topology structures — plus the cross-runtime law that the
//! cooperative discrete-event executor ([`VirtualTaskCluster`]) replays
//! the token scheduler ([`SimBuilder`]) bit for bit, and model-checked
//! properties of the [`EventQueue`] that drives it.

use proptest::prelude::*;
use pts_vcluster::machine::{LoadModel, Machine};
use pts_vcluster::message::LinkModel;
use pts_vcluster::topology::ClusterSpec;
use pts_vcluster::{Contention, EventQueue, SimBuilder, VirtualTaskCluster};
use std::sync::{Arc, Mutex};

/// A randomized star workload: `n_workers` send `msgs_each` messages to a
/// collector after per-message compute bursts.
#[derive(Clone, Debug)]
struct StarSpec {
    speeds: Vec<f64>,
    msgs_each: usize,
    bursts: Vec<f64>,
    latency: f64,
}

fn arb_star() -> impl Strategy<Value = StarSpec> {
    (
        proptest::collection::vec(0.2f64..2.0, 1..6),
        1usize..6,
        proptest::collection::vec(0.1f64..3.0, 1..6),
        0.0f64..0.01,
    )
        .prop_map(|(speeds, msgs_each, bursts, latency)| StarSpec {
            speeds,
            msgs_each,
            bursts,
            latency,
        })
}

/// Run the star workload; return the collector's observation log
/// `(worker, msg_index, virtual_time)` and the full run report.
fn run_star(spec: &StarSpec) -> (Vec<(u64, u64, f64)>, pts_vcluster::RunReport) {
    let machines: Vec<Machine> = std::iter::once(Machine::new("hub", 1.0))
        .chain(
            spec.speeds
                .iter()
                .enumerate()
                .map(|(i, &s)| Machine::new(format!("w{i}"), s)),
        )
        .collect();
    let cluster = ClusterSpec::new(
        machines,
        LinkModel {
            latency: spec.latency,
            local_latency: spec.latency / 2.0,
            bytes_per_sec: 1e9,
            send_overhead_work: 0.0,
        },
    );
    let n_workers = spec.speeds.len();
    let total = n_workers * spec.msgs_each;
    let log: Arc<Mutex<Vec<(u64, u64, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut sim: SimBuilder<(u64, u64)> = SimBuilder::new(cluster);
    let l = Arc::clone(&log);
    let hub = sim.spawn(0, move |ctx| {
        for _ in 0..total {
            let (w, i) = ctx.recv();
            l.lock().unwrap().push((w, i, ctx.now()));
        }
    });
    for w in 0..n_workers {
        let bursts = spec.bursts.clone();
        let msgs = spec.msgs_each;
        sim.spawn(1 + w, move |ctx| {
            for i in 0..msgs {
                ctx.compute(bursts[i % bursts.len()]);
                ctx.send_sized(hub, (w as u64, i as u64), 64);
            }
        });
    }
    let report = sim.run();
    let out = log.lock().unwrap().clone();
    (out, report)
}

/// The identical star workload on the cooperative virtual-time executor;
/// returns the observation log, the end time, and the full per-process
/// accounting for bit-for-bit comparison against the token scheduler.
/// One process per machine, so `contention` must be behaviourally inert.
fn run_star_vt(
    spec: &StarSpec,
    contention: Contention,
) -> (Vec<(u64, u64, f64)>, pts_vcluster::RunReport) {
    let machines: Vec<Machine> = std::iter::once(Machine::new("hub", 1.0))
        .chain(
            spec.speeds
                .iter()
                .enumerate()
                .map(|(i, &s)| Machine::new(format!("w{i}"), s)),
        )
        .collect();
    let cluster = ClusterSpec::new(
        machines,
        LinkModel {
            latency: spec.latency,
            local_latency: spec.latency / 2.0,
            bytes_per_sec: 1e9,
            send_overhead_work: 0.0,
        },
    );
    let n_workers = spec.speeds.len();
    let total = n_workers * spec.msgs_each;
    let log: Arc<Mutex<Vec<(u64, u64, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut vt: VirtualTaskCluster<(u64, u64)> = VirtualTaskCluster::new(cluster);
    vt.set_contention(contention);
    let l = Arc::clone(&log);
    let hub = vt.spawn(0, move |ctx| async move {
        for _ in 0..total {
            let (w, i) = ctx.recv().await;
            let t = ctx.now();
            l.lock().unwrap().push((w, i, t));
        }
    });
    for w in 0..n_workers {
        let bursts = spec.bursts.clone();
        let msgs = spec.msgs_each;
        vt.spawn(1 + w, move |ctx| async move {
            for i in 0..msgs {
                ctx.compute(bursts[i % bursts.len()]).await;
                ctx.send_sized(hub, (w as u64, i as u64), 64);
            }
        });
    }
    let report = vt.run();
    let out = log.lock().unwrap().clone();
    (out, report)
}

/// Reference model for the event queue: a plain vector of live entries,
/// popped by linear minimum scan over `(time, task, seq)`.
#[derive(Clone, Debug)]
struct QueueOp {
    /// `Some((time_offset, task))` = schedule; `None` = pop.
    schedule: Option<(f64, usize)>,
    /// When scheduling: index into the live set to also cancel (mod len).
    cancel_one: bool,
}

fn arb_queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    proptest::collection::vec(
        (0usize..4, 0.0f64..5.0, 0usize..8, any::<bool>()).prop_map(
            |(kind, dt, task, cancel_one)| QueueOp {
                schedule: (kind != 0).then_some((dt, task)),
                cancel_one: kind == 2 && cancel_one,
            },
        ),
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn replay_is_bit_identical(spec in arb_star()) {
        let (log_a, report_a) = run_star(&spec);
        let (log_b, report_b) = run_star(&spec);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(report_a.end_time, report_b.end_time);
    }

    #[test]
    fn collector_times_are_monotone(spec in arb_star()) {
        let (log, report) = run_star(&spec);
        for w in log.windows(2) {
            prop_assert!(w[1].2 >= w[0].2, "receive times must be non-decreasing");
        }
        if let Some(last) = log.last() {
            prop_assert!(report.end_time >= last.2, "run ends after the last receive");
        }
    }

    #[test]
    fn vt_executor_matches_token_scheduler_bit_for_bit(spec in arb_star()) {
        // The cooperative discrete-event executor is not "close to" the
        // thread-backed token scheduler — it IS the same timing model:
        // observation log, end time, and every per-process counter
        // (busy/wait virtual seconds included) must be equal, bit for
        // bit, over arbitrary star workloads.
        let (log_sim, report_sim) = run_star(&spec);
        let (log_vt, report_vt) = run_star_vt(&spec, Contention::Exclusive);
        prop_assert_eq!(log_sim, log_vt);
        prop_assert_eq!(report_sim.end_time, report_vt.end_time);
        prop_assert_eq!(report_sim.per_proc, report_vt.per_proc);
    }

    #[test]
    fn contention_is_bit_inert_without_machine_sharing(spec in arb_star()) {
        // The star topology hosts exactly one process per machine, so
        // time-slicing has nobody to slice between: switching it on must
        // not move a single bit — log, end time, or per-process
        // accounting — even though it routes every compute through the
        // tracked-job path (share 1.0 is IEEE-exact).
        let (log_ex, report_ex) = run_star_vt(&spec, Contention::Exclusive);
        let (log_ts, report_ts) = run_star_vt(&spec, Contention::TimeSliced);
        prop_assert_eq!(log_ex, log_ts);
        prop_assert_eq!(report_ex.end_time, report_ts.end_time);
        prop_assert_eq!(report_ex.per_proc, report_ts.per_proc);
    }

    #[test]
    fn oversubscription_never_beats_running_alone(
        works in proptest::collection::vec(0.5f64..10.0, 2..6),
        speed in 0.3f64..2.0,
    ) {
        // All jobs share one time-sliced machine from t=0. Each must
        // finish no earlier than it would alone on the idle machine, and
        // the last finisher must account for exactly the summed work
        // (time-slicing divides the machine, it never creates capacity).
        let machine = Machine::new("m", speed);
        let cluster = ClusterSpec::new(vec![machine.clone()], LinkModel::default());
        let finish: Arc<Mutex<Vec<(usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut vt: VirtualTaskCluster<()> = VirtualTaskCluster::new(cluster);
        vt.set_contention(Contention::TimeSliced);
        for (i, &w) in works.iter().enumerate() {
            let f = Arc::clone(&finish);
            vt.spawn(0, move |ctx| async move {
                ctx.compute(w).await;
                let t = ctx.now();
                f.lock().unwrap().push((i, t));
            });
        }
        vt.run();
        let finish = finish.lock().unwrap().clone();
        prop_assert_eq!(finish.len(), works.len());
        let mut last = 0.0f64;
        for &(i, t) in &finish {
            let alone = machine.compute_end(0.0, works[i]);
            prop_assert!(
                t >= alone - 1e-9,
                "job {i}: finished at {t} under contention, {alone} alone"
            );
            last = last.max(t);
        }
        let total = machine.compute_end(0.0, works.iter().sum());
        prop_assert!(
            (last - total).abs() < 1e-6,
            "last finisher {last} must equal the serialized total {total}"
        );
    }

    #[test]
    fn event_queue_preserves_total_order_and_drains(ops in arb_queue_ops()) {
        // Model-checked: the queue pops exactly the live-set minimum in
        // (time, task, seq) order, never yields an event before (or after)
        // its scheduled time once the clock reaches it, never yields a
        // cancelled entry, and drains to quiescence.
        let mut q = EventQueue::new();
        let mut model: Vec<(f64, usize, u64)> = Vec::new();
        let mut clock = 0.0f64;
        let pop_min = |q: &mut EventQueue, model: &mut Vec<(f64, usize, u64)>,
                           clock: &mut f64| {
            let expect = model
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
                })
                .map(|(i, _)| i);
            match (q.pop(), expect) {
                (None, None) => {}
                (Some(ev), Some(i)) => {
                    let (t, task, seq) = model.remove(i);
                    assert_eq!((ev.time, ev.task, ev.seq), (t, task, seq));
                    // "Never run a task early": the executor clock jumps
                    // TO the event's time, never past a later event, and
                    // schedules are never in the past — so pop times are
                    // non-decreasing.
                    assert!(
                        ev.time >= *clock,
                        "event at {} popped after clock reached {}",
                        ev.time,
                        *clock
                    );
                    *clock = clock.max(ev.time);
                }
                (got, want) => panic!("queue/model diverged: got {got:?}, want index {want:?}"),
            }
        };
        for op in &ops {
            match op.schedule {
                Some((dt, task)) => {
                    let time = clock + dt;
                    let ticket = q.schedule(time, task);
                    model.push((time, task, ticket));
                    if op.cancel_one {
                        // Cancel the oldest live entry; it must never
                        // surface from a later pop.
                        let (_, _, ticket) = model.remove(0);
                        prop_assert!(q.cancel(ticket), "live ticket must cancel");
                        prop_assert!(!q.cancel(ticket), "double cancel must report dead");
                    }
                }
                None => pop_min(&mut q, &mut model, &mut clock),
            }
            prop_assert_eq!(q.len(), model.len());
        }
        // Drain to quiescence: every live entry comes out, in order.
        while !model.is_empty() {
            pop_min(&mut q, &mut model, &mut clock);
        }
        prop_assert!(q.is_empty());
        prop_assert!(q.pop().is_none(), "drained queue must stay quiescent");
    }

    #[test]
    fn all_messages_delivered_exactly_once(spec in arb_star()) {
        let (log, _report) = run_star(&spec);
        prop_assert_eq!(log.len(), spec.speeds.len() * spec.msgs_each);
        let mut seen = std::collections::HashSet::new();
        for &(w, i, _) in &log {
            prop_assert!(seen.insert((w, i)), "duplicate delivery of ({w},{i})");
        }
    }

    #[test]
    fn per_worker_fifo_holds(spec in arb_star()) {
        let (log, _) = run_star(&spec);
        let mut last_index: std::collections::HashMap<u64, u64> = Default::default();
        for &(w, i, _) in &log {
            if let Some(&prev) = last_index.get(&w) {
                prop_assert!(i > prev, "messages from worker {w} must arrive in order");
            }
            last_index.insert(w, i);
        }
    }

    #[test]
    fn slower_machines_finish_later(speed in 0.1f64..0.9) {
        // Two identical workloads, machine 1 runs at `speed` < 1.0.
        let cluster = ClusterSpec::new(
            vec![Machine::new("fast", 1.0), Machine::new("slow", speed)],
            LinkModel::default(),
        );
        let finish: Arc<Mutex<[f64; 2]>> = Arc::new(Mutex::new([0.0; 2]));
        let mut sim: SimBuilder<()> = SimBuilder::new(cluster);
        for m in 0..2 {
            let f = Arc::clone(&finish);
            sim.spawn(m, move |ctx| {
                ctx.compute(10.0);
                f.lock().unwrap()[m] = ctx.now();
            });
        }
        sim.run();
        let [fast, slow] = *finish.lock().unwrap();
        prop_assert!((fast - 10.0).abs() < 1e-9);
        prop_assert!((slow - 10.0 / speed).abs() < 1e-6);
    }

    #[test]
    fn load_never_accelerates(duty in 0.1f64..0.9, busy in 0.1f64..0.9) {
        let m_free = Machine::new("free", 1.0);
        let m_loaded = Machine::new("loaded", 1.0).with_load(LoadModel::Periodic {
            period: 5.0,
            duty,
            busy_factor: busy,
        });
        for work in [0.5, 3.0, 12.0, 50.0] {
            let t_free = m_free.compute_end(0.0, work);
            let t_loaded = m_loaded.compute_end(0.0, work);
            prop_assert!(
                t_loaded >= t_free - 1e-9,
                "background load cannot speed a machine up"
            );
        }
    }
}
