//! Property tests for the virtual-time runtime: determinism, clock
//! monotonicity, message conservation, and FIFO ordering over randomized
//! process/topology structures.

use proptest::prelude::*;
use pts_vcluster::machine::{LoadModel, Machine};
use pts_vcluster::message::LinkModel;
use pts_vcluster::topology::ClusterSpec;
use pts_vcluster::SimBuilder;
use std::sync::{Arc, Mutex};

/// A randomized star workload: `n_workers` send `msgs_each` messages to a
/// collector after per-message compute bursts.
#[derive(Clone, Debug)]
struct StarSpec {
    speeds: Vec<f64>,
    msgs_each: usize,
    bursts: Vec<f64>,
    latency: f64,
}

fn arb_star() -> impl Strategy<Value = StarSpec> {
    (
        proptest::collection::vec(0.2f64..2.0, 1..6),
        1usize..6,
        proptest::collection::vec(0.1f64..3.0, 1..6),
        0.0f64..0.01,
    )
        .prop_map(|(speeds, msgs_each, bursts, latency)| StarSpec {
            speeds,
            msgs_each,
            bursts,
            latency,
        })
}

/// Run the star workload; return the collector's observation log
/// `(worker, msg_index, virtual_time)` and the run report end time.
fn run_star(spec: &StarSpec) -> (Vec<(u64, u64, f64)>, f64) {
    let machines: Vec<Machine> = std::iter::once(Machine::new("hub", 1.0))
        .chain(
            spec.speeds
                .iter()
                .enumerate()
                .map(|(i, &s)| Machine::new(format!("w{i}"), s)),
        )
        .collect();
    let cluster = ClusterSpec::new(
        machines,
        LinkModel {
            latency: spec.latency,
            local_latency: spec.latency / 2.0,
            bytes_per_sec: 1e9,
            send_overhead_work: 0.0,
        },
    );
    let n_workers = spec.speeds.len();
    let total = n_workers * spec.msgs_each;
    let log: Arc<Mutex<Vec<(u64, u64, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut sim: SimBuilder<(u64, u64)> = SimBuilder::new(cluster);
    let l = Arc::clone(&log);
    let hub = sim.spawn(0, move |ctx| {
        for _ in 0..total {
            let (w, i) = ctx.recv();
            l.lock().unwrap().push((w, i, ctx.now()));
        }
    });
    for w in 0..n_workers {
        let bursts = spec.bursts.clone();
        let msgs = spec.msgs_each;
        sim.spawn(1 + w, move |ctx| {
            for i in 0..msgs {
                ctx.compute(bursts[i % bursts.len()]);
                ctx.send_sized(hub, (w as u64, i as u64), 64);
            }
        });
    }
    let report = sim.run();
    let out = log.lock().unwrap().clone();
    (out, report.end_time)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn replay_is_bit_identical(spec in arb_star()) {
        let (log_a, end_a) = run_star(&spec);
        let (log_b, end_b) = run_star(&spec);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(end_a, end_b);
    }

    #[test]
    fn collector_times_are_monotone(spec in arb_star()) {
        let (log, end) = run_star(&spec);
        for w in log.windows(2) {
            prop_assert!(w[1].2 >= w[0].2, "receive times must be non-decreasing");
        }
        if let Some(last) = log.last() {
            prop_assert!(end >= last.2, "run ends after the last receive");
        }
    }

    #[test]
    fn all_messages_delivered_exactly_once(spec in arb_star()) {
        let (log, _) = run_star(&spec);
        prop_assert_eq!(log.len(), spec.speeds.len() * spec.msgs_each);
        let mut seen = std::collections::HashSet::new();
        for &(w, i, _) in &log {
            prop_assert!(seen.insert((w, i)), "duplicate delivery of ({w},{i})");
        }
    }

    #[test]
    fn per_worker_fifo_holds(spec in arb_star()) {
        let (log, _) = run_star(&spec);
        let mut last_index: std::collections::HashMap<u64, u64> = Default::default();
        for &(w, i, _) in &log {
            if let Some(&prev) = last_index.get(&w) {
                prop_assert!(i > prev, "messages from worker {w} must arrive in order");
            }
            last_index.insert(w, i);
        }
    }

    #[test]
    fn slower_machines_finish_later(speed in 0.1f64..0.9) {
        // Two identical workloads, machine 1 runs at `speed` < 1.0.
        let cluster = ClusterSpec::new(
            vec![Machine::new("fast", 1.0), Machine::new("slow", speed)],
            LinkModel::default(),
        );
        let finish: Arc<Mutex<[f64; 2]>> = Arc::new(Mutex::new([0.0; 2]));
        let mut sim: SimBuilder<()> = SimBuilder::new(cluster);
        for m in 0..2 {
            let f = Arc::clone(&finish);
            sim.spawn(m, move |ctx| {
                ctx.compute(10.0);
                f.lock().unwrap()[m] = ctx.now();
            });
        }
        sim.run();
        let [fast, slow] = *finish.lock().unwrap();
        prop_assert!((fast - 10.0).abs() < 1e-9);
        prop_assert!((slow - 10.0 / speed).abs() < 1e-6);
    }

    #[test]
    fn load_never_accelerates(duty in 0.1f64..0.9, busy in 0.1f64..0.9) {
        let m_free = Machine::new("free", 1.0);
        let m_loaded = Machine::new("loaded", 1.0).with_load(LoadModel::Periodic {
            period: 5.0,
            duty,
            busy_factor: busy,
        });
        for work in [0.5, 3.0, 12.0, 50.0] {
            let t_free = m_free.compute_end(0.0, work);
            let t_loaded = m_loaded.compute_end(0.0, work);
            prop_assert!(
                t_loaded >= t_free - 1e-9,
                "background load cannot speed a machine up"
            );
        }
    }
}
