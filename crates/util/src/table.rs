//! Minimal ASCII table rendering for experiment harness output.
//!
//! The figure-regeneration binaries print the same rows/series the paper
//! reports; a small fixed-width table keeps that output readable without
//! pulling in a formatting crate.

use std::fmt::Write as _;

/// A simple column-aligned ASCII table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows extend the implicit width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with column alignment and a header underline.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let consider = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        consider(&mut widths, &self.header);
        for r in &self.rows {
            consider(&mut widths, r);
        }

        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate().take(ncols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width.saturating_sub(cell.chars().count());
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in 0..pad {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with a sensible number of digits for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["circuit", "cells", "cost"]);
        t.row(["highway", "56", "0.42"]);
        t.row(["c3540", "2243", "0.3711"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("circuit"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "cells" column starts at same offset in all rows.
        let col = lines[0].find("cells").unwrap();
        assert_eq!(&lines[2][col..col + 2], "56");
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.1234), "42.12");
        assert_eq!(fmt_f64(0.123456), "0.1235");
    }
}
