//! Deterministic pseudo-random number generation.
//!
//! Implements xoshiro256** (Blackman & Vigna) seeded through splitmix64.
//! Both algorithms are public domain. We carry our own implementation so the
//! search trajectory depends only on the seed, never on the version of an
//! external RNG crate — a hard requirement for the deterministic virtual
//! cluster replay tests.

/// splitmix64 step; used to expand a single `u64` seed into xoshiro state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator.
///
/// Not cryptographically secure; statistically solid for simulation and
/// stochastic search. Streams derived with [`Rng::fork`] are independent for
/// all practical purposes (distinct splitmix64 expansions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator. `salt` distinguishes children
    /// forked from the same parent state (e.g. one per worker index).
    pub fn fork(&mut self, salt: u64) -> Self {
        let base = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::new(base)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and fast.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "Rng::below called with bound 0");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.index(hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n), in random order.
    ///
    /// Uses a partial Fisher–Yates over an index vector; O(n) allocation but
    /// only O(k) swaps, fine for the sizes used here.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Draw from a geometric-ish distribution: number of failures before the
    /// first success with success probability `p` (clamped to at least one
    /// trial). Used by the netlist generator for fanout tails.
    pub fn geometric(&mut self, p: f64) -> usize {
        let p = p.clamp(1e-9, 1.0);
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).max(1e-12).ln()).floor() as usize
    }

    /// Standard normal via Box–Muller (polar rejection variant).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 should produce different streams");
    }

    #[test]
    fn below_is_in_bounds_and_covers_small_ranges() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_one_always_zero() {
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(5);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With 100 elements the identity permutation is essentially impossible.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::new(9);
        for _ in 0..100 {
            let k = rng.range(1, 20);
            let s = rng.sample_indices(50, k);
            assert_eq!(s.len(), k);
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), k, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(1234);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut rng = Rng::new(21);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal variance {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(77);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn geometric_small_p_gives_long_runs() {
        let mut rng = Rng::new(31);
        let mean: f64 = (0..20_000).map(|_| rng.geometric(0.2) as f64).sum::<f64>() / 20_000.0;
        // Geometric (failures before success) with p=0.2 has mean (1-p)/p = 4.
        assert!((mean - 4.0).abs() < 0.25, "geometric mean {mean}");
    }
}
