//! Small statistics helpers used by the experiment harnesses.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Five-number-style summary of a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let mut acc = OnlineStats::new();
        for &x in xs {
            acc.push(x);
        }
        Some(Summary {
            count: xs.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: sorted[0],
            p25: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.50),
            p75: percentile_sorted(&sorted, 0.75),
            max: *sorted.last().unwrap(),
        })
    }
}

/// Linear-interpolated percentile of an already-sorted slice, `q` in `[0,1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Geometric mean of strictly positive values.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean needs positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(5.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 4.0);
        assert!((percentile_sorted(&sorted, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_powers() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
