//! Tiny CSV writer for experiment results.
//!
//! Only what the figure harnesses need: header + rows, RFC-4180-style quoting
//! of cells containing commas/quotes/newlines.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Accumulates rows and writes them as a CSV file or string.
#[derive(Clone, Debug, Default)]
pub struct CsvWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

impl CsvWriter {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        CsvWriter {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the CSV contents to a string.
    pub fn to_string_lossy(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for r in &self.rows {
            emit(&mut out, r);
        }
        out
    }

    /// Write to a file, creating parent directories as needed.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = File::create(path)?;
        f.write_all(self.to_string_lossy().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_rendering() {
        let mut w = CsvWriter::new(["a", "b"]);
        w.row(["1", "2"]);
        assert_eq!(w.to_string_lossy(), "a,b\n1,2\n");
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn quoting_rules() {
        let mut w = CsvWriter::new(["x"]);
        w.row(["has,comma"]);
        w.row(["has\"quote"]);
        w.row(["plain"]);
        let s = w.to_string_lossy();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
        assert!(s.contains("plain\n"));
    }

    #[test]
    fn writes_file_with_parent_dirs() {
        let dir = std::env::temp_dir().join("pts_util_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut w = CsvWriter::new(["k", "v"]);
        w.row(["seed", "42"]);
        w.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "k,v\nseed,42\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
