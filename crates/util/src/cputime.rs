//! Per-thread CPU time.
//!
//! The wall-clock execution engines want to report how much of a worker
//! thread's lifetime was actual computation versus blocking on a channel —
//! the utilization measure the paper reports for its PVM workers. Wall
//! clocks cannot separate the two on a thread that sleeps in `recv`;
//! `getrusage(RUSAGE_THREAD)` can: it returns the calling thread's
//! user + system CPU time, which only advances while the thread runs.
//!
//! 64-bit-Linux-only (`RUSAGE_THREAD` is a Linux extension, and the
//! hand-declared struct below uses the 64-bit ABI's `timeval` layout —
//! on 32-bit targets the fields would be misread); other platforms get
//! `None` and callers fall back to reporting no busy time. The libc call
//! is declared directly — the workspace builds offline without the `libc`
//! crate, and std already links the system C library.

/// The calling thread's cumulative CPU time (user + system) in seconds,
/// or `None` where per-thread accounting is unavailable.
pub fn thread_cpu_seconds() -> Option<f64> {
    imp::thread_cpu_seconds()
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod imp {
    /// `struct timeval` as the kernel fills it on 64-bit Linux.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Timeval {
        tv_sec: i64,
        tv_usec: i64,
    }

    /// `struct rusage`: the two timevals we read, plus room for the 14
    /// `long` counters the kernel writes after them (padded above the
    /// glibc layout so the syscall never writes past the buffer).
    #[repr(C)]
    struct Rusage {
        ru_utime: Timeval,
        ru_stime: Timeval,
        _counters: [i64; 16],
    }

    /// Linux extension: rusage of the calling thread only.
    const RUSAGE_THREAD: i32 = 1;

    extern "C" {
        fn getrusage(who: i32, usage: *mut Rusage) -> i32;
    }

    pub fn thread_cpu_seconds() -> Option<f64> {
        let mut ru = Rusage {
            ru_utime: Timeval {
                tv_sec: 0,
                tv_usec: 0,
            },
            ru_stime: Timeval {
                tv_sec: 0,
                tv_usec: 0,
            },
            _counters: [0; 16],
        };
        // SAFETY: `ru` is a valid, writable buffer at least as large as
        // the kernel's `struct rusage`; `getrusage` writes within it and
        // keeps no reference past the call.
        let rc = unsafe { getrusage(RUSAGE_THREAD, &mut ru) };
        if rc != 0 {
            return None;
        }
        let secs = |tv: Timeval| tv.tv_sec as f64 + tv.tv_usec as f64 * 1e-6;
        Some(secs(ru.ru_utime) + secs(ru.ru_stime))
    }
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
mod imp {
    pub fn thread_cpu_seconds() -> Option<f64> {
        None
    }
}

#[cfg(all(test, target_os = "linux", target_pointer_width = "64"))]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_monotone_and_thread_local() {
        let start = thread_cpu_seconds().expect("RUSAGE_THREAD on linux");
        // Spin real CPU work; a sleeping sibling thread must not inflate
        // this thread's counter the way process-wide rusage would.
        let sleeper = std::thread::spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
        let mut acc = 0u64;
        while thread_cpu_seconds().unwrap() - start < 5e-3 {
            for i in 0..10_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
        }
        std::hint::black_box(acc);
        sleeper.join().unwrap();
        let end = thread_cpu_seconds().unwrap();
        assert!(end >= start + 5e-3);
        assert!(end - start < 5.0, "spun {}s of CPU?!", end - start);
    }
}
