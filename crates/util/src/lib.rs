//! Shared utilities for the parallel tabu search reproduction.
//!
//! This crate deliberately has no external dependencies: the algorithmic RNG
//! is implemented here (xoshiro256** seeded via splitmix64) so that every
//! search run — sequential, threaded, or on the virtual cluster — is exactly
//! reproducible from a single `u64` seed, independent of platform or external
//! crate version churn.

pub mod cputime;
pub mod csv;
pub mod rng;
pub mod stats;
pub mod table;

pub use cputime::thread_cpu_seconds;
pub use rng::Rng;
pub use stats::{OnlineStats, Summary};
pub use table::Table;
