//! Parallel Tabu Search (PTS) — the primary contribution of Al-Yamani,
//! Sait, Barada & Youssef, *"Parallel Tabu Search in a Heterogeneous
//! Environment"*, IPDPS 2003.
//!
//! Two parallelization strategies are combined, exactly as in the paper:
//!
//! * **high level (multi-search threads, p-control)**: a [`master`]
//!   process coordinates several Tabu Search Workers ([`tsw`]), each
//!   running its own tabu search from the shared initial solution after a
//!   Kelly-style diversification over a private item subset; the master
//!   collects bests per *global iteration* and broadcasts the winner
//!   (solution + tabu list) — optionally through a sharded tree of
//!   sub-masters ([`config::PtsConfig::shard_fanout`]) so collection
//!   stays O(fan-out) per process at thousand-worker scale;
//! * **low level (functional decomposition, 1-control)**: each TSW drives
//!   Candidate-List Workers ([`clw`]) that explore the neighborhood in
//!   parallel, each anchored to an item range (probabilistic domain
//!   decomposition), building compound moves of depth `d` from best-of-`m`
//!   candidate moves;
//! * **heterogeneity**: under [`config::SyncPolicy::HalfReport`], a parent
//!   waits only for half of its children, then forces the rest to report
//!   immediately — at both the master/TSW and TSW/CLW levels.
//!
//! The pipeline is generic along two axes:
//!
//! * **problem**: any [`domain::PtsDomain`] — VLSI placement
//!   ([`placement_problem::PlacementDomain`], the paper's workload) and
//!   quadratic assignment ([`qap_domain::QapDomain`]) are wired in;
//! * **substrate**: any [`engine::ExecutionEngine`] — the deterministic
//!   virtual heterogeneous cluster ([`engine::SimEngine`], the paper's
//!   PVM-testbed substitute), native threads ([`engine::ThreadEngine`])
//!   for real wall-clock parallelism, cooperative futures
//!   ([`async_engine::AsyncEngine`]) multiplexing thousands of logical
//!   workers on one OS thread, or the virtual-time cooperative engine
//!   ([`virtual_engine::VirtualEngine`]) — SimEngine's timing model at
//!   AsyncEngine's scale, bit-identical to the simulated cluster. All
//!   return one unified [`report::RunReport`].
//!
//! Entry point: [`builder::Pts::builder`] → validated
//! [`builder::PtsRun`] → `execute` / `run_placement`.

#![warn(missing_docs)]

pub mod async_engine;
pub mod builder;
pub mod clw;
pub mod config;
pub mod control;
pub mod domain;
pub mod engine;
pub mod fault;
pub mod master;
pub mod messages;
pub mod meter;
pub mod placement_problem;
pub mod proc;
pub mod qap_domain;
pub mod report;
pub mod run;
pub mod serve;
pub mod socket;
pub mod speedup;
pub mod transport;
pub mod tsw;
pub mod virtual_engine;
pub mod wire;

pub use async_engine::AsyncEngine;
pub use builder::{ConfigError, PlacementRunOutput, Pts, PtsRun, RunBuilder};
pub use config::{
    CostKind, PtsConfig, SearchStrategy, ShardChildren, ShardSpec, SnapshotMode, SyncPolicy,
    WorkModel,
};
pub use control::RunControl;
pub use domain::{
    DeltaOf, DeltaSnapshot, PtsDomain, PtsProblem, SearchOutcome, SnapshotOf, WireSized,
};
pub use engine::{EngineOutput, ExecutionEngine, SimEngine, ThreadEngine};
pub use fault::{Contention, FaultMix, FaultSpec, WorkerFault};
pub use messages::{PtsMsg, SharedTabu, SnapshotBase, SnapshotPayload, TabuEntries, TabuPayload};
pub use meter::{take_snapshot_meter, take_trials, SnapshotMeter};
pub use placement_problem::{MasterOutcome, PlacementDelta, PlacementDomain, PlacementProblem};
pub use proc::{ProcDomain, ProcEngine};
pub use qap_domain::{QapDelta, QapDomain};
pub use report::{ClockDomain, RunReport};
pub use run::run_sequential_baseline;
pub use socket::{SocketRouter, SocketTransport};
pub use speedup::{common_quality_target, fractional_quality_target, speedup_sweep, SpeedupPoint};
pub use virtual_engine::VirtualEngine;
pub use wire::{WireError, WireProblem, WIRE_VERSION};
