//! Parallel Tabu Search (PTS) — the primary contribution of Al-Yamani,
//! Sait, Barada & Youssef, *"Parallel Tabu Search in a Heterogeneous
//! Environment"*, IPDPS 2003.
//!
//! Two parallelization strategies are combined, exactly as in the paper:
//!
//! * **high level (multi-search threads, p-control)**: a [`master`]
//!   process coordinates several Tabu Search Workers ([`tsw`]), each
//!   running its own tabu search from the shared initial solution after a
//!   Kelly-style diversification over a private cell subset; the master
//!   collects bests per *global iteration* and broadcasts the winner
//!   (solution + tabu list);
//! * **low level (functional decomposition, 1-control)**: each TSW drives
//!   Candidate-List Workers ([`clw`]) that explore the neighborhood in
//!   parallel, each anchored to a cell range (probabilistic domain
//!   decomposition), building compound moves of depth `d` from best-of-`m`
//!   candidate swaps;
//! * **heterogeneity**: under [`config::SyncPolicy::HalfReport`], a parent
//!   waits only for half of its children, then forces the rest to report
//!   immediately — at both the master/TSW and TSW/CLW levels.
//!
//! Runs execute either on the deterministic virtual heterogeneous cluster
//! ([`sim_engine`], the paper's PVM-testbed substitute) or on native
//! threads ([`thread_engine`]) for real wall-clock parallelism.

pub mod clw;
pub mod config;
pub mod master;
pub mod messages;
pub mod placement_problem;
pub mod run;
pub mod sim_engine;
pub mod speedup;
pub mod thread_engine;
pub mod transport;
pub mod tsw;

pub use config::{CostKind, PtsConfig, SyncPolicy, WorkModel};
pub use master::MasterOutcome;
pub use messages::PtsMsg;
pub use placement_problem::PlacementProblem;
pub use run::{run_pts, run_sequential_baseline, Engine, PtsOutput};
pub use sim_engine::{run_on_sim, run_on_sim_from, SimOutput};
pub use speedup::{common_quality_target, fractional_quality_target, speedup_sweep, SpeedupPoint};
pub use thread_engine::{run_on_threads, run_on_threads_from};
