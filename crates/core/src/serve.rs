//! `pts-serve`: a long-lived search-job service over a socket.
//!
//! The paper's PVM testbed was operated batch-style — one run, one
//! process tree. This module turns the proc engine into a *service*: a
//! daemon listens on a Unix-domain (or TCP) socket; clients submit search
//! jobs (a full [`PtsConfig`] plus a [`JobDomainSpec`] and an optional
//! wall-clock budget) over a small framed protocol; the server queues
//! jobs FIFO, runs up to `max_concurrent` of them at once — each as its
//! own [`crate::proc::ProcEngine`] process tree — streams per-round
//! progress frames back, and delivers a final result frame. A job can be
//! cancelled explicitly, by its budget expiring, or implicitly by its
//! client disconnecting; all three routes flip the job's
//! [`RunControl`], which the master turns into a protocol-clean `Stop`
//! wave through the shard tree, after which the engine reaps its child
//! processes — no orphans on any path.
//!
//! # Retry
//!
//! A job whose attempt crashes (engine error) or completes *degraded*
//! (the proc engine lost worker ranks mid-run — see
//! [`crate::report::RunReport::dead_ranks`]) is retried up to its
//! [`JobRequest::max_restarts`] budget: the client sees a
//! [`kind::RETRYING`] frame, the job re-enters the queue after a capped
//! exponential backoff (250 ms doubling to 5 s), and its registry entry
//! — hence cancellation — survives the wait. The wall-clock budget is
//! job-level: restarts never extend it. Exhausting the restart budget is
//! a final [`kind::ERROR`]: a client that asked for restarts asked for a
//! clean run. Only jobs submitted with `max_restarts = 0` have degraded
//! completions delivered truthfully as results.
//!
//! # Client protocol
//!
//! Frames are length-prefixed like the rank protocol
//! ([`crate::wire::write_frame`]); each body is
//! `[version][kind][payload]`. Client → server kinds: [`kind::SUBMIT`],
//! [`kind::CANCEL`]. Server → client: [`kind::ACCEPTED`],
//! [`kind::PROGRESS`], [`kind::RESULT`], [`kind::ERROR`],
//! [`kind::RETRYING`]. The [`Client`] type wraps the exchange for tests
//! and tooling.

use crate::config::PtsConfig;
use crate::control::RunControl;
use crate::proc::{ProcDomain, ProcEngine};
use crate::socket::Stream;
use crate::wire::{self, WireError, WireReader};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Version byte opening every client-protocol frame the server writes.
/// Incoming frames are accepted back to [`MIN_SERVE_VERSION`]; a v1
/// SUBMIT carries a v1 config block (no portfolio tail), which decodes
/// with portfolio defaults.
pub const SERVE_VERSION: u8 = 2;

/// Oldest client-frame version still accepted.
pub const MIN_SERVE_VERSION: u8 = 1;

/// Heartbeat interval (ms) the daemon arms on jobs that did not set one.
/// A long-lived service cannot afford a hung worker wedging a runner
/// slot forever, so liveness beacons default *on* here — unlike the
/// [`ProcEngine`] library default, where `heartbeat_ms = 0` stays off.
/// Override with [`Server::with_default_heartbeat`] (0 disables).
pub const DEFAULT_HEARTBEAT_MS: u64 = 500;

/// Client-protocol frame kinds.
pub mod kind {
    /// Client → server: submit a job ([`super::JobRequest`] payload).
    pub const SUBMIT: u8 = 0x01;
    /// Client → server: cancel a job (`u32` job id).
    pub const CANCEL: u8 = 0x02;
    /// Server → client: job accepted (`u32` job id).
    pub const ACCEPTED: u8 = 0x81;
    /// Server → client: one global iteration finished
    /// (`u32` job, `u32` global, `f64` best cost).
    pub const PROGRESS: u8 = 0x82;
    /// Server → client: final result ([`super::JobResult`] payload).
    pub const RESULT: u8 = 0x83;
    /// Server → client: job failed (`u32` job, string message).
    pub const ERROR: u8 = 0x84;
    /// Server → client: an attempt failed; the job re-queues after
    /// backoff (`u32` job, `u32` restart number, 1-based).
    pub const RETRYING: u8 = 0x85;
}

/// What problem a submitted job searches.
#[derive(Clone, Debug, PartialEq)]
pub enum JobDomainSpec {
    /// Random symmetric QAP instance, deterministic in the seed.
    QapRandom {
        /// Instance size (facilities = locations).
        n: u32,
        /// Instance seed.
        seed: u64,
    },
    /// A built-in placement benchmark (see
    /// [`pts_netlist::benchmarks::benchmark_names`]).
    Bench {
        /// Benchmark name.
        name: String,
    },
    /// An explicit netlist in the `pts_netlist::format` text format.
    NetlistText {
        /// The netlist source text.
        text: String,
    },
}

/// A submitted search job: full run config, problem, optional budget.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Run configuration (validated server-side).
    pub cfg: PtsConfig,
    /// Problem to search.
    pub spec: JobDomainSpec,
    /// Wall-clock budget in milliseconds; 0 = unlimited (the configured
    /// `global_iters` is then the only bound).
    pub budget_ms: u64,
    /// How many times a crashed or degraded attempt may be restarted
    /// before the failure is final. 0 = never retry.
    pub max_restarts: u32,
}

impl JobRequest {
    /// Encode as a [`kind::SUBMIT`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_config(&self.cfg, &mut out);
        wire::put_u64(&mut out, self.budget_ms);
        wire::put_u32(&mut out, self.max_restarts);
        match &self.spec {
            JobDomainSpec::QapRandom { n, seed } => {
                out.push(0);
                wire::put_u32(&mut out, *n);
                wire::put_u64(&mut out, *seed);
            }
            JobDomainSpec::Bench { name } => {
                out.push(1);
                put_str(&mut out, name);
            }
            JobDomainSpec::NetlistText { text } => {
                out.push(2);
                put_str(&mut out, text);
            }
        }
        out
    }

    /// Decode a [`kind::SUBMIT`] payload written at the current
    /// [`SERVE_VERSION`].
    pub fn decode(payload: &[u8]) -> Result<JobRequest, WireError> {
        JobRequest::decode_versioned(payload, SERVE_VERSION)
    }

    /// Decode a [`kind::SUBMIT`] payload from a frame that declared
    /// `version` — the config block is not last in the payload, so the
    /// layout cannot be inferred from the remaining bytes.
    pub fn decode_versioned(payload: &[u8], version: u8) -> Result<JobRequest, WireError> {
        if !(MIN_SERVE_VERSION..=SERVE_VERSION).contains(&version) {
            return Err(WireError::VersionMismatch {
                got: version,
                want: SERVE_VERSION,
            });
        }
        let mut r = WireReader::new(payload);
        // Serve and wire versions bumped in lockstep for the portfolio
        // config tail; cap so a future serve-only bump keeps decoding.
        let cfg = wire::get_config_versioned(&mut r, version.min(wire::WIRE_VERSION))?;
        let budget_ms = r.u64()?;
        let max_restarts = r.u32()?;
        let spec = match r.u8()? {
            0 => JobDomainSpec::QapRandom {
                n: r.u32()?,
                seed: r.u64()?,
            },
            1 => JobDomainSpec::Bench {
                name: get_str(&mut r)?,
            },
            2 => JobDomainSpec::NetlistText {
                text: get_str(&mut r)?,
            },
            other => return Err(WireError::Tag(other)),
        };
        Ok(JobRequest {
            cfg,
            spec,
            budget_ms,
            max_restarts,
        })
    }
}

/// Final outcome of a job, as delivered in a [`kind::RESULT`] frame.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// The job this result belongs to.
    pub job: u32,
    /// Best cost found.
    pub best_cost: f64,
    /// Cost of the initial solution.
    pub initial_cost: f64,
    /// Global iterations actually completed (≤ configured when cancelled
    /// or out of budget).
    pub rounds: u32,
    /// Whether the job was stopped early (cancel or budget).
    pub cancelled: bool,
}

impl JobResult {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u32(&mut out, self.job);
        wire::put_f64(&mut out, self.best_cost);
        wire::put_f64(&mut out, self.initial_cost);
        wire::put_u32(&mut out, self.rounds);
        out.push(self.cancelled as u8);
        out
    }

    fn decode(payload: &[u8]) -> Result<JobResult, WireError> {
        let mut r = WireReader::new(payload);
        Ok(JobResult {
            job: r.u32()?,
            best_cost: r.f64()?,
            initial_cost: r.f64()?,
            rounds: r.u32()?,
            cancelled: r.u8()? != 0,
        })
    }
}

/// One server → client event, decoded.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeEvent {
    /// The server queued the job under this id.
    Accepted {
        /// Assigned job id.
        job: u32,
    },
    /// One global iteration finished.
    Progress {
        /// The reporting job.
        job: u32,
        /// Completed global iteration (0-based).
        global: u32,
        /// Best cost so far.
        best_cost: f64,
    },
    /// The job finished (normally or early).
    Result(JobResult),
    /// The job failed before/while running.
    Error {
        /// The failing job (0 when no job could be identified).
        job: u32,
        /// Human-readable reason.
        message: String,
    },
    /// An attempt crashed or degraded; the server will retry after
    /// backoff.
    Retrying {
        /// The retrying job.
        job: u32,
        /// Which restart this is (1-based).
        attempt: u32,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    wire::put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut WireReader<'_>) -> Result<String, WireError> {
    let len = r.u32()? as usize;
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string not UTF-8"))
}

fn write_client_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    let mut body = Vec::with_capacity(2 + payload.len());
    body.push(SERVE_VERSION);
    body.push(kind);
    body.extend_from_slice(payload);
    wire::write_frame(w, &body)
}

/// Split a client frame into (version, kind, payload), accepting
/// versions back to [`MIN_SERVE_VERSION`].
fn parse_client_frame(body: &[u8]) -> Result<(u8, u8, &[u8]), WireError> {
    if body.len() < 2 {
        return Err(WireError::Truncated);
    }
    if !(MIN_SERVE_VERSION..=SERVE_VERSION).contains(&body[0]) {
        return Err(WireError::VersionMismatch {
            got: body[0],
            want: SERVE_VERSION,
        });
    }
    Ok((body[0], body[1], &body[2..]))
}

/// Blocking client for the serve protocol — what `tests/serve.rs` and
/// ad-hoc tooling drive the daemon with.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connect to a server address (`unix:<path>` or `tcp:<addr>`),
    /// retrying while the daemon starts up.
    pub fn connect(addr: &str, overall: Duration) -> std::io::Result<Client> {
        // Clients have no rank; jitter the retry backoff from the pid so
        // a herd of client processes spreads out like respawned workers.
        Ok(Client {
            stream: crate::socket::connect_retry(addr, overall, u64::from(std::process::id()))?,
        })
    }

    /// Submit a job; the id arrives in the next [`ServeEvent::Accepted`].
    pub fn submit(&mut self, req: &JobRequest) -> std::io::Result<()> {
        write_client_frame(&mut self.stream, kind::SUBMIT, &req.encode())
    }

    /// Ask the server to cancel `job`.
    pub fn cancel(&mut self, job: u32) -> std::io::Result<()> {
        let mut payload = Vec::new();
        wire::put_u32(&mut payload, job);
        write_client_frame(&mut self.stream, kind::CANCEL, &payload)
    }

    /// Block for the next server event; `None` when the server closed
    /// the connection.
    pub fn next_event(&mut self) -> std::io::Result<Option<ServeEvent>> {
        loop {
            let Some(body) = wire::read_frame(&mut self.stream)? else {
                return Ok(None);
            };
            let (_version, k, payload) = parse_client_frame(&body)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            let mut r = WireReader::new(payload);
            let bad =
                |e: WireError| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string());
            let event = match k {
                kind::ACCEPTED => ServeEvent::Accepted {
                    job: r.u32().map_err(bad)?,
                },
                kind::PROGRESS => ServeEvent::Progress {
                    job: r.u32().map_err(bad)?,
                    global: r.u32().map_err(bad)?,
                    best_cost: r.f64().map_err(bad)?,
                },
                kind::RESULT => ServeEvent::Result(JobResult::decode(payload).map_err(bad)?),
                kind::ERROR => ServeEvent::Error {
                    job: r.u32().map_err(bad)?,
                    message: get_str(&mut r).map_err(bad)?,
                },
                kind::RETRYING => ServeEvent::Retrying {
                    job: r.u32().map_err(bad)?,
                    attempt: r.u32().map_err(bad)?,
                },
                _ => continue, // unknown event kinds are skippable
            };
            return Ok(Some(event));
        }
    }
}

/// A queued or running job, as the server tracks it.
struct Job {
    id: u32,
    req: JobRequest,
    ctl: RunControl,
    writer: Arc<Mutex<Stream>>,
    /// Restarts consumed so far (0 on first submission).
    attempt: u32,
    /// Backoff gate: runners skip the job until this instant.
    not_before: Instant,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Jobs not yet finished (queued or running): id → (owning
    /// connection, control). Cancellation flips the control from here.
    registry: Mutex<HashMap<u32, (u64, RunControl)>>,
    shutdown: AtomicBool,
    worker_exe: PathBuf,
    /// Heartbeat interval armed on jobs whose config left it at 0
    /// ([`DEFAULT_HEARTBEAT_MS`] unless overridden; 0 = keep beacons off,
    /// the [`ProcEngine`] library default).
    default_heartbeat_ms: u64,
}

impl Shared {
    fn cancel_job(&self, job: u32) {
        if let Some((_, ctl)) = self.registry.lock().unwrap().get(&job) {
            ctl.cancel();
        }
    }

    fn cancel_conn(&self, conn: u64) {
        for (owner, ctl) in self.registry.lock().unwrap().values() {
            if *owner == conn {
                ctl.cancel();
            }
        }
    }

    fn cancel_all(&self) {
        for (_, ctl) in self.registry.lock().unwrap().values() {
            ctl.cancel();
        }
    }
}

enum ServeListener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// The job daemon: one listening socket, a FIFO queue, and a bounded
/// pool of job-runner threads.
pub struct Server {
    listener: ServeListener,
    addr: String,
    max_concurrent: usize,
    shared: Arc<Shared>,
}

impl Server {
    /// Listen on a Unix-domain socket at `path` (created; removed on
    /// drop). `worker_exe` is the binary re-entered for worker ranks —
    /// it must call [`crate::proc::maybe_worker`] first thing in `main`.
    pub fn bind_unix(
        path: impl Into<PathBuf>,
        max_concurrent: usize,
        worker_exe: impl Into<PathBuf>,
    ) -> std::io::Result<Server> {
        let path = path.into();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Ok(Server {
            addr: format!("unix:{}", path.display()),
            listener: ServeListener::Unix(listener, path),
            max_concurrent: max_concurrent.max(1),
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                registry: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
                worker_exe: worker_exe.into(),
                default_heartbeat_ms: DEFAULT_HEARTBEAT_MS,
            }),
        })
    }

    /// Listen on TCP (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind_tcp(
        addr: &str,
        max_concurrent: usize,
        worker_exe: impl Into<PathBuf>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            addr: format!("tcp:{}", listener.local_addr()?),
            listener: ServeListener::Tcp(listener),
            max_concurrent: max_concurrent.max(1),
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                registry: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
                worker_exe: worker_exe.into(),
                default_heartbeat_ms: DEFAULT_HEARTBEAT_MS,
            }),
        })
    }

    /// Override the heartbeat interval armed on jobs that did not set
    /// one (default [`DEFAULT_HEARTBEAT_MS`]; 0 disables the defaulting
    /// entirely). Call before [`Server::run`].
    pub fn with_default_heartbeat(mut self, ms: u64) -> Server {
        Arc::get_mut(&mut self.shared)
            .expect("set default heartbeat before Server::run")
            .default_heartbeat_ms = ms;
        self
    }

    /// The address clients connect to (`unix:<path>` or `tcp:<addr>`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Serve until `stop` becomes true (typically the SIGTERM flag from
    /// [`install_term_handler`]). On shutdown: cancels every job —
    /// which stops their masters at the next round boundary and reaps
    /// their worker processes — drains the runner pool, and returns.
    pub fn run(&mut self, stop: &AtomicBool) {
        let runners: Vec<_> = (0..self.max_concurrent)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("pts-serve-run{i}"))
                    .spawn(move || runner_loop(shared))
                    .expect("spawn job runner")
            })
            .collect();

        let nonblocking = match &self.listener {
            ServeListener::Unix(l, _) => l.set_nonblocking(true),
            ServeListener::Tcp(l) => l.set_nonblocking(true),
        };
        if nonblocking.is_err() {
            stop.store(true, Ordering::Release);
        }

        let mut next_conn: u64 = 1;
        while !stop.load(Ordering::Acquire) {
            let accepted: std::io::Result<Stream> = match &self.listener {
                ServeListener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
                ServeListener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            };
            match accepted {
                Ok(stream) => {
                    let conn = next_conn;
                    next_conn += 1;
                    let shared = Arc::clone(&self.shared);
                    let _ = std::thread::Builder::new()
                        .name(format!("pts-serve-conn{conn}"))
                        .spawn(move || client_loop(shared, stream, conn));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(_) => break,
            }
        }

        // Graceful shutdown: every running master stops at its next
        // round boundary (its engine then reaps its children), queued
        // jobs never start, runners drain.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cancel_all();
        self.shared.available.notify_all();
        for r in runners {
            let _ = r.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let ServeListener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Per-connection reader: accepts submissions and cancellations until the
/// client disconnects; a disconnect cancels everything it submitted.
fn client_loop(shared: Arc<Shared>, stream: Stream, conn: u64) {
    static NEXT_JOB: AtomicU32 = AtomicU32::new(1);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut stream = stream;
    // Poll the stream so a server shutdown unblocks this thread; a
    // buffered parser keeps partial frames intact across poll ticks.
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match std::io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => break, // client hung up
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        // Drain complete frames.
        while buf.len() >= 4 {
            let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
            if buf.len() < 4 + len {
                break;
            }
            let body: Vec<u8> = buf.drain(..4 + len).skip(4).collect();
            let Ok((version, k, payload)) = parse_client_frame(&body) else {
                continue;
            };
            match k {
                kind::SUBMIT => match JobRequest::decode_versioned(payload, version) {
                    Ok(req) => {
                        let id = NEXT_JOB.fetch_add(1, Ordering::Relaxed);
                        let mut ctl = RunControl::unlimited();
                        if req.budget_ms > 0 {
                            ctl = ctl.with_deadline(req.budget_ms as f64 / 1000.0);
                        }
                        shared
                            .registry
                            .lock()
                            .unwrap()
                            .insert(id, (conn, ctl.clone()));
                        shared.queue.lock().unwrap().push_back(Job {
                            id,
                            req,
                            ctl,
                            writer: Arc::clone(&writer),
                            attempt: 0,
                            not_before: Instant::now(),
                        });
                        shared.available.notify_one();
                        let mut ack = Vec::new();
                        wire::put_u32(&mut ack, id);
                        let _ =
                            write_client_frame(&mut *writer.lock().unwrap(), kind::ACCEPTED, &ack);
                    }
                    Err(e) => {
                        let mut payload = Vec::new();
                        wire::put_u32(&mut payload, 0);
                        put_str(&mut payload, &format!("bad submit: {e}"));
                        let _ =
                            write_client_frame(&mut *writer.lock().unwrap(), kind::ERROR, &payload);
                    }
                },
                kind::CANCEL => {
                    let mut r = WireReader::new(payload);
                    if let Ok(job) = r.u32() {
                        shared.cancel_job(job);
                    }
                }
                _ => {}
            }
        }
    }
    // Disconnect: whatever this client had queued or running stops.
    shared.cancel_conn(conn);
}

/// Job-runner thread: takes ready jobs FIFO (skipping jobs still inside
/// their retry backoff) and runs each attempt; a retryable failure puts
/// the job back in the queue instead of finishing it.
fn runner_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                let now = Instant::now();
                if let Some(pos) = queue.iter().position(|j| j.not_before <= now) {
                    break queue.remove(pos);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                // The 200 ms tick doubles as the backoff-expiry poll.
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap();
                queue = guard;
            }
        };
        let Some(job) = job else { return };
        let id = job.id;
        match run_job(&shared, job) {
            JobOutcome::Done => {
                shared.registry.lock().unwrap().remove(&id);
            }
            JobOutcome::Requeue(job) => {
                let job = *job;
                // Registry entry survives: the job is still cancellable
                // (and owned by its connection) while it backs off.
                shared.queue.lock().unwrap().push_back(job);
                shared.available.notify_one();
            }
        }
    }
}

/// What a single attempt did to its job. The boxed variant keeps the
/// enum pointer-sized (`Job` carries the full request).
enum JobOutcome {
    /// Final frame sent; drop the registry entry.
    Done,
    /// Attempt failed retryably; the job goes back in the queue.
    Requeue(Box<Job>),
}

/// Capped exponential backoff: 250 ms doubling per restart, 5 s ceiling.
fn retry_backoff(restarts: u32) -> Duration {
    Duration::from_millis(250u64.saturating_mul(1 << restarts.min(5)).min(5_000))
}

/// The config an attempt actually runs with: a submission that left
/// `heartbeat_ms` at 0 inherits the daemon's default so hung workers are
/// excused by the staleness monitor instead of wedging a runner slot.
/// An explicit client value (or a 0 daemon default) passes through
/// untouched.
fn effective_config(req: &PtsConfig, default_heartbeat_ms: u64) -> PtsConfig {
    let mut cfg = req.clone();
    if cfg.heartbeat_ms == 0 {
        cfg.heartbeat_ms = default_heartbeat_ms;
    }
    cfg
}

fn run_job(shared: &Shared, mut job: Job) -> JobOutcome {
    let job_id = job.id;
    let writer = Arc::clone(&job.writer);
    let send_error = |message: String| {
        let mut payload = Vec::new();
        wire::put_u32(&mut payload, job_id);
        put_str(&mut payload, &message);
        let _ = write_client_frame(&mut *writer.lock().unwrap(), kind::ERROR, &payload);
    };
    if job.ctl.is_cancelled() {
        // Cancelled while queued: report without running anything.
        let result = JobResult {
            job: job.id,
            best_cost: f64::NAN,
            initial_cost: f64::NAN,
            rounds: 0,
            cancelled: true,
        };
        let _ = write_client_frame(
            &mut *job.writer.lock().unwrap(),
            kind::RESULT,
            &result.encode(),
        );
        return JobOutcome::Done;
    }
    let cfg = effective_config(&job.req.cfg, shared.default_heartbeat_ms);
    if let Err(e) = cfg.validate() {
        // Deterministic failure — retrying cannot help.
        send_error(format!("invalid config: {e}"));
        return JobOutcome::Done;
    }
    let progress_writer = Arc::clone(&job.writer);
    let ctl = job.ctl.clone().with_progress(Arc::new(move |global, best| {
        let mut payload = Vec::new();
        wire::put_u32(&mut payload, job_id);
        wire::put_u32(&mut payload, global);
        wire::put_f64(&mut payload, best);
        let _ = write_client_frame(
            &mut *progress_writer.lock().unwrap(),
            kind::PROGRESS,
            &payload,
        );
    }));
    let engine = ProcEngine::new(&shared.worker_exe).with_control(ctl.clone());

    let ran = match &job.req.spec {
        JobDomainSpec::QapRandom { n, seed } => {
            let domain = crate::qap_domain::QapDomain::random(*n as usize, *seed);
            run_one(&engine, &cfg, domain)
        }
        JobDomainSpec::Bench { name } => match pts_netlist::benchmarks::by_name(name) {
            Some(netlist) => {
                let domain =
                    crate::placement_problem::PlacementDomain::new(Arc::new(netlist), &cfg);
                run_one(&engine, &cfg, domain)
            }
            None => Err(format!("unknown benchmark {name:?}")),
        },
        JobDomainSpec::NetlistText { text } => match pts_netlist::format::from_text(text) {
            Ok(netlist) => {
                let domain =
                    crate::placement_problem::PlacementDomain::new(Arc::new(netlist), &cfg);
                run_one(&engine, &cfg, domain)
            }
            Err(e) => Err(format!("bad netlist: {e:?}")),
        },
    };
    // A crashed attempt (engine error) or a degraded one (worker ranks
    // died mid-run) is retried while the restart budget and the job's
    // own control allow it.
    let failed = match &ran {
        Err(_) => true,
        Ok((_, _, _, dead_ranks)) => !dead_ranks.is_empty(),
    };
    if failed && !ctl.is_cancelled() && job.attempt < job.req.max_restarts {
        let restart = job.attempt + 1;
        let mut payload = Vec::new();
        wire::put_u32(&mut payload, job_id);
        wire::put_u32(&mut payload, restart);
        let _ = write_client_frame(&mut *job.writer.lock().unwrap(), kind::RETRYING, &payload);
        job.not_before = Instant::now() + retry_backoff(job.attempt);
        job.attempt = restart;
        return JobOutcome::Requeue(Box::new(job));
    }
    match ran {
        Ok((_, _, _, dead_ranks))
            if !dead_ranks.is_empty() && job.req.max_restarts > 0 && !ctl.is_cancelled() =>
        {
            // The client asked for clean runs (a restart budget) and
            // never got one: exhausting the budget is a failure, not a
            // quietly-degraded result.
            send_error(format!(
                "{} worker rank(s) died mid-run; restart budget exhausted after {} attempts",
                dead_ranks.len(),
                job.attempt + 1,
            ));
        }
        Ok((best_cost, initial_cost, rounds, _dead_ranks)) => {
            // With no restart budget (or a cancelled control), a
            // degraded completion is delivered truthfully — the quorum
            // machinery kept the search sound over the surviving ranks.
            let result = JobResult {
                job: job.id,
                best_cost,
                initial_cost,
                rounds,
                cancelled: ctl.is_cancelled() || rounds < job.req.cfg.global_iters,
            };
            let _ = write_client_frame(
                &mut *job.writer.lock().unwrap(),
                kind::RESULT,
                &result.encode(),
            );
        }
        Err(message) if job.attempt > 0 => {
            send_error(format!("{message} (after {} attempts)", job.attempt + 1));
        }
        Err(message) => send_error(message),
    }
    JobOutcome::Done
}

/// Freeze, execute, reduce: returns (best, initial, completed rounds,
/// ranks lost mid-run — empty on a clean attempt).
fn run_one<D: ProcDomain>(
    engine: &ProcEngine,
    cfg: &PtsConfig,
    domain: D,
) -> Result<(f64, f64, u32, Vec<usize>), String>
where
    D::Problem: crate::wire::WireProblem,
{
    let initial = domain.initial(cfg.seed);
    let domain = domain.freeze(&initial);
    let output = engine
        .try_execute(cfg, &domain, initial)
        .map_err(|e| e.to_string())?;
    Ok((
        output.outcome.best_cost,
        output.outcome.initial_cost,
        output.outcome.best_per_global_iter.len() as u32,
        output.report.dead_ranks,
    ))
}

static TERM: AtomicBool = AtomicBool::new(false);
static TERM_TICKS: AtomicU64 = AtomicU64::new(0);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
    TERM_TICKS.fetch_add(1, Ordering::SeqCst);
}

// Hand-rolled libc binding, matching the repo's offline-FFI precedent in
// `pts_util::cputime` (no libc crate in the dependency set).
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The flag [`install_term_handler`] flips on SIGTERM/SIGINT — pass it
/// to [`Server::run`].
pub fn term_flag() -> &'static AtomicBool {
    &TERM
}

/// Install SIGTERM + SIGINT handlers that flip [`term_flag`] — the
/// daemon's graceful-shutdown trigger.
pub fn install_term_handler() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_request_roundtrips() {
        for spec in [
            JobDomainSpec::QapRandom { n: 12, seed: 7 },
            JobDomainSpec::Bench {
                name: "chain16".into(),
            },
            JobDomainSpec::NetlistText {
                text: "circuit x\n".into(),
            },
        ] {
            let req = JobRequest {
                cfg: PtsConfig {
                    n_tsw: 3,
                    seed: 11,
                    ..PtsConfig::default()
                },
                spec,
                budget_ms: 2500,
                max_restarts: 3,
            };
            let decoded = JobRequest::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn job_result_roundtrips() {
        let result = JobResult {
            job: 4,
            best_cost: 123.5,
            initial_cost: 200.0,
            rounds: 9,
            cancelled: true,
        };
        assert_eq!(JobResult::decode(&result.encode()).unwrap(), result);
    }

    #[test]
    fn retry_backoff_doubles_then_caps() {
        assert_eq!(retry_backoff(0), Duration::from_millis(250));
        assert_eq!(retry_backoff(1), Duration::from_millis(500));
        assert_eq!(retry_backoff(4), Duration::from_millis(4000));
        assert_eq!(retry_backoff(5), Duration::from_millis(5000));
        assert_eq!(retry_backoff(40), Duration::from_millis(5000));
    }

    #[test]
    fn client_frame_version_enforced() {
        let mut out = Vec::new();
        write_client_frame(&mut out, kind::ACCEPTED, &[1, 0, 0, 0]).unwrap();
        let mut r = &out[..];
        let body = wire::read_frame(&mut r).unwrap().unwrap();
        let (version, k, payload) = parse_client_frame(&body).unwrap();
        assert_eq!(version, SERVE_VERSION);
        assert_eq!(k, kind::ACCEPTED);
        assert_eq!(payload, &[1, 0, 0, 0]);
        // The previous protocol version is still accepted...
        let mut v1 = body.clone();
        v1[0] = 1;
        assert_eq!(parse_client_frame(&v1).map(|(v, _, _)| v), Ok(1));
        // ...anything else is a typed mismatch.
        let mut bad = body.clone();
        bad[0] = 99;
        assert_eq!(
            parse_client_frame(&bad).err(),
            Some(WireError::VersionMismatch {
                got: 99,
                want: SERVE_VERSION
            })
        );
    }

    #[test]
    fn v1_submit_decodes_with_portfolio_defaults() {
        // A v1 SUBMIT payload: the v1 config block (current encoding
        // minus the 9-byte aspiration + portfolio tail — default config,
        // so the tail is exactly 9 bytes), then budget/restarts/spec.
        let req = JobRequest {
            cfg: PtsConfig::default(),
            spec: JobDomainSpec::QapRandom { n: 8, seed: 3 },
            budget_ms: 1000,
            max_restarts: 1,
        };
        let mut cfg_v2 = Vec::new();
        wire::put_config(&req.cfg, &mut cfg_v2);
        let mut payload = cfg_v2[..cfg_v2.len() - 9].to_vec();
        wire::put_u64(&mut payload, req.budget_ms);
        wire::put_u32(&mut payload, req.max_restarts);
        payload.push(0);
        wire::put_u32(&mut payload, 8);
        wire::put_u64(&mut payload, 3);
        let decoded = JobRequest::decode_versioned(&payload, 1).unwrap();
        assert_eq!(decoded, req);
        // An out-of-window version is a typed error, not a panic.
        assert_eq!(
            JobRequest::decode_versioned(&payload, 7).err(),
            Some(WireError::VersionMismatch {
                got: 7,
                want: SERVE_VERSION
            })
        );
    }

    #[test]
    fn default_heartbeat_applies_only_when_unset() {
        let cfg = PtsConfig::default();
        assert_eq!(cfg.heartbeat_ms, 0, "library default stays off");
        assert_eq!(effective_config(&cfg, 500).heartbeat_ms, 500);
        assert_eq!(effective_config(&cfg, 0).heartbeat_ms, 0);
        let explicit = PtsConfig {
            heartbeat_ms: 125,
            ..PtsConfig::default()
        };
        assert_eq!(effective_config(&explicit, 500).heartbeat_ms, 125);
    }
}
