//! Explicit wire codec for [`PtsMsg`]: hand-rolled, versioned, and
//! byte-exact against the [`PtsMsg::wire_size`] model.
//!
//! Every transport before this one moved messages by Rust value (channel
//! sends, simulated mailboxes); `wire_size()` was purely an *accounting*
//! model feeding the virtual cluster's bandwidth charges. The socket
//! transport ([`crate::socket`]) finally puts messages on a real byte
//! stream, and this module is its codec — with one deliberate design
//! constraint: **an encoded message occupies exactly `wire_size()`
//! bytes**. The model is the format, not an estimate. (The golden virtual
//! timelines pinned in `tests/determinism.rs` depend on `wire_size()`, so
//! the codec was shaped to the model rather than the model to the codec.)
//! The only bytes on a socket *not* counted by `wire_size()` are the
//! 4-byte length prefix framing each message — see [`FRAME_LEN_BYTES`].
//!
//! # Message layout
//!
//! Every message starts with a 32-byte header (all integers little-endian):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 1    | codec version ([`WIRE_VERSION`]) |
//! | 1      | 1    | variant tag ([`tag` constants](self)) |
//! | 2      | 1    | snapshot-payload kind: 0 none, 1 full, 2 delta |
//! | 3      | 1    | tabu-payload kind: 0 full list, 1 delta (broadcasts); strategy id (`GroupReport`); 0 elsewhere |
//! | 4      | 4    | destination rank (router addressing) |
//! | 8      | 4    | origin index (`tsw` / `shard` / `clw` field; strategy id on broadcasts) |
//! | 12     | 4    | aux count (tabu entries or moves; strategy id on `Investigate`) |
//! | 16     | 8    | sequence (`global`, `seq`) |
//! | 24     | 8    | cost (`f64` bits) |
//!
//! The variant-specific body follows, sized so header + body equals
//! `wire_size()` exactly; where the model charges legacy headroom (the
//! `Init` +64 run-constant charge, `Proposal`'s +16, the `Report` /
//! `GroupReport` stat tails) the encoder emits explicit tail blocks of
//! exactly those widths. Three numeric narrowings are inherent to the
//! model's byte widths and are saturating on encode: tabu tenures
//! (`u64 → u32`), trace-point iterations (`u64 → u32`), and move/index
//! fields (`usize → u32`). All are far below the narrow limit in any real
//! run (tenures are tens, iterations bounded by `global × local` iters,
//! indices by the domain size).
//!
//! # Decode context
//!
//! Snapshots are encoded at their `wire_bytes()` density, which for some
//! domains drops run-constant structure — a [`Placement`] travels as 4
//! bytes per cell and its [`Layout`] is *not* on the wire. The
//! [`WireProblem::Ctx`] associated type carries that structure; it is
//! shipped once per connection in the rank-setup frame
//! ([`crate::proc`]), never per message.
//!
//! [`Placement`]: pts_place::placement::Placement
//! [`Layout`]: pts_place::layout::Layout

use crate::domain::{DeltaOf, PtsProblem};
use crate::messages::{PtsMsg, SnapshotPayload, TabuEntries, TabuPayload};
use pts_tabu::search::SearchStats;
use pts_tabu::trace::TracePoint;
use std::cmp::Ordering;
use std::sync::Arc;

/// Codec version stamped into every frame header. The decoder also
/// accepts frames back to [`MIN_WIRE_VERSION`] (older fields default);
/// anything outside that window fails with
/// [`WireError::VersionMismatch`].
///
/// Version history:
/// * 1 — initial socket codec.
/// * 2 — portfolio search: strategy ids ride previously-zero header
///   bytes (`Broadcast`/`GroupBroadcast` origin, `Investigate` aux,
///   `GroupReport` header byte 3), `GroupReport` carries
///   quality-per-virtual-second in its formerly reserved tail `u64`, and
///   the config block grows an aspiration + portfolio tail. No frame
///   changes size, so v1 frames decode as v2 with all-default strategy
///   fields.
pub const WIRE_VERSION: u8 = 2;

/// Oldest frame version this codec still decodes.
pub const MIN_WIRE_VERSION: u8 = 1;

/// Is `v` a version this codec decodes?
fn version_ok(v: u8) -> bool {
    (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&v)
}

/// Bytes of length prefix framing each message on a stream — the only
/// per-message wire overhead not counted by [`PtsMsg::wire_size`].
pub const FRAME_LEN_BYTES: usize = 4;

/// Fixed message-header bytes (mirrors the model's `HDR` charge).
const HDR: usize = 32;
/// Model bytes per tabu entry: 8-byte attribute + `u32` tenure.
const TABU_ENTRY: usize = 12;
/// Model bytes per trace point: `f64` time + `u32` iter + `f64` cost.
const TRACE_POINT: usize = 20;
/// Model bytes per elementary move: two `u32` indices.
const MOVE: usize = 8;
/// Delta-payload header: `u32` base sequence + 4 reserved bytes.
const DELTA_HDR: usize = 8;
/// Tabu-delta tail: `u32` base sequence + `u32` removed count + `u64`
/// uniform aging decrement. Written *after* the removed attributes so the
/// decoder can size the variable sections from the end of the body.
const TABU_DELTA_TAIL: usize = 16;
/// Model bytes per bare tabu attribute (a removed-entry marker).
const TABU_ATTR: usize = 8;

/// Variant tags (header offset 1).
mod tag {
    pub const INIT: u8 = 0;
    pub const BROADCAST: u8 = 1;
    pub const FORCE_REPORT: u8 = 2;
    pub const REPORT: u8 = 3;
    pub const GROUP_REPORT: u8 = 4;
    pub const GROUP_BROADCAST: u8 = 5;
    pub const ADOPT_STATE: u8 = 6;
    pub const INVESTIGATE: u8 = 7;
    pub const CUT_SHORT: u8 = 8;
    pub const PROPOSAL: u8 = 9;
    pub const APPLY_MOVES: u8 = 10;
    pub const STOP: u8 = 11;
    pub const DOWN: u8 = 12;
    /// Socket-layer liveness beacon. Never surfaces as a [`PtsMsg`]: the
    /// router consumes it to refresh the sender's last-seen clock, and
    /// transports drop it on read. Kept out of the protocol enum so the
    /// `wire_size` model and the virtual engines are untouched.
    pub const HEARTBEAT: u8 = 13;
}

/// Why a buffer failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame's version byte is outside the
    /// [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] window this codec decodes.
    VersionMismatch {
        /// Version byte found in the frame header.
        got: u8,
        /// Newest version this codec speaks (always [`WIRE_VERSION`]).
        want: u8,
    },
    /// Unknown variant tag or payload kind.
    Tag(u8),
    /// The buffer ended before the structure it claims to hold.
    Truncated,
    /// Counts/sizes in the frame are mutually inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::VersionMismatch { got, want } => {
                write!(f, "wire version {got} (this codec speaks {want})")
            }
            WireError::Tag(t) => write!(f, "unknown wire tag {t}"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor over a received byte buffer with bounds-checked primitive reads.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Consume a little-endian `f64` (bit pattern).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its little-endian bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Saturating `usize → u32` narrowing for index fields whose model width
/// is 4 bytes.
fn narrow(v: usize) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// A problem whose protocol payloads (snapshots, deltas, moves, tabu
/// attributes) have an explicit byte encoding at exactly the densities the
/// [`PtsMsg::wire_size`] model charges.
///
/// Contract (checked by the `tests/wire_codec.rs` properties):
///
/// * `put_snapshot` emits exactly `snapshot.wire_bytes()` bytes;
/// * `put_delta` emits exactly `delta.wire_bytes()` bytes;
/// * `put_move` emits exactly 8 bytes; `put_attr` exactly 8 bytes;
/// * every `get_*` inverts its `put_*`.
pub trait WireProblem: PtsProblem {
    /// Run-constant decode context a snapshot encoding does not carry
    /// (e.g. the placement [`Layout`](pts_place::layout::Layout));
    /// shipped once per connection in the rank-setup frame, `()` when
    /// snapshots are self-describing.
    type Ctx: Clone + Send + Sync + 'static;

    /// Derive the decode context from a solution snapshot.
    fn ctx_of(snapshot: &Self::Snapshot) -> Self::Ctx;

    /// Encode the context (setup frame only; not part of any message's
    /// `wire_size` budget).
    fn put_ctx(ctx: &Self::Ctx, out: &mut Vec<u8>);

    /// Decode a context written by [`WireProblem::put_ctx`].
    fn get_ctx(r: &mut WireReader<'_>) -> Result<Self::Ctx, WireError>;

    /// Encode a snapshot at exactly `snapshot.wire_bytes()` bytes.
    fn put_snapshot(snapshot: &Self::Snapshot, out: &mut Vec<u8>);

    /// Decode a snapshot occupying exactly `nbytes` bytes.
    fn get_snapshot(
        r: &mut WireReader<'_>,
        nbytes: usize,
        ctx: &Self::Ctx,
    ) -> Result<Self::Snapshot, WireError>;

    /// Encode a delta at exactly `delta.wire_bytes()` bytes.
    fn put_delta(delta: &DeltaOf<Self>, out: &mut Vec<u8>);

    /// Decode a delta occupying exactly `nbytes` bytes.
    fn get_delta(r: &mut WireReader<'_>, nbytes: usize) -> Result<DeltaOf<Self>, WireError>;

    /// Encode one elementary move in exactly 8 bytes.
    fn put_move(mv: &Self::Move, out: &mut Vec<u8>);

    /// Decode one elementary move.
    fn get_move(r: &mut WireReader<'_>) -> Result<Self::Move, WireError>;

    /// Encode one tabu attribute in exactly 8 bytes.
    fn put_attr(attr: &Self::Attribute, out: &mut Vec<u8>);

    /// Decode one tabu attribute.
    fn get_attr(r: &mut WireReader<'_>) -> Result<Self::Attribute, WireError>;
}

impl WireProblem for pts_tabu::qap::Qap {
    /// QAP assignments are self-describing (length = bytes / 8).
    type Ctx = ();

    fn ctx_of(_snapshot: &Self::Snapshot) {}

    fn put_ctx(_ctx: &(), _out: &mut Vec<u8>) {}

    fn get_ctx(_r: &mut WireReader<'_>) -> Result<(), WireError> {
        Ok(())
    }

    fn put_snapshot(snapshot: &Self::Snapshot, out: &mut Vec<u8>) {
        for &loc in snapshot.as_slice() {
            put_u64(out, loc as u64);
        }
    }

    fn get_snapshot(
        r: &mut WireReader<'_>,
        nbytes: usize,
        _ctx: &(),
    ) -> Result<Self::Snapshot, WireError> {
        if !nbytes.is_multiple_of(8) {
            return Err(WireError::Malformed("QAP snapshot bytes not entry-aligned"));
        }
        let n = nbytes / 8;
        let mut loc_of = Vec::with_capacity(n);
        for _ in 0..n {
            loc_of.push(r.u64()? as usize);
        }
        Ok(pts_tabu::qap::QapAssignment::new(loc_of))
    }

    fn put_delta(delta: &DeltaOf<Self>, out: &mut Vec<u8>) {
        for &(facility, location) in delta.changes() {
            put_u32(out, facility);
            put_u32(out, location);
        }
    }

    fn get_delta(r: &mut WireReader<'_>, nbytes: usize) -> Result<DeltaOf<Self>, WireError> {
        if !nbytes.is_multiple_of(8) {
            return Err(WireError::Malformed("QAP delta bytes not entry-aligned"));
        }
        let n = nbytes / 8;
        let mut changes = Vec::with_capacity(n);
        for _ in 0..n {
            changes.push((r.u32()?, r.u32()?));
        }
        Ok(crate::qap_domain::QapDelta::new(changes))
    }

    fn put_move(mv: &Self::Move, out: &mut Vec<u8>) {
        put_u32(out, narrow(mv.0));
        put_u32(out, narrow(mv.1));
    }

    fn get_move(r: &mut WireReader<'_>) -> Result<Self::Move, WireError> {
        Ok((r.u32()? as usize, r.u32()? as usize))
    }

    fn put_attr(attr: &Self::Attribute, out: &mut Vec<u8>) {
        put_u32(out, attr.0);
        put_u32(out, attr.1);
    }

    fn get_attr(r: &mut WireReader<'_>) -> Result<Self::Attribute, WireError> {
        Ok((r.u32()?, r.u32()?))
    }
}

impl WireProblem for crate::placement_problem::PlacementProblem {
    /// A placement travels as 4 bytes per cell; the grid it lives on does
    /// not fit that density, so the [`pts_place::layout::Layout`] rides
    /// the setup frame instead.
    type Ctx = pts_place::layout::Layout;

    fn ctx_of(snapshot: &Self::Snapshot) -> Self::Ctx {
        snapshot.layout().clone()
    }

    fn put_ctx(ctx: &Self::Ctx, out: &mut Vec<u8>) {
        put_u64(out, ctx.num_rows() as u64);
        put_u64(out, ctx.num_cols() as u64);
        put_f64(out, ctx.row_height());
        put_f64(out, ctx.site_pitch());
    }

    fn get_ctx(r: &mut WireReader<'_>) -> Result<Self::Ctx, WireError> {
        let rows = r.u64()? as usize;
        let cols = r.u64()? as usize;
        let row_height = r.f64()?;
        let site_pitch = r.f64()?;
        if rows == 0
            || cols == 0
            || row_height.partial_cmp(&0.0) != Some(Ordering::Greater)
            || site_pitch.partial_cmp(&0.0) != Some(Ordering::Greater)
        {
            return Err(WireError::Malformed("degenerate layout"));
        }
        Ok(pts_place::layout::Layout::new(
            rows, cols, row_height, site_pitch,
        ))
    }

    fn put_snapshot(snapshot: &Self::Snapshot, out: &mut Vec<u8>) {
        for c in 0..snapshot.num_cells() {
            put_u32(out, snapshot.slot_of(pts_netlist::CellId(c as u32)).0);
        }
    }

    fn get_snapshot(
        r: &mut WireReader<'_>,
        nbytes: usize,
        ctx: &Self::Ctx,
    ) -> Result<Self::Snapshot, WireError> {
        if !nbytes.is_multiple_of(4) {
            return Err(WireError::Malformed("placement bytes not slot-aligned"));
        }
        let n = nbytes / 4;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(pts_place::layout::SlotId(r.u32()?));
        }
        pts_place::placement::Placement::from_slot_assignment(ctx.clone(), slots)
            .map_err(|_| WireError::Malformed("placement is not a bijection"))
    }

    fn put_delta(delta: &DeltaOf<Self>, out: &mut Vec<u8>) {
        for &(cell, slot) in delta.moves() {
            put_u32(out, cell.0);
            put_u32(out, slot.0);
        }
    }

    fn get_delta(r: &mut WireReader<'_>, nbytes: usize) -> Result<DeltaOf<Self>, WireError> {
        if !nbytes.is_multiple_of(8) {
            return Err(WireError::Malformed(
                "placement delta bytes not entry-aligned",
            ));
        }
        let n = nbytes / 8;
        let mut moves = Vec::with_capacity(n);
        for _ in 0..n {
            moves.push((
                pts_netlist::CellId(r.u32()?),
                pts_place::layout::SlotId(r.u32()?),
            ));
        }
        Ok(crate::placement_problem::PlacementDelta::new(moves))
    }

    fn put_move(mv: &Self::Move, out: &mut Vec<u8>) {
        put_u32(out, mv.0 .0);
        put_u32(out, mv.1 .0);
    }

    fn get_move(r: &mut WireReader<'_>) -> Result<Self::Move, WireError> {
        Ok((pts_netlist::CellId(r.u32()?), pts_netlist::CellId(r.u32()?)))
    }

    fn put_attr(attr: &Self::Attribute, out: &mut Vec<u8>) {
        put_u32(out, attr.0);
        put_u32(out, attr.1);
    }

    fn get_attr(r: &mut WireReader<'_>) -> Result<Self::Attribute, WireError> {
        Ok((r.u32()?, r.u32()?))
    }
}

/// What the header says about the snapshot payload body.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PayloadKind {
    None,
    Full,
    Delta,
}

impl PayloadKind {
    fn of<P: PtsProblem>(p: &SnapshotPayload<P>) -> PayloadKind {
        if p.is_delta() {
            PayloadKind::Delta
        } else {
            PayloadKind::Full
        }
    }

    fn byte(self) -> u8 {
        match self {
            PayloadKind::None => 0,
            PayloadKind::Full => 1,
            PayloadKind::Delta => 2,
        }
    }

    fn from_byte(b: u8) -> Result<PayloadKind, WireError> {
        match b {
            0 => Ok(PayloadKind::None),
            1 => Ok(PayloadKind::Full),
            2 => Ok(PayloadKind::Delta),
            other => Err(WireError::Tag(other)),
        }
    }
}

#[allow(clippy::too_many_arguments)] // one parameter per fixed header field
fn put_header(
    out: &mut Vec<u8>,
    variant: u8,
    payload: PayloadKind,
    dst: u32,
    origin: u32,
    aux: u32,
    seq: u64,
    cost: f64,
) {
    out.push(WIRE_VERSION);
    out.push(variant);
    out.push(payload.byte());
    out.push(0);
    put_u32(out, dst);
    put_u32(out, origin);
    put_u32(out, aux);
    put_u64(out, seq);
    put_f64(out, cost);
}

fn put_payload<P: WireProblem>(payload: &SnapshotPayload<P>, out: &mut Vec<u8>) {
    match payload {
        SnapshotPayload::Full(s) => P::put_snapshot(s, out),
        SnapshotPayload::Delta { base_seq, delta } => {
            put_u32(out, *base_seq);
            put_u32(out, 0);
            P::put_delta(delta, out);
        }
    }
}

fn get_payload<P: WireProblem>(
    r: &mut WireReader<'_>,
    kind: PayloadKind,
    nbytes: usize,
    ctx: &P::Ctx,
) -> Result<SnapshotPayload<P>, WireError> {
    match kind {
        PayloadKind::None => Err(WireError::Malformed("snapshot-bearing message kind 0")),
        PayloadKind::Full => Ok(SnapshotPayload::Full(Arc::new(P::get_snapshot(
            r, nbytes, ctx,
        )?))),
        PayloadKind::Delta => {
            if nbytes < DELTA_HDR {
                return Err(WireError::Truncated);
            }
            let base_seq = r.u32()?;
            let _reserved = r.u32()?;
            Ok(SnapshotPayload::Delta {
                base_seq,
                delta: Arc::new(P::get_delta(r, nbytes - DELTA_HDR)?),
            })
        }
    }
}

fn put_tabu<P: WireProblem>(tabu: &TabuEntries<P>, out: &mut Vec<u8>) {
    for (attr, tenure) in tabu {
        P::put_attr(attr, out);
        put_u32(out, u32::try_from(*tenure).unwrap_or(u32::MAX));
    }
}

fn get_tabu<P: WireProblem>(r: &mut WireReader<'_>, n: usize) -> Result<TabuEntries<P>, WireError> {
    let mut tabu = Vec::with_capacity(n);
    for _ in 0..n {
        let attr = P::get_attr(r)?;
        let tenure = r.u32()? as u64;
        tabu.push((attr, tenure));
    }
    Ok(tabu)
}

/// Header aux count of a broadcast tabu payload: full entries, or delta
/// `added` entries (the removed count rides the delta tail instead).
fn tabu_aux<P: PtsProblem>(tabu: &TabuPayload<P>) -> u32 {
    match tabu {
        TabuPayload::Full(t) => narrow(t.len()),
        TabuPayload::Delta { added, .. } => narrow(added.len()),
    }
}

/// Encode a broadcast tabu payload body. Full lists emit exactly the
/// bytes the pre-delta codec did; deltas emit `added` entries, `removed`
/// attributes, then the [`TABU_DELTA_TAIL`] — tail-last so the decoder
/// can size the sections from the body end. Emits exactly
/// `tabu.wire_bytes()` bytes either way.
fn put_tabu_payload<P: WireProblem>(tabu: &TabuPayload<P>, out: &mut Vec<u8>) {
    match tabu {
        TabuPayload::Full(t) => put_tabu::<P>(t, out),
        TabuPayload::Delta {
            base_seq,
            aged,
            added,
            removed,
        } => {
            put_tabu::<P>(added, out);
            for attr in removed.iter() {
                P::put_attr(attr, out);
            }
            put_u32(out, *base_seq);
            put_u32(out, narrow(removed.len()));
            put_u64(out, *aged);
        }
    }
}

/// Decode a broadcast tabu payload occupying exactly `nbytes` bytes with
/// `aux` entries (full list) or `aux` added entries (delta).
fn get_tabu_payload<P: WireProblem>(
    r: &mut WireReader<'_>,
    delta: bool,
    aux: usize,
    nbytes: usize,
) -> Result<TabuPayload<P>, WireError> {
    if !delta {
        return Ok(TabuPayload::Full(Arc::new(get_tabu::<P>(r, aux)?)));
    }
    let n_removed = nbytes
        .checked_sub(TABU_DELTA_TAIL + TABU_ENTRY * aux)
        .filter(|rest| rest.is_multiple_of(TABU_ATTR))
        .map(|rest| rest / TABU_ATTR)
        .ok_or(WireError::Malformed("tabu delta sections disagree"))?;
    let added = get_tabu::<P>(r, aux)?;
    let mut removed = Vec::with_capacity(n_removed);
    for _ in 0..n_removed {
        removed.push(P::get_attr(r)?);
    }
    let base_seq = r.u32()?;
    if r.u32()? as usize != n_removed {
        return Err(WireError::Malformed("tabu removed counts disagree"));
    }
    let aged = r.u64()?;
    Ok(TabuPayload::Delta {
        base_seq,
        aged,
        added: Arc::new(added),
        removed: Arc::new(removed),
    })
}

fn put_trace(trace: &[TracePoint], out: &mut Vec<u8>) {
    for p in trace {
        put_f64(out, p.time);
        put_u32(out, u32::try_from(p.iter).unwrap_or(u32::MAX));
        put_f64(out, p.best_cost);
    }
}

fn get_trace(r: &mut WireReader<'_>, n: usize) -> Result<Vec<TracePoint>, WireError> {
    let mut trace = Vec::with_capacity(n);
    for _ in 0..n {
        trace.push(TracePoint {
            time: r.f64()?,
            iter: r.u32()? as u64,
            best_cost: r.f64()?,
        });
    }
    Ok(trace)
}

fn put_stats(stats: &SearchStats, out: &mut Vec<u8>) {
    put_u64(out, stats.iterations);
    put_u64(out, stats.accepted);
    put_u64(out, stats.rejected_tabu);
    put_u64(out, stats.aspirated);
    put_u64(out, stats.improved_best);
}

fn get_stats(r: &mut WireReader<'_>) -> Result<SearchStats, WireError> {
    Ok(SearchStats {
        iterations: r.u64()?,
        accepted: r.u64()?,
        rejected_tabu: r.u64()?,
        aspirated: r.u64()?,
        improved_best: r.u64()?,
    })
}

/// Encode `msg` addressed to rank `dst`. The returned buffer is exactly
/// `msg.wire_size()` bytes — the property `tests/wire_codec.rs` pins.
pub fn encode_msg<P: WireProblem>(msg: &PtsMsg<P>, dst: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(msg.wire_size() as usize);
    match msg {
        PtsMsg::Init { snapshot } => {
            put_header(&mut out, tag::INIT, PayloadKind::Full, dst, 0, 0, 0, 0.0);
            P::put_snapshot(snapshot, &mut out);
            // The model's legacy +64 charge for run-constant data that
            // historically travelled with Init; emitted as reserved bytes
            // so encoded length equals wire_size().
            out.extend_from_slice(&[0u8; 64]);
        }
        PtsMsg::Broadcast {
            global,
            snapshot,
            tabu,
            strategy,
        } => {
            put_header(
                &mut out,
                tag::BROADCAST,
                PayloadKind::of(snapshot),
                dst,
                *strategy as u32,
                tabu_aux(tabu),
                *global as u64,
                0.0,
            );
            // Header byte 3 is the tabu-payload kind (0 full, 1 delta).
            out[3] = tabu.is_delta() as u8;
            put_payload(snapshot, &mut out);
            put_tabu_payload::<P>(tabu, &mut out);
        }
        PtsMsg::ForceReport { global } => {
            put_header(
                &mut out,
                tag::FORCE_REPORT,
                PayloadKind::None,
                dst,
                0,
                0,
                *global as u64,
                0.0,
            );
        }
        PtsMsg::Report {
            tsw,
            global,
            cost,
            snapshot,
            tabu,
            trace,
            stats,
        } => {
            put_header(
                &mut out,
                tag::REPORT,
                PayloadKind::of(snapshot),
                dst,
                narrow(*tsw),
                narrow(tabu.len()),
                *global as u64,
                *cost,
            );
            put_payload(snapshot, &mut out);
            put_tabu::<P>(tabu, &mut out);
            put_trace(trace, &mut out);
            // 48-byte tail: stats (40) + tabu count + trace count.
            put_stats(stats, &mut out);
            put_u32(&mut out, narrow(tabu.len()));
            put_u32(&mut out, narrow(trace.len()));
        }
        PtsMsg::GroupReport {
            shard,
            global,
            cost,
            snapshot,
            tabu,
            trace,
            stats,
            forced,
            strategy,
            qps,
        } => {
            put_header(
                &mut out,
                tag::GROUP_REPORT,
                PayloadKind::of(snapshot),
                dst,
                narrow(*shard),
                narrow(tabu.len()),
                *global as u64,
                *cost,
            );
            // Reports never carry tabu deltas, so header byte 3 is free:
            // it carries the group's current strategy id.
            out[3] = *strategy;
            put_payload(snapshot, &mut out);
            put_tabu::<P>(tabu, &mut out);
            put_trace(trace, &mut out);
            // 64-byte tail: stats (40) + counts (8) + forced (8) +
            // qps (8, formerly reserved).
            put_stats(stats, &mut out);
            put_u32(&mut out, narrow(tabu.len()));
            put_u32(&mut out, narrow(trace.len()));
            put_u64(&mut out, *forced);
            put_f64(&mut out, *qps);
        }
        PtsMsg::GroupBroadcast {
            global,
            snapshot,
            tabu,
            strategy,
        } => {
            put_header(
                &mut out,
                tag::GROUP_BROADCAST,
                PayloadKind::of(snapshot),
                dst,
                *strategy as u32,
                tabu_aux(tabu),
                *global as u64,
                0.0,
            );
            out[3] = tabu.is_delta() as u8;
            put_payload(snapshot, &mut out);
            put_tabu_payload::<P>(tabu, &mut out);
        }
        PtsMsg::AdoptState { seq, snapshot } => {
            put_header(
                &mut out,
                tag::ADOPT_STATE,
                PayloadKind::of(snapshot),
                dst,
                0,
                0,
                *seq as u64,
                0.0,
            );
            put_payload(snapshot, &mut out);
        }
        PtsMsg::Investigate { seq, strategy } => {
            put_header(
                &mut out,
                tag::INVESTIGATE,
                PayloadKind::None,
                dst,
                0,
                *strategy as u32,
                *seq,
                0.0,
            );
        }
        PtsMsg::CutShort { seq } => {
            put_header(
                &mut out,
                tag::CUT_SHORT,
                PayloadKind::None,
                dst,
                0,
                0,
                *seq,
                0.0,
            );
        }
        PtsMsg::Proposal {
            clw,
            seq,
            moves,
            cost,
        } => {
            put_header(
                &mut out,
                tag::PROPOSAL,
                PayloadKind::None,
                dst,
                narrow(*clw),
                narrow(moves.len()),
                *seq,
                *cost,
            );
            for mv in moves {
                P::put_move(mv, &mut out);
            }
            // The model's +16 Proposal tail; reserved.
            out.extend_from_slice(&[0u8; 16]);
        }
        PtsMsg::ApplyMoves { moves } => {
            put_header(
                &mut out,
                tag::APPLY_MOVES,
                PayloadKind::None,
                dst,
                0,
                narrow(moves.len()),
                0,
                0.0,
            );
            for mv in moves {
                P::put_move(mv, &mut out);
            }
        }
        PtsMsg::Down { rank } => {
            put_header(
                &mut out,
                tag::DOWN,
                PayloadKind::None,
                dst,
                narrow(*rank),
                0,
                0,
                0.0,
            );
        }
        PtsMsg::Stop => {
            put_header(&mut out, tag::STOP, PayloadKind::None, dst, 0, 0, 0, 0.0);
        }
    }
    debug_assert_eq!(
        out.len() as u64,
        msg.wire_size(),
        "encoded {} diverges from its wire_size model",
        msg.tag()
    );
    out
}

/// Destination rank of an encoded message, readable without a full decode
/// — the router forwards raw frames on this field alone.
pub fn peek_dst(buf: &[u8]) -> Result<u32, WireError> {
    if buf.len() < HDR {
        return Err(WireError::Truncated);
    }
    if !version_ok(buf[0]) {
        return Err(WireError::VersionMismatch {
            got: buf[0],
            want: WIRE_VERSION,
        });
    }
    Ok(u32::from_le_bytes(buf[4..8].try_into().unwrap()))
}

/// Is this frame a socket-layer heartbeat? Heartbeats never decode to a
/// [`PtsMsg`]; the router and transports must drop them after noting the
/// sender is alive.
pub fn is_heartbeat(buf: &[u8]) -> bool {
    buf.len() >= 2 && version_ok(buf[0]) && buf[1] == tag::HEARTBEAT
}

/// Encode a header-only heartbeat frame from `origin`. The destination
/// field is a sentinel: the router consumes heartbeats instead of
/// forwarding them.
pub fn encode_heartbeat_frame(origin: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(HDR);
    put_header(
        &mut out,
        tag::HEARTBEAT,
        PayloadKind::None,
        u32::MAX,
        origin,
        0,
        0,
        0.0,
    );
    out
}

/// Encode a [`PtsMsg::Down`] frame for `dead_rank` addressed to `dst`,
/// without naming a problem type — byte-identical to
/// `encode_msg(&PtsMsg::Down { rank }, dst)`, so the router (which is
/// generic over nothing) can synthesize death notices on a worker EOF.
pub fn encode_down_frame(dead_rank: usize, dst: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(HDR);
    put_header(
        &mut out,
        tag::DOWN,
        PayloadKind::None,
        dst,
        narrow(dead_rank),
        0,
        0,
        0.0,
    );
    out
}

/// Decode a message encoded by [`encode_msg`]. Returns the destination
/// rank from the header along with the message.
pub fn decode_msg<P: WireProblem>(buf: &[u8], ctx: &P::Ctx) -> Result<(u32, PtsMsg<P>), WireError> {
    if buf.len() < HDR {
        return Err(WireError::Truncated);
    }
    let mut h = WireReader::new(&buf[..HDR]);
    let version = h.u8()?;
    if !version_ok(version) {
        return Err(WireError::VersionMismatch {
            got: version,
            want: WIRE_VERSION,
        });
    }
    let variant = h.u8()?;
    let kind = PayloadKind::from_byte(h.u8()?)?;
    // Header byte 3 is per-variant: the tabu-payload kind on broadcasts,
    // the strategy id on GroupReport (any value; v1 frames hold 0), and
    // reserved-zero everywhere else.
    let byte3 = h.u8()?;
    let tabu_delta = if variant == tag::GROUP_REPORT {
        false
    } else {
        match byte3 {
            0 => false,
            1 => true,
            other => return Err(WireError::Tag(other)),
        }
    };
    let dst = h.u32()?;
    let origin = h.u32()?;
    let aux = h.u32()? as usize;
    let seq = h.u64()?;
    let cost = h.f64()?;
    let body = &buf[HDR..];

    let msg = match variant {
        tag::INIT => {
            let snap_bytes = body.len().checked_sub(64).ok_or(WireError::Truncated)?;
            let mut r = WireReader::new(body);
            let snapshot = P::get_snapshot(&mut r, snap_bytes, ctx)?;
            PtsMsg::Init {
                snapshot: Arc::new(snapshot),
            }
        }
        tag::BROADCAST | tag::GROUP_BROADCAST => {
            // Full tabu body: `aux` entries. Delta body: `aux` added
            // entries + the removed attributes + the fixed tail; either
            // way, everything after the snapshot payload.
            let tabu_bytes = if tabu_delta {
                let min = TABU_DELTA_TAIL + TABU_ENTRY * aux;
                if body.len() < min {
                    return Err(WireError::Truncated);
                }
                // The removed count in the tail sizes the middle section;
                // get_tabu_payload cross-checks it against the arithmetic.
                let tail = &body[body.len() - TABU_DELTA_TAIL..];
                let n_removed = u32::from_le_bytes(tail[4..8].try_into().unwrap()) as usize;
                min + TABU_ATTR * n_removed
            } else {
                TABU_ENTRY * aux
            };
            let snap_bytes = body
                .len()
                .checked_sub(tabu_bytes)
                .ok_or(WireError::Truncated)?;
            let mut r = WireReader::new(body);
            let snapshot = get_payload::<P>(&mut r, kind, snap_bytes, ctx)?;
            let tabu = get_tabu_payload::<P>(&mut r, tabu_delta, aux, tabu_bytes)?;
            let global = seq as u32;
            // The strategy id rides the otherwise-unused origin field
            // (v1 frames always carry 0 there).
            let strategy = origin as u8;
            if variant == tag::BROADCAST {
                PtsMsg::Broadcast {
                    global,
                    snapshot,
                    tabu,
                    strategy,
                }
            } else {
                PtsMsg::GroupBroadcast {
                    global,
                    snapshot,
                    tabu,
                    strategy,
                }
            }
        }
        tag::FORCE_REPORT => PtsMsg::ForceReport { global: seq as u32 },
        tag::REPORT | tag::GROUP_REPORT => {
            let tail_len = if variant == tag::REPORT { 48 } else { 64 };
            let split = body
                .len()
                .checked_sub(tail_len)
                .ok_or(WireError::Truncated)?;
            let mut tail = WireReader::new(&body[split..]);
            let stats = get_stats(&mut tail)?;
            let n_tabu = tail.u32()? as usize;
            let n_trace = tail.u32()? as usize;
            if n_tabu != aux {
                return Err(WireError::Malformed("tabu counts disagree"));
            }
            let snap_bytes = split
                .checked_sub(TABU_ENTRY * n_tabu + TRACE_POINT * n_trace)
                .ok_or(WireError::Truncated)?;
            let mut r = WireReader::new(&body[..split]);
            let snapshot = get_payload::<P>(&mut r, kind, snap_bytes, ctx)?;
            let tabu = Arc::new(get_tabu::<P>(&mut r, n_tabu)?);
            let trace = get_trace(&mut r, n_trace)?;
            if variant == tag::REPORT {
                PtsMsg::Report {
                    tsw: origin as usize,
                    global: seq as u32,
                    cost,
                    snapshot,
                    tabu,
                    trace,
                    stats,
                }
            } else {
                let forced = tail.u64()?;
                let qps = tail.f64()?;
                PtsMsg::GroupReport {
                    shard: origin as usize,
                    global: seq as u32,
                    cost,
                    snapshot,
                    tabu,
                    trace,
                    stats,
                    forced,
                    strategy: byte3,
                    qps,
                }
            }
        }
        tag::ADOPT_STATE => {
            let mut r = WireReader::new(body);
            let snapshot = get_payload::<P>(&mut r, kind, body.len(), ctx)?;
            PtsMsg::AdoptState {
                seq: seq as u32,
                snapshot,
            }
        }
        tag::INVESTIGATE => PtsMsg::Investigate {
            seq,
            strategy: aux as u8,
        },
        tag::CUT_SHORT => PtsMsg::CutShort { seq },
        tag::PROPOSAL | tag::APPLY_MOVES => {
            let expect = MOVE * aux + if variant == tag::PROPOSAL { 16 } else { 0 };
            if body.len() < expect {
                return Err(WireError::Truncated);
            }
            let mut r = WireReader::new(body);
            let mut moves = Vec::with_capacity(aux);
            for _ in 0..aux {
                moves.push(P::get_move(&mut r)?);
            }
            if variant == tag::PROPOSAL {
                PtsMsg::Proposal {
                    clw: origin as usize,
                    seq,
                    moves,
                    cost,
                }
            } else {
                PtsMsg::ApplyMoves { moves }
            }
        }
        tag::DOWN => PtsMsg::Down {
            rank: origin as usize,
        },
        tag::STOP => PtsMsg::Stop,
        other => return Err(WireError::Tag(other)),
    };
    Ok((dst, msg))
}

/// Write one length-prefixed frame (`u32` length + body).
pub fn write_frame<W: std::io::Write>(w: &mut W, body: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(FRAME_LEN_BYTES + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

/// Read one length-prefixed frame. Returns `None` on clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; FRAME_LEN_BYTES];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let n = u32::from_le_bytes(len) as usize;
    const MAX_FRAME: usize = 256 << 20;
    if n > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Aspiration policy byte for the config block.
fn asp_byte(a: pts_tabu::aspiration::Aspiration) -> u8 {
    match a {
        pts_tabu::aspiration::Aspiration::None => 0,
        pts_tabu::aspiration::Aspiration::BestCost => 1,
    }
}

fn asp_of(b: u8) -> Result<pts_tabu::aspiration::Aspiration, WireError> {
    match b {
        0 => Ok(pts_tabu::aspiration::Aspiration::None),
        1 => Ok(pts_tabu::aspiration::Aspiration::BestCost),
        other => Err(WireError::Tag(other)),
    }
}

/// Encode a [`crate::config::PtsConfig`] (setup and job-submission
/// frames; fixed field order, not part of any message's `wire_size`).
/// Always emits the current ([`WIRE_VERSION`]) layout: the v1 field
/// order followed by the v2 aspiration + portfolio tail.
pub fn put_config(cfg: &crate::config::PtsConfig, out: &mut Vec<u8>) {
    use crate::config::{CostKind, SnapshotMode, SyncPolicy};
    let sync_byte = |s: SyncPolicy| match s {
        SyncPolicy::WaitAll => 0u8,
        SyncPolicy::HalfReport => 1,
    };
    put_u64(out, cfg.n_tsw as u64);
    put_u64(out, cfg.n_clw as u64);
    put_u32(out, cfg.global_iters);
    put_u32(out, cfg.local_iters);
    put_u64(out, cfg.search.candidates as u64);
    put_u64(out, cfg.search.depth as u64);
    put_u64(out, cfg.search.tenure);
    out.push(cfg.diversify as u8);
    put_u64(out, cfg.search.diversify_depth as u64);
    put_u64(out, cfg.search.diversify_width as u64);
    out.push(sync_byte(cfg.tsw_sync));
    out.push(sync_byte(cfg.clw_sync));
    put_f64(out, cfg.report_fraction);
    put_f64(out, cfg.alpha);
    out.push(match cfg.cost {
        CostKind::Fuzzy => 0,
        CostKind::WeightedSum => 1,
    });
    put_f64(out, cfg.beta);
    put_f64(out, cfg.goal_target_frac);
    put_f64(out, cfg.goal_zero_frac);
    for w in cfg.weights {
        put_f64(out, w);
    }
    put_u64(out, cfg.seed);
    put_u64(out, cfg.shard_fanout as u64);
    out.push(match cfg.snapshot_mode {
        SnapshotMode::Delta => 0,
        SnapshotMode::Full => 1,
    });
    out.push(cfg.differentiate_streams as u8);
    put_f64(out, cfg.work.per_trial);
    put_f64(out, cfg.work.per_commit);
    put_f64(out, cfg.work.per_tabu_check);
    put_f64(out, cfg.work.per_diversify_step);
    put_f64(out, cfg.work.per_report);
    put_f64(out, cfg.liveness_timeout);
    out.push(cfg.tabu_delta as u8);
    put_u64(out, cfg.heartbeat_ms);
    put_u64(out, cfg.reap_grace_ms);
    // v2 tail: the uniform strategy's aspiration, then the portfolio.
    out.push(asp_byte(cfg.search.aspiration));
    put_u64(out, cfg.portfolio.len() as u64);
    for s in &cfg.portfolio {
        put_u64(out, s.tenure);
        put_u64(out, s.candidates as u64);
        put_u64(out, s.depth as u64);
        put_u64(out, s.diversify_depth as u64);
        put_u64(out, s.diversify_width as u64);
        out.push(asp_byte(s.aspiration));
    }
}

/// Decode a [`crate::config::PtsConfig`] written by [`put_config`] at the
/// current [`WIRE_VERSION`]. For frames that declared an older version,
/// use [`get_config_versioned`] — the config block is *not* the last
/// thing in setup and job frames, so the decoder cannot infer the layout
/// from the bytes remaining and must be told the carrier's version.
pub fn get_config(r: &mut WireReader<'_>) -> Result<crate::config::PtsConfig, WireError> {
    get_config_versioned(r, WIRE_VERSION)
}

/// Decode a config block from a frame whose header declared `version`.
/// Version-1 blocks stop at `reap_grace_ms`; the aspiration and portfolio
/// take their defaults (best-cost aspiration, empty portfolio — exactly
/// the semantics a v1 peer ran with). Unknown versions are rejected with
/// [`WireError::VersionMismatch`], never a panic.
pub fn get_config_versioned(
    r: &mut WireReader<'_>,
    version: u8,
) -> Result<crate::config::PtsConfig, WireError> {
    use crate::config::{CostKind, PtsConfig, SearchStrategy, SnapshotMode, SyncPolicy, WorkModel};
    if !version_ok(version) {
        return Err(WireError::VersionMismatch {
            got: version,
            want: WIRE_VERSION,
        });
    }
    let sync = |b: u8| match b {
        0 => Ok(SyncPolicy::WaitAll),
        1 => Ok(SyncPolicy::HalfReport),
        other => Err(WireError::Tag(other)),
    };
    let n_tsw = r.u64()? as usize;
    let n_clw = r.u64()? as usize;
    let global_iters = r.u32()?;
    let local_iters = r.u32()?;
    let candidates = r.u64()? as usize;
    let depth = r.u64()? as usize;
    let tenure = r.u64()?;
    let diversify = r.u8()? != 0;
    let diversify_depth = r.u64()? as usize;
    let diversify_width = r.u64()? as usize;
    let mut cfg = PtsConfig {
        n_tsw,
        n_clw,
        global_iters,
        local_iters,
        search: SearchStrategy {
            candidates,
            depth,
            tenure,
            diversify_depth,
            diversify_width,
            ..SearchStrategy::default()
        },
        portfolio: Vec::new(),
        diversify,
        tsw_sync: sync(r.u8()?)?,
        clw_sync: sync(r.u8()?)?,
        report_fraction: r.f64()?,
        alpha: r.f64()?,
        cost: match r.u8()? {
            0 => CostKind::Fuzzy,
            1 => CostKind::WeightedSum,
            other => return Err(WireError::Tag(other)),
        },
        beta: r.f64()?,
        goal_target_frac: r.f64()?,
        goal_zero_frac: r.f64()?,
        weights: [r.f64()?, r.f64()?, r.f64()?],
        seed: r.u64()?,
        shard_fanout: r.u64()? as usize,
        snapshot_mode: match r.u8()? {
            0 => SnapshotMode::Delta,
            1 => SnapshotMode::Full,
            other => return Err(WireError::Tag(other)),
        },
        differentiate_streams: r.u8()? != 0,
        work: WorkModel {
            per_trial: r.f64()?,
            per_commit: r.f64()?,
            per_tabu_check: r.f64()?,
            per_diversify_step: r.f64()?,
            per_report: r.f64()?,
        },
        liveness_timeout: r.f64()?,
        tabu_delta: r.u8()? != 0,
        heartbeat_ms: r.u64()?,
        reap_grace_ms: r.u64()?,
    };
    if version >= 2 {
        cfg.search.aspiration = asp_of(r.u8()?)?;
        let n = r.u64()? as usize;
        if n > 255 {
            return Err(WireError::Malformed("portfolio longer than 255 entries"));
        }
        let mut portfolio = Vec::with_capacity(n);
        for _ in 0..n {
            let tenure = r.u64()?;
            let candidates = r.u64()? as usize;
            let depth = r.u64()? as usize;
            let diversify_depth = r.u64()? as usize;
            let diversify_width = r.u64()? as usize;
            let aspiration = asp_of(r.u8()?)?;
            portfolio.push(SearchStrategy {
                candidates,
                depth,
                tenure,
                diversify_depth,
                diversify_width,
                aspiration,
            });
        }
        cfg.portfolio = portfolio;
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_tabu::qap::{Qap, QapAssignment};

    fn roundtrip(msg: &PtsMsg<Qap>, dst: u32) -> PtsMsg<Qap> {
        let buf = encode_msg(msg, dst);
        assert_eq!(buf.len() as u64, msg.wire_size());
        assert_eq!(peek_dst(&buf).unwrap(), dst);
        let (got_dst, decoded) = decode_msg::<Qap>(&buf, &()).unwrap();
        assert_eq!(got_dst, dst);
        decoded
    }

    #[test]
    fn init_roundtrips_at_model_size() {
        let msg: PtsMsg<Qap> = PtsMsg::Init {
            snapshot: Arc::new(QapAssignment::new(vec![2, 0, 1, 3])),
        };
        match roundtrip(&msg, 7) {
            PtsMsg::Init { snapshot } => assert_eq!(snapshot.as_slice(), &[2, 0, 1, 3]),
            other => panic!("decoded {}", other.tag()),
        }
    }

    #[test]
    fn control_messages_roundtrip() {
        for (msg, expect) in [
            (PtsMsg::<Qap>::Stop, "Stop"),
            (
                PtsMsg::<Qap>::Investigate {
                    seq: 99,
                    strategy: 2,
                },
                "Investigate",
            ),
            (PtsMsg::<Qap>::CutShort { seq: 3 }, "CutShort"),
            (PtsMsg::<Qap>::ForceReport { global: 5 }, "ForceReport"),
        ] {
            assert_eq!(roundtrip(&msg, 2).tag(), expect);
        }
    }

    #[test]
    fn bad_version_is_rejected() {
        let msg: PtsMsg<Qap> = PtsMsg::Stop;
        let mut buf = encode_msg(&msg, 0);
        buf[0] = 9;
        let want = WireError::VersionMismatch {
            got: 9,
            want: WIRE_VERSION,
        };
        assert_eq!(decode_msg::<Qap>(&buf, &()).err(), Some(want.clone()));
        assert_eq!(peek_dst(&buf), Err(want));
    }

    #[test]
    fn down_frame_helper_matches_encode_msg() {
        let msg: PtsMsg<Qap> = PtsMsg::Down { rank: 17 };
        assert_eq!(encode_down_frame(17, 4), encode_msg(&msg, 4));
        match decode_msg::<Qap>(&encode_down_frame(17, 4), &()).unwrap() {
            (4, PtsMsg::Down { rank: 17 }) => {}
            other => panic!("decoded {:?}", (other.0, other.1.tag())),
        }
    }

    #[test]
    fn heartbeats_are_recognized_and_never_decode() {
        let hb = encode_heartbeat_frame(3);
        assert!(is_heartbeat(&hb));
        assert!(
            decode_msg::<Qap>(&hb, &()).is_err(),
            "heartbeats are socket-layer only"
        );
        // Every protocol message is *not* a heartbeat, and a wrong-version
        // beacon is not one either (it must fall through to the version check).
        assert!(!is_heartbeat(&encode_msg(&PtsMsg::<Qap>::Stop, 0)));
        let mut bad = encode_heartbeat_frame(3);
        bad[0] = 9;
        assert!(!is_heartbeat(&bad));
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let msg: PtsMsg<Qap> = PtsMsg::Init {
            snapshot: Arc::new(QapAssignment::new(vec![0, 1])),
        };
        let buf = encode_msg(&msg, 0);
        assert!(decode_msg::<Qap>(&buf[..buf.len() - 1], &()).is_err());
        assert!(decode_msg::<Qap>(&buf[..10], &()).is_err());
    }

    #[test]
    fn broadcast_tabu_payloads_roundtrip_at_model_size() {
        let snapshot = SnapshotPayload::Full(Arc::new(QapAssignment::new(vec![1, 0, 3, 2])));
        // Full list: the pre-delta encoding, byte-identical sizes.
        let full: PtsMsg<Qap> = PtsMsg::Broadcast {
            global: 4,
            snapshot: snapshot.clone(),
            tabu: TabuPayload::Full(Arc::new(vec![((0, 1), 5), ((2, 3), 9)])),
            strategy: 3,
        };
        match roundtrip(&full, 3) {
            PtsMsg::Broadcast {
                global,
                tabu,
                strategy,
                ..
            } => {
                assert_eq!(global, 4);
                assert_eq!(strategy, 3);
                assert!(!tabu.is_delta());
                match tabu {
                    TabuPayload::Full(t) => assert_eq!(*t, vec![((0, 1), 5), ((2, 3), 9)]),
                    TabuPayload::Delta { .. } => unreachable!(),
                }
            }
            other => panic!("decoded {}", other.tag()),
        }

        // Delta: added + removed + aged must survive the tail-last layout,
        // including the empty-sections corners.
        for (added, removed, aged) in [
            (vec![((7, 8), 6u64)], vec![(1u32, 2u32), (3, 4)], 3u64),
            (vec![], vec![], 0),
            (vec![((1, 2), 1), ((3, 4), 2)], vec![], u64::MAX),
        ] {
            let msg: PtsMsg<Qap> = PtsMsg::GroupBroadcast {
                global: 2,
                snapshot: snapshot.clone(),
                tabu: TabuPayload::Delta {
                    base_seq: 9,
                    aged,
                    added: Arc::new(added.clone()),
                    removed: Arc::new(removed.clone()),
                },
                strategy: 1,
            };
            match roundtrip(&msg, 1) {
                PtsMsg::GroupBroadcast { tabu, .. } => match tabu {
                    TabuPayload::Delta {
                        base_seq,
                        aged: got_aged,
                        added: got_added,
                        removed: got_removed,
                    } => {
                        assert_eq!(base_seq, 9);
                        assert_eq!(got_aged, aged);
                        assert_eq!(*got_added, added);
                        assert_eq!(*got_removed, removed);
                    }
                    TabuPayload::Full(_) => panic!("delta decoded as full"),
                },
                other => panic!("decoded {}", other.tag()),
            }
        }
    }

    #[test]
    fn config_roundtrips() {
        let cfg = crate::config::PtsConfig {
            n_tsw: 9,
            n_clw: 3,
            shard_fanout: 3,
            tsw_sync: crate::config::SyncPolicy::WaitAll,
            snapshot_mode: crate::config::SnapshotMode::Full,
            tabu_delta: true,
            seed: 0xDEADBEEF,
            heartbeat_ms: 250,
            reap_grace_ms: 7000,
            portfolio: vec![
                crate::config::SearchStrategy {
                    candidates: 12,
                    depth: 2,
                    tenure: 5,
                    diversify_depth: 4,
                    diversify_width: 2,
                    aspiration: pts_tabu::aspiration::Aspiration::None,
                },
                crate::config::SearchStrategy::default(),
            ],
            ..crate::config::PtsConfig::default()
        };
        let mut buf = Vec::new();
        put_config(&cfg, &mut buf);
        let decoded = get_config(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(decoded, cfg);
    }

    #[test]
    fn v1_config_decodes_with_portfolio_defaults() {
        // A v1 config block is the v2 encoding truncated before the
        // aspiration + portfolio tail (41 bytes per entry + 9 fixed).
        let cfg = crate::config::PtsConfig {
            n_tsw: 4,
            seed: 77,
            ..crate::config::PtsConfig::default()
        };
        let mut buf = Vec::new();
        put_config(&cfg, &mut buf);
        let v1 = &buf[..buf.len() - 9];
        let decoded = get_config_versioned(&mut WireReader::new(v1), 1).unwrap();
        assert_eq!(decoded, cfg, "v1 defaults: empty portfolio, best-cost");
        // A v1-declared reader must NOT consume the tail bytes.
        let mut r = WireReader::new(&buf);
        let _ = get_config_versioned(&mut r, 1).unwrap();
        assert_eq!(r.remaining(), 9);
        // Unknown versions are a typed error, not a panic.
        assert_eq!(
            get_config_versioned(&mut WireReader::new(&buf), 9).err(),
            Some(WireError::VersionMismatch {
                got: 9,
                want: WIRE_VERSION
            })
        );
    }

    #[test]
    fn frames_roundtrip_over_a_stream() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"omega").unwrap();
        let mut r = &stream[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"omega");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }
}
