//! Worker-level fault injection for the virtual-time engine.
//!
//! [`pts_vcluster::FaultPlan`] speaks the runtime's language — task ids,
//! machine indices, opaque notification messages. This module speaks the
//! *protocol's* language: "kill TSW 3 at t=40", "crash machine 2",
//! "drop every Broadcast on the master→TSW routes for a while". A
//! [`FaultSpec`] holds such worker-level events and
//! [`FaultSpec::resolve`] lowers them onto a `FaultPlan`, wiring up the
//! PVM-style death notices ([`PtsMsg::Down`]) each kill must deliver to
//! the dead worker's protocol neighbours (its parent collector and its
//! children) so the survivors can re-plan instead of waiting forever.
//!
//! [`FaultSpec::seeded`] derives a whole adversarial scenario
//! deterministically from a `u64` seed and a [`FaultMix`] — the fuzz
//! driver's generator. Same seed, same mix, same config → the same
//! events, bit for bit, so every fuzz failure is a one-line repro.
//!
//! The master (rank 0) is never killed and its machine never crashed:
//! the run's outcome lives in the master, so killing it turns every
//! scenario into the same degenerate "no result" case. The resolver
//! filters such events rather than panicking, so a seeded generator can
//! pick targets uniformly.

use crate::config::{PtsConfig, ShardChildren};
use crate::domain::PtsProblem;
use crate::messages::PtsMsg;
use pts_util::Rng;
pub use pts_vcluster::Contention;
use pts_vcluster::{FaultPlan, RouteAction, RouteFault};

/// One worker-level fault event. Times are virtual seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkerFault {
    /// Kill TSW `tsw` at time `at`; its parent and CLWs get `Down`.
    KillTsw {
        /// Virtual time of death.
        at: f64,
        /// TSW index (`0..n_tsw`).
        tsw: usize,
    },
    /// Kill CLW `clw` of TSW `tsw` at time `at`; the TSW gets `Down`.
    KillClw {
        /// Virtual time of death.
        at: f64,
        /// Owning TSW index.
        tsw: usize,
        /// CLW index within the TSW's group (`0..n_clw`).
        clw: usize,
    },
    /// Kill sub-master `shard` at time `at`; parent and children get
    /// `Down`.
    KillShard {
        /// Virtual time of death.
        at: f64,
        /// Shard index (`0..n_shards`).
        shard: usize,
    },
    /// Crash a whole machine: every hosted worker dies with notices; the
    /// machine never computes again. Skipped if it hosts the master.
    CrashMachine {
        /// Virtual time of the crash.
        at: f64,
        /// Machine index in the cluster spec.
        machine: usize,
    },
    /// Multiply a machine's speed by `factor` from `at` on.
    SlowMachine {
        /// Virtual time the slowdown starts.
        at: f64,
        /// Machine index in the cluster spec.
        machine: usize,
        /// Speed multiplier in `(0, 1]` (e.g. `0.2` = 5× slower).
        factor: f64,
    },
    /// Freeze a machine over `[at, until)`; computes resume afterwards.
    PauseMachine {
        /// Virtual time the pause starts.
        at: f64,
        /// Machine index in the cluster spec.
        machine: usize,
        /// Virtual time the machine thaws.
        until: f64,
    },
    /// Silently lose matching messages over a window.
    DropRoute {
        /// Window start (send time).
        from: f64,
        /// Window end, exclusive.
        until: f64,
        /// Sender rank filter (`None` = any).
        src: Option<usize>,
        /// Receiver rank filter (`None` = any).
        dst: Option<usize>,
    },
    /// Stall matching messages by `delay` (FIFO preserved).
    DelayRoute {
        /// Window start (send time).
        from: f64,
        /// Window end, exclusive.
        until: f64,
        /// Extra latency in virtual seconds.
        delay: f64,
        /// Sender rank filter (`None` = any).
        src: Option<usize>,
        /// Receiver rank filter (`None` = any).
        dst: Option<usize>,
    },
    /// Add seeded per-message jitter in `[0, spread)` — can reorder.
    JitterRoute {
        /// Window start (send time).
        from: f64,
        /// Window end, exclusive.
        until: f64,
        /// Maximum extra latency; actual value is seeded per message.
        spread: f64,
        /// Sender rank filter (`None` = any).
        src: Option<usize>,
        /// Receiver rank filter (`None` = any).
        dst: Option<usize>,
    },
}

/// Named families of seeded scenarios — the fuzz driver's axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultMix {
    /// Worker and machine deaths only.
    Crashes,
    /// Machine slowdowns and pauses only (everybody survives).
    Slowdowns,
    /// Message drops, delays, and reordering only.
    MessageChaos,
    /// All of the above at once.
    Mixed,
}

impl FaultMix {
    /// Every mix, in a stable order (fuzz sweeps iterate this).
    pub const ALL: [FaultMix; 4] = [
        FaultMix::Crashes,
        FaultMix::Slowdowns,
        FaultMix::MessageChaos,
        FaultMix::Mixed,
    ];

    /// Stable lowercase name (CLI value, repro lines).
    pub fn name(self) -> &'static str {
        match self {
            FaultMix::Crashes => "crashes",
            FaultMix::Slowdowns => "slowdowns",
            FaultMix::MessageChaos => "message-chaos",
            FaultMix::Mixed => "mixed",
        }
    }

    /// Parse a [`FaultMix::name`] back; `None` for anything else.
    pub fn parse(s: &str) -> Option<FaultMix> {
        FaultMix::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for FaultMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A worker-level fault scenario: events plus the seed that also drives
/// message jitter. Attach to the vt engine with
/// [`crate::VirtualEngine::with_faults`].
#[derive(Clone, Debug, Default)]
pub struct FaultSpec {
    /// The events, in no particular order (the resolver's plan sorts).
    pub events: Vec<WorkerFault>,
    /// Seed for per-message jitter and the record of how `seeded` built
    /// this spec.
    pub seed: u64,
}

impl FaultSpec {
    /// An empty scenario (injects nothing) under `seed`.
    pub fn new(seed: u64) -> FaultSpec {
        FaultSpec {
            events: Vec::new(),
            seed,
        }
    }

    /// Add one event (builder style).
    pub fn with(mut self, ev: WorkerFault) -> FaultSpec {
        self.events.push(ev);
        self
    }

    /// No events at all?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Derive a scenario deterministically from `(seed, mix)` for a run
    /// of `cfg` on `n_machines` machines, with all events scheduled
    /// inside `[0, horizon)` virtual seconds.
    ///
    /// Event *targets and times* depend only on the arguments — rerunning
    /// with the same five values rebuilds the identical spec, which is
    /// what makes a `seed=… mix=…` line a complete repro.
    pub fn seeded(
        seed: u64,
        mix: FaultMix,
        cfg: &PtsConfig,
        n_machines: usize,
        horizon: f64,
    ) -> FaultSpec {
        assert!(horizon > 0.0, "fault horizon must be positive");
        let mut spec = FaultSpec::new(seed);
        let mut rng = Rng::new(seed ^ 0x000F_A017_5EED);
        if matches!(mix, FaultMix::Crashes | FaultMix::Mixed) {
            spec.push_crashes(&mut rng.fork(1), cfg, n_machines, horizon);
        }
        if matches!(mix, FaultMix::Slowdowns | FaultMix::Mixed) {
            spec.push_slowdowns(&mut rng.fork(2), n_machines, horizon);
        }
        if matches!(mix, FaultMix::MessageChaos | FaultMix::Mixed) {
            spec.push_message_chaos(&mut rng.fork(3), cfg, horizon);
        }
        spec
    }

    fn push_crashes(&mut self, rng: &mut Rng, cfg: &PtsConfig, n_machines: usize, horizon: f64) {
        // Kill up to a third of the TSWs — enough to stress quorums
        // without routinely extinguishing the whole search.
        let max_kills = (cfg.n_tsw / 3).max(1);
        let n_kills = 1 + rng.index(max_kills);
        for tsw in rng.sample_indices(cfg.n_tsw, n_kills.min(cfg.n_tsw)) {
            let at = rng.range_f64(0.05, 0.95) * horizon;
            self.events.push(WorkerFault::KillTsw { at, tsw });
        }
        if rng.chance(0.5) {
            let at = rng.range_f64(0.05, 0.95) * horizon;
            let tsw = rng.index(cfg.n_tsw);
            let clw = rng.index(cfg.n_clw);
            self.events.push(WorkerFault::KillClw { at, tsw, clw });
        }
        if cfg.n_shards() > 0 && rng.chance(0.3) {
            let at = rng.range_f64(0.05, 0.95) * horizon;
            let shard = rng.index(cfg.n_shards());
            self.events.push(WorkerFault::KillShard { at, shard });
        }
        // A whole-machine crash (the resolver skips it if the pick hosts
        // the master).
        if n_machines > 1 && rng.chance(0.4) {
            let at = rng.range_f64(0.05, 0.95) * horizon;
            let machine = rng.index(n_machines);
            self.events.push(WorkerFault::CrashMachine { at, machine });
        }
    }

    fn push_slowdowns(&mut self, rng: &mut Rng, n_machines: usize, horizon: f64) {
        let n_slow = 1 + rng.index(n_machines.min(3));
        for machine in rng.sample_indices(n_machines, n_slow) {
            let at = rng.range_f64(0.0, 0.7) * horizon;
            let factor = rng.range_f64(0.1, 0.6);
            self.events.push(WorkerFault::SlowMachine {
                at,
                machine,
                factor,
            });
        }
        if rng.chance(0.4) {
            let machine = rng.index(n_machines);
            let at = rng.range_f64(0.1, 0.6) * horizon;
            let until = at + rng.range_f64(0.05, 0.25) * horizon;
            self.events
                .push(WorkerFault::PauseMachine { at, machine, until });
        }
    }

    fn push_message_chaos(&mut self, rng: &mut Rng, cfg: &PtsConfig, horizon: f64) {
        let n_procs = cfg.total_procs();
        let n_faults = 2 + rng.index(4);
        for _ in 0..n_faults {
            let from = rng.range_f64(0.0, 0.8) * horizon;
            let until = from + rng.range_f64(0.05, 0.3) * horizon;
            let src = rng.chance(0.5).then(|| rng.index(n_procs));
            let dst = rng.chance(0.5).then(|| rng.index(n_procs));
            let ev = match rng.index(3) {
                0 => WorkerFault::DropRoute {
                    from,
                    until,
                    src,
                    dst,
                },
                1 => WorkerFault::DelayRoute {
                    from,
                    until,
                    delay: rng.range_f64(0.02, 0.15) * horizon,
                    src,
                    dst,
                },
                _ => WorkerFault::JitterRoute {
                    from,
                    until,
                    spread: rng.range_f64(0.02, 0.1) * horizon,
                    src,
                    dst,
                },
            };
            self.events.push(ev);
        }
    }

    /// Lower the scenario onto a runtime [`FaultPlan`] for a run of `cfg`
    /// whose rank→machine map is `assignment` (the same
    /// `round_robin_assignment` the vt engine spawns with — task ids and
    /// protocol ranks coincide there).
    ///
    /// Events that would decapitate the run (kill rank 0, crash the
    /// master's machine) or that reference out-of-range workers are
    /// silently skipped — see the module docs.
    pub fn resolve<P: PtsProblem>(
        &self,
        cfg: &PtsConfig,
        assignment: &[usize],
    ) -> FaultPlan<PtsMsg<P>> {
        let mut plan: FaultPlan<PtsMsg<P>> = FaultPlan::new(self.seed);
        let master_machine = assignment[0];
        let n_machines = assignment.iter().copied().max().map_or(0, |m| m + 1);
        for ev in &self.events {
            match *ev {
                WorkerFault::KillTsw { at, tsw } if tsw < cfg.n_tsw => {
                    let rank = cfg.tsw_rank(tsw);
                    plan.kill_task(at, rank, death_notifies::<P>(cfg, rank));
                }
                WorkerFault::KillClw { at, tsw, clw } if tsw < cfg.n_tsw && clw < cfg.n_clw => {
                    let rank = cfg.clw_rank(tsw, clw);
                    plan.kill_task(at, rank, death_notifies::<P>(cfg, rank));
                }
                WorkerFault::KillShard { at, shard } if shard < cfg.n_shards() => {
                    let rank = cfg.shard_rank(shard);
                    plan.kill_task(at, rank, death_notifies::<P>(cfg, rank));
                }
                WorkerFault::CrashMachine { at, machine }
                    if machine < n_machines && machine != master_machine =>
                {
                    plan.crash_machine(at, machine);
                    // The runtime's Crash only stops the machine's clock;
                    // the hosted workers die *as protocol participants*
                    // here, each with its death notices.
                    for (rank, &m) in assignment.iter().enumerate() {
                        if m == machine {
                            plan.kill_task(at, rank, death_notifies::<P>(cfg, rank));
                        }
                    }
                }
                WorkerFault::SlowMachine {
                    at,
                    machine,
                    factor,
                } if machine < n_machines => plan.slow_machine(at, machine, factor),
                WorkerFault::PauseMachine { at, machine, until } if machine < n_machines => {
                    plan.pause_machine(at, machine, until)
                }
                WorkerFault::DropRoute {
                    from,
                    until,
                    src,
                    dst,
                } => plan.route(RouteFault {
                    src,
                    dst,
                    from,
                    until,
                    action: RouteAction::Drop,
                }),
                WorkerFault::DelayRoute {
                    from,
                    until,
                    delay,
                    src,
                    dst,
                } => plan.route(RouteFault {
                    src,
                    dst,
                    from,
                    until,
                    action: RouteAction::Delay(delay),
                }),
                WorkerFault::JitterRoute {
                    from,
                    until,
                    spread,
                    src,
                    dst,
                } => plan.route(RouteFault {
                    src,
                    dst,
                    from,
                    until,
                    action: RouteAction::Jitter(spread),
                }),
                // Out-of-range target or a decapitating event: skip.
                _ => {}
            }
        }
        plan
    }
}

/// The `Down` notices a dying `rank` owes its protocol neighbours: the
/// parent that would otherwise wait on its report, and the children that
/// would otherwise wait on its broadcasts.
fn death_notifies<P: PtsProblem>(cfg: &PtsConfig, rank: usize) -> Vec<(usize, PtsMsg<P>)> {
    down_recipients(cfg, rank)
        .into_iter()
        .map(|to| (to, PtsMsg::Down { rank }))
        .collect()
}

/// The ranks a dying `rank` owes a [`PtsMsg::Down`] notice: the parent
/// that would otherwise wait on its report, and the children that would
/// otherwise wait on its broadcasts. Rank 0 (the master) notifies nobody
/// — its death ends the run. Non-generic on purpose: the socket router
/// precomputes these routes to synthesize Down frames on a real worker's
/// EOF, mirroring what the vt fault injector delivers virtually.
pub fn down_recipients(cfg: &PtsConfig, rank: usize) -> Vec<usize> {
    let tsw_lo = 1;
    let clw_lo = 1 + cfg.n_tsw;
    let shard_lo = 1 + cfg.n_tsw + cfg.n_tsw * cfg.n_clw;
    if rank == 0 {
        // The master's death is fatal, not excusable.
        Vec::new()
    } else if rank < clw_lo {
        // A TSW: parent collector + its CLW group.
        let i = rank - tsw_lo;
        std::iter::once(cfg.parent_of_tsw(i))
            .chain(cfg.clw_ranks(i))
            .collect()
    } else if rank < shard_lo {
        // A CLW: just its TSW.
        let i = (rank - clw_lo) / cfg.n_clw;
        vec![cfg.tsw_rank(i)]
    } else {
        // A sub-master: its parent and every child of its shard.
        let spec = cfg.shard_spec(rank - shard_lo);
        let children: Vec<usize> = match spec.children {
            ShardChildren::Tsws { lo, hi } => (lo..hi).map(|i| cfg.tsw_rank(i)).collect(),
            ShardChildren::Shards { lo, hi } => (lo..hi).map(|s| cfg.shard_rank(s)).collect(),
        };
        std::iter::once(spec.parent_rank).chain(children).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_tabu::qap::Qap;

    fn cfg(n_tsw: usize, n_clw: usize) -> PtsConfig {
        PtsConfig {
            n_tsw,
            n_clw,
            ..PtsConfig::default()
        }
    }

    #[test]
    fn seeded_specs_are_deterministic() {
        let c = cfg(8, 2);
        for mix in FaultMix::ALL {
            let a = FaultSpec::seeded(0xBEEF, mix, &c, 12, 100.0);
            let b = FaultSpec::seeded(0xBEEF, mix, &c, 12, 100.0);
            assert_eq!(a.events, b.events, "{mix} not deterministic");
            assert!(!a.is_empty(), "{mix} generated nothing");
        }
    }

    #[test]
    fn seeded_specs_differ_across_seeds() {
        let c = cfg(8, 2);
        let a = FaultSpec::seeded(1, FaultMix::Mixed, &c, 12, 100.0);
        let b = FaultSpec::seeded(2, FaultMix::Mixed, &c, 12, 100.0);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn mix_names_roundtrip() {
        for mix in FaultMix::ALL {
            assert_eq!(FaultMix::parse(mix.name()), Some(mix));
        }
        assert_eq!(FaultMix::parse("nope"), None);
    }

    #[test]
    fn kill_tsw_notifies_parent_and_clws() {
        let c = cfg(3, 2);
        let spec = FaultSpec::new(0).with(WorkerFault::KillTsw { at: 5.0, tsw: 1 });
        let assignment: Vec<usize> = (0..c.total_procs()).collect();
        let plan = spec.resolve::<Qap>(&c, &assignment);
        let kills = plan.kills();
        assert_eq!(kills.len(), 1);
        let (at, task, notified) = &kills[0];
        assert_eq!(*at, 5.0);
        assert_eq!(*task, c.tsw_rank(1));
        assert_eq!(*notified, vec![0, c.clw_rank(1, 0), c.clw_rank(1, 1)]);
    }

    #[test]
    fn crash_of_master_machine_is_skipped() {
        let c = cfg(3, 2);
        let assignment = vec![0; c.total_procs()]; // everyone on machine 0
        let spec = FaultSpec::new(0).with(WorkerFault::CrashMachine {
            at: 1.0,
            machine: 0,
        });
        let plan = spec.resolve::<Qap>(&c, &assignment);
        assert!(plan.is_empty(), "decapitating crash must be filtered");
    }

    #[test]
    fn crash_kills_every_hosted_worker_with_notices() {
        let c = cfg(2, 1);
        // ranks: 0 master(m0), 1 tsw0(m1), 2 tsw1(m0), 3 clw00(m1), 4 clw10(m0)
        let assignment = vec![0, 1, 0, 1, 0];
        let spec = FaultSpec::new(0).with(WorkerFault::CrashMachine {
            at: 2.0,
            machine: 1,
        });
        let plan = spec.resolve::<Qap>(&c, &assignment);
        // one Machine event + kills for ranks 1 and 3
        assert_eq!(plan.len(), 3);
        let killed: Vec<usize> = plan.kills().iter().map(|&(_, task, _)| task).collect();
        assert_eq!(killed, vec![1, 3]);
    }

    #[test]
    fn out_of_range_targets_are_skipped() {
        let c = cfg(2, 1);
        let assignment: Vec<usize> = (0..c.total_procs()).collect();
        let spec = FaultSpec::new(0)
            .with(WorkerFault::KillTsw { at: 1.0, tsw: 99 })
            .with(WorkerFault::SlowMachine {
                at: 1.0,
                machine: 99,
                factor: 0.5,
            });
        assert!(spec.resolve::<Qap>(&c, &assignment).is_empty());
    }
}
