//! Unified run metrics across execution engines.
//!
//! All four engines produce the *same* report type: the virtual cluster
//! and the virtual-time cooperative engine fill it with virtual-time
//! accounting (the paper's measurements — busy/wait seconds per process,
//! bit-identical between the two), the thread engine with wall-clock and
//! channel accounting, and the cooperative async engine with wall-clock
//! accounting for its single-threaded task schedule. No field is
//! engine-optional — code consuming a report never needs to know which
//! substrate carried the run.

use pts_vcluster::ProcStats;

/// Which clock [`RunReport::end_time`] and the per-process times are in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockDomain {
    /// Deterministic virtual seconds (simulated heterogeneous cluster).
    Virtual,
    /// Host wall-clock seconds (native threads and the cooperative async
    /// engine, which both execute in real time).
    Wall,
}

/// Metrics of one PTS run, engine-independent.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Engine that carried the run ("sim", "threads", "async", "vt").
    pub engine: &'static str,
    /// Clock the search-time metrics are measured in.
    pub clock: ClockDomain,
    /// Search time: when the last process finished, in [`RunReport::clock`]
    /// units.
    pub end_time: f64,
    /// Real wall-clock duration of the whole run on this host (equals the
    /// search time for the thread engine, host time for the sim engine).
    pub wall_seconds: f64,
    /// Per-process counters, indexed by rank (master = 0). The sim and
    /// vt engines report full virtual-time accounting (bit-identical to
    /// each other on the same cluster); the thread and async engines
    /// report message/byte/work counters and recv wait time. On Linux the
    /// thread engine also fills `busy_time` with each worker thread's CPU
    /// time (`getrusage(RUSAGE_THREAD)`); the async engine reports 0 busy
    /// time (all workers share the calling thread).
    pub per_proc: Vec<ProcStats>,
    /// Ranks observed to die mid-run (sorted, deduplicated). Populated
    /// only by the proc engine's supervisor — abnormal child exits and
    /// stale heartbeats; the in-process engines cannot lose a rank and
    /// the vt engine's injected faults are part of the scenario, not an
    /// observation. A non-empty list marks a degraded-but-truthful run:
    /// the search completed over the quorum of the living.
    pub dead_ranks: Vec<usize>,
}

impl RunReport {
    /// Number of logical processes the run spawned.
    pub fn num_procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Total messages sent across all processes.
    pub fn total_messages(&self) -> u64 {
        self.per_proc.iter().map(|p| p.messages_sent).sum()
    }

    /// Total accounted wire bytes sent across all processes.
    pub fn total_bytes(&self) -> u64 {
        self.per_proc.iter().map(|p| p.bytes_sent).sum()
    }

    /// Total work units charged via `compute` across all processes.
    pub fn total_work(&self) -> f64 {
        self.per_proc.iter().map(|p| p.work_done).sum()
    }

    /// Fraction of total process-time spent computing rather than waiting.
    /// Meaningful for the sim and vt engines (the paper's utilization
    /// measure, in virtual time) and, on Linux, for the thread engine
    /// (per-thread CPU time via `getrusage(RUSAGE_THREAD)` against
    /// channel-blocked wall time). The async engine multiplexes every
    /// worker on one thread and reports 0 busy time, hence 0.
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.per_proc.iter().map(|p| p.busy_time).sum();
        let wait: f64 = self.per_proc.iter().map(|p| p.wait_time).sum();
        if busy + wait == 0.0 {
            0.0
        } else {
            busy / (busy + wait)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc(busy: f64, wait: f64, sent: u64, bytes: u64) -> ProcStats {
        ProcStats {
            busy_time: busy,
            wait_time: wait,
            messages_sent: sent,
            bytes_sent: bytes,
            work_done: busy,
            ..ProcStats::default()
        }
    }

    #[test]
    fn aggregates_sum_over_procs() {
        let r = RunReport {
            engine: "sim",
            clock: ClockDomain::Virtual,
            end_time: 12.0,
            wall_seconds: 0.5,
            per_proc: vec![proc(6.0, 2.0, 3, 300), proc(2.0, 6.0, 1, 100)],
            dead_ranks: vec![],
        };
        assert_eq!(r.num_procs(), 2);
        assert_eq!(r.total_messages(), 4);
        assert_eq!(r.total_bytes(), 400);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_utilization_is_zero() {
        let r = RunReport {
            engine: "threads",
            clock: ClockDomain::Wall,
            end_time: 0.0,
            wall_seconds: 0.0,
            per_proc: vec![],
            dead_ranks: vec![],
        };
        assert_eq!(r.utilization(), 0.0);
    }
}
