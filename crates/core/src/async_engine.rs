//! The cooperative async engine: thousands of logical workers on one
//! OS thread.
//!
//! [`SimEngine`](crate::engine::SimEngine) and
//! [`ThreadEngine`](crate::engine::ThreadEngine) both spend one OS thread
//! per logical process, which caps `n_tsw` at what the host will give us
//! in threads and stacks (a few thousand at best, with megabytes of stack
//! each). [`AsyncEngine`] runs the *same* master/TSW/CLW protocol — the
//! loops are `async` and generic over [`crate::transport::Transport`] —
//! as cooperatively scheduled futures on
//! [`pts_vcluster::async_runtime::TaskCluster`]: a blocked receive is a
//! parked future, not a parked thread, so `n_tsw` in the thousands fits
//! in one thread's worth of OS resources.
//!
//! Like the thread engine it executes in real time (no virtual clock):
//! `compute` records work units only, reports carry wall-clock seconds,
//! and [`ClockDomain::Wall`] marks the report. Unlike the thread engine
//! it is *deterministic*: tasks are polled in FIFO send order on one
//! thread, so identical inputs replay identical executions — the
//! `engines_agree` integration tests pin the async engine to the virtual
//! cluster's search results seed-for-seed.

use crate::config::PtsConfig;
use crate::control::RunControl;
use crate::domain::{PtsDomain, SearchOutcome, SnapshotOf};
use crate::engine::{EngineOutput, ExecutionEngine};
use crate::master::{run_master, run_sub_master};
use crate::messages::PtsMsg;
use crate::report::{ClockDomain, RunReport};
use crate::transport::TaskTransport;
use crate::{clw::run_clw, tsw::run_tsw};
use pts_vcluster::TaskCluster;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Cooperative-futures engine: the whole PTS process tree multiplexed on
/// the calling thread.
///
/// Construction is free of configuration — every run-shape decision lives
/// in the validated [`PtsConfig`] (see [`crate::builder::Pts::builder`]).
///
/// ```
/// use pts_core::{AsyncEngine, Pts};
/// use pts_core::qap_domain::QapDomain;
///
/// let run = Pts::builder()
///     .tsw_workers(64) // one OS thread would be 193 with ThreadEngine
///     .clw_workers(2)
///     .global_iters(2)
///     .local_iters(2)
///     .seed(11)
///     .build()
///     .expect("valid configuration");
/// let out = run.execute(&QapDomain::random(24, 3), &AsyncEngine::new());
/// assert!(out.outcome.best_cost <= out.outcome.initial_cost);
/// assert_eq!(out.report.engine, "async");
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct AsyncEngine;

impl AsyncEngine {
    /// A new cooperative engine (stateless — all state is per-run).
    pub fn new() -> AsyncEngine {
        AsyncEngine
    }
}

impl<D: PtsDomain> ExecutionEngine<D> for AsyncEngine {
    fn name(&self) -> &'static str {
        "async"
    }

    fn execute(&self, cfg: &PtsConfig, domain: &D, initial: SnapshotOf<D>) -> EngineOutput<D> {
        let wall = Instant::now();
        let mut cluster: TaskCluster<PtsMsg<D::Problem>> = TaskCluster::new();
        let outcome_slot: Rc<RefCell<Option<SearchOutcome<SnapshotOf<D>>>>> =
            Rc::new(RefCell::new(None));

        // Task 0: master. Spawn order must equal rank order (TaskTransport
        // identifies rank with task id).
        {
            let cfg = cfg.clone();
            let domain = domain.clone();
            let slot = Rc::clone(&outcome_slot);
            cluster.spawn(move |ctx| async move {
                let mut t = TaskTransport { ctx };
                let outcome =
                    run_master(&mut t, &cfg, &domain, initial, &RunControl::unlimited()).await;
                *slot.borrow_mut() = Some(outcome);
            });
        }
        // Tasks 1..=n_tsw: TSWs.
        for i in 0..cfg.n_tsw {
            let cfg = cfg.clone();
            let domain = domain.clone();
            cluster.spawn(move |ctx| async move {
                let mut t = TaskTransport { ctx };
                run_tsw(&mut t, &cfg, i, &domain).await;
            });
        }
        // Next tasks: CLWs, grouped by TSW.
        for i in 0..cfg.n_tsw {
            for j in 0..cfg.n_clw {
                let cfg = cfg.clone();
                let domain = domain.clone();
                let tsw_rank = cfg.tsw_rank(i);
                cluster.spawn(move |ctx| async move {
                    let mut t = TaskTransport { ctx };
                    run_clw(&mut t, &cfg, tsw_rank, j, &domain).await;
                });
            }
        }
        // Final tasks: sub-masters of the sharded collection tree (none
        // under the default flat topology).
        for s in 0..cfg.n_shards() {
            let cfg = cfg.clone();
            let domain = domain.clone();
            cluster.spawn(move |ctx| async move {
                let mut t = TaskTransport { ctx };
                run_sub_master(&mut t, &cfg, s, &domain).await;
            });
        }
        debug_assert_eq!(cluster.num_spawned(), cfg.total_procs());

        let cluster_report = cluster.run();
        let outcome = outcome_slot
            .borrow_mut()
            .take()
            .expect("master deposits its outcome");
        let wall_seconds = wall.elapsed().as_secs_f64();
        EngineOutput {
            outcome,
            report: RunReport {
                engine: "async",
                clock: ClockDomain::Wall,
                end_time: cluster_report.end_time,
                wall_seconds,
                per_proc: cluster_report.per_proc,
                dead_ranks: vec![],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Pts;
    use crate::qap_domain::QapDomain;

    fn small_run() -> crate::builder::PtsRun {
        Pts::builder()
            .tsw_workers(3)
            .clw_workers(2)
            .global_iters(2)
            .local_iters(4)
            .candidates(4)
            .depth(2)
            .seed(42)
            .build()
            .unwrap()
    }

    #[test]
    fn async_engine_runs_qap_pipeline() {
        let domain = QapDomain::random(20, 5);
        let out = small_run().execute(&domain, &AsyncEngine::new());
        assert!(out.outcome.best_cost <= out.outcome.initial_cost);
        assert_eq!(out.report.engine, "async");
        assert_eq!(out.report.clock, ClockDomain::Wall);
        assert_eq!(out.report.num_procs(), small_run().config().total_procs());
        assert!(out.report.total_messages() > 0);
        // Every worker computed and communicated.
        for (rank, p) in out.report.per_proc.iter().enumerate().skip(1) {
            assert!(p.messages_sent > 0, "rank {rank} sent nothing");
            assert!(p.work_done > 0.0, "rank {rank} never computed");
        }
    }

    #[test]
    fn async_engine_is_deterministic() {
        let domain = QapDomain::random(18, 9);
        let a = small_run().execute(&domain, &AsyncEngine::new());
        let b = small_run().execute(&domain, &AsyncEngine::new());
        assert_eq!(a.outcome.best_cost, b.outcome.best_cost);
        assert_eq!(
            a.outcome.best_per_global_iter, b.outcome.best_per_global_iter,
            "cooperative schedule must replay identically"
        );
        assert_eq!(a.report.total_messages(), b.report.total_messages());
    }

    #[test]
    fn clw_half_report_has_an_effect_on_the_cooperative_schedule() {
        // CLWs yield between compound-move steps, so a TSW that reaches
        // quorum can cut stragglers mid-investigation even on the
        // single-threaded executor. If the yield were missing, every CLW
        // would finish its whole investigation before the TSW ran again,
        // CutShort would always arrive stale, and HalfReport would be
        // indistinguishable from WaitAll at this tier.
        use crate::config::SyncPolicy;
        let domain = QapDomain::random(32, 21);
        let outcome_with = |clw_sync: SyncPolicy| {
            Pts::builder()
                .tsw_workers(2)
                .clw_workers(4)
                .global_iters(2)
                .local_iters(6)
                .candidates(4)
                .depth(4)
                .tsw_sync(SyncPolicy::WaitAll)
                .clw_sync(clw_sync)
                .report_fraction(0.5)
                .seed(77)
                .build()
                .unwrap()
                .execute(&domain, &AsyncEngine::new())
        };
        let half = outcome_with(SyncPolicy::HalfReport);
        let all = outcome_with(SyncPolicy::WaitAll);
        assert_ne!(
            half.outcome.best_per_global_iter, all.outcome.best_per_global_iter,
            "cut-short proposals must alter the search trajectory"
        );
    }

    #[test]
    fn async_engine_is_object_safe_with_the_others() {
        use crate::engine::{SimEngine, ThreadEngine};
        let engines: Vec<Box<dyn ExecutionEngine<QapDomain>>> = vec![
            Box::new(SimEngine::paper()),
            Box::new(ThreadEngine),
            Box::new(AsyncEngine::new()),
        ];
        assert_eq!(engines[2].name(), "async");
    }
}
