//! Configuration of a parallel tabu search run.

use crate::builder::ConfigError;
use pts_place::eval::{EvalConfig, SchemeChoice};
use pts_place::fuzzy::GoalConfig;

/// Parent/child synchronization policy — the paper's heterogeneity knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// "Homogeneous run": a parent waits for *all* children to report.
    WaitAll,
    /// "Heterogeneous run": once a fraction of children (the paper: half)
    /// have reported, the parent forces the rest to report their current
    /// best immediately.
    HalfReport,
}

/// Cost-scheme selector (mirrors `pts_place::eval::SchemeChoice`, exposed
/// as a plain enum for the CLI).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostKind {
    /// The paper's fuzzy goal-based cost.
    Fuzzy,
    /// Normalized weighted-sum baseline.
    WeightedSum,
}

/// Virtual-CPU work charged per algorithmic operation (sim engine only).
///
/// Units are abstract "work units"; a speed-1.0 machine executes one unit
/// per virtual second. Values approximate the relative real cost of each
/// operation so the virtual timeline matches the algorithm's compute
/// profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkModel {
    /// One candidate swap evaluation (incremental HPWL + STA cone).
    pub per_trial: f64,
    /// Committing one swap (cache refresh).
    pub per_commit: f64,
    /// One tabu test + bookkeeping at the TSW.
    pub per_tabu_check: f64,
    /// One diversification step.
    pub per_diversify_step: f64,
    /// Master-side handling of one report.
    pub per_report: f64,
}

impl Default for WorkModel {
    fn default() -> Self {
        WorkModel {
            per_trial: 1.0,
            per_commit: 2.0,
            per_tabu_check: 0.2,
            per_diversify_step: 1.5,
            per_report: 0.5,
        }
    }
}

/// Full configuration of a PTS run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PtsConfig {
    /// Number of tabu search workers (high-level parallelization).
    pub n_tsw: usize,
    /// Candidate-list workers per TSW (low-level parallelization).
    pub n_clw: usize,
    /// Global iterations (master broadcast rounds).
    pub global_iters: u32,
    /// Local iterations per TSW per global iteration.
    pub local_iters: u32,
    /// Candidate pairs sampled per elementary move (`m`).
    pub candidates: usize,
    /// Compound move depth (`d`).
    pub depth: usize,
    /// Tabu tenure in local iterations.
    pub tenure: u64,
    /// Perform the Kelly-style diversification step at the start of each
    /// global iteration.
    pub diversify: bool,
    /// Number of diversification moves; `0` = auto (scaled to circuit
    /// size, see [`PtsConfig::effective_diversify_depth`]).
    pub diversify_depth: usize,
    /// Moves sampled per diversification step.
    pub diversify_width: usize,
    /// Master ↔ TSW synchronization.
    pub tsw_sync: SyncPolicy,
    /// TSW ↔ CLW synchronization.
    pub clw_sync: SyncPolicy,
    /// Fraction of children that must report before the rest are forced
    /// (the paper uses 0.5).
    pub report_fraction: f64,
    /// Net-delay coefficient (`alpha` of the timing model).
    pub alpha: f64,
    /// Cost scheme.
    pub cost: CostKind,
    /// OWA `beta` for the fuzzy scheme.
    pub beta: f64,
    /// Goal target fraction (fuzzy scheme).
    pub goal_target_frac: f64,
    /// Goal zero-membership fraction (fuzzy scheme).
    pub goal_zero_frac: f64,
    /// Weighted-sum weights (wire, delay, area) when `cost = WeightedSum`.
    pub weights: [f64; 3],
    /// Master seed; all worker streams fork from it.
    pub seed: u64,
    /// Search differentiation. `false` (default) is the paper's MPSS
    /// design — "multiple points, single strategy": all TSWs run the
    /// *same* search (shared RNG streams per role) and differ only through
    /// the diversification step over their private cell ranges. `true` is
    /// an extension: every worker gets an independent RNG stream, i.e. the
    /// strategies themselves differ (closer to SPDS). See the
    /// `ablation_streams` harness for the comparison.
    pub differentiate_streams: bool,
    /// Virtual work accounting (sim engine).
    pub work: WorkModel,
}

impl Default for PtsConfig {
    fn default() -> Self {
        PtsConfig {
            n_tsw: 4,
            n_clw: 1,
            global_iters: 10,
            local_iters: 20,
            candidates: 8,
            depth: 3,
            tenure: 7,
            diversify: true,
            diversify_depth: 0, // auto: scale with circuit size
            diversify_width: 4,
            tsw_sync: SyncPolicy::HalfReport,
            clw_sync: SyncPolicy::HalfReport,
            report_fraction: 0.5,
            alpha: 0.15,
            cost: CostKind::Fuzzy,
            beta: 0.6,
            goal_target_frac: 0.75,
            goal_zero_frac: 1.30,
            weights: [0.5, 0.3, 0.2],
            seed: 0xC0FFEE,
            differentiate_streams: false,
            work: WorkModel::default(),
        }
    }
}

impl PtsConfig {
    /// Total number of processes: master + TSWs + TSWs×CLWs.
    pub fn total_procs(&self) -> usize {
        1 + self.n_tsw + self.n_tsw * self.n_clw
    }

    /// Rank of the master process.
    pub fn master_rank(&self) -> usize {
        0
    }

    /// Rank of TSW `i`.
    pub fn tsw_rank(&self, i: usize) -> usize {
        assert!(i < self.n_tsw);
        1 + i
    }

    /// Rank of CLW `j` of TSW `i`.
    pub fn clw_rank(&self, i: usize, j: usize) -> usize {
        assert!(i < self.n_tsw && j < self.n_clw);
        1 + self.n_tsw + i * self.n_clw + j
    }

    /// All CLW ranks of TSW `i`.
    pub fn clw_ranks(&self, i: usize) -> Vec<usize> {
        (0..self.n_clw).map(|j| self.clw_rank(i, j)).collect()
    }

    /// Cell range assigned to TSW `i` for diversification. Disjoint across
    /// TSWs and covering all cells while `n_tsw <= n_cells`; with more
    /// workers than cells (thousand-worker runs on small instances) ranges
    /// wrap — worker `i` shares the range of worker `i mod n_cells` — so
    /// every worker keeps a non-empty subset.
    pub fn tsw_range(&self, i: usize, n_cells: usize) -> (usize, usize) {
        wrapped_range(n_cells, self.n_tsw, i)
    }

    /// Cell range anchoring CLW `j`'s neighborhood moves. Same wrapping
    /// rule as [`PtsConfig::tsw_range`]: disjoint across a TSW's CLWs
    /// while `n_clw <= n_cells`, shared cyclically beyond that.
    pub fn clw_range(&self, j: usize, n_cells: usize) -> (usize, usize) {
        wrapped_range(n_cells, self.n_clw, j)
    }

    /// Children needed before the parent may force the rest (at least one,
    /// at most all).
    pub fn report_quorum(&self, n_children: usize) -> usize {
        ((n_children as f64 * self.report_fraction).ceil() as usize).clamp(1, n_children)
    }

    /// Diversification moves per global iteration. An explicit
    /// `diversify_depth` is used as-is; `0` scales with the square root of
    /// the circuit size (clamped to `[3, 16]`). Sub-linear scaling matters:
    /// the paper itself warns that "too much diversification without
    /// enough local investigation might mislead the search", and linear
    /// depth on a 2000-cell circuit is exactly that failure mode.
    pub fn effective_diversify_depth(&self, n_cells: usize) -> usize {
        if self.diversify_depth > 0 {
            self.diversify_depth
        } else {
            (((n_cells as f64).sqrt() / 3.0).round() as usize).clamp(3, 16)
        }
    }

    /// Translate to the placement evaluator configuration.
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            alpha: self.alpha,
            scheme: match self.cost {
                CostKind::Fuzzy => SchemeChoice::Fuzzy { beta: self.beta },
                CostKind::WeightedSum => SchemeChoice::WeightedSum {
                    weights: self.weights,
                },
            },
            goal: GoalConfig {
                target_frac: self.goal_target_frac,
                zero_frac: self.goal_zero_frac,
            },
        }
    }

    /// Validate structural parameters; [`crate::builder::RunBuilder::build`]
    /// calls this so a [`crate::builder::PtsRun`] is valid by construction.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_tsw == 0 {
            return Err(ConfigError::NoTabuSearchWorkers);
        }
        if self.n_clw == 0 {
            return Err(ConfigError::NoCandidateListWorkers);
        }
        if self.global_iters == 0 || self.local_iters == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        if self.candidates == 0 || self.depth == 0 {
            return Err(ConfigError::ZeroMoveBudget);
        }
        if !(self.report_fraction > 0.0 && self.report_fraction <= 1.0) {
            return Err(ConfigError::ReportFractionOutOfRange(self.report_fraction));
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return Err(ConfigError::BetaOutOfRange(self.beta));
        }
        if self.diversify && self.diversify_width == 0 {
            return Err(ConfigError::ZeroDiversifyWidth);
        }
        Ok(())
    }
}

/// `i`-th of `k` near-equal chunks of `0..n` (first chunks take the
/// remainder). Never empty while `i < k <= n`.
pub fn split_range(n: usize, k: usize, i: usize) -> (usize, usize) {
    assert!(k >= 1 && i < k);
    let base = n / k;
    let rem = n % k;
    let lo = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    (lo, lo + len)
}

/// [`split_range`] that stays non-empty when workers outnumber items:
/// with `k > n` the effective worker count is clamped to `n` and worker
/// `i` takes chunk `i mod n`. Identical to [`split_range`] for `k <= n`,
/// which keeps pre-existing (golden-pinned) schedules intact.
pub fn wrapped_range(n: usize, k: usize, i: usize) -> (usize, usize) {
    assert!(k >= 1 && i < k, "worker index {i} out of range for {k}");
    assert!(n >= 1, "cannot partition an empty item space");
    let k_eff = k.min(n);
    split_range(n, k_eff, i % k_eff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_disjoint_and_dense() {
        let cfg = PtsConfig {
            n_tsw: 3,
            n_clw: 2,
            ..PtsConfig::default()
        };
        let mut seen = vec![cfg.master_rank()];
        for i in 0..3 {
            seen.push(cfg.tsw_rank(i));
            for j in 0..2 {
                seen.push(cfg.clw_rank(i, j));
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..cfg.total_procs()).collect::<Vec<_>>());
    }

    #[test]
    fn split_range_partitions() {
        for n in [10, 56, 395, 2243] {
            for k in 1..=8 {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..k {
                    let (lo, hi) = split_range(n, k, i);
                    assert_eq!(lo, prev_end, "ranges must be contiguous");
                    assert!(hi > lo, "ranges must be non-empty for n >= k");
                    covered += hi - lo;
                    prev_end = hi;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn wrapped_range_handles_more_workers_than_items() {
        // 8 workers over 3 items: ranges cycle over the 3 real chunks.
        for i in 0..8 {
            let (lo, hi) = wrapped_range(3, 8, i);
            assert_eq!((lo, hi), (i % 3, i % 3 + 1));
        }
        // k <= n: identical to split_range (golden schedules preserved).
        for n in [10, 56, 395] {
            for k in 1..=8 {
                for i in 0..k {
                    assert_eq!(wrapped_range(n, k, i), split_range(n, k, i));
                }
            }
        }
    }

    #[test]
    fn oversubscribed_config_ranges_are_non_empty() {
        let cfg = PtsConfig {
            n_tsw: 1000,
            n_clw: 4,
            ..PtsConfig::default()
        };
        for i in 0..1000 {
            let (lo, hi) = cfg.tsw_range(i, 56);
            assert!(lo < hi && hi <= 56);
        }
    }

    #[test]
    fn quorum_half_rounds_up() {
        let cfg = PtsConfig::default();
        assert_eq!(cfg.report_quorum(4), 2);
        assert_eq!(cfg.report_quorum(5), 3);
        assert_eq!(cfg.report_quorum(1), 1);
    }

    #[test]
    fn quorum_clamps() {
        let cfg = PtsConfig {
            report_fraction: 0.01,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.report_quorum(4), 1);
        let cfg = PtsConfig {
            report_fraction: 1.0,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.report_quorum(4), 4);
    }

    #[test]
    fn default_validates() {
        PtsConfig::default().validate().unwrap();
    }

    #[test]
    fn diversify_depth_auto_scales_and_clamps() {
        let cfg = PtsConfig::default();
        assert_eq!(cfg.effective_diversify_depth(56), 3);
        assert_eq!(cfg.effective_diversify_depth(395), 7);
        assert_eq!(cfg.effective_diversify_depth(1451), 13);
        assert_eq!(cfg.effective_diversify_depth(2243), 16);
        let explicit = PtsConfig {
            diversify_depth: 11,
            ..PtsConfig::default()
        };
        assert_eq!(explicit.effective_diversify_depth(2243), 11);
    }

    #[test]
    fn validation_catches_zeroes() {
        let cfg = PtsConfig {
            n_tsw: 0,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::NoTabuSearchWorkers));
        let cfg = PtsConfig {
            local_iters: 0,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroIterations));
        let cfg = PtsConfig {
            report_fraction: 0.0,
            ..PtsConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ReportFractionOutOfRange(0.0))
        );
    }
}
