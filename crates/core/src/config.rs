//! Configuration of a parallel tabu search run.

use crate::builder::ConfigError;
use pts_place::eval::{EvalConfig, SchemeChoice};
use pts_place::fuzzy::GoalConfig;
use pts_tabu::aspiration::Aspiration;

/// Parent/child synchronization policy — the paper's heterogeneity knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// "Homogeneous run": a parent waits for *all* children to report.
    WaitAll,
    /// "Heterogeneous run": once a fraction of children (the paper: half)
    /// have reported, the parent forces the rest to report their current
    /// best immediately.
    HalfReport,
}

/// How solution snapshots travel on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Delta-encode snapshots against the last base both link ends
    /// provably share (the previous global broadcast, or the initial
    /// solution), falling back to a full snapshot whenever the delta
    /// would be at least as large. Default. Bit-identical in search
    /// trajectory to [`SnapshotMode::Full`]; only wire sizes (and hence
    /// the virtual timeline of the sim engine) differ.
    Delta,
    /// Always ship full snapshots — the paper's protocol, and the wire
    /// format every release before the delta layer used.
    Full,
}

/// Cost-scheme selector (mirrors `pts_place::eval::SchemeChoice`, exposed
/// as a plain enum for the CLI).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostKind {
    /// The paper's fuzzy goal-based cost.
    Fuzzy,
    /// Normalized weighted-sum baseline.
    WeightedSum,
}

/// Virtual-CPU work charged per algorithmic operation (sim engine only).
///
/// Units are abstract "work units"; a speed-1.0 machine executes one unit
/// per virtual second. Values approximate the relative real cost of each
/// operation so the virtual timeline matches the algorithm's compute
/// profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkModel {
    /// One candidate swap evaluation (incremental HPWL + STA cone).
    pub per_trial: f64,
    /// Committing one swap (cache refresh).
    pub per_commit: f64,
    /// One tabu test + bookkeeping at the TSW.
    pub per_tabu_check: f64,
    /// One diversification step.
    pub per_diversify_step: f64,
    /// Master-side handling of one report.
    pub per_report: f64,
}

impl Default for WorkModel {
    fn default() -> Self {
        WorkModel {
            per_trial: 1.0,
            per_commit: 2.0,
            per_tabu_check: 0.2,
            per_diversify_step: 1.5,
            per_report: 0.5,
        }
    }
}

/// One tabu-search parameterization: the per-worker knobs that define
/// *how* a TSW searches (as opposed to the topology/protocol knobs that
/// stay on [`PtsConfig`]). A run carries one uniform strategy
/// ([`PtsConfig::search`]) plus an optional heterogeneous
/// [`PtsConfig::portfolio`] assigned per TSW group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchStrategy {
    /// Candidate pairs sampled per elementary move (`m`).
    pub candidates: usize,
    /// Compound move depth (`d`).
    pub depth: usize,
    /// Tabu tenure in local iterations.
    pub tenure: u64,
    /// Number of diversification moves; `0` = auto (scaled to circuit
    /// size, see [`SearchStrategy::effective_diversify_depth`]).
    pub diversify_depth: usize,
    /// Moves sampled per diversification step.
    pub diversify_width: usize,
    /// When a tabu move is accepted anyway.
    pub aspiration: Aspiration,
}

impl Default for SearchStrategy {
    fn default() -> Self {
        SearchStrategy {
            candidates: 8,
            depth: 3,
            tenure: 7,
            diversify_depth: 0, // auto: scale with circuit size
            diversify_width: 4,
            aspiration: Aspiration::BestCost,
        }
    }
}

impl SearchStrategy {
    /// Diversification moves per global iteration. An explicit
    /// `diversify_depth` is used as-is; `0` scales with the square root of
    /// the circuit size (clamped to `[3, 16]`). Sub-linear scaling matters:
    /// the paper itself warns that "too much diversification without
    /// enough local investigation might mislead the search", and linear
    /// depth on a 2000-cell circuit is exactly that failure mode.
    pub fn effective_diversify_depth(&self, n_cells: usize) -> usize {
        if self.diversify_depth > 0 {
            self.diversify_depth
        } else {
            (((n_cells as f64).sqrt() / 3.0).round() as usize).clamp(3, 16)
        }
    }

    /// Structural validity of this strategy's knobs (shared between the
    /// uniform strategy and every portfolio entry).
    pub fn validate(&self, diversify: bool) -> Result<(), ConfigError> {
        if self.candidates == 0 || self.depth == 0 {
            return Err(ConfigError::ZeroMoveBudget);
        }
        if diversify && self.diversify_width == 0 {
            return Err(ConfigError::ZeroDiversifyWidth);
        }
        Ok(())
    }
}

/// Full configuration of a PTS run.
#[derive(Clone, Debug, PartialEq)]
pub struct PtsConfig {
    /// Number of tabu search workers (high-level parallelization).
    pub n_tsw: usize,
    /// Candidate-list workers per TSW (low-level parallelization).
    pub n_clw: usize,
    /// Global iterations (master broadcast rounds).
    pub global_iters: u32,
    /// Local iterations per TSW per global iteration.
    pub local_iters: u32,
    /// The uniform search strategy: every TSW runs these knobs when
    /// [`PtsConfig::portfolio`] is empty, and any group the portfolio
    /// does not cover falls back to it.
    pub search: SearchStrategy,
    /// Heterogeneous strategy portfolio. Empty (default) = uniform: every
    /// worker runs [`PtsConfig::search`], bit-identical to the
    /// pre-portfolio protocol. Non-empty: TSW group `g` (see
    /// [`PtsConfig::group_of_tsw`]) starts on strategy `g % len`, and the
    /// root's adaptive reallocator may reassign groups between rounds
    /// (see `crate::master`). At most 255 entries — strategy ids ride a
    /// single wire byte.
    pub portfolio: Vec<SearchStrategy>,
    /// Perform the Kelly-style diversification step at the start of each
    /// global iteration.
    pub diversify: bool,
    /// Master ↔ TSW synchronization.
    pub tsw_sync: SyncPolicy,
    /// TSW ↔ CLW synchronization.
    pub clw_sync: SyncPolicy,
    /// Fraction of children that must report before the rest are forced
    /// (the paper uses 0.5).
    pub report_fraction: f64,
    /// Net-delay coefficient (`alpha` of the timing model).
    pub alpha: f64,
    /// Cost scheme.
    pub cost: CostKind,
    /// OWA `beta` for the fuzzy scheme.
    pub beta: f64,
    /// Goal target fraction (fuzzy scheme).
    pub goal_target_frac: f64,
    /// Goal zero-membership fraction (fuzzy scheme).
    pub goal_zero_frac: f64,
    /// Weighted-sum weights (wire, delay, area) when `cost = WeightedSum`.
    pub weights: [f64; 3],
    /// Master seed; all worker streams fork from it.
    pub seed: u64,
    /// Master sharding fan-out: the maximum number of children any
    /// collection node (the root master or a sub-master) owns.
    ///
    /// `0` (default) or any value `>= n_tsw` keeps the paper's flat
    /// topology: one master collecting every TSW directly. A value in
    /// `2..n_tsw` inserts a tree of sub-masters — leaf sub-masters each
    /// collect a contiguous group of at most `shard_fanout` TSWs, apply
    /// the [`SyncPolicy::HalfReport`] quorum/force policy *locally*,
    /// reduce to one group best, and forward a single
    /// [`crate::messages::PtsMsg::GroupReport`] upward; further levels
    /// are added until at most `shard_fanout` nodes report to the root.
    /// Collection cost is then O(`shard_fanout`) per process instead of
    /// O(`n_tsw`) at the root. `1` is rejected at validation (the tree
    /// would never contract).
    pub shard_fanout: usize,
    /// Snapshot wire encoding: delta against the last shared broadcast
    /// base (default) or always-full (the paper's format). See
    /// [`SnapshotMode`].
    pub snapshot_mode: SnapshotMode,
    /// Search differentiation. `false` (default) is the paper's MPSS
    /// design — "multiple points, single strategy": all TSWs run the
    /// *same* search (shared RNG streams per role) and differ only through
    /// the diversification step over their private cell ranges. `true` is
    /// an extension: every worker gets an independent RNG stream, i.e. the
    /// strategies themselves differ (closer to SPDS). See the
    /// `ablation_streams` harness for the comparison.
    pub differentiate_streams: bool,
    /// Round-liveness timeout in virtual seconds, `0.0` = disabled
    /// (default). When positive and the substrate supports receive
    /// deadlines (the vt engine), a collection node waiting on child
    /// reports — and a TSW waiting on its round broadcast — gives up
    /// after this long of silence, warns, and completes the round with
    /// what it has. This is what keeps [`SyncPolicy::WaitAll`] from
    /// hanging forever on a crashed worker under a
    /// [`pts_vcluster::FaultPlan`]; fault-free runs never hit it.
    pub liveness_timeout: f64,
    /// Delta-encode the tabu list riding `Broadcast`/`GroupBroadcast`
    /// against the previous round's list (uniform-aging diff with
    /// fallback-to-full, mirroring [`SnapshotMode::Delta`] for
    /// snapshots). Off by default: with the knob off every broadcast
    /// carries the full list and wire sizes are bit-identical to the
    /// pre-delta protocol, which the pinned virtual-time goldens rely
    /// on. Turning it on changes message *sizes* (and thus virtual
    /// timelines) but never the search trajectory — the resolved list
    /// is always exactly the sender's.
    pub tabu_delta: bool,
    /// Worker heartbeat interval in milliseconds for the proc engine,
    /// `0` = disabled (default). When positive, every worker process
    /// writes a socket-layer liveness beacon at this cadence so the
    /// router's supervisor can tell a *hung* child (stale heartbeat,
    /// announced down and excused) from a merely quiet one. Heartbeats
    /// are consumed at the router: they never reach the protocol and
    /// never change a search trajectory. Ignored by the in-process
    /// engines.
    pub heartbeat_ms: u64,
    /// Grace window in milliseconds the proc engine grants children to
    /// exit on their own before killing stragglers outright (both on the
    /// normal wind-down path and when aborting a failed spawn/barrier).
    /// Default 2000; widen on slow CI hosts. Stragglers past the window
    /// are still killed and reaped unconditionally.
    pub reap_grace_ms: u64,
    /// Virtual work accounting (sim engine).
    pub work: WorkModel,
}

impl Default for PtsConfig {
    fn default() -> Self {
        PtsConfig {
            n_tsw: 4,
            n_clw: 1,
            global_iters: 10,
            local_iters: 20,
            search: SearchStrategy::default(),
            portfolio: Vec::new(),
            diversify: true,
            tsw_sync: SyncPolicy::HalfReport,
            clw_sync: SyncPolicy::HalfReport,
            report_fraction: 0.5,
            alpha: 0.15,
            cost: CostKind::Fuzzy,
            beta: 0.6,
            goal_target_frac: 0.75,
            goal_zero_frac: 1.30,
            weights: [0.5, 0.3, 0.2],
            seed: 0xC0FFEE,
            shard_fanout: 0,
            snapshot_mode: SnapshotMode::Delta,
            differentiate_streams: false,
            liveness_timeout: 0.0,
            tabu_delta: false,
            heartbeat_ms: 0,
            reap_grace_ms: 2000,
            work: WorkModel::default(),
        }
    }
}

/// The children of one collection node in the (possibly sharded) master
/// tree: either a contiguous group of TSWs (leaf collectors, including the
/// flat root) or a contiguous run of sub-masters (inner collectors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardChildren {
    /// TSW indices `lo..hi` report to this node.
    Tsws {
        /// First TSW index of the group.
        lo: usize,
        /// One past the last TSW index of the group.
        hi: usize,
    },
    /// Sub-masters `lo..hi` (shard ids) report to this node.
    Shards {
        /// First shard id of the group.
        lo: usize,
        /// One past the last shard id of the group.
        hi: usize,
    },
}

impl ShardChildren {
    /// Number of children of this node.
    pub fn len(&self) -> usize {
        match *self {
            ShardChildren::Tsws { lo, hi } | ShardChildren::Shards { lo, hi } => hi - lo,
        }
    }

    /// `true` when the node has no children (never occurs in a valid
    /// topology; present for completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One sub-master's place in the collection tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// This sub-master's shard id (also determines its rank).
    pub id: usize,
    /// Rank of the node this sub-master forwards its group best to (the
    /// root master or another sub-master).
    pub parent_rank: usize,
    /// Who reports to this sub-master.
    pub children: ShardChildren,
}

impl PtsConfig {
    /// Total number of processes: master + TSWs + TSWs×CLWs + sub-masters.
    pub fn total_procs(&self) -> usize {
        1 + self.n_tsw + self.n_tsw * self.n_clw + self.n_shards()
    }

    /// Rank of the master process.
    pub fn master_rank(&self) -> usize {
        0
    }

    /// Rank of TSW `i`.
    pub fn tsw_rank(&self, i: usize) -> usize {
        assert!(i < self.n_tsw);
        1 + i
    }

    /// Rank of CLW `j` of TSW `i`.
    pub fn clw_rank(&self, i: usize, j: usize) -> usize {
        assert!(i < self.n_tsw && j < self.n_clw);
        1 + self.n_tsw + i * self.n_clw + j
    }

    /// All CLW ranks of TSW `i`.
    pub fn clw_ranks(&self, i: usize) -> Vec<usize> {
        (0..self.n_clw).map(|j| self.clw_rank(i, j)).collect()
    }

    /// `true` when the run uses a flat master (no sub-masters): the
    /// default `shard_fanout = 0`, or a fan-out already covering every
    /// TSW. The flat topology is rank-for-rank and message-for-message
    /// identical to the pre-sharding protocol.
    pub fn is_flat(&self) -> bool {
        self.shard_fanout == 0 || self.shard_fanout >= self.n_tsw
    }

    /// Sub-master count per tree level, bottom (TSW-facing) level first.
    /// Empty for a flat topology. Level 0 has `ceil(n_tsw / shard_fanout)`
    /// nodes; levels are added until at most `shard_fanout` nodes remain
    /// to report to the root.
    pub fn shard_levels(&self) -> Vec<usize> {
        if self.is_flat() {
            return Vec::new();
        }
        let f = self.shard_fanout;
        let mut levels = Vec::new();
        let mut count = self.n_tsw.div_ceil(f);
        loop {
            levels.push(count);
            if count <= f {
                break;
            }
            count = count.div_ceil(f);
        }
        levels
    }

    /// Total number of sub-master processes.
    pub fn n_shards(&self) -> usize {
        self.shard_levels().iter().sum()
    }

    /// Rank of sub-master `shard`. Sub-masters occupy the ranks after all
    /// CLWs (so the flat rank layout — master, TSWs, CLWs — is unchanged),
    /// ordered level by level from the TSW-facing level upward.
    pub fn shard_rank(&self, shard: usize) -> usize {
        assert!(shard < self.n_shards(), "shard {shard} out of range");
        1 + self.n_tsw + self.n_tsw * self.n_clw + shard
    }

    /// Rank of the node TSW `i` reports to: the root master when flat,
    /// otherwise the leaf sub-master owning its group.
    pub fn parent_of_tsw(&self, i: usize) -> usize {
        assert!(i < self.n_tsw);
        if self.is_flat() {
            self.master_rank()
        } else {
            self.shard_rank(i / self.shard_fanout)
        }
    }

    /// The root master's direct children: all TSWs when flat, otherwise
    /// the top level of the sub-master tree.
    pub fn root_children(&self) -> ShardChildren {
        let levels = self.shard_levels();
        if levels.is_empty() {
            ShardChildren::Tsws {
                lo: 0,
                hi: self.n_tsw,
            }
        } else {
            let top = self.n_shards() - levels[levels.len() - 1];
            ShardChildren::Shards {
                lo: top,
                hi: self.n_shards(),
            }
        }
    }

    /// Tree position of sub-master `shard`: its parent's rank and its
    /// children (a TSW group for level-0 shards, lower sub-masters above).
    pub fn shard_spec(&self, shard: usize) -> ShardSpec {
        let levels = self.shard_levels();
        assert!(
            shard < self.n_shards(),
            "shard {shard} out of range for {levels:?}"
        );
        let f = self.shard_fanout;
        // Locate the shard's level and its index within that level.
        let mut level = 0;
        let mut level_lo = 0;
        while shard >= level_lo + levels[level] {
            level_lo += levels[level];
            level += 1;
        }
        let j = shard - level_lo;
        let children = if level == 0 {
            ShardChildren::Tsws {
                lo: j * f,
                hi: ((j + 1) * f).min(self.n_tsw),
            }
        } else {
            let below_lo = level_lo - levels[level - 1];
            ShardChildren::Shards {
                lo: below_lo + j * f,
                hi: below_lo + ((j + 1) * f).min(levels[level - 1]),
            }
        };
        let parent_rank = if level + 1 == levels.len() {
            self.master_rank()
        } else {
            self.shard_rank(level_lo + levels[level] + j / f)
        };
        ShardSpec {
            id: shard,
            parent_rank,
            children,
        }
    }

    /// The automatic sharding fan-out for `n_tsw` workers:
    /// `f ≈ sqrt(n_tsw)`, which balances the collection tree — the root
    /// and each leaf sub-master then own about the same number of
    /// children, minimizing the per-round message load of the busiest
    /// process. Returns `0` (flat) when the tree would not contract
    /// (`n_tsw <= 3`, where `sqrt` rounds below the minimum fan-out of
    /// 2). Used by `RunBuilder::shard_fanout_auto` and the CLI's
    /// `--shard-fanout auto`.
    pub fn auto_shard_fanout(n_tsw: usize) -> usize {
        let f = (n_tsw as f64).sqrt().round() as usize;
        if f < 2 || f >= n_tsw {
            0
        } else {
            f
        }
    }

    /// Cell range assigned to TSW `i` for diversification. Disjoint across
    /// TSWs and covering all cells while `n_tsw <= n_cells`; with more
    /// workers than cells (thousand-worker runs on small instances) ranges
    /// wrap — worker `i` shares the range of worker `i mod n_cells` — so
    /// every worker keeps a non-empty subset.
    pub fn tsw_range(&self, i: usize, n_cells: usize) -> (usize, usize) {
        wrapped_range(n_cells, self.n_tsw, i)
    }

    /// Cell range anchoring CLW `j`'s neighborhood moves. Same wrapping
    /// rule as [`PtsConfig::tsw_range`]: disjoint across a TSW's CLWs
    /// while `n_clw <= n_cells`, shared cyclically beyond that.
    pub fn clw_range(&self, j: usize, n_cells: usize) -> (usize, usize) {
        wrapped_range(n_cells, self.n_clw, j)
    }

    /// Children needed before the parent may force the rest (at least one,
    /// at most all).
    pub fn report_quorum(&self, n_children: usize) -> usize {
        ((n_children as f64 * self.report_fraction).ceil() as usize).clamp(1, n_children)
    }

    /// Diversification moves per global iteration under the *uniform*
    /// strategy; strategy-aware callers use
    /// [`SearchStrategy::effective_diversify_depth`] on the strategy they
    /// currently run.
    pub fn effective_diversify_depth(&self, n_cells: usize) -> usize {
        self.search.effective_diversify_depth(n_cells)
    }

    /// The strategy behind wire id `id`: the portfolio entry when one is
    /// configured, the uniform strategy otherwise. Out-of-range ids (a
    /// corrupt or cross-version frame) clamp into the portfolio rather
    /// than panicking — strategy ids are routing hints, not trusted
    /// indices.
    pub fn strategy(&self, id: u8) -> &SearchStrategy {
        if self.portfolio.is_empty() {
            &self.search
        } else {
            &self.portfolio[id as usize % self.portfolio.len()]
        }
    }

    /// Number of strategy *groups*: the root's direct children — every
    /// TSW is its own group when flat, each top-level subtree is one
    /// group when sharded. This is the granularity at which portfolio
    /// strategies are assigned and reallocated.
    pub fn n_groups(&self) -> usize {
        self.root_children().len()
    }

    /// Strategy group TSW `i` belongs to: the index of the root's direct
    /// child whose subtree contains it.
    pub fn group_of_tsw(&self, i: usize) -> usize {
        assert!(i < self.n_tsw);
        if self.is_flat() {
            return i;
        }
        let levels = self.shard_levels();
        let mut idx = i / self.shard_fanout;
        for _ in 1..levels.len() {
            idx /= self.shard_fanout;
        }
        idx
    }

    /// Strategy group sub-master `shard` serves: the index of the root's
    /// direct child whose subtree contains it (its own index within the
    /// top level for a top-level shard).
    pub fn group_of_shard(&self, shard: usize) -> usize {
        let levels = self.shard_levels();
        assert!(shard < self.n_shards(), "shard {shard} out of range");
        let mut level = 0;
        let mut level_lo = 0;
        while shard >= level_lo + levels[level] {
            level_lo += levels[level];
            level += 1;
        }
        let mut j = shard - level_lo;
        for _ in level + 1..levels.len() {
            j /= self.shard_fanout;
        }
        j
    }

    /// Initial strategy id of group `g`: round-robin over the portfolio
    /// (`0` — the uniform strategy — when no portfolio is configured).
    /// Every process derives the same round-0 assignment locally from
    /// the config; later rounds may be reassigned by the root's
    /// reallocator via the strategy byte on `Broadcast`/`GroupBroadcast`.
    pub fn initial_strategy_of_group(&self, g: usize) -> u8 {
        if self.portfolio.is_empty() {
            0
        } else {
            (g % self.portfolio.len()) as u8
        }
    }

    /// Initial strategy id of TSW `i` (its group's round-0 assignment).
    pub fn initial_strategy_of_tsw(&self, i: usize) -> u8 {
        self.initial_strategy_of_group(self.group_of_tsw(i))
    }

    /// Translate to the placement evaluator configuration.
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            alpha: self.alpha,
            scheme: match self.cost {
                CostKind::Fuzzy => SchemeChoice::Fuzzy { beta: self.beta },
                CostKind::WeightedSum => SchemeChoice::WeightedSum {
                    weights: self.weights,
                },
            },
            goal: GoalConfig {
                target_frac: self.goal_target_frac,
                zero_frac: self.goal_zero_frac,
            },
        }
    }

    /// Validate structural parameters; [`crate::builder::RunBuilder::build`]
    /// calls this so a [`crate::builder::PtsRun`] is valid by construction.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_tsw == 0 {
            return Err(ConfigError::NoTabuSearchWorkers);
        }
        if self.n_clw == 0 {
            return Err(ConfigError::NoCandidateListWorkers);
        }
        if self.global_iters == 0 || self.local_iters == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        self.search.validate(self.diversify)?;
        if self.portfolio.len() > 255 {
            return Err(ConfigError::PortfolioTooLarge(self.portfolio.len()));
        }
        for s in &self.portfolio {
            s.validate(self.diversify)?;
        }
        if !(self.report_fraction > 0.0 && self.report_fraction <= 1.0) {
            return Err(ConfigError::ReportFractionOutOfRange(self.report_fraction));
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return Err(ConfigError::BetaOutOfRange(self.beta));
        }
        if self.shard_fanout == 1 && self.n_tsw > 1 {
            return Err(ConfigError::ShardFanoutTooSmall);
        }
        if !(self.liveness_timeout >= 0.0 && self.liveness_timeout.is_finite()) {
            return Err(ConfigError::LivenessTimeoutInvalid(self.liveness_timeout));
        }
        Ok(())
    }
}

/// `i`-th of `k` near-equal chunks of `0..n` (first chunks take the
/// remainder). Never empty while `i < k <= n`.
pub fn split_range(n: usize, k: usize, i: usize) -> (usize, usize) {
    assert!(k >= 1 && i < k);
    let base = n / k;
    let rem = n % k;
    let lo = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    (lo, lo + len)
}

/// [`split_range`] that stays non-empty when workers outnumber items:
/// with `k > n` the effective worker count is clamped to `n` and worker
/// `i` takes chunk `i mod n`. Identical to [`split_range`] for `k <= n`,
/// which keeps pre-existing (golden-pinned) schedules intact.
pub fn wrapped_range(n: usize, k: usize, i: usize) -> (usize, usize) {
    assert!(k >= 1 && i < k, "worker index {i} out of range for {k}");
    assert!(n >= 1, "cannot partition an empty item space");
    let k_eff = k.min(n);
    split_range(n, k_eff, i % k_eff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_disjoint_and_dense() {
        let cfg = PtsConfig {
            n_tsw: 3,
            n_clw: 2,
            ..PtsConfig::default()
        };
        let mut seen = vec![cfg.master_rank()];
        for i in 0..3 {
            seen.push(cfg.tsw_rank(i));
            for j in 0..2 {
                seen.push(cfg.clw_rank(i, j));
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..cfg.total_procs()).collect::<Vec<_>>());
    }

    #[test]
    fn split_range_partitions() {
        for n in [10, 56, 395, 2243] {
            for k in 1..=8 {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..k {
                    let (lo, hi) = split_range(n, k, i);
                    assert_eq!(lo, prev_end, "ranges must be contiguous");
                    assert!(hi > lo, "ranges must be non-empty for n >= k");
                    covered += hi - lo;
                    prev_end = hi;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn wrapped_range_handles_more_workers_than_items() {
        // 8 workers over 3 items: ranges cycle over the 3 real chunks.
        for i in 0..8 {
            let (lo, hi) = wrapped_range(3, 8, i);
            assert_eq!((lo, hi), (i % 3, i % 3 + 1));
        }
        // k <= n: identical to split_range (golden schedules preserved).
        for n in [10, 56, 395] {
            for k in 1..=8 {
                for i in 0..k {
                    assert_eq!(wrapped_range(n, k, i), split_range(n, k, i));
                }
            }
        }
    }

    #[test]
    fn oversubscribed_config_ranges_are_non_empty() {
        let cfg = PtsConfig {
            n_tsw: 1000,
            n_clw: 4,
            ..PtsConfig::default()
        };
        for i in 0..1000 {
            let (lo, hi) = cfg.tsw_range(i, 56);
            assert!(lo < hi && hi <= 56);
        }
    }

    #[test]
    fn flat_topology_has_no_shards() {
        for fanout in [0usize, 8, 9, 100] {
            let cfg = PtsConfig {
                n_tsw: 8,
                shard_fanout: fanout,
                ..PtsConfig::default()
            };
            assert!(cfg.is_flat());
            assert_eq!(cfg.n_shards(), 0);
            assert_eq!(cfg.shard_levels(), Vec::<usize>::new());
            assert_eq!(cfg.root_children(), ShardChildren::Tsws { lo: 0, hi: 8 });
            assert_eq!(cfg.parent_of_tsw(3), 0);
            assert_eq!(cfg.total_procs(), 1 + 8 + 8 * cfg.n_clw);
        }
    }

    #[test]
    fn single_level_shard_tree() {
        // 8 TSWs, fan-out 4: two leaf sub-masters report to the root.
        let cfg = PtsConfig {
            n_tsw: 8,
            n_clw: 1,
            shard_fanout: 4,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.shard_levels(), vec![2]);
        assert_eq!(cfg.n_shards(), 2);
        assert_eq!(cfg.total_procs(), 1 + 8 + 8 + 2);
        assert_eq!(cfg.shard_rank(0), 17);
        assert_eq!(cfg.shard_rank(1), 18);
        assert_eq!(cfg.root_children(), ShardChildren::Shards { lo: 0, hi: 2 });
        for i in 0..4 {
            assert_eq!(cfg.parent_of_tsw(i), 17);
            assert_eq!(cfg.parent_of_tsw(i + 4), 18);
        }
        for s in 0..2 {
            let spec = cfg.shard_spec(s);
            assert_eq!(spec.parent_rank, 0);
            assert_eq!(
                spec.children,
                ShardChildren::Tsws {
                    lo: s * 4,
                    hi: s * 4 + 4
                }
            );
        }
    }

    #[test]
    fn multi_level_shard_tree() {
        // 6 TSWs, fan-out 2: 3 leaf shards, then 2 inner shards, root
        // collects the 2 inner ones. Every node has <= fanout children.
        let cfg = PtsConfig {
            n_tsw: 6,
            n_clw: 1,
            shard_fanout: 2,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.shard_levels(), vec![3, 2]);
        assert_eq!(cfg.n_shards(), 5);
        assert_eq!(cfg.root_children(), ShardChildren::Shards { lo: 3, hi: 5 });
        // Leaf shards own TSW pairs and report to the inner level.
        assert_eq!(
            cfg.shard_spec(0),
            ShardSpec {
                id: 0,
                parent_rank: cfg.shard_rank(3),
                children: ShardChildren::Tsws { lo: 0, hi: 2 }
            }
        );
        assert_eq!(
            cfg.shard_spec(2),
            ShardSpec {
                id: 2,
                parent_rank: cfg.shard_rank(4),
                children: ShardChildren::Tsws { lo: 4, hi: 6 }
            }
        );
        // Inner shards collect leaf shards and report to the root; the
        // last group takes the remainder (one child).
        assert_eq!(
            cfg.shard_spec(3),
            ShardSpec {
                id: 3,
                parent_rank: 0,
                children: ShardChildren::Shards { lo: 0, hi: 2 }
            }
        );
        assert_eq!(
            cfg.shard_spec(4),
            ShardSpec {
                id: 4,
                parent_rank: 0,
                children: ShardChildren::Shards { lo: 2, hi: 3 }
            }
        );
    }

    #[test]
    fn shard_tree_covers_every_tsw_and_shard_exactly_once() {
        for (n_tsw, fanout) in [(1024usize, 32usize), (1000, 7), (64, 3), (5, 2)] {
            let cfg = PtsConfig {
                n_tsw,
                shard_fanout: fanout,
                ..PtsConfig::default()
            };
            let mut tsw_parent = vec![None; n_tsw];
            let mut shard_parent = vec![None; cfg.n_shards()];
            let mut note = |children: ShardChildren, parent: usize| match children {
                ShardChildren::Tsws { lo, hi } => {
                    for slot in &mut tsw_parent[lo..hi] {
                        assert!(slot.replace(parent).is_none());
                    }
                }
                ShardChildren::Shards { lo, hi } => {
                    for slot in &mut shard_parent[lo..hi] {
                        assert!(slot.replace(parent).is_none());
                    }
                }
            };
            note(cfg.root_children(), cfg.master_rank());
            for s in 0..cfg.n_shards() {
                let spec = cfg.shard_spec(s);
                assert!(!spec.children.is_empty() && spec.children.len() <= fanout);
                note(spec.children, cfg.shard_rank(s));
            }
            // Every TSW has exactly one parent, consistent with
            // parent_of_tsw; every shard is collected exactly once.
            for (i, p) in tsw_parent.iter().enumerate() {
                assert_eq!(p.unwrap(), cfg.parent_of_tsw(i));
            }
            for (s, p) in shard_parent.iter().enumerate() {
                let expect = cfg.shard_spec(s).parent_rank;
                assert_eq!(p.unwrap(), expect);
            }
            // Root degree is bounded by the fan-out, the whole point.
            assert!(cfg.root_children().len() <= fanout);
        }
    }

    #[test]
    fn sharded_ranks_are_disjoint_and_dense() {
        let cfg = PtsConfig {
            n_tsw: 5,
            n_clw: 2,
            shard_fanout: 2,
            ..PtsConfig::default()
        };
        let mut seen = vec![cfg.master_rank()];
        for i in 0..5 {
            seen.push(cfg.tsw_rank(i));
            for j in 0..2 {
                seen.push(cfg.clw_rank(i, j));
            }
        }
        for s in 0..cfg.n_shards() {
            seen.push(cfg.shard_rank(s));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..cfg.total_procs()).collect::<Vec<_>>());
    }

    #[test]
    fn auto_fanout_picks_sqrt_and_pins_tree_shapes() {
        // f ≈ sqrt(n_tsw): the adaptive choice and the exact tree it
        // builds, pinned at the sizes the scaling benchmarks use.
        for (n_tsw, expect_f, expect_levels) in [
            (16usize, 4usize, vec![4usize]),
            (64, 8, vec![8]),
            (1024, 32, vec![32]),
        ] {
            let f = PtsConfig::auto_shard_fanout(n_tsw);
            assert_eq!(f, expect_f, "auto fan-out at n_tsw={n_tsw}");
            let cfg = PtsConfig {
                n_tsw,
                shard_fanout: f,
                ..PtsConfig::default()
            };
            cfg.validate().unwrap();
            assert_eq!(cfg.shard_levels(), expect_levels);
            assert_eq!(cfg.root_children().len(), expect_f);
            // One perfectly balanced level: every leaf owns exactly f
            // TSWs, the root exactly f sub-masters.
            for s in 0..cfg.n_shards() {
                assert_eq!(cfg.shard_spec(s).children.len(), expect_f);
            }
        }
        // Non-square and tiny sizes: rounds to the nearest integer, and
        // degenerates to flat where a tree cannot contract.
        assert_eq!(PtsConfig::auto_shard_fanout(1000), 32);
        assert_eq!(PtsConfig::auto_shard_fanout(5), 2);
        assert_eq!(PtsConfig::auto_shard_fanout(4), 2);
        assert_eq!(PtsConfig::auto_shard_fanout(3), 2);
        for tiny in [1usize, 2] {
            assert_eq!(PtsConfig::auto_shard_fanout(tiny), 0, "n_tsw={tiny}");
        }
    }

    #[test]
    fn fanout_of_one_is_rejected() {
        let cfg = PtsConfig {
            n_tsw: 4,
            shard_fanout: 1,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ShardFanoutTooSmall));
        // One TSW with fan-out 1 is flat, hence valid.
        let cfg = PtsConfig {
            n_tsw: 1,
            shard_fanout: 1,
            ..PtsConfig::default()
        };
        assert!(cfg.validate().is_ok());
        assert!(cfg.is_flat());
    }

    #[test]
    fn wrapped_range_remainder_goes_to_leading_workers() {
        // 10 items over 4 workers: the 2-item remainder widens the first
        // two chunks; the last worker (i = k-1) gets the narrow tail.
        assert_eq!(wrapped_range(10, 4, 0), (0, 3));
        assert_eq!(wrapped_range(10, 4, 1), (3, 6));
        assert_eq!(wrapped_range(10, 4, 2), (6, 8));
        assert_eq!(wrapped_range(10, 4, 3), (8, 10));
    }

    #[test]
    fn wrapped_range_oversubscribed_last_worker_wraps() {
        // k > n with remainder: worker k-1 lands on chunk (k-1) mod n and
        // still receives a non-empty range.
        let (lo, hi) = wrapped_range(3, 1000, 999);
        assert_eq!((lo, hi), wrapped_range(3, 1000, 999 % 3));
        assert!(lo < hi && hi <= 3);
        // Exactly one extra worker: wraps to chunk 0.
        assert_eq!(wrapped_range(4, 5, 4), wrapped_range(4, 5, 0));
    }

    #[test]
    #[should_panic(expected = "empty item space")]
    fn wrapped_range_rejects_zero_items() {
        wrapped_range(0, 4, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wrapped_range_rejects_out_of_range_worker() {
        wrapped_range(10, 4, 4);
    }

    #[test]
    fn quorum_half_rounds_up_for_odd_groups() {
        // Sub-masters apply the quorum to their own (often small, often
        // odd) groups: ceil semantics must hold at every size.
        let cfg = PtsConfig::default();
        assert_eq!(cfg.report_quorum(3), 2);
        assert_eq!(cfg.report_quorum(7), 4);
        assert_eq!(cfg.report_quorum(9), 5);
        // A leaf group of one can never be forced (quorum == group).
        assert_eq!(cfg.report_quorum(1), 1);
    }

    #[test]
    fn quorum_half_rounds_up() {
        let cfg = PtsConfig::default();
        assert_eq!(cfg.report_quorum(4), 2);
        assert_eq!(cfg.report_quorum(5), 3);
        assert_eq!(cfg.report_quorum(1), 1);
    }

    #[test]
    fn quorum_clamps() {
        let cfg = PtsConfig {
            report_fraction: 0.01,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.report_quorum(4), 1);
        let cfg = PtsConfig {
            report_fraction: 1.0,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.report_quorum(4), 4);
    }

    #[test]
    fn default_validates() {
        PtsConfig::default().validate().unwrap();
    }

    #[test]
    fn diversify_depth_auto_scales_and_clamps() {
        let cfg = PtsConfig::default();
        assert_eq!(cfg.effective_diversify_depth(56), 3);
        assert_eq!(cfg.effective_diversify_depth(395), 7);
        assert_eq!(cfg.effective_diversify_depth(1451), 13);
        assert_eq!(cfg.effective_diversify_depth(2243), 16);
        let explicit = PtsConfig {
            search: SearchStrategy {
                diversify_depth: 11,
                ..SearchStrategy::default()
            },
            ..PtsConfig::default()
        };
        assert_eq!(explicit.effective_diversify_depth(2243), 11);
    }

    #[test]
    fn strategy_resolution_and_initial_assignment() {
        // Empty portfolio: every id resolves to the uniform strategy and
        // every group starts on id 0.
        let uniform = PtsConfig::default();
        assert_eq!(uniform.strategy(0), &uniform.search);
        assert_eq!(uniform.strategy(7), &uniform.search);
        assert_eq!(uniform.initial_strategy_of_group(3), 0);
        // Two-strategy portfolio over 4 flat TSWs: round-robin start,
        // out-of-range ids clamp instead of panicking.
        let a = SearchStrategy {
            tenure: 3,
            ..SearchStrategy::default()
        };
        let b = SearchStrategy {
            tenure: 19,
            ..SearchStrategy::default()
        };
        let cfg = PtsConfig {
            portfolio: vec![a, b],
            ..PtsConfig::default()
        };
        cfg.validate().unwrap();
        assert_eq!(cfg.n_groups(), 4);
        for i in 0..4 {
            assert_eq!(cfg.group_of_tsw(i), i);
            assert_eq!(cfg.initial_strategy_of_tsw(i), (i % 2) as u8);
        }
        assert_eq!(cfg.strategy(0), &a);
        assert_eq!(cfg.strategy(1), &b);
        assert_eq!(cfg.strategy(2), &a, "ids wrap into the portfolio");
    }

    #[test]
    fn groups_follow_the_shard_tree() {
        // 8 TSWs, fan-out 4: two top-level shards = two groups.
        let cfg = PtsConfig {
            n_tsw: 8,
            shard_fanout: 4,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.n_groups(), 2);
        for i in 0..8 {
            assert_eq!(cfg.group_of_tsw(i), i / 4);
        }
        assert_eq!(cfg.group_of_shard(0), 0);
        assert_eq!(cfg.group_of_shard(1), 1);
        // Two-level tree (6 TSWs, fan-out 2): groups are the *top* level
        // children; leaves map through their ancestors.
        let cfg = PtsConfig {
            n_tsw: 6,
            shard_fanout: 2,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.shard_levels(), vec![3, 2]);
        assert_eq!(cfg.n_groups(), 2);
        assert_eq!(
            (0..6).map(|i| cfg.group_of_tsw(i)).collect::<Vec<_>>(),
            vec![0, 0, 0, 0, 1, 1]
        );
        // Leaf shards 0,1 sit under top shard 3 (group 0); leaf 2 under
        // top shard 4 (group 1); the top shards are their own groups.
        assert_eq!(cfg.group_of_shard(0), 0);
        assert_eq!(cfg.group_of_shard(1), 0);
        assert_eq!(cfg.group_of_shard(2), 1);
        assert_eq!(cfg.group_of_shard(3), 0);
        assert_eq!(cfg.group_of_shard(4), 1);
        // Group of a TSW always matches the group of its leaf shard.
        for i in 0..6 {
            assert_eq!(
                cfg.group_of_tsw(i),
                cfg.group_of_shard(i / cfg.shard_fanout)
            );
        }
    }

    #[test]
    fn portfolio_entries_are_validated() {
        let bad = PtsConfig {
            portfolio: vec![SearchStrategy {
                candidates: 0,
                ..SearchStrategy::default()
            }],
            ..PtsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::ZeroMoveBudget));
        let bad = PtsConfig {
            portfolio: vec![SearchStrategy {
                diversify_width: 0,
                ..SearchStrategy::default()
            }],
            ..PtsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::ZeroDiversifyWidth));
        let huge = PtsConfig {
            portfolio: vec![SearchStrategy::default(); 256],
            ..PtsConfig::default()
        };
        assert_eq!(huge.validate(), Err(ConfigError::PortfolioTooLarge(256)));
    }

    #[test]
    fn validation_catches_zeroes() {
        let cfg = PtsConfig {
            n_tsw: 0,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::NoTabuSearchWorkers));
        let cfg = PtsConfig {
            local_iters: 0,
            ..PtsConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroIterations));
        let cfg = PtsConfig {
            report_fraction: 0.0,
            ..PtsConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ReportFractionOutOfRange(0.0))
        );
    }
}
