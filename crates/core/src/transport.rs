//! Transport abstraction: the same master/TSW/CLW code runs on the virtual
//! cluster (deterministic, heterogeneous, virtual time), on native threads
//! (real parallel wall-clock execution), and on the two cooperative task
//! runtimes (thousands of logical workers on one thread — wall clock or
//! virtual time).
//!
//! The protocol loops are `async`: [`Transport::recv`] and
//! [`Transport::compute`] are their suspension points. Blocking
//! substrates (the virtual cluster, native threads) resolve both futures
//! on their first poll — they block *inside* the poll, so driving their
//! protocol futures with [`drive_sync`] never actually suspends. The
//! cooperative substrates suspend for real: [`TaskTransport`] returns
//! `Pending` on an empty mailbox, and [`VirtualTransport`] additionally
//! parks inside `compute` until the charged work completes on the task's
//! machine — which is what lets one OS thread interleave thousands of
//! workers in FIFO order or under a virtual clock, respectively.
//!
//! All transports account per-process metrics into the same
//! [`ProcStats`] shape, which is what lets the engines return one unified
//! [`crate::report::RunReport`] regardless of substrate.

use crate::domain::PtsProblem;
use crate::messages::PtsMsg;
use pts_vcluster::{ProcCtx, ProcId, ProcStats, TaskCtx, VirtualTaskCtx};
use std::future::Future;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::task::Poll;
use std::time::Instant;

/// Process-side communication + time + work accounting.
pub trait Transport<P: PtsProblem> {
    /// This process's rank in the PTS topology.
    fn rank(&self) -> usize;
    /// Seconds since the run started (virtual or wall).
    fn now(&self) -> f64;
    /// Charge CPU work (advances virtual time; wall-clock engines only
    /// record it — real computation takes real time).
    ///
    /// Like [`Transport::recv`] this is a suspension point: on the
    /// virtual-time cooperative substrate ([`VirtualTransport`]) the task
    /// parks until the charged work completes on its machine, which is
    /// how one OS thread interleaves thousands of workers *in virtual
    /// time*. All other transports resolve on first poll (blocking
    /// substrates block inside the call; wall-clock engines only record
    /// the units).
    fn compute(&mut self, work: f64) -> impl Future<Output = ()>;
    /// Deliver `msg` to the process at rank `dst`.
    fn send(&mut self, dst: usize, msg: PtsMsg<P>);
    /// Wait for the next message — the protocol's main suspension point.
    /// Blocking transports resolve on first poll; the cooperative
    /// transport parks the task until a message arrives.
    fn recv(&mut self) -> impl Future<Output = PtsMsg<P>>;
    /// Take a message if one has already arrived; never waits.
    fn try_recv(&mut self) -> Option<PtsMsg<P>>;
    /// Wait for the next message, giving up at absolute time `deadline`
    /// (in this transport's clock): `None` means the deadline passed with
    /// nothing delivered. The default never times out — only substrates
    /// with a controllable clock (the virtual-time transport) override
    /// it, which is where the round-liveness timeout is meaningful; on
    /// blocking substrates a lost peer is a lost channel, not a silence.
    fn recv_deadline(&mut self, deadline: f64) -> impl Future<Output = Option<PtsMsg<P>>> {
        let _ = deadline;
        async move { Some(self.recv().await) }
    }
    /// Scheduling point inside a long compute stretch. On substrates
    /// where peers progress independently (virtual cluster, threads) this
    /// is a no-op; the cooperative transport re-enqueues the task so
    /// siblings run — and messages sent mid-stretch (a `CutShort`) can
    /// arrive before the stretch completes.
    fn yield_now(&mut self) -> impl Future<Output = ()> {
        std::future::ready(())
    }
}

/// Protocol-anomaly note: a message was dropped because it did not fit
/// the protocol state (stale round, duplicate child, unexpected type).
/// These indicate a misbehaving peer — never a normal execution path — so
/// they go to stderr unconditionally; in debug builds they are loud but
/// non-fatal, matching the release behaviour the regression tests pin.
pub(crate) fn protocol_warn(rank: usize, what: &str) {
    eprintln!("pts protocol [rank {rank}]: {what}");
}

/// Drive a protocol future built over a *blocking* transport.
///
/// [`SimTransport`] and [`ThreadTransport`] block inside `poll` (the
/// virtual-cluster token hand-off, a channel `recv`), so their protocol
/// futures complete on the first poll. This is the synchronous engines'
/// bridge to the shared `async` protocol code.
///
/// # Panics
///
/// If the future suspends — that would mean it was built over a
/// cooperative transport, which only the task-cluster executor can drive.
pub fn drive_sync<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = std::task::Context::from_waker(std::task::Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(out) => out,
        Poll::Pending => unreachable!("blocking transports never suspend"),
    }
}

/// Virtual-cluster transport: ranks coincide with simulated process ids
/// (processes are spawned in rank order).
pub struct SimTransport<P: PtsProblem> {
    /// The simulated process handle this transport wraps.
    pub ctx: ProcCtx<PtsMsg<P>>,
}

impl<P: PtsProblem> Transport<P> for SimTransport<P> {
    fn rank(&self) -> usize {
        self.ctx.id().index()
    }

    fn now(&self) -> f64 {
        self.ctx.now()
    }

    fn compute(&mut self, work: f64) -> impl Future<Output = ()> {
        // Blocks inside the call (virtual-cluster token hand-off); the
        // returned future is already complete.
        self.ctx.compute(work);
        std::future::ready(())
    }

    fn send(&mut self, dst: usize, msg: PtsMsg<P>) {
        let bytes = msg.wire_size();
        crate::meter::note_send(&msg);
        self.ctx.send_sized(ProcId(dst), msg, bytes);
    }

    fn recv(&mut self) -> impl Future<Output = PtsMsg<P>> {
        // Blocks inside poll: the simulated process hands the token over
        // and resumes with the message — never `Pending`.
        std::future::poll_fn(|_cx| Poll::Ready(self.ctx.recv()))
    }

    fn try_recv(&mut self) -> Option<PtsMsg<P>> {
        self.ctx.try_recv()
    }
}

/// Shared per-rank stats sink filled as thread transports retire.
pub type StatsSink = Arc<Mutex<Vec<ProcStats>>>;

/// Native-thread transport over std mpsc channels. Counts messages,
/// bytes, charged work, and recv wait time so the thread engine can report
/// the same per-process metrics shape as the simulator.
pub struct ThreadTransport<P: PtsProblem> {
    rank: usize,
    start: Instant,
    senders: Vec<Sender<PtsMsg<P>>>,
    receiver: Receiver<PtsMsg<P>>,
    stats: ProcStats,
    sink: StatsSink,
    /// This thread's CPU time when [`ThreadTransport::mark_thread_start`]
    /// ran — the baseline `busy_time` is measured from. `None` until the
    /// owning thread marks itself (the transport is constructed on the
    /// spawning thread, whose CPU time is not this worker's).
    cpu_baseline: Option<f64>,
}

impl<P: PtsProblem> ThreadTransport<P> {
    /// Wire up rank `rank`: one sender per peer, this rank's receiver, and
    /// the shared sink its stats are deposited into on drop.
    pub fn new(
        rank: usize,
        start: Instant,
        senders: Vec<Sender<PtsMsg<P>>>,
        receiver: Receiver<PtsMsg<P>>,
        sink: StatsSink,
    ) -> ThreadTransport<P> {
        ThreadTransport {
            rank,
            start,
            senders,
            receiver,
            stats: ProcStats::default(),
            sink,
            cpu_baseline: None,
        }
    }

    /// Start per-thread CPU accounting — call on the thread that will
    /// drive the protocol, before its first protocol step. On Linux the
    /// thread's CPU time from here to drop is reported as `busy_time`
    /// (via `getrusage(RUSAGE_THREAD)`), which is what makes
    /// [`crate::report::RunReport::utilization`] meaningful on the
    /// thread engine; elsewhere busy time stays 0.
    pub fn mark_thread_start(&mut self) {
        self.cpu_baseline = pts_util::thread_cpu_seconds();
    }

    fn recv_blocking(&mut self) -> PtsMsg<P> {
        let blocked = Instant::now();
        let msg = self
            .receiver
            .recv()
            .expect("peer channels outlive the protocol");
        self.stats.wait_time += blocked.elapsed().as_secs_f64();
        self.stats.messages_received += 1;
        msg
    }
}

impl<P: PtsProblem> Transport<P> for ThreadTransport<P> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn compute(&mut self, work: f64) -> impl Future<Output = ()> {
        // Real computation takes real wall time; only record the units.
        self.stats.work_done += work;
        std::future::ready(())
    }

    fn send(&mut self, dst: usize, msg: PtsMsg<P>) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += msg.wire_size();
        crate::meter::note_send(&msg);
        // A receiver that already processed Stop may be gone; that's fine.
        let _ = self.senders[dst].send(msg);
    }

    fn recv(&mut self) -> impl Future<Output = PtsMsg<P>> {
        // Blocks inside poll on the channel — never `Pending`.
        std::future::poll_fn(|_cx| Poll::Ready(self.recv_blocking()))
    }

    fn try_recv(&mut self) -> Option<PtsMsg<P>> {
        let msg = self.receiver.try_recv().ok()?;
        self.stats.messages_received += 1;
        Some(msg)
    }
}

impl<P: PtsProblem> Drop for ThreadTransport<P> {
    fn drop(&mut self) {
        self.stats.finished_at = self.now();
        // CPU consumed by this worker thread since mark_thread_start:
        // its busy time (channel waits sleep, so they don't count).
        if let (Some(baseline), Some(now_cpu)) = (self.cpu_baseline, pts_util::thread_cpu_seconds())
        {
            self.stats.busy_time = (now_cpu - baseline).max(0.0);
        }
        if let Ok(mut sink) = self.sink.lock() {
            if self.rank < sink.len() {
                sink[self.rank] = std::mem::take(&mut self.stats);
            }
        }
    }
}

/// Cooperative-task transport: ranks coincide with task ids (tasks are
/// spawned in rank order by [`crate::async_engine::AsyncEngine`]). The
/// only transport whose `recv` actually suspends.
pub struct TaskTransport<P: PtsProblem> {
    /// The cooperative task handle this transport wraps.
    pub ctx: TaskCtx<PtsMsg<P>>,
}

impl<P: PtsProblem> Transport<P> for TaskTransport<P> {
    fn rank(&self) -> usize {
        self.ctx.id()
    }

    fn now(&self) -> f64 {
        self.ctx.now()
    }

    fn compute(&mut self, work: f64) -> impl Future<Output = ()> {
        // Wall-clock cooperative substrate: record the units only.
        self.ctx.compute(work);
        std::future::ready(())
    }

    fn send(&mut self, dst: usize, msg: PtsMsg<P>) {
        let bytes = msg.wire_size();
        crate::meter::note_send(&msg);
        self.ctx.send_sized(dst, msg, bytes);
    }

    fn recv(&mut self) -> impl Future<Output = PtsMsg<P>> {
        self.ctx.recv()
    }

    fn try_recv(&mut self) -> Option<PtsMsg<P>> {
        self.ctx.try_recv()
    }

    fn yield_now(&mut self) -> impl Future<Output = ()> {
        self.ctx.yield_now()
    }
}

/// Virtual-time cooperative transport: ranks coincide with task ids
/// (tasks are spawned in rank order by
/// [`crate::virtual_engine::VirtualEngine`]). Both `recv` *and*
/// `compute` suspend — a parked future stands in for a parked simulated
/// process, so the discrete-event executor can interleave thousands of
/// workers under one virtual clock, bit-identically to the
/// thread-per-process virtual cluster.
///
/// `yield_now` keeps the default no-op, matching [`SimTransport`]: on a
/// virtual-time substrate `compute` itself is the scheduling point, so
/// peers already interleave mid-stretch.
pub struct VirtualTransport<P: PtsProblem> {
    /// The virtual-time task handle this transport wraps.
    pub ctx: VirtualTaskCtx<PtsMsg<P>>,
}

impl<P: PtsProblem> Transport<P> for VirtualTransport<P> {
    fn rank(&self) -> usize {
        self.ctx.id()
    }

    fn now(&self) -> f64 {
        self.ctx.now()
    }

    fn compute(&mut self, work: f64) -> impl Future<Output = ()> {
        // Suspends until the charged work completes on this task's
        // machine (speed + background load), advancing virtual time.
        self.ctx.compute(work)
    }

    fn send(&mut self, dst: usize, msg: PtsMsg<P>) {
        let bytes = msg.wire_size();
        crate::meter::note_send(&msg);
        self.ctx.send_sized(dst, msg, bytes);
    }

    fn recv(&mut self) -> impl Future<Output = PtsMsg<P>> {
        self.ctx.recv()
    }

    fn try_recv(&mut self) -> Option<PtsMsg<P>> {
        self.ctx.try_recv()
    }

    fn recv_deadline(&mut self, deadline: f64) -> impl Future<Output = Option<PtsMsg<P>>> {
        // The one substrate where a timeout is well-defined: the
        // discrete-event queue wakes the task at the deadline if nothing
        // arrives first.
        self.ctx.recv_deadline(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_tabu::qap::Qap;
    use std::sync::mpsc::channel;

    fn sink(n: usize) -> StatsSink {
        Arc::new(Mutex::new(vec![ProcStats::default(); n]))
    }

    #[test]
    fn thread_transport_routes_messages() {
        let (s0, r0) = channel();
        let (s1, r1) = channel();
        let start = Instant::now();
        let sk = sink(2);
        let mut a: ThreadTransport<Qap> =
            ThreadTransport::new(0, start, vec![s0.clone(), s1.clone()], r0, Arc::clone(&sk));
        let mut b: ThreadTransport<Qap> = ThreadTransport::new(1, start, vec![s0, s1], r1, sk);
        assert_eq!(Transport::rank(&a), 0);
        assert_eq!(Transport::rank(&b), 1);
        a.send(1, PtsMsg::Stop);
        assert!(matches!(drive_sync(b.recv()), PtsMsg::Stop));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn thread_transport_send_to_dropped_receiver_is_silent() {
        let (s0, r0) = channel();
        let (s1, r1) = channel();
        drop(r1);
        let start = Instant::now();
        let mut a: ThreadTransport<Qap> = ThreadTransport::new(0, start, vec![s0, s1], r0, sink(2));
        a.send(1, PtsMsg::Stop); // must not panic
    }

    #[test]
    fn thread_transport_clock_advances() {
        let (s0, r0) = channel();
        let start = Instant::now();
        let a: ThreadTransport<Qap> = ThreadTransport::new(0, start, vec![s0], r0, sink(1));
        let t1 = a.now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(a.now() > t1);
    }

    #[test]
    fn thread_transport_deposits_stats_on_drop() {
        let (s0, r0) = channel();
        let (s1, r1) = channel();
        let start = Instant::now();
        let sk = sink(2);
        {
            let mut a: ThreadTransport<Qap> =
                ThreadTransport::new(0, start, vec![s0.clone(), s1], r0, Arc::clone(&sk));
            a.send(
                1,
                PtsMsg::Investigate {
                    seq: 1,
                    strategy: 0,
                },
            );
            drive_sync(a.compute(3.0));
            drop(r1);
        }
        let stats = sk.lock().unwrap();
        assert_eq!(stats[0].messages_sent, 1);
        assert!(stats[0].bytes_sent > 0);
        assert!((stats[0].work_done - 3.0).abs() < 1e-12);
        assert!(stats[0].finished_at >= 0.0);
    }

    #[test]
    fn drive_sync_returns_immediately_ready_value() {
        assert_eq!(drive_sync(std::future::ready(42)), 42);
    }

    #[test]
    fn task_transport_routes_messages() {
        use pts_vcluster::TaskCluster;
        let mut cluster: TaskCluster<PtsMsg<Qap>> = TaskCluster::new();
        cluster.spawn(|ctx| async move {
            let mut t = TaskTransport { ctx };
            assert_eq!(Transport::rank(&t), 0);
            assert!(t.try_recv().is_none());
            assert!(matches!(t.recv().await, PtsMsg::Investigate { seq: 9, .. }));
            t.send(1, PtsMsg::Stop);
        });
        cluster.spawn(|ctx| async move {
            let mut t = TaskTransport { ctx };
            t.compute(1.5).await;
            t.send(
                0,
                PtsMsg::Investigate {
                    seq: 9,
                    strategy: 0,
                },
            );
            assert!(matches!(t.recv().await, PtsMsg::Stop));
        });
        let report = cluster.run();
        assert_eq!(report.per_proc[0].messages_sent, 1);
        assert_eq!(report.per_proc[1].messages_received, 1);
        assert!((report.per_proc[1].work_done - 1.5).abs() < 1e-12);
        assert!(report.per_proc[0].bytes_sent > 0, "wire sizes accounted");
    }
}
