//! Transport abstraction: the same master/TSW/CLW code runs on the virtual
//! cluster (deterministic, heterogeneous, virtual time) and on native
//! threads (real parallel wall-clock execution).

use crate::messages::PtsMsg;
use crossbeam::channel::{Receiver, Sender};
use pts_vcluster::{ProcCtx, ProcId};
use std::time::Instant;

/// Process-side communication + time + work accounting.
pub trait Transport {
    /// This process's rank in the PTS topology.
    fn rank(&self) -> usize;
    /// Seconds since the run started (virtual or wall).
    fn now(&self) -> f64;
    /// Charge CPU work (advances virtual time; no-op on native threads,
    /// where real computation takes real time).
    fn compute(&mut self, work: f64);
    fn send(&mut self, dst: usize, msg: PtsMsg);
    fn recv(&mut self) -> PtsMsg;
    fn try_recv(&mut self) -> Option<PtsMsg>;
}

/// Virtual-cluster transport: ranks coincide with simulated process ids
/// (processes are spawned in rank order).
pub struct SimTransport {
    pub ctx: ProcCtx<PtsMsg>,
}

impl Transport for SimTransport {
    fn rank(&self) -> usize {
        self.ctx.id().index()
    }

    fn now(&self) -> f64 {
        self.ctx.now()
    }

    fn compute(&mut self, work: f64) {
        self.ctx.compute(work);
    }

    fn send(&mut self, dst: usize, msg: PtsMsg) {
        let bytes = msg.wire_size();
        self.ctx.send_sized(ProcId(dst), msg, bytes);
    }

    fn recv(&mut self) -> PtsMsg {
        self.ctx.recv()
    }

    fn try_recv(&mut self) -> Option<PtsMsg> {
        self.ctx.try_recv()
    }
}

/// Native-thread transport over crossbeam channels.
pub struct ThreadTransport {
    rank: usize,
    start: Instant,
    senders: Vec<Sender<PtsMsg>>,
    receiver: Receiver<PtsMsg>,
}

impl ThreadTransport {
    pub fn new(
        rank: usize,
        start: Instant,
        senders: Vec<Sender<PtsMsg>>,
        receiver: Receiver<PtsMsg>,
    ) -> ThreadTransport {
        ThreadTransport {
            rank,
            start,
            senders,
            receiver,
        }
    }
}

impl Transport for ThreadTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn compute(&mut self, _work: f64) {
        // Real computation takes real wall time; nothing to account.
    }

    fn send(&mut self, dst: usize, msg: PtsMsg) {
        // A receiver that already processed Stop may be gone; that's fine.
        let _ = self.senders[dst].send(msg);
    }

    fn recv(&mut self) -> PtsMsg {
        self.receiver
            .recv()
            .expect("peer channels outlive the protocol")
    }

    fn try_recv(&mut self) -> Option<PtsMsg> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn thread_transport_routes_messages() {
        let (s0, r0) = unbounded();
        let (s1, r1) = unbounded();
        let start = Instant::now();
        let mut a = ThreadTransport::new(0, start, vec![s0.clone(), s1.clone()], r0);
        let mut b = ThreadTransport::new(1, start, vec![s0, s1], r1);
        assert_eq!(a.rank(), 0);
        assert_eq!(b.rank(), 1);
        a.send(1, PtsMsg::Stop);
        assert!(matches!(b.recv(), PtsMsg::Stop));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn thread_transport_send_to_dropped_receiver_is_silent() {
        let (s0, r0) = unbounded();
        let (s1, r1) = unbounded();
        drop(r1);
        let start = Instant::now();
        let mut a = ThreadTransport::new(0, start, vec![s0, s1], r0);
        a.send(1, PtsMsg::Stop); // must not panic
    }

    #[test]
    fn thread_transport_clock_advances() {
        let (s0, r0) = unbounded();
        let start = Instant::now();
        let a = ThreadTransport::new(0, start, vec![s0], r0);
        let t1 = a.now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(a.now() > t1);
    }
}
