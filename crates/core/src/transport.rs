//! Transport abstraction: the same master/TSW/CLW code runs on the virtual
//! cluster (deterministic, heterogeneous, virtual time) and on native
//! threads (real parallel wall-clock execution).
//!
//! Both transports account per-process metrics into the same
//! [`ProcStats`] shape, which is what lets the engines return one unified
//! [`crate::report::RunReport`] regardless of substrate.

use crate::domain::PtsProblem;
use crate::messages::PtsMsg;
use pts_vcluster::{ProcCtx, ProcId, ProcStats};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-side communication + time + work accounting.
pub trait Transport<P: PtsProblem> {
    /// This process's rank in the PTS topology.
    fn rank(&self) -> usize;
    /// Seconds since the run started (virtual or wall).
    fn now(&self) -> f64;
    /// Charge CPU work (advances virtual time; wall-clock engines only
    /// record it — real computation takes real time).
    fn compute(&mut self, work: f64);
    fn send(&mut self, dst: usize, msg: PtsMsg<P>);
    fn recv(&mut self) -> PtsMsg<P>;
    fn try_recv(&mut self) -> Option<PtsMsg<P>>;
}

/// Virtual-cluster transport: ranks coincide with simulated process ids
/// (processes are spawned in rank order).
pub struct SimTransport<P: PtsProblem> {
    pub ctx: ProcCtx<PtsMsg<P>>,
}

impl<P: PtsProblem> Transport<P> for SimTransport<P> {
    fn rank(&self) -> usize {
        self.ctx.id().index()
    }

    fn now(&self) -> f64 {
        self.ctx.now()
    }

    fn compute(&mut self, work: f64) {
        self.ctx.compute(work);
    }

    fn send(&mut self, dst: usize, msg: PtsMsg<P>) {
        let bytes = msg.wire_size();
        self.ctx.send_sized(ProcId(dst), msg, bytes);
    }

    fn recv(&mut self) -> PtsMsg<P> {
        self.ctx.recv()
    }

    fn try_recv(&mut self) -> Option<PtsMsg<P>> {
        self.ctx.try_recv()
    }
}

/// Shared per-rank stats sink filled as thread transports retire.
pub type StatsSink = Arc<Mutex<Vec<ProcStats>>>;

/// Native-thread transport over std mpsc channels. Counts messages,
/// bytes, charged work, and recv wait time so the thread engine can report
/// the same per-process metrics shape as the simulator.
pub struct ThreadTransport<P: PtsProblem> {
    rank: usize,
    start: Instant,
    senders: Vec<Sender<PtsMsg<P>>>,
    receiver: Receiver<PtsMsg<P>>,
    stats: ProcStats,
    sink: StatsSink,
}

impl<P: PtsProblem> ThreadTransport<P> {
    pub fn new(
        rank: usize,
        start: Instant,
        senders: Vec<Sender<PtsMsg<P>>>,
        receiver: Receiver<PtsMsg<P>>,
        sink: StatsSink,
    ) -> ThreadTransport<P> {
        ThreadTransport {
            rank,
            start,
            senders,
            receiver,
            stats: ProcStats::default(),
            sink,
        }
    }
}

impl<P: PtsProblem> Transport<P> for ThreadTransport<P> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn compute(&mut self, work: f64) {
        // Real computation takes real wall time; only record the units.
        self.stats.work_done += work;
    }

    fn send(&mut self, dst: usize, msg: PtsMsg<P>) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += msg.wire_size();
        // A receiver that already processed Stop may be gone; that's fine.
        let _ = self.senders[dst].send(msg);
    }

    fn recv(&mut self) -> PtsMsg<P> {
        let blocked = Instant::now();
        let msg = self
            .receiver
            .recv()
            .expect("peer channels outlive the protocol");
        self.stats.wait_time += blocked.elapsed().as_secs_f64();
        self.stats.messages_received += 1;
        msg
    }

    fn try_recv(&mut self) -> Option<PtsMsg<P>> {
        let msg = self.receiver.try_recv().ok()?;
        self.stats.messages_received += 1;
        Some(msg)
    }
}

impl<P: PtsProblem> Drop for ThreadTransport<P> {
    fn drop(&mut self) {
        self.stats.finished_at = self.now();
        if let Ok(mut sink) = self.sink.lock() {
            if self.rank < sink.len() {
                sink[self.rank] = std::mem::take(&mut self.stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_tabu::qap::Qap;
    use std::sync::mpsc::channel;

    fn sink(n: usize) -> StatsSink {
        Arc::new(Mutex::new(vec![ProcStats::default(); n]))
    }

    #[test]
    fn thread_transport_routes_messages() {
        let (s0, r0) = channel();
        let (s1, r1) = channel();
        let start = Instant::now();
        let sk = sink(2);
        let mut a: ThreadTransport<Qap> =
            ThreadTransport::new(0, start, vec![s0.clone(), s1.clone()], r0, Arc::clone(&sk));
        let mut b: ThreadTransport<Qap> = ThreadTransport::new(1, start, vec![s0, s1], r1, sk);
        assert_eq!(Transport::rank(&a), 0);
        assert_eq!(Transport::rank(&b), 1);
        a.send(1, PtsMsg::Stop);
        assert!(matches!(b.recv(), PtsMsg::Stop));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn thread_transport_send_to_dropped_receiver_is_silent() {
        let (s0, r0) = channel();
        let (s1, r1) = channel();
        drop(r1);
        let start = Instant::now();
        let mut a: ThreadTransport<Qap> = ThreadTransport::new(0, start, vec![s0, s1], r0, sink(2));
        a.send(1, PtsMsg::Stop); // must not panic
    }

    #[test]
    fn thread_transport_clock_advances() {
        let (s0, r0) = channel();
        let start = Instant::now();
        let a: ThreadTransport<Qap> = ThreadTransport::new(0, start, vec![s0], r0, sink(1));
        let t1 = a.now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(a.now() > t1);
    }

    #[test]
    fn thread_transport_deposits_stats_on_drop() {
        let (s0, r0) = channel();
        let (s1, r1) = channel();
        let start = Instant::now();
        let sk = sink(2);
        {
            let mut a: ThreadTransport<Qap> =
                ThreadTransport::new(0, start, vec![s0.clone(), s1], r0, Arc::clone(&sk));
            a.send(1, PtsMsg::Investigate { seq: 1 });
            a.compute(3.0);
            drop(r1);
        }
        let stats = sk.lock().unwrap();
        assert_eq!(stats[0].messages_sent, 1);
        assert!(stats[0].bytes_sent > 0);
        assert!((stats[0].work_done - 3.0).abs() < 1e-12);
        assert!(stats[0].finished_at >= 0.0);
    }
}
