//! The master side of the protocol: the root collector and, under a
//! sharded topology, the tree of sub-masters — generic over the problem
//! domain.
//!
//! Distributes the initial solution to every worker, then runs
//! `global_iters` rounds: collect one report per TSW — under the
//! heterogeneous policy, forcing stragglers once half have reported —
//! select the overall best, and broadcast it (solution + tabu list) back to
//! all TSWs. One collect+broadcast is one *global iteration*.
//!
//! With `shard_fanout` set (see [`PtsConfig::shard_fanout`]), collection
//! runs over a tree: each leaf sub-master collects its TSW group, applies
//! the quorum/force policy locally, reduces the group to one best
//! (cost + snapshot + merged trace + folded stats), and forwards a single
//! `GroupReport`; inner sub-masters reduce `GroupReport`s the same way;
//! the root reduces the top level and broadcasts the global best back down
//! the tree. Every process then handles O(fan-out) messages per round
//! instead of the root handling O(`n_tsw`).
//!
//! Snapshot handling is delta-aware and zero-copy (see
//! [`crate::messages::SnapshotPayload`]): every collector tracks the
//! [`SnapshotBase`] its children share (the initial solution, then each
//! broadcast as it passes through), resolves incoming payloads against it
//! lazily — only a report that *wins* the reduction is ever materialized
//! — and fans broadcasts out as `Arc` clones, O(1) snapshot allocations
//! per node per round regardless of fan-out. Sub-masters relay broadcast
//! payloads verbatim: everyone below still holds the same base.
//!
//! Both collection loops are *hardened for release builds*: a stale
//! report (earlier round) is dropped silently (it is the one
//! semi-expected anomaly — a late report can legitimately cross control
//! traffic), while a duplicate report (same child twice in one round), a
//! message of an unexpected type, or a delta against a base this node
//! does not hold is dropped with a stderr note. None of them is ever
//! merged into the wrong round. Debug-only assertions used to be the sole
//! guard here, which meant a release build would silently double-count
//! `n_rep` and corrupt or deadlock the round.

use crate::config::{PtsConfig, ShardChildren, SyncPolicy};
use crate::control::RunControl;
use crate::domain::{PtsDomain, SearchOutcome, SnapshotOf};
use crate::messages::{PtsMsg, SharedTabu, SnapshotBase, SnapshotPayload, TabuBase, TabuPayload};
use crate::transport::{protocol_warn, Transport};
use pts_tabu::search::SearchStats;
use pts_tabu::trace::Trace;
use pts_util::Rng;
use std::sync::Arc;

/// Exploration rate of the root's epsilon-greedy strategy reallocator:
/// each group re-rolls a uniformly random portfolio entry with this
/// probability per round, and exploits the best observed mean cost
/// improvement otherwise.
const PORTFOLIO_EPSILON: f64 = 0.2;

/// RNG stream salt for the reallocator — its draws must never perturb
/// any search stream, so it forks its own generator off the run seed.
const PORTFOLIO_RNG_SALT: u64 = 0x5052_5446_4F4C_494F; // "PRTFOLIO"

/// Shorthand for the base/payload types over a domain's problem.
type BaseOf<D> = SnapshotBase<<D as PtsDomain>::Problem>;
type PayloadOf<D> = SnapshotPayload<<D as PtsDomain>::Problem>;
type TabuOf<D> = SharedTabu<<D as PtsDomain>::Problem>;
type TabuPayloadOf<D> = TabuPayload<<D as PtsDomain>::Problem>;

/// Running reduction state shared by the root master and every
/// sub-master: the best solution seen in this node's subtree (kept
/// resolved — deltas are applied the moment they win), the merged trace,
/// the folded final-round statistics, and the forces this node itself
/// issued.
struct Reduction<D: PtsDomain> {
    best_cost: f64,
    best_snapshot: Arc<SnapshotOf<D>>,
    best_tabu: TabuOf<D>,
    merged: Trace,
    stats: SearchStats,
    forced: u64,
    /// Latest *cumulative* best cost each child reported (index = child
    /// offset within this node's group; seeded with the initial cost).
    /// The root's strategy reallocator differences consecutive rounds of
    /// this vector to score portfolio entries.
    child_cost: Vec<f64>,
}

impl<D: PtsDomain> Reduction<D> {
    fn new(initial_cost: f64, initial: Arc<SnapshotOf<D>>, n_children: usize) -> Reduction<D> {
        Reduction {
            best_cost: initial_cost,
            best_snapshot: initial,
            best_tabu: Arc::new(Vec::new()),
            merged: Trace::new(),
            stats: SearchStats::default(),
            forced: 0,
            child_cost: vec![initial_cost; n_children],
        }
    }

    /// Fold one child report into the reduction. Strict `<` keeps the
    /// earliest achiever on cost ties, matching the flat master. Only an
    /// improving payload is resolved to a full snapshot (losing deltas
    /// are never materialized); a winning delta against a base this node
    /// does not hold is a protocol violation — warned and ignored, like
    /// the other malformed-message paths.
    fn offer(
        &mut self,
        rank: usize,
        base: &BaseOf<D>,
        cost: f64,
        payload: PayloadOf<D>,
        tabu: TabuOf<D>,
    ) {
        if cost < self.best_cost {
            match payload.resolve(base) {
                Some(full) => {
                    self.best_cost = cost;
                    self.best_snapshot = full;
                    self.best_tabu = tabu;
                }
                None => protocol_warn(
                    rank,
                    "ignoring winning report delta against a base this collector does not hold",
                ),
            }
        }
    }

    fn fold_stats(&mut self, stats: &SearchStats) {
        self.stats.iterations += stats.iterations;
        self.stats.accepted += stats.accepted;
        self.stats.rejected_tabu += stats.rejected_tabu;
        self.stats.aspirated += stats.aspirated;
        self.stats.improved_best += stats.improved_best;
    }

    /// Collect one round-`g` report per *live* TSW in `lo..hi`, applying
    /// the quorum/force policy as this group's parent. Used by the flat
    /// root and by leaf sub-masters.
    ///
    /// Fault tolerance: `dead[i - lo]` marks children whose death notice
    /// ([`PtsMsg::Down`]) has arrived — they are excused from the round
    /// (a report already folded still counts), excluded from the
    /// force/quorum arithmetic, and stay dead for the rest of the run.
    /// `deadline`, when set, bounds the whole collection: silence past it
    /// (a stalled but not-dead child, e.g. a paused machine) completes
    /// the round with the reports in hand — the straggler's stale report
    /// is dropped by the round guard next round and it resynchronizes on
    /// the broadcast already sitting in its mailbox. Fault-free runs
    /// (`dead` all false, `deadline` `None`) take exactly the historical
    /// path.
    #[allow(clippy::too_many_arguments)]
    async fn collect_tsw_round<T: Transport<D::Problem>>(
        &mut self,
        t: &mut T,
        cfg: &PtsConfig,
        base: &BaseOf<D>,
        g: u32,
        lo: usize,
        hi: usize,
        dead: &mut [bool],
        deadline: Option<f64>,
    ) {
        let n = hi - lo;
        let final_round = g + 1 == cfg.global_iters;
        let mut reported = vec![false; n];
        let mut n_rep = 0;
        let mut force_sent = false;

        loop {
            // Children that died without reporting are excused; the round
            // completes when every survivor has reported.
            let excused = dead
                .iter()
                .zip(reported.iter())
                .filter(|&(&d, &r)| d && !r)
                .count();
            let n_alive = n - excused;
            if n_rep >= n_alive {
                break;
            }
            let msg = match deadline {
                None => t.recv().await,
                Some(d) => match t.recv_deadline(d).await {
                    Some(m) => m,
                    None => {
                        protocol_warn(
                            t.rank(),
                            &format!(
                                "liveness timeout collecting round {g}: proceeding with {n_rep}/{n_alive} reports"
                            ),
                        );
                        break;
                    }
                },
            };
            match msg {
                PtsMsg::Down { rank } => {
                    let i = rank.wrapping_sub(1); // tsw_rank(i) = 1 + i
                    if (lo..hi).contains(&i) {
                        if !dead[i - lo] {
                            dead[i - lo] = true;
                            protocol_warn(t.rank(), &format!("TSW {i} (rank {rank}) is down"));
                        }
                    } else {
                        protocol_warn(
                            t.rank(),
                            &format!(
                                "ignoring Down for rank {rank} (not a child of this collector)"
                            ),
                        );
                    }
                }
                PtsMsg::Report {
                    tsw,
                    global,
                    cost,
                    snapshot,
                    tabu,
                    trace,
                    stats,
                } => {
                    // Release-mode protocol hardening: reports are
                    // strictly per-round and per-child; anything else is
                    // dropped, never merged into the wrong round.
                    if global < g {
                        // Stale: a late report from an earlier round.
                        continue;
                    }
                    if global > g || tsw < lo || tsw >= hi {
                        protocol_warn(
                            t.rank(),
                            &format!("dropping Report from TSW {tsw} for round {global} (collecting {lo}..{hi} round {g})"),
                        );
                        continue;
                    }
                    if reported[tsw - lo] {
                        protocol_warn(
                            t.rank(),
                            &format!("rejecting duplicate Report from TSW {tsw} in round {g}"),
                        );
                        continue;
                    }
                    reported[tsw - lo] = true;
                    n_rep += 1;
                    self.child_cost[tsw - lo] = cost;
                    t.compute(cfg.work.per_report).await;
                    self.merged = Trace::merge([&self.merged, &Trace::from_points(trace)]);
                    self.offer(t.rank(), base, cost, snapshot, tabu);
                    // Stats are cumulative per TSW; summing every round
                    // would over-count, so fold them in on the final round
                    // only.
                    if final_round {
                        self.fold_stats(&stats);
                    }
                    // Quorum over the children still alive: the dead can
                    // neither report nor be forced. With no deaths this
                    // is the historical fixed quorum over all n.
                    let n_alive = n - dead
                        .iter()
                        .zip(reported.iter())
                        .filter(|&(&d, &r)| d && !r)
                        .count();
                    if cfg.tsw_sync == SyncPolicy::HalfReport
                        && !force_sent
                        && n_rep >= cfg.report_quorum(n_alive)
                        && n_rep < n_alive
                    {
                        for (idx, done) in reported.iter().enumerate() {
                            if !done && !dead[idx] {
                                t.send(cfg.tsw_rank(lo + idx), PtsMsg::ForceReport { global: g });
                                self.forced += 1;
                            }
                        }
                        force_sent = true;
                    }
                }
                other => {
                    protocol_warn(
                        t.rank(),
                        &format!(
                            "dropping unexpected {} while collecting TSW reports",
                            other.tag()
                        ),
                    );
                }
            }
        }
    }

    /// Collect one round-`g` `GroupReport` per *live* sub-master in
    /// `lo..hi`. Used by the sharded root and by inner sub-masters; the
    /// straggler policy lives at the leaf level, so group collection
    /// waits for every surviving child. `child_forced[s - lo]` tracks
    /// each subtree's cumulative force count. `dead` and `deadline` work
    /// as in [`Reduction::collect_tsw_round`].
    #[allow(clippy::too_many_arguments)]
    async fn collect_group_round<T: Transport<D::Problem>>(
        &mut self,
        t: &mut T,
        cfg: &PtsConfig,
        base: &BaseOf<D>,
        g: u32,
        lo: usize,
        hi: usize,
        child_forced: &mut [u64],
        dead: &mut [bool],
        deadline: Option<f64>,
    ) {
        let n = hi - lo;
        let final_round = g + 1 == cfg.global_iters;
        let mut reported = vec![false; n];
        let mut n_rep = 0;
        // Rank of shard 0; shard s occupies shard_rank_base + s.
        let shard_rank_base = 1 + cfg.n_tsw + cfg.n_tsw * cfg.n_clw;

        loop {
            let excused = dead
                .iter()
                .zip(reported.iter())
                .filter(|&(&d, &r)| d && !r)
                .count();
            if n_rep >= n - excused {
                break;
            }
            let msg = match deadline {
                None => t.recv().await,
                Some(d) => match t.recv_deadline(d).await {
                    Some(m) => m,
                    None => {
                        protocol_warn(
                            t.rank(),
                            &format!(
                                "liveness timeout collecting group round {g}: proceeding with {n_rep}/{} reports",
                                n - excused
                            ),
                        );
                        break;
                    }
                },
            };
            match msg {
                PtsMsg::Down { rank } => {
                    let s = rank.wrapping_sub(shard_rank_base);
                    if (lo..hi).contains(&s) {
                        if !dead[s - lo] {
                            dead[s - lo] = true;
                            protocol_warn(t.rank(), &format!("shard {s} (rank {rank}) is down"));
                        }
                    } else {
                        protocol_warn(
                            t.rank(),
                            &format!(
                                "ignoring Down for rank {rank} (not a child of this collector)"
                            ),
                        );
                    }
                }
                PtsMsg::GroupReport {
                    shard,
                    global,
                    cost,
                    snapshot,
                    tabu,
                    trace,
                    stats,
                    forced,
                    // The root scores strategies against its own
                    // assignment map (deterministic even where a relayed
                    // tag could lag a round); the tag and the qps are
                    // diagnostics for observers on the wire.
                    strategy: _,
                    qps: _,
                } => {
                    if global < g {
                        continue; // stale
                    }
                    if global > g || shard < lo || shard >= hi {
                        protocol_warn(
                            t.rank(),
                            &format!("dropping GroupReport from shard {shard} for round {global} (collecting {lo}..{hi} round {g})"),
                        );
                        continue;
                    }
                    if reported[shard - lo] {
                        protocol_warn(
                            t.rank(),
                            &format!(
                                "rejecting duplicate GroupReport from shard {shard} in round {g}"
                            ),
                        );
                        continue;
                    }
                    reported[shard - lo] = true;
                    n_rep += 1;
                    self.child_cost[shard - lo] = cost;
                    t.compute(cfg.work.per_report).await;
                    self.merged = Trace::merge([&self.merged, &Trace::from_points(trace)]);
                    self.offer(t.rank(), base, cost, snapshot, tabu);
                    if final_round {
                        self.fold_stats(&stats);
                    }
                    child_forced[shard - lo] = forced;
                }
                other => {
                    protocol_warn(
                        t.rank(),
                        &format!(
                            "dropping unexpected {} while collecting group reports",
                            other.tag()
                        ),
                    );
                }
            }
        }
    }

    /// One collection round over this node's children.
    #[allow(clippy::too_many_arguments)]
    async fn collect_round<T: Transport<D::Problem>>(
        &mut self,
        t: &mut T,
        cfg: &PtsConfig,
        base: &BaseOf<D>,
        g: u32,
        children: ShardChildren,
        child_forced: &mut [u64],
        dead: &mut [bool],
        deadline: Option<f64>,
    ) {
        match children {
            ShardChildren::Tsws { lo, hi } => {
                self.collect_tsw_round(t, cfg, base, g, lo, hi, dead, deadline)
                    .await
            }
            ShardChildren::Shards { lo, hi } => {
                self.collect_group_round(t, cfg, base, g, lo, hi, child_forced, dead, deadline)
                    .await
            }
        }
    }

    /// Forces issued in this node's whole subtree so far.
    fn subtree_forced(&self, child_forced: &[u64]) -> u64 {
        self.forced + child_forced.iter().sum::<u64>()
    }
}

/// Downward payload of [`send_down`]: the round winner to broadcast, or
/// `None` for `Stop` after the final round. Cloning the payload per
/// child is O(1) — the snapshot (or delta) and tabu list sit behind
/// `Arc`s.
type Winner<'a, D> = Option<(u32, &'a PayloadOf<D>, &'a TabuPayloadOf<D>)>;

/// Strategy ids riding a downward broadcast: one per child (the root's
/// reallocator output — child `lo + k` gets entry `k`) or one for the
/// whole subtree (sub-master relays: everything below a sub-master is a
/// single group). Always `Uniform(0)` in uniform runs.
#[derive(Clone, Copy)]
enum StrategyDown<'a> {
    Uniform(u8),
    PerChild(&'a [u8]),
}

impl StrategyDown<'_> {
    fn of(&self, idx: usize) -> u8 {
        match *self {
            StrategyDown::Uniform(s) => s,
            StrategyDown::PerChild(v) => v[idx],
        }
    }
}

/// Send the round-`g` winner (or `Stop` after the final round) down to
/// this node's children, stamping each child's strategy assignment.
fn send_down<D: PtsDomain, T: Transport<D::Problem>>(
    t: &mut T,
    cfg: &PtsConfig,
    children: ShardChildren,
    msg: Winner<'_, D>,
    strat: StrategyDown<'_>,
) {
    match children {
        ShardChildren::Tsws { lo, hi } => {
            for i in lo..hi {
                let m = match msg {
                    Some((global, snapshot, tabu)) => PtsMsg::Broadcast {
                        global,
                        snapshot: snapshot.clone(),
                        tabu: tabu.clone(),
                        strategy: strat.of(i - lo),
                    },
                    None => PtsMsg::Stop,
                };
                t.send(cfg.tsw_rank(i), m);
            }
        }
        ShardChildren::Shards { lo, hi } => {
            for s in lo..hi {
                let m = match msg {
                    Some((global, snapshot, tabu)) => PtsMsg::GroupBroadcast {
                        global,
                        snapshot: snapshot.clone(),
                        tabu: tabu.clone(),
                        strategy: strat.of(s - lo),
                    },
                    None => PtsMsg::Stop,
                };
                t.send(cfg.shard_rank(s), m);
            }
        }
    }
}

/// The portfolio entry with the best observed mean cost improvement per
/// assigned round; never-sampled entries count as infinitely promising
/// (optimistic initialization), and ties resolve to the lowest id.
fn best_strategy(score: &[f64], rounds: &[u64]) -> u8 {
    let mut best = 0usize;
    let mut best_mean = f64::NEG_INFINITY;
    for s in 0..score.len() {
        let mean = if rounds[s] == 0 {
            f64::INFINITY
        } else {
            score[s] / rounds[s] as f64
        };
        if mean > best_mean {
            best_mean = mean;
            best = s;
        }
    }
    best as u8
}

/// Run the root-master protocol to completion.
///
/// `async` over any [`Transport`]: on blocking substrates drive it with
/// [`crate::transport::drive_sync`]; on the cooperative substrate each
/// `recv` is a scheduling point.
///
/// `ctl` is consulted once per global iteration, at the point where the
/// master already chooses between "broadcast and continue" and "send
/// `Stop`": a cancel or expired deadline simply makes the current round
/// the final one, so an early stop is indistinguishable to the workers
/// from a configured last round — no new protocol state. Callers without
/// external control pass [`RunControl::unlimited`].
pub async fn run_master<D: PtsDomain, T: Transport<D::Problem>>(
    t: &mut T,
    cfg: &PtsConfig,
    domain: &D,
    initial: SnapshotOf<D>,
    ctl: &RunControl,
) -> SearchOutcome<SnapshotOf<D>> {
    // Cost of the initial solution under the (frozen) domain.
    let initial_cost = domain.cost_of(&initial);
    let initial = Arc::new(initial);
    let children = cfg.root_children();

    // Initialize the tree. Flat: every worker (TSWs and CLWs) is a direct
    // child and starts from the initial solution. Sharded: only the top
    // sub-masters are addressed; they fan the Init out to their subtrees,
    // keeping the root's traffic O(fan-out). Either way each Init clones
    // an `Arc`, not the solution.
    match children {
        ShardChildren::Tsws { .. } => {
            for rank in 1..cfg.total_procs() {
                t.send(
                    rank,
                    PtsMsg::Init {
                        snapshot: Arc::clone(&initial),
                    },
                );
            }
        }
        ShardChildren::Shards { lo, hi } => {
            for s in lo..hi {
                t.send(
                    cfg.shard_rank(s),
                    PtsMsg::Init {
                        snapshot: Arc::clone(&initial),
                    },
                );
            }
        }
    }

    // The base every child currently shares with this node: the initial
    // solution, re-anchored on each broadcast sent below.
    let mut base: BaseOf<D> = SnapshotBase::initial(Arc::clone(&initial));
    // The tabu list the children last adopted: empty at the start (no
    // tabu entries exist anywhere before the first local iteration),
    // then each broadcast's list. Only the root needs one — sub-masters
    // relay tabu payloads verbatim.
    let mut tabu_base: TabuBase<D::Problem> = TabuBase::initial();
    let mut red: Reduction<D> = Reduction::new(initial_cost, initial, children.len());
    red.merged.record(t.now(), 0, red.best_cost);
    let mut best_per_global_iter = Vec::with_capacity(cfg.global_iters as usize);
    let mut child_forced = vec![0u64; children.len()];
    // Death notices persist: a child reported down stays excused for
    // every later round. Always all-false in fault-free runs.
    let mut dead = vec![false; children.len()];

    // Strategy reallocation state. With an empty portfolio every entry
    // of `assign` is 0, the scoring/reassignment block below is skipped
    // entirely (no RNG draws, no behaviour change), and every broadcast
    // carries strategy byte 0 — bit-identical to the uniform protocol.
    // With a portfolio: groups start round-robin, each round's per-group
    // cost improvement is credited to the strategy the group ran, and an
    // epsilon-greedy step (own RNG stream, deterministic given the run
    // seed) picks next round's assignment, which rides the broadcast.
    let n_strategies = cfg.portfolio.len();
    let mut assign: Vec<u8> = (0..children.len())
        .map(|g| cfg.initial_strategy_of_group(g))
        .collect();
    let mut strat_score = vec![0.0f64; n_strategies];
    let mut strat_rounds = vec![0u64; n_strategies];
    let mut prev_cost = vec![initial_cost; children.len()];
    let mut realloc_rng = Rng::new(cfg.seed ^ PORTFOLIO_RNG_SALT);

    for g in 0..cfg.global_iters {
        let deadline = ctl.recv_deadline(t.now(), cfg.liveness_timeout);
        red.collect_round(
            t,
            cfg,
            &base,
            g,
            children,
            &mut child_forced,
            &mut dead,
            deadline,
        )
        .await;

        red.merged.record(t.now(), g as u64 + 1, red.best_cost);
        best_per_global_iter.push(red.best_cost);
        ctl.note_progress(g, red.best_cost);

        let last_round = g + 1 == cfg.global_iters || ctl.should_stop(t.now());

        if n_strategies > 0 {
            // Credit this round's cost improvement of each group to the
            // strategy it ran (reports carry cumulative bests, so the
            // difference is non-negative and dead/silent groups score 0).
            for g_idx in 0..children.len() {
                let now_cost = red.child_cost[g_idx];
                let improvement = (prev_cost[g_idx] - now_cost).max(0.0);
                prev_cost[g_idx] = now_cost;
                let s = assign[g_idx] as usize % n_strategies;
                strat_score[s] += improvement;
                strat_rounds[s] += 1;
            }
            if !last_round {
                // Epsilon-greedy: explore a random entry, else exploit
                // the best observed mean improvement.
                for a in assign.iter_mut() {
                    *a = if realloc_rng.chance(PORTFOLIO_EPSILON) {
                        realloc_rng.index(n_strategies) as u8
                    } else {
                        best_strategy(&strat_score, &strat_rounds)
                    };
                }
            }
        }

        if !last_round {
            // Diff the round winner against the base the children still
            // hold, ship it once per child (Arc clones), then re-anchor
            // the shared base on what was just broadcast.
            let payload = SnapshotPayload::encode(cfg.snapshot_mode, &base, &red.best_snapshot);
            let tabu_payload = TabuPayload::encode(cfg.tabu_delta, &tabu_base, &red.best_tabu);
            send_down::<D, T>(
                t,
                cfg,
                children,
                Some((g, &payload, &tabu_payload)),
                StrategyDown::PerChild(&assign),
            );
            base.advance(g, Arc::clone(&red.best_snapshot));
            tabu_base.advance(g, Arc::clone(&red.best_tabu));
        } else {
            send_down::<D, T>(t, cfg, children, None, StrategyDown::Uniform(0));
            break;
        }
    }

    let forced_reports = red.subtree_forced(&child_forced);
    SearchOutcome {
        best_cost: red.best_cost,
        best: (*red.best_snapshot).clone(),
        initial_cost,
        trace: red.merged,
        best_per_global_iter,
        tsw_stats: red.stats,
        forced_reports,
        end_time: t.now(),
    }
}

/// Run one sub-master of the sharded collection tree to completion.
///
/// Per global iteration: collect from the children (TSW group with local
/// quorum/force policy at the leaves, `GroupReport`s above), reduce to
/// the subtree best, forward one `GroupReport` to the parent (diffed
/// against the shared base), then relay the parent's `GroupBroadcast`
/// payload verbatim (or `Stop`) back down.
pub async fn run_sub_master<D: PtsDomain, T: Transport<D::Problem>>(
    t: &mut T,
    cfg: &PtsConfig,
    shard: usize,
    domain: &D,
) {
    let spec = cfg.shard_spec(shard);

    // Wait for the Init relayed from above.
    let initial = loop {
        match t.recv().await {
            PtsMsg::Init { snapshot } => break snapshot,
            PtsMsg::Stop => {
                send_down::<D, T>(t, cfg, spec.children, None, StrategyDown::Uniform(0));
                return;
            }
            other => {
                protocol_warn(
                    t.rank(),
                    &format!("dropping unexpected {} before Init", other.tag()),
                );
            }
        }
    };

    // Fan the Init out (Arc clones): TSWs and their CLWs at the leaf
    // level, lower sub-masters above.
    match spec.children {
        ShardChildren::Tsws { lo, hi } => {
            for i in lo..hi {
                t.send(
                    cfg.tsw_rank(i),
                    PtsMsg::Init {
                        snapshot: Arc::clone(&initial),
                    },
                );
                for j in 0..cfg.n_clw {
                    t.send(
                        cfg.clw_rank(i, j),
                        PtsMsg::Init {
                            snapshot: Arc::clone(&initial),
                        },
                    );
                }
            }
        }
        ShardChildren::Shards { lo, hi } => {
            for s in lo..hi {
                t.send(
                    cfg.shard_rank(s),
                    PtsMsg::Init {
                        snapshot: Arc::clone(&initial),
                    },
                );
            }
        }
    }

    // Seed the reduction exactly like the root: subtree best starts at
    // the initial solution with an empty tabu list, so a round in which
    // no TSW improves reduces to the same winner the flat master picks.
    let initial_cost = domain.cost_of(&initial);
    let mut base: BaseOf<D> = SnapshotBase::initial(Arc::clone(&initial));
    let mut red: Reduction<D> = Reduction::new(initial_cost, initial, spec.children.len());
    let mut child_forced = vec![0u64; spec.children.len()];
    let mut dead = vec![false; spec.children.len()];

    // Everything below a sub-master belongs to a single strategy group:
    // track the group's current strategy (initially the config-derived
    // round-robin entry, thereafter whatever the parent's broadcast
    // stamps) to tag upward GroupReports and relay downward. The
    // quality-per-virtual-second tag is measured per collection round;
    // both stay 0 on uniform runs so the wire bytes are unchanged.
    let portfolio_active = !cfg.portfolio.is_empty();
    let mut cur_strategy = cfg.initial_strategy_of_group(cfg.group_of_shard(shard));
    let mut prev_best = initial_cost;
    let mut round_start = t.now();

    for g in 0..cfg.global_iters {
        let deadline = (cfg.liveness_timeout > 0.0).then(|| t.now() + cfg.liveness_timeout);
        red.collect_round(
            t,
            cfg,
            &base,
            g,
            spec.children,
            &mut child_forced,
            &mut dead,
            deadline,
        )
        .await;

        // The parent shares `base` (the broadcast chain passed through
        // it), so the upward group best rides the same delta encoding.
        let payload = SnapshotPayload::encode(cfg.snapshot_mode, &base, &red.best_snapshot);
        let qps = if portfolio_active {
            let elapsed = t.now() - round_start;
            let improvement = (prev_best - red.best_cost).max(0.0);
            if elapsed > 0.0 {
                improvement / elapsed
            } else {
                0.0
            }
        } else {
            0.0
        };
        prev_best = red.best_cost;
        t.send(
            spec.parent_rank,
            PtsMsg::GroupReport {
                shard,
                global: g,
                cost: red.best_cost,
                snapshot: payload,
                tabu: Arc::clone(&red.best_tabu),
                trace: red.merged.points().to_vec(),
                stats: red.stats,
                forced: red.subtree_forced(&child_forced),
                strategy: cur_strategy,
                qps,
            },
        );

        // Relay the parent's decision down the tree. Under a liveness
        // timeout a dead or stalled parent cannot hang the subtree: the
        // wait gives up and winds the subtree down as if Stop arrived.
        loop {
            let msg = match (cfg.liveness_timeout > 0.0).then(|| t.now() + cfg.liveness_timeout) {
                None => t.recv().await,
                Some(d) => match t.recv_deadline(d).await {
                    Some(m) => m,
                    None => {
                        protocol_warn(
                            t.rank(),
                            &format!(
                                "liveness timeout awaiting GroupBroadcast {g}: stopping subtree"
                            ),
                        );
                        send_down::<D, T>(t, cfg, spec.children, None, StrategyDown::Uniform(0));
                        return;
                    }
                },
            };
            match msg {
                PtsMsg::Down { rank } if rank == spec.parent_rank => {
                    // The parent died: nothing above will ever broadcast
                    // or Stop again. Wind the subtree down.
                    protocol_warn(
                        t.rank(),
                        &format!("parent rank {rank} is down; stopping subtree"),
                    );
                    send_down::<D, T>(t, cfg, spec.children, None, StrategyDown::Uniform(0));
                    return;
                }
                PtsMsg::Down { rank } => {
                    // A child died between its report and the broadcast:
                    // record it so the next collection excuses it.
                    let idx = match spec.children {
                        ShardChildren::Tsws { lo, hi } => {
                            let i = rank.wrapping_sub(1);
                            (lo..hi).contains(&i).then(|| i - lo)
                        }
                        ShardChildren::Shards { lo, hi } => {
                            let s = rank.wrapping_sub(1 + cfg.n_tsw + cfg.n_tsw * cfg.n_clw);
                            (lo..hi).contains(&s).then(|| s - lo)
                        }
                    };
                    match idx {
                        Some(i) => {
                            if !dead[i] {
                                dead[i] = true;
                                protocol_warn(t.rank(), &format!("child rank {rank} is down"));
                            }
                        }
                        None => protocol_warn(
                            t.rank(),
                            &format!("ignoring Down for rank {rank} (not parent or child)"),
                        ),
                    }
                }
                PtsMsg::GroupBroadcast {
                    global,
                    snapshot,
                    tabu,
                    strategy,
                } if global == g => {
                    // Resolve for this node's own base bookkeeping, then
                    // relay the payload verbatim — every process below
                    // holds the same base this payload was diffed
                    // against, so no re-encode is needed. The strategy
                    // stamp applies to this whole subtree (one group):
                    // adopt it and relay it unchanged.
                    match snapshot.resolve(&base) {
                        Some(full) => {
                            cur_strategy = strategy;
                            send_down::<D, T>(
                                t,
                                cfg,
                                spec.children,
                                Some((global, &snapshot, &tabu)),
                                StrategyDown::Uniform(strategy),
                            );
                            base.advance(global, full);
                            round_start = t.now();
                            break;
                        }
                        None => protocol_warn(
                            t.rank(),
                            "dropping GroupBroadcast delta against a base this sub-master does not hold",
                        ),
                    }
                }
                PtsMsg::Stop => {
                    send_down::<D, T>(t, cfg, spec.children, None, StrategyDown::Uniform(0));
                    return;
                }
                // Stale broadcast from an earlier round: drop.
                PtsMsg::GroupBroadcast { .. } => {}
                other => {
                    protocol_warn(
                        t.rank(),
                        &format!(
                            "dropping unexpected {} while awaiting GroupBroadcast",
                            other.tag()
                        ),
                    );
                }
            }
        }
    }
    // All global iterations done without receiving Stop (the parent
    // always terminates with Stop, so this is unreachable in practice).
    send_down::<D, T>(t, cfg, spec.children, None, StrategyDown::Uniform(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_fields_are_accessible() {
        // Structural smoke test; behavioural coverage lives in the engine
        // integration tests and crates/core/tests/protocol_robustness.rs.
        fn assert_send<T: Send>() {}
        assert_send::<SearchOutcome<pts_place::placement::Placement>>();
    }
}
