//! The master process, generic over the problem domain.
//!
//! Distributes the initial solution to every worker, then runs
//! `global_iters` rounds: collect one report per TSW — under the
//! heterogeneous policy, forcing stragglers once half have reported —
//! select the overall best, and broadcast it (solution + tabu list) back to
//! all TSWs. One collect+broadcast is one *global iteration*.

use crate::config::{PtsConfig, SyncPolicy};
use crate::domain::{PtsDomain, SearchOutcome, SnapshotOf};
use crate::messages::{PtsMsg, TabuEntries};
use crate::transport::Transport;
use pts_tabu::search::SearchStats;
use pts_tabu::trace::Trace;

/// Run the master protocol to completion.
///
/// `async` over any [`Transport`]: on blocking substrates drive it with
/// [`crate::transport::drive_sync`]; on the cooperative substrate each
/// `recv` is a scheduling point.
pub async fn run_master<D: PtsDomain, T: Transport<D::Problem>>(
    t: &mut T,
    cfg: &PtsConfig,
    domain: &D,
    initial: SnapshotOf<D>,
) -> SearchOutcome<SnapshotOf<D>> {
    // Cost of the initial solution under the (frozen) domain.
    let initial_cost = domain.cost_of(&initial);

    // Initialize every worker (TSWs and CLWs all start from the initial
    // solution).
    for rank in 1..cfg.total_procs() {
        t.send(
            rank,
            PtsMsg::Init {
                snapshot: initial.clone(),
            },
        );
    }

    let mut best_cost = initial_cost;
    let mut best_snapshot = initial;
    let mut best_tabu: TabuEntries<D::Problem> = Vec::new();
    let mut merged = Trace::new();
    merged.record(t.now(), 0, best_cost);
    let mut best_per_global_iter = Vec::with_capacity(cfg.global_iters as usize);
    let mut tsw_stats = SearchStats::default();
    let mut forced_reports = 0u64;

    for g in 0..cfg.global_iters {
        let quorum = cfg.report_quorum(cfg.n_tsw);
        let mut reported = vec![false; cfg.n_tsw];
        let mut n_rep = 0;
        let mut force_sent = false;

        while n_rep < cfg.n_tsw {
            match t.recv().await {
                PtsMsg::Report {
                    tsw,
                    global,
                    cost,
                    snapshot,
                    tabu,
                    trace,
                    stats,
                } => {
                    debug_assert_eq!(global, g, "reports are strictly per-round");
                    debug_assert!(!reported[tsw]);
                    reported[tsw] = true;
                    n_rep += 1;
                    t.compute(cfg.work.per_report);
                    merged = Trace::merge([&merged, &Trace::from_points(trace)]);
                    if cost < best_cost {
                        best_cost = cost;
                        best_snapshot = snapshot;
                        best_tabu = tabu;
                    }
                    // Stats are cumulative per TSW; summing every round
                    // would over-count, so fold them in on the final round
                    // only.
                    if g + 1 == cfg.global_iters {
                        tsw_stats.iterations += stats.iterations;
                        tsw_stats.accepted += stats.accepted;
                        tsw_stats.rejected_tabu += stats.rejected_tabu;
                        tsw_stats.aspirated += stats.aspirated;
                        tsw_stats.improved_best += stats.improved_best;
                    }
                    if cfg.tsw_sync == SyncPolicy::HalfReport
                        && !force_sent
                        && n_rep >= quorum
                        && n_rep < cfg.n_tsw
                    {
                        for (i, done) in reported.iter().enumerate() {
                            if !done {
                                t.send(cfg.tsw_rank(i), PtsMsg::ForceReport { global: g });
                                forced_reports += 1;
                            }
                        }
                        force_sent = true;
                    }
                }
                other => {
                    debug_assert!(false, "master got unexpected {}", other.tag());
                }
            }
        }

        merged.record(t.now(), g as u64 + 1, best_cost);
        best_per_global_iter.push(best_cost);

        if g + 1 < cfg.global_iters {
            for i in 0..cfg.n_tsw {
                t.send(
                    cfg.tsw_rank(i),
                    PtsMsg::Broadcast {
                        global: g,
                        snapshot: best_snapshot.clone(),
                        tabu: best_tabu.clone(),
                    },
                );
            }
        } else {
            for i in 0..cfg.n_tsw {
                t.send(cfg.tsw_rank(i), PtsMsg::Stop);
            }
        }
    }

    SearchOutcome {
        best_cost,
        best: best_snapshot,
        initial_cost,
        trace: merged,
        best_per_global_iter,
        tsw_stats,
        forced_reports,
        end_time: t.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_fields_are_accessible() {
        // Structural smoke test; behavioural coverage lives in the engine
        // integration tests.
        fn assert_send<T: Send>() {}
        assert_send::<SearchOutcome<pts_place::placement::Placement>>();
    }
}
