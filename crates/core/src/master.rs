//! The master process.
//!
//! Distributes the initial solution (and frozen cost scheme) to every
//! worker, then runs `global_iters` rounds: collect one report per TSW —
//! under the heterogeneous policy, forcing stragglers once half have
//! reported — select the overall best, and broadcast it (solution + tabu
//! list) back to all TSWs. One collect+broadcast is one *global iteration*.

use crate::config::{PtsConfig, SyncPolicy};
use crate::messages::{PtsMsg, TabuEntries};
use crate::transport::Transport;
use pts_netlist::{Netlist, TimingGraph};
use pts_place::cost::RawObjectives;
use pts_place::eval::Evaluator;
use pts_place::placement::Placement;
use pts_tabu::search::SearchStats;
use pts_tabu::trace::Trace;
use std::sync::Arc;

/// Everything the master learned from a run.
#[derive(Clone, Debug)]
pub struct MasterOutcome {
    /// Best scalar cost found anywhere.
    pub best_cost: f64,
    pub best_placement: Placement,
    /// Raw objectives of the best placement.
    pub objectives: RawObjectives,
    /// Cost of the initial solution (same scheme).
    pub initial_cost: f64,
    /// Merged best-cost-over-time curve across all workers.
    pub trace: Trace,
    /// Global best after each global iteration.
    pub best_per_global_iter: Vec<f64>,
    /// Aggregated TSW search statistics.
    pub tsw_stats: SearchStats,
    /// Number of ForceReport messages the master sent.
    pub forced_reports: u64,
    /// Virtual/wall time when the search finished.
    pub end_time: f64,
}

/// Run the master protocol to completion.
pub fn run_master<T: Transport>(
    t: &mut T,
    cfg: &PtsConfig,
    netlist: Arc<Netlist>,
    timing: Arc<TimingGraph>,
    initial: Placement,
) -> MasterOutcome {
    // Freeze the cost scheme from the initial solution.
    let eval = Evaluator::new(
        netlist.clone(),
        timing.clone(),
        initial.clone(),
        cfg.eval_config(),
    );
    let scheme = eval.scheme().clone();
    let initial_cost = eval.cost();
    drop(eval);

    // Initialize every worker (TSWs and CLWs all need the scheme).
    for rank in 1..cfg.total_procs() {
        t.send(
            rank,
            PtsMsg::Init {
                placement: initial.clone(),
                scheme: scheme.clone(),
            },
        );
    }

    let mut best_cost = initial_cost;
    let mut best_placement = initial;
    let mut best_tabu: TabuEntries = Vec::new();
    let mut merged = Trace::new();
    merged.record(t.now(), 0, best_cost);
    let mut best_per_global_iter = Vec::with_capacity(cfg.global_iters as usize);
    let mut tsw_stats = SearchStats::default();
    let mut forced_reports = 0u64;

    for g in 0..cfg.global_iters {
        let quorum = cfg.report_quorum(cfg.n_tsw);
        let mut reported = vec![false; cfg.n_tsw];
        let mut n_rep = 0;
        let mut force_sent = false;

        while n_rep < cfg.n_tsw {
            match t.recv() {
                PtsMsg::Report {
                    tsw,
                    global,
                    cost,
                    placement,
                    tabu,
                    trace,
                    stats,
                } => {
                    debug_assert_eq!(global, g, "reports are strictly per-round");
                    debug_assert!(!reported[tsw]);
                    reported[tsw] = true;
                    n_rep += 1;
                    t.compute(cfg.work.per_report);
                    merged = Trace::merge([&merged, &Trace::from_points(trace)]);
                    if cost < best_cost {
                        best_cost = cost;
                        best_placement = placement;
                        best_tabu = tabu;
                    }
                    // Accumulate per-round stats deltas (stats are
                    // cumulative per TSW; summing the last round only would
                    // under-count, so track max per TSW via the final
                    // round: simplest is to sum on the last global
                    // iteration only).
                    if g + 1 == cfg.global_iters {
                        tsw_stats.iterations += stats.iterations;
                        tsw_stats.accepted += stats.accepted;
                        tsw_stats.rejected_tabu += stats.rejected_tabu;
                        tsw_stats.aspirated += stats.aspirated;
                        tsw_stats.improved_best += stats.improved_best;
                    }
                    if cfg.tsw_sync == SyncPolicy::HalfReport
                        && !force_sent
                        && n_rep >= quorum
                        && n_rep < cfg.n_tsw
                    {
                        for (i, done) in reported.iter().enumerate() {
                            if !done {
                                t.send(cfg.tsw_rank(i), PtsMsg::ForceReport { global: g });
                                forced_reports += 1;
                            }
                        }
                        force_sent = true;
                    }
                }
                other => {
                    debug_assert!(false, "master got unexpected {}", other.tag());
                }
            }
        }

        merged.record(t.now(), g as u64 + 1, best_cost);
        best_per_global_iter.push(best_cost);

        if g + 1 < cfg.global_iters {
            for i in 0..cfg.n_tsw {
                t.send(
                    cfg.tsw_rank(i),
                    PtsMsg::Broadcast {
                        global: g,
                        placement: best_placement.clone(),
                        tabu: best_tabu.clone(),
                    },
                );
            }
        } else {
            for i in 0..cfg.n_tsw {
                t.send(cfg.tsw_rank(i), PtsMsg::Stop);
            }
        }
    }

    // Exact objectives of the winner.
    let final_eval = Evaluator::with_scheme(
        netlist,
        timing,
        best_placement.clone(),
        cfg.alpha,
        scheme,
    );
    MasterOutcome {
        best_cost,
        best_placement,
        objectives: final_eval.objectives(),
        initial_cost,
        trace: merged,
        best_per_global_iter,
        tsw_stats,
        forced_reports,
        end_time: t.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_fields_are_accessible() {
        // Structural smoke test; behavioural coverage lives in the engine
        // integration tests.
        fn assert_send<T: Send>() {}
        assert_send::<MasterOutcome>();
    }
}
