//! Speedup computation per the paper's definition.
//!
//! For non-deterministic search, speedup is `t(1,x) / t(n,x)`: the time the
//! 1-worker configuration needs to first reach an x-quality solution over
//! the time the n-worker configuration needs for the same quality. The
//! quality target x must be reachable by *every* configuration in a sweep,
//! so the harness picks the worst final best-cost across the sweep (with a
//! small slack) as x.

use pts_tabu::trace::Trace;

/// One point of a speedup sweep.
#[derive(Clone, Debug)]
pub struct SpeedupPoint {
    /// Degree of parallelism (number of CLWs or TSWs).
    pub n: usize,
    /// Final best cost of this configuration.
    pub best_cost: f64,
    /// Time to first reach the shared quality target.
    pub time_to_quality: Option<f64>,
    /// `t(1,x)/t(n,x)`; `None` when either time is undefined.
    pub speedup: Option<f64>,
}

/// Pick the common quality target for a sweep: the worst final best cost,
/// relaxed by `slack` (e.g. 0.002 = 0.2%) so float noise cannot make the
/// worst run miss its own target.
pub fn common_quality_target(traces: &[(usize, Trace)], slack: f64) -> f64 {
    assert!(!traces.is_empty());
    let worst = traces
        .iter()
        .map(|(_, t)| t.best_cost().expect("non-empty trace"))
        .fold(f64::NEG_INFINITY, f64::max);
    worst * (1.0 + slack) + 1e-12
}

/// A mid-course quality target: the cost `frac` of the way from the shared
/// initial cost down to the worst final best across the sweep.
///
/// End-of-run targets (`frac = 1`) sit on the flat tail of every trace,
/// where crossing times are dominated by luck; the paper's `x` values are
/// mid-course qualities ("reaching a solution of cost less than x"), which
/// every configuration crosses while still improving steadily.
pub fn fractional_quality_target(traces: &[(usize, Trace)], frac: f64) -> f64 {
    assert!(!traces.is_empty());
    assert!((0.0..=1.0).contains(&frac));
    let start = traces
        .iter()
        .map(|(_, t)| t.points().first().expect("non-empty trace").best_cost)
        .fold(f64::NEG_INFINITY, f64::max);
    let worst_final = traces
        .iter()
        .map(|(_, t)| t.best_cost().expect("non-empty trace"))
        .fold(f64::NEG_INFINITY, f64::max);
    start - frac * (start - worst_final) + 1e-12
}

/// Compute the sweep's speedup points. `traces` holds `(n, trace)` pairs;
/// the entry with the smallest `n` is the baseline.
pub fn speedup_sweep(traces: &[(usize, Trace)], quality: f64) -> Vec<SpeedupPoint> {
    assert!(!traces.is_empty());
    let baseline = traces
        .iter()
        .min_by_key(|(n, _)| *n)
        .expect("non-empty sweep");
    let t1 = baseline.1.time_to_reach(quality);
    traces
        .iter()
        .map(|(n, trace)| {
            let tn = trace.time_to_reach(quality);
            let speedup = match (t1, tn) {
                (Some(t1), Some(tn)) if tn > 0.0 => Some(t1 / tn),
                (Some(_), Some(_)) => Some(f64::INFINITY),
                _ => None,
            };
            SpeedupPoint {
                n: *n,
                best_cost: trace.best_cost().expect("non-empty trace"),
                time_to_quality: tn,
                speedup,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(points: &[(f64, f64)]) -> Trace {
        let mut t = Trace::new();
        for (i, &(time, cost)) in points.iter().enumerate() {
            t.record(time, i as u64, cost);
        }
        t
    }

    #[test]
    fn target_is_worst_final_cost_with_slack() {
        let traces = vec![
            (1, trace(&[(1.0, 10.0), (5.0, 4.0)])),
            (2, trace(&[(1.0, 10.0), (3.0, 6.0)])),
        ];
        let x = common_quality_target(&traces, 0.0);
        assert!((x - 6.0).abs() < 1e-9);
        // Every trace reaches it.
        for (_, t) in &traces {
            assert!(t.time_to_reach(x).is_some());
        }
    }

    #[test]
    fn sweep_computes_ratios_against_smallest_n() {
        let traces = vec![
            (1, trace(&[(0.0, 10.0), (8.0, 5.0)])),
            (2, trace(&[(0.0, 10.0), (4.0, 5.0)])),
            (4, trace(&[(0.0, 10.0), (2.0, 5.0)])),
        ];
        let pts = speedup_sweep(&traces, 5.0);
        assert_eq!(pts.len(), 3);
        assert!((pts[0].speedup.unwrap() - 1.0).abs() < 1e-9);
        assert!((pts[1].speedup.unwrap() - 2.0).abs() < 1e-9);
        assert!((pts[2].speedup.unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_target_interpolates() {
        let traces = vec![
            (1, trace(&[(0.0, 10.0), (8.0, 4.0)])),
            (2, trace(&[(0.0, 10.0), (4.0, 2.0)])),
        ];
        // start 10, worst final 4 ⇒ frac 0.5 target ≈ 7.
        let x = fractional_quality_target(&traces, 0.5);
        assert!((x - 7.0).abs() < 1e-9);
        // frac 1.0 reduces to the worst final.
        let x = fractional_quality_target(&traces, 1.0);
        assert!((x - 4.0).abs() < 1e-9);
        // Every configuration reaches any frac <= 1 target.
        for (_, t) in &traces {
            assert!(t.time_to_reach(x).is_some());
        }
    }

    #[test]
    fn unreachable_quality_yields_none() {
        let traces = vec![
            (1, trace(&[(0.0, 10.0)])),
            (2, trace(&[(0.0, 10.0), (1.0, 3.0)])),
        ];
        let pts = speedup_sweep(&traces, 5.0);
        assert!(pts[0].speedup.is_none());
        // Baseline never reached quality ⇒ no ratio for anyone.
        assert!(pts[1].speedup.is_none());
        assert!(pts[1].time_to_quality.is_some());
    }
}
