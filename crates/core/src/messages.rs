//! The master / TSW / CLW message protocol, generic over the search
//! problem.
//!
//! Mirrors the paper's process interactions: the master and TSWs exchange
//! best solutions *plus the associated tabu list*; TSWs and CLWs exchange
//! only best solutions (proposals). `ForceReport` and `CutShort` implement
//! the heterogeneity mechanism ("once half have reported, force the rest").
//!
//! Messages carry the global-iteration / investigation sequence they belong
//! to so that late control messages (a `ForceReport` crossing a `Report` in
//! flight) are recognized as stale and ignored.
//!
//! The payload types come from the problem: solution snapshots
//! ([`pts_tabu::SearchProblem::Snapshot`]), elementary moves, and tabu
//! attributes. Any [`PtsProblem`] rides the same protocol — placement and
//! QAP use identical message flow.

use crate::domain::{PtsProblem, WireSized};
use pts_tabu::search::SearchStats;
use pts_tabu::trace::TracePoint;

/// Exported tabu list: attribute + remaining tenure.
pub type TabuEntries<P> = Vec<(<P as pts_tabu::SearchProblem>::Attribute, u64)>;

/// Protocol messages for a run over problem `P`.
pub enum PtsMsg<P: PtsProblem> {
    /// Master → everyone: the initial solution (run-constant data such as
    /// the placement cost scheme is frozen into the domain before workers
    /// spawn).
    Init {
        /// The shared starting solution.
        snapshot: P::Snapshot,
    },
    /// Master → TSW: the global best after a global iteration, with its
    /// tabu list.
    Broadcast {
        /// Global iteration this broadcast concludes.
        global: u32,
        /// Best solution across all TSW reports of the round.
        snapshot: P::Snapshot,
        /// Tabu list accompanying the winning solution.
        tabu: TabuEntries<P>,
    },
    /// Master → TSW: report your current best immediately (half-report
    /// sync).
    ForceReport {
        /// Global iteration the forced report belongs to (stale-message
        /// guard).
        global: u32,
    },
    /// TSW → master: end-of-global-iteration report.
    Report {
        /// Index of the reporting TSW.
        tsw: usize,
        /// Global iteration the report belongs to.
        global: u32,
        /// Best cost found by this TSW so far.
        cost: f64,
        /// The solution achieving `cost`.
        snapshot: P::Snapshot,
        /// The TSW's tabu list (travels with the solution, as in the
        /// paper).
        tabu: TabuEntries<P>,
        /// Best-cost-over-time points recorded since the run started.
        trace: Vec<TracePoint>,
        /// Cumulative per-TSW search statistics.
        stats: SearchStats,
    },
    /// TSW → CLW: adopt this solution as the current state.
    AdoptState {
        /// The state to restore before the next investigation.
        snapshot: P::Snapshot,
    },
    /// TSW → CLW: build one compound-move proposal (investigation `seq`).
    Investigate {
        /// Investigation sequence number (stale-proposal guard).
        seq: u64,
    },
    /// TSW → CLW: stop investigating `seq`, report what you have.
    CutShort {
        /// Sequence of the investigation being cut short.
        seq: u64,
    },
    /// CLW → TSW: proposed compound move and the cost it reaches.
    Proposal {
        /// Index of the proposing CLW within its TSW group.
        clw: usize,
        /// Investigation this proposal answers.
        seq: u64,
        /// The proposed elementary-move chain.
        moves: Vec<P::Move>,
        /// Cost reached after applying `moves`.
        cost: f64,
    },
    /// TSW → CLW: the accepted move sequence; apply to stay in sync.
    ApplyMoves {
        /// Moves to apply to the CLW's local state.
        moves: Vec<P::Move>,
    },
    /// Shut down (master → TSW → CLW).
    Stop,
}

/// Approximate wire size of one elementary move (two item indices).
const MOVE_BYTES: u64 = 8;
/// Approximate wire size of one tabu entry (attribute + tenure).
const TABU_ENTRY_BYTES: u64 = 12;
/// Approximate wire size of one trace point.
const TRACE_POINT_BYTES: u64 = 20;

impl<P: PtsProblem> PtsMsg<P> {
    /// Approximate wire size in bytes, used by the virtual cluster's
    /// bandwidth model. Snapshots dominate, matching the paper's
    /// observation that solution exchange is the main traffic.
    pub fn wire_size(&self) -> u64 {
        const HDR: u64 = 32;
        match self {
            // The +64 covers the run-constant data (the placement cost
            // scheme) that historically travelled with Init. The scheme is
            // now frozen into the domain before workers spawn, but the
            // charge is retained deliberately so virtual timelines stay
            // bit-compatible with the pre-redesign engine (the pinned
            // golden values in tests/determinism.rs depend on it).
            PtsMsg::Init { snapshot } => HDR + snapshot.wire_bytes() + 64,
            PtsMsg::Broadcast { snapshot, tabu, .. } => {
                HDR + snapshot.wire_bytes() + TABU_ENTRY_BYTES * tabu.len() as u64
            }
            PtsMsg::Report {
                snapshot,
                tabu,
                trace,
                ..
            } => {
                HDR + snapshot.wire_bytes()
                    + TABU_ENTRY_BYTES * tabu.len() as u64
                    + TRACE_POINT_BYTES * trace.len() as u64
                    + 48
            }
            PtsMsg::AdoptState { snapshot } => HDR + snapshot.wire_bytes(),
            PtsMsg::Proposal { moves, .. } => HDR + MOVE_BYTES * moves.len() as u64 + 16,
            PtsMsg::ApplyMoves { moves } => HDR + MOVE_BYTES * moves.len() as u64,
            PtsMsg::ForceReport { .. }
            | PtsMsg::Investigate { .. }
            | PtsMsg::CutShort { .. }
            | PtsMsg::Stop => HDR,
        }
    }

    /// Short tag for logging/diagnostics.
    pub fn tag(&self) -> &'static str {
        match self {
            PtsMsg::Init { .. } => "Init",
            PtsMsg::Broadcast { .. } => "Broadcast",
            PtsMsg::ForceReport { .. } => "ForceReport",
            PtsMsg::Report { .. } => "Report",
            PtsMsg::AdoptState { .. } => "AdoptState",
            PtsMsg::Investigate { .. } => "Investigate",
            PtsMsg::CutShort { .. } => "CutShort",
            PtsMsg::Proposal { .. } => "Proposal",
            PtsMsg::ApplyMoves { .. } => "ApplyMoves",
            PtsMsg::Stop => "Stop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement_problem::PlacementProblem;
    use pts_place::layout::Layout;
    use pts_place::placement::Placement;
    use pts_tabu::qap::Qap;

    #[test]
    fn placement_bearing_messages_are_heavier() {
        let p = Placement::sequential(Layout::new(4, 25, 2.0, 1.0), 100);
        let adopt: PtsMsg<PlacementProblem> = PtsMsg::AdoptState { snapshot: p };
        let stop: PtsMsg<PlacementProblem> = PtsMsg::Stop;
        assert!(adopt.wire_size() > stop.wire_size() + 300);
    }

    #[test]
    fn control_messages_are_small() {
        let msgs: Vec<PtsMsg<PlacementProblem>> = vec![
            PtsMsg::Stop,
            PtsMsg::Investigate { seq: 1 },
            PtsMsg::CutShort { seq: 1 },
            PtsMsg::ForceReport { global: 0 },
        ];
        for m in msgs {
            assert!(m.wire_size() <= 64);
        }
    }

    #[test]
    fn qap_messages_size_by_assignment_length() {
        let q = Qap::random(40, 1);
        let init: PtsMsg<Qap> = PtsMsg::Init {
            snapshot: pts_tabu::SearchProblem::snapshot(&q),
        };
        let small = Qap::random(4, 1);
        let init_small: PtsMsg<Qap> = PtsMsg::Init {
            snapshot: pts_tabu::SearchProblem::snapshot(&small),
        };
        assert!(init.wire_size() > init_small.wire_size());
    }

    #[test]
    fn tags_cover_all_variants() {
        let stop: PtsMsg<Qap> = PtsMsg::Stop;
        assert_eq!(stop.tag(), "Stop");
        let inv: PtsMsg<Qap> = PtsMsg::Investigate { seq: 0 };
        assert_eq!(inv.tag(), "Investigate");
    }
}
