//! The master / TSW / CLW message protocol.
//!
//! Mirrors the paper's process interactions: the master and TSWs exchange
//! best solutions *plus the associated tabu list*; TSWs and CLWs exchange
//! only best solutions (proposals). `ForceReport` and `CutShort` implement
//! the heterogeneity mechanism ("once half have reported, force the rest").
//!
//! Messages carry the global-iteration / investigation sequence they belong
//! to so that late control messages (a `ForceReport` crossing a `Report` in
//! flight) are recognized as stale and ignored.

use crate::placement_problem::{SlotAttr, SwapMove};
use pts_place::cost::CostScheme;
use pts_place::placement::Placement;
use pts_tabu::search::SearchStats;
use pts_tabu::trace::TracePoint;

/// Exported tabu list: attribute + remaining tenure.
pub type TabuEntries = Vec<(SlotAttr, u64)>;

/// Protocol messages.
#[derive(Clone, Debug)]
pub enum PtsMsg {
    /// Master → everyone: initial solution and the frozen cost scheme.
    Init {
        placement: Placement,
        scheme: CostScheme,
    },
    /// Master → TSW: the global best after a global iteration, with its
    /// tabu list.
    Broadcast {
        global: u32,
        placement: Placement,
        tabu: TabuEntries,
    },
    /// Master → TSW: report your current best immediately (half-report
    /// sync).
    ForceReport { global: u32 },
    /// TSW → master: end-of-global-iteration report.
    Report {
        tsw: usize,
        global: u32,
        cost: f64,
        placement: Placement,
        tabu: TabuEntries,
        trace: Vec<TracePoint>,
        stats: SearchStats,
    },
    /// TSW → CLW: adopt this placement as the current solution.
    AdoptPlacement { placement: Placement },
    /// TSW → CLW: build one compound-move proposal (investigation `seq`).
    Investigate { seq: u64 },
    /// TSW → CLW: stop investigating `seq`, report what you have.
    CutShort { seq: u64 },
    /// CLW → TSW: proposed compound move and the cost it reaches.
    Proposal {
        clw: usize,
        seq: u64,
        moves: Vec<SwapMove>,
        cost: f64,
    },
    /// TSW → CLW: the accepted move sequence; apply to stay in sync.
    ApplyMoves { moves: Vec<SwapMove> },
    /// Shut down (master → TSW → CLW).
    Stop,
}

impl PtsMsg {
    /// Approximate wire size in bytes, used by the virtual cluster's
    /// bandwidth model. Placements dominate (4 bytes per cell), matching
    /// the paper's observation that solution exchange is the main traffic.
    pub fn wire_size(&self) -> u64 {
        const HDR: u64 = 32;
        match self {
            PtsMsg::Init { placement, .. } => HDR + 4 * placement.num_cells() as u64 + 64,
            PtsMsg::Broadcast {
                placement, tabu, ..
            } => HDR + 4 * placement.num_cells() as u64 + 12 * tabu.len() as u64,
            PtsMsg::Report {
                placement,
                tabu,
                trace,
                ..
            } => {
                HDR + 4 * placement.num_cells() as u64
                    + 12 * tabu.len() as u64
                    + 20 * trace.len() as u64
                    + 48
            }
            PtsMsg::AdoptPlacement { placement } => HDR + 4 * placement.num_cells() as u64,
            PtsMsg::Proposal { moves, .. } => HDR + 8 * moves.len() as u64 + 16,
            PtsMsg::ApplyMoves { moves } => HDR + 8 * moves.len() as u64,
            PtsMsg::ForceReport { .. }
            | PtsMsg::Investigate { .. }
            | PtsMsg::CutShort { .. }
            | PtsMsg::Stop => HDR,
        }
    }

    /// Short tag for logging/diagnostics.
    pub fn tag(&self) -> &'static str {
        match self {
            PtsMsg::Init { .. } => "Init",
            PtsMsg::Broadcast { .. } => "Broadcast",
            PtsMsg::ForceReport { .. } => "ForceReport",
            PtsMsg::Report { .. } => "Report",
            PtsMsg::AdoptPlacement { .. } => "AdoptPlacement",
            PtsMsg::Investigate { .. } => "Investigate",
            PtsMsg::CutShort { .. } => "CutShort",
            PtsMsg::Proposal { .. } => "Proposal",
            PtsMsg::ApplyMoves { .. } => "ApplyMoves",
            PtsMsg::Stop => "Stop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_place::layout::Layout;

    #[test]
    fn placement_bearing_messages_are_heavier() {
        let p = Placement::sequential(Layout::new(4, 25, 2.0, 1.0), 100);
        let adopt = PtsMsg::AdoptPlacement { placement: p };
        assert!(adopt.wire_size() > PtsMsg::Stop.wire_size() + 300);
    }

    #[test]
    fn control_messages_are_small() {
        assert!(PtsMsg::Stop.wire_size() <= 64);
        assert!(PtsMsg::Investigate { seq: 1 }.wire_size() <= 64);
        assert!(PtsMsg::CutShort { seq: 1 }.wire_size() <= 64);
        assert!(PtsMsg::ForceReport { global: 0 }.wire_size() <= 64);
    }

    #[test]
    fn tags_cover_all_variants() {
        assert_eq!(PtsMsg::Stop.tag(), "Stop");
        assert_eq!(PtsMsg::Investigate { seq: 0 }.tag(), "Investigate");
    }
}
