//! The master / TSW / CLW message protocol, generic over the search
//! problem.
//!
//! Mirrors the paper's process interactions: the master and TSWs exchange
//! best solutions *plus the associated tabu list*; TSWs and CLWs exchange
//! only best solutions (proposals). `ForceReport` and `CutShort` implement
//! the heterogeneity mechanism ("once half have reported, force the rest").
//!
//! Messages carry the global-iteration / investigation sequence they belong
//! to so that late control messages (a `ForceReport` crossing a `Report` in
//! flight) are recognized as stale and ignored.
//!
//! The payload types come from the problem: solution snapshots
//! ([`pts_tabu::SearchProblem::Snapshot`]), elementary moves, and tabu
//! attributes. Any [`PtsProblem`] rides the same protocol — placement and
//! QAP use identical message flow.
//!
//! Two payload-level optimizations keep snapshot traffic from dominating
//! at scale (the communication bottleneck both the GPU tabu-search
//! literature and the paper's own measurements point at):
//!
//! * **zero-copy fan-out** — snapshots and tabu lists travel behind
//!   [`Arc`]s, so broadcasting to `f` children clones `f` pointers, not
//!   `f` solutions; the wire model still charges every link the full
//!   payload (an `Arc` is a process-local trick, not a network one);
//! * **delta encoding** ([`SnapshotPayload`]) — solution-bearing
//!   messages ship a move delta against the last *base* snapshot both
//!   link ends provably share (the previous global broadcast, or the
//!   initial solution), falling back to a full snapshot when no shared
//!   base exists or the delta would be at least as large. See
//!   [`crate::config::SnapshotMode`].

use crate::config::SnapshotMode;
use crate::domain::{DeltaOf, DeltaSnapshot, PtsProblem, WireSized};
use crate::meter;
use pts_tabu::search::SearchStats;
use pts_tabu::trace::TracePoint;
use std::sync::Arc;

/// Exported tabu list: attribute + remaining tenure.
pub type TabuEntries<P> = Vec<(<P as pts_tabu::SearchProblem>::Attribute, u64)>;

/// A tabu list shared across recipients without per-recipient copies.
pub type SharedTabu<P> = Arc<TabuEntries<P>>;

/// A base snapshot both ends of a link hold: `seq` 0 is the initial
/// solution, `seq` `g + 1` the global broadcast concluding round `g`.
/// Every process tracks the latest base it shares with its protocol
/// neighbours and re-anchors it as each broadcast passes through.
pub struct SnapshotBase<P: PtsProblem> {
    /// Which broadcast this base is (0 = the initial solution).
    pub seq: u32,
    /// The resolved full snapshot.
    pub snapshot: Arc<P::Snapshot>,
}

impl<P: PtsProblem> SnapshotBase<P> {
    /// The run-initial base (sequence 0).
    pub fn initial(snapshot: Arc<P::Snapshot>) -> SnapshotBase<P> {
        SnapshotBase { seq: 0, snapshot }
    }

    /// Re-anchor on the broadcast concluding round `global`.
    pub fn advance(&mut self, global: u32, snapshot: Arc<P::Snapshot>) {
        self.seq = global + 1;
        self.snapshot = snapshot;
    }
}

impl<P: PtsProblem> Clone for SnapshotBase<P> {
    fn clone(&self) -> Self {
        SnapshotBase {
            seq: self.seq,
            snapshot: Arc::clone(&self.snapshot),
        }
    }
}

/// Wire overhead of a delta payload: the base sequence + entry count.
const DELTA_HDR: u64 = 8;

/// Wire overhead of a tabu delta: base sequence (4) + removed count (4)
/// + uniform aging decrement (8).
const TABU_DELTA_HDR: u64 = 16;

/// Wire bytes of one bare tabu attribute (a removed-entry marker).
const TABU_ATTR_BYTES: u64 = 8;

/// The tabu list both ends of a link hold, mirroring [`SnapshotBase`]:
/// `seq` 0 is the run start (an empty list — no tabu entries exist before
/// the first local iteration anywhere), `seq` `g + 1` the tabu list that
/// rode the global broadcast concluding round `g`.
pub struct TabuBase<P: PtsProblem> {
    /// Which broadcast this base is (0 = the empty run-start list).
    pub seq: u32,
    /// The resolved full tabu list.
    pub entries: SharedTabu<P>,
}

impl<P: PtsProblem> TabuBase<P> {
    /// The run-initial base (sequence 0, empty).
    pub fn initial() -> TabuBase<P> {
        TabuBase {
            seq: 0,
            entries: Arc::new(Vec::new()),
        }
    }

    /// Re-anchor on the tabu list broadcast concluding round `global`.
    pub fn advance(&mut self, global: u32, entries: SharedTabu<P>) {
        self.seq = global + 1;
        self.entries = entries;
    }
}

impl<P: PtsProblem> Clone for TabuBase<P> {
    fn clone(&self) -> Self {
        TabuBase {
            seq: self.seq,
            entries: Arc::clone(&self.entries),
        }
    }
}

/// A tabu list as it rides a broadcast: the full entry list, or a delta
/// against a [`TabuBase`] the sender knows the receiver holds — the same
/// shared-base scheme as [`SnapshotPayload`], with the same strict
/// fallback-to-full when the delta would not be smaller.
///
/// Exported tabu entries carry *remaining* tenures, which shrink
/// uniformly as the owning engine iterates. A plain attr-level diff would
/// therefore see every persisting entry as changed and never win; the
/// delta instead ships one uniform `aged` decrement — persisting base
/// entries age by `aged` (expiring at zero for free) — plus explicit
/// `added` entries (new or refreshed attributes) and `removed`
/// attributes (gone before their aged tenure would have expired).
pub enum TabuPayload<P: PtsProblem> {
    /// The complete tabu list.
    Full(SharedTabu<P>),
    /// A delta to apply against the receiver's copy of base `base_seq`.
    Delta {
        /// Sequence of the [`TabuBase`] the delta was diffed against.
        base_seq: u32,
        /// Uniform tenure decrement applied to every persisting base
        /// entry; an entry whose tenure drops to zero (or below) expires.
        aged: u64,
        /// Entries to (re)insert after aging: new attributes and
        /// attributes whose tenure does not follow the uniform aging.
        added: Arc<TabuEntries<P>>,
        /// Attributes dropped although their aged tenure was positive.
        removed: Arc<Vec<<P as pts_tabu::SearchProblem>::Attribute>>,
    },
}

impl<P: PtsProblem> Clone for TabuPayload<P> {
    fn clone(&self) -> Self {
        match self {
            TabuPayload::Full(t) => TabuPayload::Full(Arc::clone(t)),
            TabuPayload::Delta {
                base_seq,
                aged,
                added,
                removed,
            } => TabuPayload::Delta {
                base_seq: *base_seq,
                aged: *aged,
                added: Arc::clone(added),
                removed: Arc::clone(removed),
            },
        }
    }
}

impl<P: PtsProblem> TabuPayload<P> {
    /// Encode `full` for the wire: when `delta_enabled` (the
    /// [`crate::config::PtsConfig::tabu_delta`] knob), a delta against
    /// `base` when that is strictly smaller than the full list; the full
    /// list otherwise. Like [`SnapshotPayload::encode`], the payload's
    /// wire bytes never exceed the full encoding's.
    pub fn encode(delta_enabled: bool, base: &TabuBase<P>, full: &SharedTabu<P>) -> TabuPayload<P> {
        if delta_enabled {
            use std::collections::HashMap;
            let new_map: HashMap<&<P as pts_tabu::SearchProblem>::Attribute, u64> =
                full.iter().map(|(a, t)| (a, *t)).collect();
            // Pick the uniform decrement freeing the most persisting
            // entries: the mode of (base tenure - new tenure) over the
            // attributes present on both sides (ties to the smaller
            // decrement, deterministically).
            let mut decr_count: HashMap<u64, usize> = HashMap::new();
            for (a, bt) in base.entries.iter() {
                if let Some(&nt) = new_map.get(a) {
                    if *bt >= nt {
                        *decr_count.entry(*bt - nt).or_insert(0) += 1;
                    }
                }
            }
            let aged = decr_count
                .iter()
                .max_by(|x, y| x.1.cmp(y.1).then(y.0.cmp(x.0)))
                .map(|(&d, _)| d)
                .unwrap_or(0);
            let base_map: HashMap<&<P as pts_tabu::SearchProblem>::Attribute, u64> =
                base.entries.iter().map(|(a, t)| (a, *t)).collect();
            // An entry is free exactly when uniform aging of its base
            // counterpart reproduces it; everything else ships in `added`.
            let added: TabuEntries<P> = full
                .iter()
                .filter(|(a, t)| base_map.get(a).copied() != Some(t + aged))
                .cloned()
                .collect();
            // A base entry that would have survived aging but is absent
            // from the new list must be removed explicitly; one that ages
            // out expires for free.
            let removed: Vec<<P as pts_tabu::SearchProblem>::Attribute> = base
                .entries
                .iter()
                .filter(|(a, bt)| *bt > aged && !new_map.contains_key(a))
                .map(|(a, _)| a.clone())
                .collect();
            let delta_bytes = TABU_DELTA_HDR
                + TABU_ENTRY_BYTES * added.len() as u64
                + TABU_ATTR_BYTES * removed.len() as u64;
            if delta_bytes < TABU_ENTRY_BYTES * full.len() as u64 {
                return TabuPayload::Delta {
                    base_seq: base.seq,
                    aged,
                    added: Arc::new(added),
                    removed: Arc::new(removed),
                };
            }
        }
        TabuPayload::Full(Arc::clone(full))
    }

    /// Reconstruct the full tabu list. `None` when the payload is a delta
    /// against a base the holder does not share — a protocol violation;
    /// callers warn and drop, mirroring [`SnapshotPayload::resolve`].
    /// Entry *sets* are reconstructed exactly; order may differ from the
    /// sender's ([`pts_tabu::tabu_list::TabuList::import`] rebuilds from
    /// a map, so order never reaches search behaviour).
    pub fn resolve(&self, base: &TabuBase<P>) -> Option<SharedTabu<P>> {
        match self {
            TabuPayload::Full(t) => Some(Arc::clone(t)),
            TabuPayload::Delta {
                base_seq,
                aged,
                added,
                removed,
            } => (*base_seq == base.seq).then(|| {
                use std::collections::HashSet;
                let replaced: HashSet<&<P as pts_tabu::SearchProblem>::Attribute> =
                    added.iter().map(|(a, _)| a).collect();
                let dropped: HashSet<&<P as pts_tabu::SearchProblem>::Attribute> =
                    removed.iter().collect();
                let mut out: TabuEntries<P> = Vec::with_capacity(base.entries.len() + added.len());
                for (a, bt) in base.entries.iter() {
                    if replaced.contains(a) || dropped.contains(a) {
                        continue;
                    }
                    if *bt > *aged {
                        out.push((a.clone(), bt - aged));
                    }
                }
                out.extend(added.iter().cloned());
                Arc::new(out)
            }),
        }
    }

    /// Wire bytes this payload occupies.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            TabuPayload::Full(t) => TABU_ENTRY_BYTES * t.len() as u64,
            TabuPayload::Delta { added, removed, .. } => {
                TABU_DELTA_HDR
                    + TABU_ENTRY_BYTES * added.len() as u64
                    + TABU_ATTR_BYTES * removed.len() as u64
            }
        }
    }

    /// `true` when delta-encoded.
    pub fn is_delta(&self) -> bool {
        matches!(self, TabuPayload::Delta { .. })
    }
}

/// A solution snapshot as it travels in a protocol message: the full
/// solution, or a delta against a [`SnapshotBase`] the sender knows the
/// receiver holds. Cloning is O(1) either way (`Arc`s inside), which is
/// what makes the downward broadcast fan-out allocation-free per
/// recipient.
pub enum SnapshotPayload<P: PtsProblem> {
    /// The complete solution.
    Full(Arc<P::Snapshot>),
    /// A delta to apply against the receiver's copy of base `base_seq`.
    Delta {
        /// Sequence of the [`SnapshotBase`] the delta was diffed against.
        base_seq: u32,
        /// The encoded difference.
        delta: Arc<DeltaOf<P>>,
    },
}

impl<P: PtsProblem> Clone for SnapshotPayload<P> {
    fn clone(&self) -> Self {
        match self {
            SnapshotPayload::Full(s) => SnapshotPayload::Full(Arc::clone(s)),
            SnapshotPayload::Delta { base_seq, delta } => SnapshotPayload::Delta {
                base_seq: *base_seq,
                delta: Arc::clone(delta),
            },
        }
    }
}

impl<P: PtsProblem> SnapshotPayload<P> {
    /// Encode `full` for the wire: under [`SnapshotMode::Delta`], a delta
    /// against `base` when that is strictly smaller than the full
    /// snapshot; the full snapshot otherwise (and always under
    /// [`SnapshotMode::Full`]). The payload's [`wire_bytes`] is therefore
    /// never larger than the full snapshot's.
    ///
    /// [`wire_bytes`]: SnapshotPayload::wire_bytes
    pub fn encode(
        mode: SnapshotMode,
        base: &SnapshotBase<P>,
        full: &Arc<P::Snapshot>,
    ) -> SnapshotPayload<P> {
        if mode == SnapshotMode::Delta {
            let delta = <P::Snapshot as DeltaSnapshot>::diff(&base.snapshot, full);
            if DELTA_HDR + delta.wire_bytes() < full.wire_bytes() {
                return SnapshotPayload::Delta {
                    base_seq: base.seq,
                    delta: Arc::new(delta),
                };
            }
        }
        SnapshotPayload::Full(Arc::clone(full))
    }

    /// Reconstruct the full snapshot. `None` when the payload is a delta
    /// against a base the holder does not share — a protocol violation
    /// (senders only diff against bases the receiver provably holds);
    /// callers warn and drop, mirroring the other release-mode
    /// hardening paths.
    pub fn resolve(&self, base: &SnapshotBase<P>) -> Option<Arc<P::Snapshot>> {
        match self {
            SnapshotPayload::Full(s) => Some(Arc::clone(s)),
            SnapshotPayload::Delta { base_seq, delta } => (*base_seq == base.seq).then(|| {
                meter::record_snapshot_alloc();
                Arc::new(<P::Snapshot as DeltaSnapshot>::apply_delta(
                    &base.snapshot,
                    delta,
                ))
            }),
        }
    }

    /// Wire bytes this payload occupies (full snapshot, or delta plus
    /// its small header).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            SnapshotPayload::Full(s) => s.wire_bytes(),
            SnapshotPayload::Delta { delta, .. } => DELTA_HDR + delta.wire_bytes(),
        }
    }

    /// `true` when delta-encoded.
    pub fn is_delta(&self) -> bool {
        matches!(self, SnapshotPayload::Delta { .. })
    }
}

/// Protocol messages for a run over problem `P`.
pub enum PtsMsg<P: PtsProblem> {
    /// Master → everyone: the initial solution (run-constant data such as
    /// the placement cost scheme is frozen into the domain before workers
    /// spawn). Always a full snapshot — no base is shared yet — and the
    /// anchor of every process's sequence-0 [`SnapshotBase`].
    Init {
        /// The shared starting solution.
        snapshot: Arc<P::Snapshot>,
    },
    /// Master → TSW: the global best after a global iteration, with its
    /// tabu list.
    Broadcast {
        /// Global iteration this broadcast concludes.
        global: u32,
        /// Best solution across all TSW reports of the round, usually as
        /// a delta against the previous broadcast.
        snapshot: SnapshotPayload<P>,
        /// Tabu list accompanying the winning solution, delta-encoded
        /// against the previous broadcast's list when
        /// [`crate::config::PtsConfig::tabu_delta`] is on and that is
        /// smaller.
        tabu: TabuPayload<P>,
        /// Strategy id the receiving TSW's group runs from this round on
        /// (see [`crate::config::PtsConfig::portfolio`]). Always `0` in
        /// uniform runs — it rides the header's otherwise-unused origin
        /// bytes, so the wire size never changes.
        strategy: u8,
    },
    /// Master → TSW: report your current best immediately (half-report
    /// sync).
    ForceReport {
        /// Global iteration the forced report belongs to (stale-message
        /// guard).
        global: u32,
    },
    /// TSW → master: end-of-global-iteration report.
    Report {
        /// Index of the reporting TSW.
        tsw: usize,
        /// Global iteration the report belongs to.
        global: u32,
        /// Best cost found by this TSW so far.
        cost: f64,
        /// The solution achieving `cost`, usually as a delta against the
        /// last broadcast this TSW adopted (which its parent also holds).
        snapshot: SnapshotPayload<P>,
        /// The TSW's tabu list (travels with the solution, as in the
        /// paper).
        tabu: SharedTabu<P>,
        /// Best-cost-over-time points recorded since the run started.
        trace: Vec<TracePoint>,
        /// Cumulative per-TSW search statistics.
        stats: SearchStats,
    },
    /// Sub-master → parent: the reduced best of one subtree after a
    /// global iteration (sharded-master topology). Carries the same
    /// payload as the [`PtsMsg::Report`]s it folds — one group-best
    /// solution with its tabu list, the merged subtree trace, and the
    /// folded search statistics — so the root's reduction is equivalent
    /// to collecting every TSW directly.
    GroupReport {
        /// Shard id of the reporting sub-master.
        shard: usize,
        /// Global iteration the group report belongs to.
        global: u32,
        /// Best cost found anywhere in this subtree so far.
        cost: f64,
        /// The solution achieving `cost`, diffed against the same base
        /// the parent holds.
        snapshot: SnapshotPayload<P>,
        /// Tabu list accompanying the subtree-best solution.
        tabu: SharedTabu<P>,
        /// Merged best-cost-over-time points of the whole subtree.
        trace: Vec<TracePoint>,
        /// Folded subtree search statistics (non-zero only on the final
        /// round — per-TSW stats are cumulative, summing every round
        /// would over-count).
        stats: SearchStats,
        /// Cumulative `ForceReport`s issued inside this subtree.
        forced: u64,
        /// Strategy id this subtree currently runs (`0` in uniform runs;
        /// rides the header's spare kind byte — reports never carry tabu
        /// deltas, so the byte was always zero).
        strategy: u8,
        /// Observed quality-per-virtual-second of the subtree this round:
        /// cost improvement divided by elapsed collection time.
        /// Informational (the root's reallocator scores on the
        /// deterministic cost improvements, not on this); `0.0` in
        /// uniform runs, and encoded into tail bytes that were always
        /// zero, so wire sizes never change.
        qps: f64,
    },
    /// Parent → sub-master: the global best flowing back down the tree
    /// after a global iteration; leaf sub-masters translate it into a
    /// [`PtsMsg::Broadcast`] for their TSW group. Sub-masters relay the
    /// payload verbatim — every process below still holds the same base.
    GroupBroadcast {
        /// Global iteration this broadcast concludes.
        global: u32,
        /// Best solution across the whole tree this round.
        snapshot: SnapshotPayload<P>,
        /// Tabu list accompanying the winning solution (relayed verbatim,
        /// like the snapshot payload — every process below holds the same
        /// tabu base).
        tabu: TabuPayload<P>,
        /// Strategy id the receiving subtree's group runs from this round
        /// on (`0` in uniform runs; rides the unused origin bytes).
        strategy: u8,
    },
    /// TSW → CLW: adopt this solution as the current state. Shared, not
    /// copied, across the TSW's CLW group — and usually a delta: the TSW
    /// and its CLWs move in lockstep (every accepted compound is
    /// mirrored via [`PtsMsg::ApplyMoves`]), so the CLW's *own current
    /// state* is the base, and the delta is just the broadcast adoption
    /// plus the diversification moves.
    AdoptState {
        /// Sync sequence: how many `AdoptState`s this TSW sent before
        /// this one (= the global iteration). The TSW/CLW link is FIFO
        /// with exactly one sync per round, so a delta whose `seq`
        /// disagrees with the CLW's own count is a protocol violation.
        seq: u32,
        /// The state to restore before the next investigation, as a
        /// delta against the CLW's current state when smaller.
        snapshot: SnapshotPayload<P>,
    },
    /// TSW → CLW: build one compound-move proposal (investigation `seq`).
    Investigate {
        /// Investigation sequence number (stale-proposal guard).
        seq: u64,
        /// Strategy id whose candidates/depth budget the CLW must use
        /// (`0` in uniform runs; rides the unused aux bytes).
        strategy: u8,
    },
    /// TSW → CLW: stop investigating `seq`, report what you have.
    CutShort {
        /// Sequence of the investigation being cut short.
        seq: u64,
    },
    /// CLW → TSW: proposed compound move and the cost it reaches.
    Proposal {
        /// Index of the proposing CLW within its TSW group.
        clw: usize,
        /// Investigation this proposal answers.
        seq: u64,
        /// The proposed elementary-move chain.
        moves: Vec<P::Move>,
        /// Cost reached after applying `moves`.
        cost: f64,
    },
    /// TSW → CLW: the accepted move sequence; apply to stay in sync.
    ApplyMoves {
        /// Moves to apply to the CLW's local state.
        moves: Vec<P::Move>,
    },
    /// Runtime → protocol neighbour: the process at `rank` died. Never
    /// sent by a worker itself — the fault layer synthesizes it at the
    /// kill instant and delivers it out-of-band (PVM's `pvm_notify`
    /// model), so it bypasses route faults and FIFO ordering. Receivers
    /// mark the rank dead and stop waiting for it.
    Down {
        /// Rank of the process that died.
        rank: usize,
    },
    /// Shut down (master → TSW → CLW).
    Stop,
}

/// Approximate wire size of one elementary move (two item indices).
const MOVE_BYTES: u64 = 8;
/// Approximate wire size of one tabu entry (attribute + tenure).
const TABU_ENTRY_BYTES: u64 = 12;
/// Approximate wire size of one trace point.
const TRACE_POINT_BYTES: u64 = 20;

impl<P: PtsProblem> PtsMsg<P> {
    /// Approximate wire size in bytes, used by the virtual cluster's
    /// bandwidth model. Snapshots dominate, matching the paper's
    /// observation that solution exchange is the main traffic — which is
    /// exactly what delta payloads shrink. Under
    /// [`SnapshotMode::Full`] every size equals the pre-delta protocol's,
    /// keeping its pinned virtual timelines bit-compatible.
    pub fn wire_size(&self) -> u64 {
        const HDR: u64 = 32;
        match self {
            // The +64 covers the run-constant data (the placement cost
            // scheme) that historically travelled with Init. The scheme is
            // now frozen into the domain before workers spawn, but the
            // charge is retained deliberately so virtual timelines stay
            // bit-compatible with the pre-redesign engine (the pinned
            // golden values in tests/determinism.rs depend on it).
            PtsMsg::Init { snapshot } => HDR + snapshot.wire_bytes() + 64,
            // A Full tabu payload costs exactly what the pre-delta
            // protocol charged (entry count × entry bytes), so virtual
            // timelines stay bit-compatible whenever `tabu_delta` is off.
            PtsMsg::Broadcast { snapshot, tabu, .. } => {
                HDR + snapshot.wire_bytes() + tabu.wire_bytes()
            }
            PtsMsg::Report {
                snapshot,
                tabu,
                trace,
                ..
            } => {
                HDR + snapshot.wire_bytes()
                    + TABU_ENTRY_BYTES * tabu.len() as u64
                    + TRACE_POINT_BYTES * trace.len() as u64
                    + 48
            }
            // Same payload shape as Report, plus the shard id and the
            // folded force counter — the simulated bandwidth model must
            // charge the tree links what the flat links used to carry.
            PtsMsg::GroupReport {
                snapshot,
                tabu,
                trace,
                ..
            } => {
                HDR + snapshot.wire_bytes()
                    + TABU_ENTRY_BYTES * tabu.len() as u64
                    + TRACE_POINT_BYTES * trace.len() as u64
                    + 64
            }
            PtsMsg::GroupBroadcast { snapshot, tabu, .. } => {
                HDR + snapshot.wire_bytes() + tabu.wire_bytes()
            }
            PtsMsg::AdoptState { snapshot, .. } => HDR + snapshot.wire_bytes(),
            PtsMsg::Proposal { moves, .. } => HDR + MOVE_BYTES * moves.len() as u64 + 16,
            PtsMsg::ApplyMoves { moves } => HDR + MOVE_BYTES * moves.len() as u64,
            PtsMsg::ForceReport { .. }
            | PtsMsg::Investigate { .. }
            | PtsMsg::CutShort { .. }
            | PtsMsg::Down { .. }
            | PtsMsg::Stop => HDR,
        }
    }

    /// Wire bytes of the solution-snapshot payload this message carries
    /// (0 for control and move-only messages). Feeds the
    /// [`crate::meter`] counters the wire benchmark reports.
    pub fn snapshot_wire_bytes(&self) -> u64 {
        match self {
            PtsMsg::Init { snapshot } => snapshot.wire_bytes(),
            PtsMsg::AdoptState { snapshot, .. }
            | PtsMsg::Broadcast { snapshot, .. }
            | PtsMsg::Report { snapshot, .. }
            | PtsMsg::GroupReport { snapshot, .. }
            | PtsMsg::GroupBroadcast { snapshot, .. } => snapshot.wire_bytes(),
            _ => 0,
        }
    }

    /// Wire bytes of the tabu-list payload this message carries (0 for
    /// messages without one). Feeds the [`crate::meter`] counters the
    /// wire benchmark reports alongside the snapshot bytes.
    pub fn tabu_wire_bytes(&self) -> u64 {
        match self {
            PtsMsg::Broadcast { tabu, .. } | PtsMsg::GroupBroadcast { tabu, .. } => {
                tabu.wire_bytes()
            }
            PtsMsg::Report { tabu, .. } | PtsMsg::GroupReport { tabu, .. } => {
                TABU_ENTRY_BYTES * tabu.len() as u64
            }
            _ => 0,
        }
    }

    /// Short tag for logging/diagnostics.
    pub fn tag(&self) -> &'static str {
        match self {
            PtsMsg::Init { .. } => "Init",
            PtsMsg::Broadcast { .. } => "Broadcast",
            PtsMsg::ForceReport { .. } => "ForceReport",
            PtsMsg::Report { .. } => "Report",
            PtsMsg::GroupReport { .. } => "GroupReport",
            PtsMsg::GroupBroadcast { .. } => "GroupBroadcast",
            PtsMsg::AdoptState { .. } => "AdoptState",
            PtsMsg::Investigate { .. } => "Investigate",
            PtsMsg::CutShort { .. } => "CutShort",
            PtsMsg::Proposal { .. } => "Proposal",
            PtsMsg::ApplyMoves { .. } => "ApplyMoves",
            PtsMsg::Down { .. } => "Down",
            PtsMsg::Stop => "Stop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement_problem::PlacementProblem;
    use pts_place::layout::Layout;
    use pts_place::placement::Placement;
    use pts_tabu::qap::{Qap, QapAssignment};
    use pts_tabu::SearchProblem as _;

    fn full<P: PtsProblem>(snapshot: P::Snapshot) -> SnapshotPayload<P> {
        SnapshotPayload::Full(Arc::new(snapshot))
    }

    #[test]
    fn placement_bearing_messages_are_heavier() {
        let p = Placement::sequential(Layout::new(4, 25, 2.0, 1.0), 100);
        let adopt: PtsMsg<PlacementProblem> = PtsMsg::AdoptState {
            seq: 0,
            snapshot: SnapshotPayload::Full(Arc::new(p)),
        };
        let stop: PtsMsg<PlacementProblem> = PtsMsg::Stop;
        assert!(adopt.wire_size() > stop.wire_size() + 300);
        assert!(adopt.snapshot_wire_bytes() > 300);
        assert_eq!(stop.snapshot_wire_bytes(), 0);
    }

    #[test]
    fn control_messages_are_small() {
        let msgs: Vec<PtsMsg<PlacementProblem>> = vec![
            PtsMsg::Stop,
            PtsMsg::Investigate {
                seq: 1,
                strategy: 0,
            },
            PtsMsg::CutShort { seq: 1 },
            PtsMsg::ForceReport { global: 0 },
        ];
        for m in msgs {
            assert!(m.wire_size() <= 64);
        }
    }

    #[test]
    fn qap_messages_size_by_assignment_length() {
        let q = Qap::random(40, 1);
        let init: PtsMsg<Qap> = PtsMsg::Init {
            snapshot: Arc::new(q.snapshot()),
        };
        let small = Qap::random(4, 1);
        let init_small: PtsMsg<Qap> = PtsMsg::Init {
            snapshot: Arc::new(small.snapshot()),
        };
        assert!(init.wire_size() > init_small.wire_size());
    }

    #[test]
    fn group_report_costs_at_least_what_a_report_costs() {
        // The sharded tree must not get free bandwidth: a GroupReport
        // carrying the same solution/tabu/trace payload is at least as
        // heavy as the TSW Report it reduces.
        let q = Qap::random(40, 1);
        let snapshot = q.snapshot();
        let tabu: SharedTabu<Qap> = Arc::new(vec![((0, 1), 3)]);
        let report: PtsMsg<Qap> = PtsMsg::Report {
            tsw: 0,
            global: 0,
            cost: 1.0,
            snapshot: full::<Qap>(snapshot.clone()),
            tabu: Arc::clone(&tabu),
            trace: vec![],
            stats: SearchStats::default(),
        };
        let group: PtsMsg<Qap> = PtsMsg::GroupReport {
            shard: 0,
            global: 0,
            cost: 1.0,
            snapshot: full::<Qap>(snapshot.clone()),
            tabu,
            trace: vec![],
            stats: SearchStats::default(),
            forced: 2,
            strategy: 1,
            qps: 0.25,
        };
        assert!(group.wire_size() >= report.wire_size());
        // And a GroupBroadcast weighs exactly what a Broadcast weighs —
        // it is the same payload routed one level differently.
        let empty: TabuPayload<Qap> = TabuPayload::Full(Arc::new(vec![]));
        let bcast: PtsMsg<Qap> = PtsMsg::Broadcast {
            global: 0,
            snapshot: full::<Qap>(snapshot.clone()),
            tabu: empty.clone(),
            strategy: 0,
        };
        let gbcast: PtsMsg<Qap> = PtsMsg::GroupBroadcast {
            global: 0,
            snapshot: full::<Qap>(snapshot),
            tabu: empty,
            strategy: 0,
        };
        assert_eq!(gbcast.wire_size(), bcast.wire_size());
        assert_eq!(gbcast.tag(), "GroupBroadcast");
    }

    #[test]
    fn payload_encodes_delta_when_smaller_and_falls_back_when_not() {
        use crate::config::SnapshotMode;
        let base_snap = QapAssignment::new((0..32).collect());
        let base: SnapshotBase<Qap> = SnapshotBase::initial(Arc::new(base_snap.clone()));

        // Two facilities moved: a 2-entry delta (16 B + 8 B header)
        // against a 256 B full snapshot.
        let mut close = base_snap.as_slice().to_vec();
        close.swap(3, 7);
        let close = Arc::new(QapAssignment::new(close));
        let p = SnapshotPayload::<Qap>::encode(SnapshotMode::Delta, &base, &close);
        assert!(p.is_delta());
        assert_eq!(p.wire_bytes(), 8 + 16);
        assert!(p.wire_bytes() <= close.wire_bytes());
        assert_eq!(*p.resolve(&base).unwrap(), *close);

        // Everything moved: the delta would be 8 B/entry against 8 B/entry
        // full — the encoder must fall back to Full.
        let far = Arc::new(QapAssignment::new((0..32).rev().collect()));
        let p = SnapshotPayload::<Qap>::encode(SnapshotMode::Delta, &base, &far);
        assert!(!p.is_delta());
        assert_eq!(p.wire_bytes(), far.wire_bytes());

        // Full mode never deltas, even when one would be tiny.
        let p = SnapshotPayload::<Qap>::encode(SnapshotMode::Full, &base, &close);
        assert!(!p.is_delta());
    }

    #[test]
    fn payload_resolve_rejects_unshared_base() {
        let base: SnapshotBase<Qap> =
            SnapshotBase::initial(Arc::new(QapAssignment::new((0..8).collect())));
        let delta = SnapshotPayload::<Qap>::Delta {
            base_seq: 3, // diffed against a broadcast this holder never saw
            delta: Arc::new(<QapAssignment as DeltaSnapshot>::diff(
                &base.snapshot,
                &QapAssignment::new((0..8).rev().collect()),
            )),
        };
        assert!(delta.resolve(&base).is_none());
        let mut advanced = base.clone();
        advanced.advance(2, Arc::clone(&base.snapshot));
        assert_eq!(advanced.seq, 3);
        assert!(delta.resolve(&advanced).is_some());
    }

    /// Resolve a tabu payload and compare entry *sets* with the expected
    /// list (resolve reconstructs the set exactly; order is unspecified).
    fn assert_resolves_to(p: &TabuPayload<Qap>, base: &TabuBase<Qap>, expect: &TabuEntries<Qap>) {
        let got = p.resolve(base).expect("shared base");
        let mut got: Vec<_> = got.iter().cloned().collect();
        let mut want = expect.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn tabu_payload_deltas_when_smaller_and_falls_back_when_not() {
        // Base: the list broadcast last round. New list: the same engine
        // a few iterations later — most entries persist with uniformly
        // shrunk tenures, a couple are new, one expired early.
        let mut base = TabuBase::<Qap>::initial();
        let old: SharedTabu<Qap> = Arc::new(vec![
            ((0, 1), 7),
            ((2, 3), 6),
            ((4, 5), 5),
            ((6, 7), 4),
            ((8, 9), 3),
        ]);
        base.advance(0, Arc::clone(&old));
        assert_eq!(base.seq, 1);

        // Three iterations later: everyone aged by 3, (8,9) expired for
        // free (tenure 3), (10,11) is new, and (6,7) was dropped although
        // its aged tenure would have been 1.
        let new: SharedTabu<Qap> =
            Arc::new(vec![((0, 1), 4), ((2, 3), 3), ((4, 5), 2), ((10, 11), 7)]);
        let p = TabuPayload::<Qap>::encode(true, &base, &new);
        assert!(p.is_delta());
        // 16 B header + 1 added entry (12 B) + 1 removed attr (8 B)
        // beats the 4-entry (48 B) full list.
        assert_eq!(p.wire_bytes(), 16 + 12 + 8);
        assert!(p.wire_bytes() < TabuPayload::<Qap>::Full(Arc::clone(&new)).wire_bytes());
        assert_resolves_to(&p, &base, &new);

        // A completely unrelated list: every entry ships in `added`, so
        // the delta cannot win and the encoder must fall back to Full.
        let far: SharedTabu<Qap> = Arc::new(vec![((20, 21), 7), ((22, 23), 6), ((24, 25), 5)]);
        let p = TabuPayload::<Qap>::encode(true, &base, &far);
        assert!(!p.is_delta());
        assert_eq!(p.wire_bytes(), 12 * 3);

        // Knob off: always Full, even when a delta would be tiny.
        let p = TabuPayload::<Qap>::encode(false, &base, &new);
        assert!(!p.is_delta());
        assert_eq!(p.wire_bytes(), 12 * 4);
    }

    #[test]
    fn tabu_payload_resolve_rejects_unshared_base() {
        let mut base = TabuBase::<Qap>::initial();
        let old: SharedTabu<Qap> = Arc::new(vec![((0, 1), 9), ((2, 3), 8), ((4, 5), 7)]);
        base.advance(2, Arc::clone(&old));
        let new: SharedTabu<Qap> = Arc::new(vec![((0, 1), 5), ((2, 3), 4), ((4, 5), 3)]);
        let p = TabuPayload::<Qap>::encode(true, &base, &new);
        assert!(p.is_delta());
        assert_resolves_to(&p, &base, &new);
        // A holder anchored elsewhere must reject the delta.
        let stale = TabuBase::<Qap>::initial();
        assert!(p.resolve(&stale).is_none());
        // A Full payload resolves against any base.
        let full = TabuPayload::<Qap>::Full(Arc::clone(&new));
        assert!(full.resolve(&stale).is_some());
    }

    #[test]
    fn tabu_payload_roundtrips_edge_cases() {
        // Empty → empty against the initial (empty) base: the delta
        // (16 B) is NOT smaller than the 0 B full list — must be Full.
        let base = TabuBase::<Qap>::initial();
        let empty: SharedTabu<Qap> = Arc::new(vec![]);
        let p = TabuPayload::<Qap>::encode(true, &base, &empty);
        assert!(!p.is_delta());
        assert_eq!(p.wire_bytes(), 0);

        // Everything expires: aged swallows the whole base, nothing added
        // or removed — a 16 B delta against whatever the base cost.
        let mut base = TabuBase::<Qap>::initial();
        let old: SharedTabu<Qap> = Arc::new(vec![((0, 1), 2), ((2, 3), 1)]);
        base.advance(4, Arc::clone(&old));
        let gone: SharedTabu<Qap> = Arc::new(vec![]);
        // Nothing persists, so aged is 0 and both entries need explicit
        // removal (2 × 8 B + 16 B header = 32 B) — NOT smaller than the
        // 0 B full list; the encoder must fall back.
        let p = TabuPayload::<Qap>::encode(true, &base, &gone);
        assert!(!p.is_delta());

        // Identical lists (a repeated broadcast with no iterations in
        // between): aged 0, nothing added/removed — a 16 B delta.
        let p = TabuPayload::<Qap>::encode(true, &base, &old);
        assert!(p.is_delta());
        assert_eq!(p.wire_bytes(), 16);
        assert_resolves_to(&p, &base, &old);
    }

    #[test]
    fn tags_cover_all_variants() {
        let stop: PtsMsg<Qap> = PtsMsg::Stop;
        assert_eq!(stop.tag(), "Stop");
        let inv: PtsMsg<Qap> = PtsMsg::Investigate {
            seq: 0,
            strategy: 0,
        };
        assert_eq!(inv.tag(), "Investigate");
    }
}
