//! The master / TSW / CLW message protocol, generic over the search
//! problem.
//!
//! Mirrors the paper's process interactions: the master and TSWs exchange
//! best solutions *plus the associated tabu list*; TSWs and CLWs exchange
//! only best solutions (proposals). `ForceReport` and `CutShort` implement
//! the heterogeneity mechanism ("once half have reported, force the rest").
//!
//! Messages carry the global-iteration / investigation sequence they belong
//! to so that late control messages (a `ForceReport` crossing a `Report` in
//! flight) are recognized as stale and ignored.
//!
//! The payload types come from the problem: solution snapshots
//! ([`pts_tabu::SearchProblem::Snapshot`]), elementary moves, and tabu
//! attributes. Any [`PtsProblem`] rides the same protocol — placement and
//! QAP use identical message flow.

use crate::domain::{PtsProblem, WireSized};
use pts_tabu::search::SearchStats;
use pts_tabu::trace::TracePoint;

/// Exported tabu list: attribute + remaining tenure.
pub type TabuEntries<P> = Vec<(<P as pts_tabu::SearchProblem>::Attribute, u64)>;

/// Protocol messages for a run over problem `P`.
pub enum PtsMsg<P: PtsProblem> {
    /// Master → everyone: the initial solution (run-constant data such as
    /// the placement cost scheme is frozen into the domain before workers
    /// spawn).
    Init {
        /// The shared starting solution.
        snapshot: P::Snapshot,
    },
    /// Master → TSW: the global best after a global iteration, with its
    /// tabu list.
    Broadcast {
        /// Global iteration this broadcast concludes.
        global: u32,
        /// Best solution across all TSW reports of the round.
        snapshot: P::Snapshot,
        /// Tabu list accompanying the winning solution.
        tabu: TabuEntries<P>,
    },
    /// Master → TSW: report your current best immediately (half-report
    /// sync).
    ForceReport {
        /// Global iteration the forced report belongs to (stale-message
        /// guard).
        global: u32,
    },
    /// TSW → master: end-of-global-iteration report.
    Report {
        /// Index of the reporting TSW.
        tsw: usize,
        /// Global iteration the report belongs to.
        global: u32,
        /// Best cost found by this TSW so far.
        cost: f64,
        /// The solution achieving `cost`.
        snapshot: P::Snapshot,
        /// The TSW's tabu list (travels with the solution, as in the
        /// paper).
        tabu: TabuEntries<P>,
        /// Best-cost-over-time points recorded since the run started.
        trace: Vec<TracePoint>,
        /// Cumulative per-TSW search statistics.
        stats: SearchStats,
    },
    /// Sub-master → parent: the reduced best of one subtree after a
    /// global iteration (sharded-master topology). Carries the same
    /// payload as the [`PtsMsg::Report`]s it folds — one group-best
    /// solution with its tabu list, the merged subtree trace, and the
    /// folded search statistics — so the root's reduction is equivalent
    /// to collecting every TSW directly.
    GroupReport {
        /// Shard id of the reporting sub-master.
        shard: usize,
        /// Global iteration the group report belongs to.
        global: u32,
        /// Best cost found anywhere in this subtree so far.
        cost: f64,
        /// The solution achieving `cost`.
        snapshot: P::Snapshot,
        /// Tabu list accompanying the subtree-best solution.
        tabu: TabuEntries<P>,
        /// Merged best-cost-over-time points of the whole subtree.
        trace: Vec<TracePoint>,
        /// Folded subtree search statistics (non-zero only on the final
        /// round — per-TSW stats are cumulative, summing every round
        /// would over-count).
        stats: SearchStats,
        /// Cumulative `ForceReport`s issued inside this subtree.
        forced: u64,
    },
    /// Parent → sub-master: the global best flowing back down the tree
    /// after a global iteration; leaf sub-masters translate it into a
    /// [`PtsMsg::Broadcast`] for their TSW group.
    GroupBroadcast {
        /// Global iteration this broadcast concludes.
        global: u32,
        /// Best solution across the whole tree this round.
        snapshot: P::Snapshot,
        /// Tabu list accompanying the winning solution.
        tabu: TabuEntries<P>,
    },
    /// TSW → CLW: adopt this solution as the current state.
    AdoptState {
        /// The state to restore before the next investigation.
        snapshot: P::Snapshot,
    },
    /// TSW → CLW: build one compound-move proposal (investigation `seq`).
    Investigate {
        /// Investigation sequence number (stale-proposal guard).
        seq: u64,
    },
    /// TSW → CLW: stop investigating `seq`, report what you have.
    CutShort {
        /// Sequence of the investigation being cut short.
        seq: u64,
    },
    /// CLW → TSW: proposed compound move and the cost it reaches.
    Proposal {
        /// Index of the proposing CLW within its TSW group.
        clw: usize,
        /// Investigation this proposal answers.
        seq: u64,
        /// The proposed elementary-move chain.
        moves: Vec<P::Move>,
        /// Cost reached after applying `moves`.
        cost: f64,
    },
    /// TSW → CLW: the accepted move sequence; apply to stay in sync.
    ApplyMoves {
        /// Moves to apply to the CLW's local state.
        moves: Vec<P::Move>,
    },
    /// Shut down (master → TSW → CLW).
    Stop,
}

/// Approximate wire size of one elementary move (two item indices).
const MOVE_BYTES: u64 = 8;
/// Approximate wire size of one tabu entry (attribute + tenure).
const TABU_ENTRY_BYTES: u64 = 12;
/// Approximate wire size of one trace point.
const TRACE_POINT_BYTES: u64 = 20;

impl<P: PtsProblem> PtsMsg<P> {
    /// Approximate wire size in bytes, used by the virtual cluster's
    /// bandwidth model. Snapshots dominate, matching the paper's
    /// observation that solution exchange is the main traffic.
    pub fn wire_size(&self) -> u64 {
        const HDR: u64 = 32;
        match self {
            // The +64 covers the run-constant data (the placement cost
            // scheme) that historically travelled with Init. The scheme is
            // now frozen into the domain before workers spawn, but the
            // charge is retained deliberately so virtual timelines stay
            // bit-compatible with the pre-redesign engine (the pinned
            // golden values in tests/determinism.rs depend on it).
            PtsMsg::Init { snapshot } => HDR + snapshot.wire_bytes() + 64,
            PtsMsg::Broadcast { snapshot, tabu, .. } => {
                HDR + snapshot.wire_bytes() + TABU_ENTRY_BYTES * tabu.len() as u64
            }
            PtsMsg::Report {
                snapshot,
                tabu,
                trace,
                ..
            } => {
                HDR + snapshot.wire_bytes()
                    + TABU_ENTRY_BYTES * tabu.len() as u64
                    + TRACE_POINT_BYTES * trace.len() as u64
                    + 48
            }
            // Same payload shape as Report, plus the shard id and the
            // folded force counter — the simulated bandwidth model must
            // charge the tree links what the flat links used to carry.
            PtsMsg::GroupReport {
                snapshot,
                tabu,
                trace,
                ..
            } => {
                HDR + snapshot.wire_bytes()
                    + TABU_ENTRY_BYTES * tabu.len() as u64
                    + TRACE_POINT_BYTES * trace.len() as u64
                    + 64
            }
            PtsMsg::GroupBroadcast { snapshot, tabu, .. } => {
                HDR + snapshot.wire_bytes() + TABU_ENTRY_BYTES * tabu.len() as u64
            }
            PtsMsg::AdoptState { snapshot } => HDR + snapshot.wire_bytes(),
            PtsMsg::Proposal { moves, .. } => HDR + MOVE_BYTES * moves.len() as u64 + 16,
            PtsMsg::ApplyMoves { moves } => HDR + MOVE_BYTES * moves.len() as u64,
            PtsMsg::ForceReport { .. }
            | PtsMsg::Investigate { .. }
            | PtsMsg::CutShort { .. }
            | PtsMsg::Stop => HDR,
        }
    }

    /// Short tag for logging/diagnostics.
    pub fn tag(&self) -> &'static str {
        match self {
            PtsMsg::Init { .. } => "Init",
            PtsMsg::Broadcast { .. } => "Broadcast",
            PtsMsg::ForceReport { .. } => "ForceReport",
            PtsMsg::Report { .. } => "Report",
            PtsMsg::GroupReport { .. } => "GroupReport",
            PtsMsg::GroupBroadcast { .. } => "GroupBroadcast",
            PtsMsg::AdoptState { .. } => "AdoptState",
            PtsMsg::Investigate { .. } => "Investigate",
            PtsMsg::CutShort { .. } => "CutShort",
            PtsMsg::Proposal { .. } => "Proposal",
            PtsMsg::ApplyMoves { .. } => "ApplyMoves",
            PtsMsg::Stop => "Stop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement_problem::PlacementProblem;
    use pts_place::layout::Layout;
    use pts_place::placement::Placement;
    use pts_tabu::qap::Qap;

    #[test]
    fn placement_bearing_messages_are_heavier() {
        let p = Placement::sequential(Layout::new(4, 25, 2.0, 1.0), 100);
        let adopt: PtsMsg<PlacementProblem> = PtsMsg::AdoptState { snapshot: p };
        let stop: PtsMsg<PlacementProblem> = PtsMsg::Stop;
        assert!(adopt.wire_size() > stop.wire_size() + 300);
    }

    #[test]
    fn control_messages_are_small() {
        let msgs: Vec<PtsMsg<PlacementProblem>> = vec![
            PtsMsg::Stop,
            PtsMsg::Investigate { seq: 1 },
            PtsMsg::CutShort { seq: 1 },
            PtsMsg::ForceReport { global: 0 },
        ];
        for m in msgs {
            assert!(m.wire_size() <= 64);
        }
    }

    #[test]
    fn qap_messages_size_by_assignment_length() {
        let q = Qap::random(40, 1);
        let init: PtsMsg<Qap> = PtsMsg::Init {
            snapshot: pts_tabu::SearchProblem::snapshot(&q),
        };
        let small = Qap::random(4, 1);
        let init_small: PtsMsg<Qap> = PtsMsg::Init {
            snapshot: pts_tabu::SearchProblem::snapshot(&small),
        };
        assert!(init.wire_size() > init_small.wire_size());
    }

    #[test]
    fn group_report_costs_at_least_what_a_report_costs() {
        // The sharded tree must not get free bandwidth: a GroupReport
        // carrying the same solution/tabu/trace payload is at least as
        // heavy as the TSW Report it reduces.
        let q = Qap::random(40, 1);
        let snapshot = pts_tabu::SearchProblem::snapshot(&q);
        let report: PtsMsg<Qap> = PtsMsg::Report {
            tsw: 0,
            global: 0,
            cost: 1.0,
            snapshot: snapshot.clone(),
            tabu: vec![((0, 1), 3)],
            trace: vec![],
            stats: SearchStats::default(),
        };
        let group: PtsMsg<Qap> = PtsMsg::GroupReport {
            shard: 0,
            global: 0,
            cost: 1.0,
            snapshot: snapshot.clone(),
            tabu: vec![((0, 1), 3)],
            trace: vec![],
            stats: SearchStats::default(),
            forced: 2,
        };
        assert!(group.wire_size() >= report.wire_size());
        // And a GroupBroadcast weighs exactly what a Broadcast weighs —
        // it is the same payload routed one level differently.
        let bcast: PtsMsg<Qap> = PtsMsg::Broadcast {
            global: 0,
            snapshot: snapshot.clone(),
            tabu: vec![],
        };
        let gbcast: PtsMsg<Qap> = PtsMsg::GroupBroadcast {
            global: 0,
            snapshot,
            tabu: vec![],
        };
        assert_eq!(gbcast.wire_size(), bcast.wire_size());
        assert_eq!(gbcast.tag(), "GroupBroadcast");
    }

    #[test]
    fn tags_cover_all_variants() {
        let stop: PtsMsg<Qap> = PtsMsg::Stop;
        assert_eq!(stop.tag(), "Stop");
        let inv: PtsMsg<Qap> = PtsMsg::Investigate { seq: 0 };
        assert_eq!(inv.tag(), "Investigate");
    }
}
