//! The sequential tabu search baseline.
//!
//! The enum-based `Engine` selection and `run_pts` free function (and the
//! placement-only `run_on_sim*` / `run_on_threads*` wrappers) that lived
//! here were deprecated in 0.2.0 and have been removed; use
//! [`crate::builder::Pts::builder`] with an
//! [`crate::engine::ExecutionEngine`] trait object instead.

use crate::config::PtsConfig;
use pts_netlist::{Netlist, TimingGraph};
use pts_place::eval::Evaluator;
use pts_place::init::random_placement;
use pts_tabu::search::{SearchResult, TabuPolicy, TabuSearch, TabuSearchConfig};
use std::sync::Arc;

/// Sequential tabu search baseline with parameters matched to a PTS config
/// (one worker doing `global_iters × local_iters` iterations, no
/// diversification, no parallel candidate lists).
pub fn run_sequential_baseline(
    cfg: &PtsConfig,
    netlist: Arc<Netlist>,
) -> SearchResult<pts_place::placement::Placement> {
    let timing = Arc::new(TimingGraph::build(&netlist).expect("acyclic circuit"));
    let initial = random_placement(&netlist, cfg.seed ^ 0x1317);
    let eval = Evaluator::new(netlist, timing, initial, cfg.eval_config());
    let mut problem = crate::placement_problem::PlacementProblem::new(eval);
    let ts_cfg = TabuSearchConfig {
        tenure: cfg.search.tenure,
        candidates: cfg.search.candidates,
        depth: cfg.search.depth,
        iterations: cfg.global_iters as u64 * cfg.local_iters as u64,
        aspiration: cfg.search.aspiration,
        early_accept: true,
        range: None,
        tabu_policy: TabuPolicy::AnyConstituent,
        seed: cfg.seed,
    };
    TabuSearch::new(ts_cfg).run(&mut problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_netlist::highway;

    #[test]
    fn sequential_baseline_improves_cost() {
        let cfg = PtsConfig {
            n_tsw: 2,
            n_clw: 2,
            global_iters: 2,
            local_iters: 4,
            search: crate::config::SearchStrategy {
                candidates: 4,
                depth: 2,
                ..Default::default()
            },
            ..PtsConfig::default()
        };
        let r = run_sequential_baseline(&cfg, Arc::new(highway()));
        assert!(r.best_cost < 1.0);
        assert!(!r.trace.is_empty());
    }
}
