//! Unified run entry point and the sequential baseline.

use crate::config::PtsConfig;
use crate::master::MasterOutcome;
use crate::placement_problem::PlacementProblem;
use crate::sim_engine::{run_on_sim, SimOutput};
use crate::thread_engine::run_on_threads;
use pts_netlist::{Netlist, TimingGraph};
use pts_place::eval::Evaluator;
use pts_place::init::random_placement;
use pts_tabu::aspiration::Aspiration;
use pts_tabu::search::{SearchResult, TabuPolicy, TabuSearch, TabuSearchConfig};
use pts_vcluster::ClusterSpec;
use std::sync::Arc;

/// Which execution engine carries the run.
#[derive(Clone, Debug)]
pub enum Engine {
    /// Deterministic virtual-time cluster (the paper's testbed substitute).
    Sim(ClusterSpec),
    /// Native OS threads: real wall-clock parallelism.
    Threads,
}

/// Result of [`run_pts`].
#[derive(Clone, Debug)]
pub struct PtsOutput {
    pub outcome: MasterOutcome,
    /// Cluster metrics (sim engine only).
    pub sim_report: Option<pts_vcluster::RunReport>,
    /// Real wall-clock duration of the run.
    pub wall_seconds: f64,
}

/// Run parallel tabu search for a circuit on the chosen engine.
pub fn run_pts(cfg: &PtsConfig, netlist: Arc<Netlist>, engine: Engine) -> PtsOutput {
    let wall = std::time::Instant::now();
    match engine {
        Engine::Sim(cluster) => {
            let SimOutput { outcome, report } = run_on_sim(cfg, cluster, netlist);
            PtsOutput {
                outcome,
                sim_report: Some(report),
                wall_seconds: wall.elapsed().as_secs_f64(),
            }
        }
        Engine::Threads => {
            let outcome = run_on_threads(cfg, netlist);
            PtsOutput {
                outcome,
                sim_report: None,
                wall_seconds: wall.elapsed().as_secs_f64(),
            }
        }
    }
}

/// Sequential tabu search baseline with parameters matched to a PTS config
/// (one worker doing `global_iters × local_iters` iterations, no
/// diversification, no parallel candidate lists).
pub fn run_sequential_baseline(
    cfg: &PtsConfig,
    netlist: Arc<Netlist>,
) -> SearchResult<pts_place::placement::Placement> {
    let timing = Arc::new(TimingGraph::build(&netlist).expect("acyclic circuit"));
    let initial = random_placement(&netlist, cfg.seed ^ 0x1317);
    let eval = Evaluator::new(netlist, timing, initial, cfg.eval_config());
    let mut problem = PlacementProblem::new(eval);
    let ts_cfg = TabuSearchConfig {
        tenure: cfg.tenure,
        candidates: cfg.candidates,
        depth: cfg.depth,
        iterations: cfg.global_iters as u64 * cfg.local_iters as u64,
        aspiration: Aspiration::BestCost,
        early_accept: true,
        range: None,
        tabu_policy: TabuPolicy::AnyConstituent,
        seed: cfg.seed,
    };
    TabuSearch::new(ts_cfg).run(&mut problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_netlist::highway;
    use pts_vcluster::topology::paper_cluster;

    fn tiny_cfg() -> PtsConfig {
        PtsConfig {
            n_tsw: 2,
            n_clw: 2,
            global_iters: 2,
            local_iters: 4,
            candidates: 4,
            depth: 2,
            ..PtsConfig::default()
        }
    }

    #[test]
    fn sim_run_improves_cost() {
        let out = run_pts(&tiny_cfg(), Arc::new(highway()), Engine::Sim(paper_cluster()));
        assert!(
            out.outcome.best_cost < out.outcome.initial_cost,
            "PTS must improve over the initial solution ({} vs {})",
            out.outcome.best_cost,
            out.outcome.initial_cost
        );
        let report = out.sim_report.expect("sim metrics present");
        assert!(report.end_time > 0.0);
        assert!(report.total_messages() > 0);
        assert_eq!(out.outcome.best_per_global_iter.len(), 2);
        out.outcome.best_placement.check_consistency().unwrap();
    }

    #[test]
    fn sim_run_is_deterministic() {
        let a = run_pts(&tiny_cfg(), Arc::new(highway()), Engine::Sim(paper_cluster()));
        let b = run_pts(&tiny_cfg(), Arc::new(highway()), Engine::Sim(paper_cluster()));
        assert_eq!(a.outcome.best_cost, b.outcome.best_cost);
        assert_eq!(
            a.outcome.best_per_global_iter,
            b.outcome.best_per_global_iter
        );
        assert_eq!(
            a.sim_report.unwrap().end_time,
            b.sim_report.unwrap().end_time
        );
        assert_eq!(a.outcome.best_placement, b.outcome.best_placement);
    }

    #[test]
    fn thread_run_improves_cost() {
        let out = run_pts(&tiny_cfg(), Arc::new(highway()), Engine::Threads);
        assert!(out.outcome.best_cost < out.outcome.initial_cost);
        assert!(out.sim_report.is_none());
        out.outcome.best_placement.check_consistency().unwrap();
    }

    #[test]
    fn sequential_baseline_improves_cost() {
        let cfg = tiny_cfg();
        let r = run_sequential_baseline(&cfg, Arc::new(highway()));
        assert!(r.best_cost < 1.0);
        assert!(!r.trace.is_empty());
    }
}
