//! Legacy run entry point (deprecated shims) and the sequential baseline.
//!
//! The enum-based [`Engine`] selection and [`run_pts`] free function are
//! superseded by the [`crate::builder::Pts`] builder and
//! [`crate::engine::ExecutionEngine`] trait objects; they remain as thin
//! wrappers so downstream diffs stay reviewable for one release.

use crate::builder::Pts;
use crate::config::PtsConfig;
use crate::engine::{SimEngine, ThreadEngine};
use crate::placement_problem::MasterOutcome;
use pts_netlist::{Netlist, TimingGraph};
use pts_place::eval::Evaluator;
use pts_place::init::random_placement;
use pts_tabu::aspiration::Aspiration;
use pts_tabu::search::{SearchResult, TabuPolicy, TabuSearch, TabuSearchConfig};
use pts_vcluster::ClusterSpec;
use std::sync::Arc;

/// Which execution engine carries the run.
#[deprecated(
    since = "0.2.0",
    note = "use `SimEngine` / `ThreadEngine` via the `ExecutionEngine` trait"
)]
#[derive(Clone, Debug)]
pub enum Engine {
    /// Deterministic virtual-time cluster (the paper's testbed substitute).
    Sim(ClusterSpec),
    /// Native OS threads: real wall-clock parallelism.
    Threads,
}

/// Result of [`run_pts`]. The modern equivalent is
/// [`crate::builder::PlacementRunOutput`], whose [`crate::report::RunReport`]
/// is never optional.
#[deprecated(
    since = "0.2.0",
    note = "use `Pts::builder()` and `PlacementRunOutput` (unified `RunReport`)"
)]
#[derive(Clone, Debug)]
pub struct PtsOutput {
    /// Search outcome with exact raw placement objectives.
    pub outcome: MasterOutcome,
    /// Cluster metrics (sim engine only).
    pub sim_report: Option<pts_vcluster::RunReport>,
    /// Real wall-clock duration of the run.
    pub wall_seconds: f64,
}

/// Grandfather configurations that were valid under the old `[0, 1]`
/// report-fraction rule: `0.0` clamped the quorum to one child, which the
/// smallest positive fraction reproduces exactly. Shared by the deprecated
/// entry points so old callers keep their old runtime behaviour.
pub(crate) fn legacy_normalized(cfg: &PtsConfig) -> PtsConfig {
    let mut cfg = *cfg;
    if cfg.report_fraction == 0.0 {
        cfg.report_fraction = f64::MIN_POSITIVE;
    }
    cfg
}

/// Build a validated run from a legacy config, panicking like the old
/// entry points did on configs that were invalid under the old rules too.
pub(crate) fn legacy_run(cfg: &PtsConfig) -> crate::builder::PtsRun {
    Pts::from_config(legacy_normalized(cfg))
        .build()
        .expect("invalid PTS configuration")
}

/// Run parallel tabu search for a circuit on the chosen engine.
///
/// Panics on an invalid configuration (the historical behaviour); the
/// builder API returns a typed error instead. A `report_fraction` of
/// `0.0` — valid under the old API — is normalized to the smallest
/// positive fraction, preserving its old quorum-of-one semantics.
#[deprecated(
    since = "0.2.0",
    note = "use `Pts::builder()…build()?.run_placement(netlist, &engine)`"
)]
#[allow(deprecated)]
pub fn run_pts(cfg: &PtsConfig, netlist: Arc<Netlist>, engine: Engine) -> PtsOutput {
    // Historical behaviour: wall_seconds covers the whole call, including
    // domain setup (timing graph + scheme freeze), not just engine time.
    let wall = std::time::Instant::now();
    let run = legacy_run(cfg);
    match engine {
        Engine::Sim(cluster) => {
            let out = run.run_placement(netlist, &SimEngine::new(cluster));
            PtsOutput {
                outcome: out.outcome,
                sim_report: Some(out.report.to_cluster_report()),
                wall_seconds: wall.elapsed().as_secs_f64(),
            }
        }
        Engine::Threads => {
            let out = run.run_placement(netlist, &ThreadEngine);
            PtsOutput {
                outcome: out.outcome,
                sim_report: None,
                wall_seconds: wall.elapsed().as_secs_f64(),
            }
        }
    }
}

/// Sequential tabu search baseline with parameters matched to a PTS config
/// (one worker doing `global_iters × local_iters` iterations, no
/// diversification, no parallel candidate lists).
pub fn run_sequential_baseline(
    cfg: &PtsConfig,
    netlist: Arc<Netlist>,
) -> SearchResult<pts_place::placement::Placement> {
    let timing = Arc::new(TimingGraph::build(&netlist).expect("acyclic circuit"));
    let initial = random_placement(&netlist, cfg.seed ^ 0x1317);
    let eval = Evaluator::new(netlist, timing, initial, cfg.eval_config());
    let mut problem = crate::placement_problem::PlacementProblem::new(eval);
    let ts_cfg = TabuSearchConfig {
        tenure: cfg.tenure,
        candidates: cfg.candidates,
        depth: cfg.depth,
        iterations: cfg.global_iters as u64 * cfg.local_iters as u64,
        aspiration: Aspiration::BestCost,
        early_accept: true,
        range: None,
        tabu_policy: TabuPolicy::AnyConstituent,
        seed: cfg.seed,
    };
    TabuSearch::new(ts_cfg).run(&mut problem)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use pts_netlist::highway;
    use pts_vcluster::topology::paper_cluster;

    fn tiny_cfg() -> PtsConfig {
        PtsConfig {
            n_tsw: 2,
            n_clw: 2,
            global_iters: 2,
            local_iters: 4,
            candidates: 4,
            depth: 2,
            ..PtsConfig::default()
        }
    }

    #[test]
    fn sim_run_improves_cost() {
        let out = run_pts(
            &tiny_cfg(),
            Arc::new(highway()),
            Engine::Sim(paper_cluster()),
        );
        assert!(
            out.outcome.best_cost < out.outcome.initial_cost,
            "PTS must improve over the initial solution ({} vs {})",
            out.outcome.best_cost,
            out.outcome.initial_cost
        );
        let report = out.sim_report.expect("sim metrics present");
        assert!(report.end_time > 0.0);
        assert!(report.total_messages() > 0);
        assert_eq!(out.outcome.best_per_global_iter.len(), 2);
        out.outcome.best_placement.check_consistency().unwrap();
    }

    #[test]
    fn sim_run_is_deterministic() {
        let a = run_pts(
            &tiny_cfg(),
            Arc::new(highway()),
            Engine::Sim(paper_cluster()),
        );
        let b = run_pts(
            &tiny_cfg(),
            Arc::new(highway()),
            Engine::Sim(paper_cluster()),
        );
        assert_eq!(a.outcome.best_cost, b.outcome.best_cost);
        assert_eq!(
            a.outcome.best_per_global_iter,
            b.outcome.best_per_global_iter
        );
        assert_eq!(
            a.sim_report.unwrap().end_time,
            b.sim_report.unwrap().end_time
        );
        assert_eq!(a.outcome.best_placement, b.outcome.best_placement);
    }

    #[test]
    fn thread_run_improves_cost() {
        let out = run_pts(&tiny_cfg(), Arc::new(highway()), Engine::Threads);
        assert!(out.outcome.best_cost < out.outcome.initial_cost);
        assert!(out.sim_report.is_none());
        out.outcome.best_placement.check_consistency().unwrap();
    }

    #[test]
    fn legacy_zero_report_fraction_still_runs() {
        // 0.0 was valid under the old API ([0,1], quorum clamped to 1);
        // the shim must keep accepting it instead of panicking.
        let mut cfg = tiny_cfg();
        cfg.n_tsw = 3;
        cfg.report_fraction = 0.0;
        let out = run_pts(&cfg, Arc::new(highway()), Engine::Sim(paper_cluster()));
        assert!(out.outcome.best_cost < out.outcome.initial_cost);
        // Quorum of one: the other two TSWs are forced every round.
        assert_eq!(out.outcome.forced_reports, 2 * cfg.global_iters as u64);
    }

    #[test]
    fn sequential_baseline_improves_cost() {
        let cfg = tiny_cfg();
        let r = run_sequential_baseline(&cfg, Arc::new(highway()));
        assert!(r.best_cost < 1.0);
        assert!(!r.trace.is_empty());
    }
}
