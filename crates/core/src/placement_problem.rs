//! Binding of the VLSI placement evaluator to the generic tabu search
//! problem abstraction, plus the placement [`PtsDomain`] — the paper's
//! workload — and the placement-specific run outcome.

use crate::config::PtsConfig;
use crate::domain::{DeltaSnapshot, PtsDomain, SearchOutcome, WireSized};
use pts_netlist::{CellId, Netlist, TimingGraph};
use pts_place::cost::{CostScheme, RawObjectives};
use pts_place::eval::{EvalConfig, Evaluator};
use pts_place::init::random_placement;
use pts_place::layout::SlotId;
use pts_place::placement::Placement;
use pts_tabu::problem::{AttrPair, SearchProblem};
use pts_tabu::search::SearchStats;
use pts_tabu::trace::Trace;
use pts_tabu::DiversifiableProblem;
use pts_util::Rng;
use std::sync::Arc;

/// A cell-swap move.
pub type SwapMove = (CellId, CellId);

/// Tabu attribute: `(cell, slot)` — a cell is forbidden to return to a slot
/// it recently vacated.
pub type SlotAttr = (u32, u32);

/// The placement problem as seen by the tabu engine.
#[derive(Clone, Debug)]
pub struct PlacementProblem {
    eval: Evaluator,
}

impl PlacementProblem {
    /// Wrap an incremental evaluator as a searchable problem.
    pub fn new(eval: Evaluator) -> PlacementProblem {
        PlacementProblem { eval }
    }

    /// The underlying incremental evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.eval
    }

    /// Mutable access to the underlying evaluator.
    pub fn evaluator_mut(&mut self) -> &mut Evaluator {
        &mut self.eval
    }

    /// The current placement state.
    pub fn placement(&self) -> &Placement {
        self.eval.placement()
    }
}

impl SearchProblem for PlacementProblem {
    type Move = SwapMove;
    type Attribute = SlotAttr;
    type Snapshot = Placement;

    fn cost(&self) -> f64 {
        self.eval.cost()
    }

    fn domain_size(&self) -> usize {
        self.eval.netlist().num_cells()
    }

    /// The paper's CLW move: the first cell comes from the worker's range,
    /// the second from anywhere in the cell space.
    fn sample_move(&mut self, rng: &mut Rng, range: Option<(usize, usize)>) -> SwapMove {
        let n = self.domain_size();
        let (lo, hi) = range.unwrap_or((0, n));
        debug_assert!(lo < hi && hi <= n);
        let a = rng.range(lo, hi);
        let mut b = rng.index(n);
        while b == a {
            b = rng.index(n);
        }
        (CellId(a as u32), CellId(b as u32))
    }

    fn trial_cost(&mut self, mv: &SwapMove) -> f64 {
        self.eval.trial_swap(mv.0, mv.1).cost
    }

    fn apply(&mut self, mv: &SwapMove) {
        self.eval.commit_swap(mv.0, mv.1);
    }

    fn undo(&mut self, mv: &SwapMove) {
        // Swaps are self-inverse.
        self.eval.commit_swap(mv.0, mv.1);
    }

    fn attributes(&self, mv: &SwapMove) -> AttrPair<SlotAttr> {
        let p = self.eval.placement();
        (
            (mv.0 .0, p.slot_of(mv.0).0),
            Some((mv.1 .0, p.slot_of(mv.1).0)),
        )
    }

    fn target_attributes(&self, mv: &SwapMove) -> AttrPair<SlotAttr> {
        let p = self.eval.placement();
        (
            (mv.0 .0, p.slot_of(mv.1).0),
            Some((mv.1 .0, p.slot_of(mv.0).0)),
        )
    }

    fn snapshot(&self) -> Placement {
        self.eval.snapshot()
    }

    fn restore(&mut self, snapshot: &Placement) {
        self.eval.adopt_placement(snapshot.clone());
    }

    fn trial_costs(&mut self, moves: &[SwapMove], out: &mut Vec<f64>) {
        // Batched kernel: same per-trial computation against the shared
        // incremental caches, with the affected-net scratch reused across
        // the whole batch (see `Evaluator::trial_swaps`).
        self.eval.trial_swaps(moves, out);
    }
}

impl DiversifiableProblem for PlacementProblem {}

impl WireSized for Placement {
    /// 4 bytes per cell, matching the paper's observation that solution
    /// exchange dominates traffic.
    fn wire_bytes(&self) -> u64 {
        4 * self.num_cells() as u64
    }
}

/// Delta between two placements of one run: the moved cells with their
/// new slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementDelta(Vec<(CellId, SlotId)>);

impl PlacementDelta {
    /// Wrap explicit `(cell, new slot)` entries — the wire decoder's
    /// constructor.
    pub fn new(moves: Vec<(CellId, SlotId)>) -> PlacementDelta {
        PlacementDelta(moves)
    }

    /// The `(cell, new slot)` entries of this delta.
    pub fn moves(&self) -> &[(CellId, SlotId)] {
        &self.0
    }
}

impl WireSized for PlacementDelta {
    /// 8 bytes per moved cell (cell id + slot id, 4 + 4) — twice the
    /// per-cell density of a full snapshot, so a delta only pays off
    /// while fewer than half the cells moved; the payload encoder falls
    /// back to a full snapshot beyond that.
    fn wire_bytes(&self) -> u64 {
        8 * self.0.len() as u64
    }
}

impl DeltaSnapshot for Placement {
    type Delta = PlacementDelta;

    fn diff(base: &Placement, new: &Placement) -> PlacementDelta {
        PlacementDelta(new.diff_from(base))
    }

    fn apply_delta(base: &Placement, delta: &PlacementDelta) -> Placement {
        let mut p = base.clone();
        p.apply_diff(&delta.0);
        p
    }
}

/// The VLSI placement domain: shared circuit data plus the frozen cost
/// scheme, minting worker-local [`PlacementProblem`] instances.
#[derive(Clone)]
pub struct PlacementDomain {
    netlist: Arc<Netlist>,
    timing: Arc<TimingGraph>,
    alpha: f64,
    eval_config: EvalConfig,
    /// Cost scheme frozen from the initial solution (set by
    /// [`PtsDomain::freeze`] before workers spawn, as the paper's master
    /// fixes the fuzzy goals once).
    scheme: Option<CostScheme>,
    /// The initial solution the scheme was frozen from, with its cost —
    /// lets [`PtsDomain::cost_of`] answer the master's initial-cost query
    /// without building a second evaluator.
    frozen_initial: Option<(Placement, f64)>,
}

impl PlacementDomain {
    /// Build the domain for a circuit with the cost knobs taken from the
    /// run configuration.
    pub fn new(netlist: Arc<Netlist>, cfg: &PtsConfig) -> PlacementDomain {
        let timing = Arc::new(TimingGraph::build(&netlist).expect("acyclic circuit"));
        PlacementDomain {
            netlist,
            timing,
            alpha: cfg.alpha,
            eval_config: cfg.eval_config(),
            scheme: None,
            frozen_initial: None,
        }
    }

    /// The circuit this domain places.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// Exact raw objectives of a placement under this domain's scheme.
    pub fn objectives_of(&self, placement: &Placement) -> RawObjectives {
        self.instantiate(placement).evaluator().objectives()
    }
}

impl PtsDomain for PlacementDomain {
    type Problem = PlacementProblem;

    fn name(&self) -> &str {
        "placement"
    }

    fn domain_size(&self) -> usize {
        self.netlist.num_cells()
    }

    fn initial(&self, seed: u64) -> Placement {
        random_placement(&self.netlist, seed ^ 0x1317)
    }

    fn freeze(&self, initial: &Placement) -> PlacementDomain {
        let eval = Evaluator::new(
            self.netlist.clone(),
            self.timing.clone(),
            initial.clone(),
            self.eval_config,
        );
        PlacementDomain {
            scheme: Some(eval.scheme().clone()),
            frozen_initial: Some((initial.clone(), eval.cost())),
            ..self.clone()
        }
    }

    fn instantiate(&self, snapshot: &Placement) -> PlacementProblem {
        let eval = match &self.scheme {
            Some(scheme) => Evaluator::with_scheme(
                self.netlist.clone(),
                self.timing.clone(),
                snapshot.clone(),
                self.alpha,
                scheme.clone(),
            ),
            None => Evaluator::new(
                self.netlist.clone(),
                self.timing.clone(),
                snapshot.clone(),
                self.eval_config,
            ),
        };
        PlacementProblem::new(eval)
    }

    fn cost_of(&self, snapshot: &Placement) -> f64 {
        // The master asks for the cost of the very placement the scheme
        // was frozen from; answer from the freeze-time evaluation instead
        // of rebuilding HPWL + STA models.
        if let Some((frozen, cost)) = &self.frozen_initial {
            if frozen == snapshot {
                return *cost;
            }
        }
        self.instantiate(snapshot).cost()
    }
}

/// Everything the master learned from a placement run (the generic
/// [`SearchOutcome`] enriched with exact raw objectives of the winner).
#[derive(Clone, Debug)]
pub struct MasterOutcome {
    /// Best scalar cost found anywhere.
    pub best_cost: f64,
    /// The placement achieving [`MasterOutcome::best_cost`].
    pub best_placement: Placement,
    /// Raw objectives of the best placement.
    pub objectives: RawObjectives,
    /// Cost of the initial solution (same scheme).
    pub initial_cost: f64,
    /// Merged best-cost-over-time curve across all workers.
    pub trace: Trace,
    /// Global best after each global iteration.
    pub best_per_global_iter: Vec<f64>,
    /// Aggregated TSW search statistics.
    pub tsw_stats: SearchStats,
    /// Number of ForceReport messages the master sent.
    pub forced_reports: u64,
    /// Virtual/wall time when the search finished.
    pub end_time: f64,
}

impl MasterOutcome {
    /// Wrap a generic outcome, computing exact objectives under the frozen
    /// domain.
    pub fn from_search(outcome: SearchOutcome<Placement>, domain: &PlacementDomain) -> Self {
        let objectives = domain.objectives_of(&outcome.best);
        MasterOutcome {
            best_cost: outcome.best_cost,
            best_placement: outcome.best,
            objectives,
            initial_cost: outcome.initial_cost,
            trace: outcome.trace,
            best_per_global_iter: outcome.best_per_global_iter,
            tsw_stats: outcome.tsw_stats,
            forced_reports: outcome.forced_reports,
            end_time: outcome.end_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_netlist::{highway, TimingGraph};
    use pts_place::eval::EvalConfig;
    use pts_place::init::random_placement;
    use pts_tabu::search::{TabuSearch, TabuSearchConfig};
    use std::sync::Arc;

    fn problem(seed: u64) -> PlacementProblem {
        let nl = Arc::new(highway());
        let tg = Arc::new(TimingGraph::build(&nl).unwrap());
        let p = random_placement(&nl, seed);
        PlacementProblem::new(Evaluator::new(nl, tg, p, EvalConfig::default()))
    }

    #[test]
    fn trial_predicts_apply() {
        let mut pr = problem(1);
        let mut rng = Rng::new(2);
        for _ in 0..50 {
            let mv = pr.sample_move(&mut rng, None);
            let predicted = pr.trial_cost(&mv);
            pr.apply(&mv);
            assert!((pr.cost() - predicted).abs() < 1e-9);
            pr.undo(&mv);
        }
    }

    #[test]
    fn batched_trial_costs_bit_identical_to_scalar() {
        let mut pr = problem(2);
        let mut rng = Rng::new(21);
        for _ in 0..15 {
            let mut moves = Vec::new();
            pr.sample_moves(&mut rng, Some((5, 25)), 8, &mut moves);
            let scalar: Vec<f64> = moves.iter().map(|mv| pr.trial_cost(mv)).collect();
            let mut batched = Vec::new();
            pr.trial_costs(&moves, &mut batched);
            for (s, b) in scalar.iter().zip(batched.iter()) {
                assert_eq!(s.to_bits(), b.to_bits(), "batched kernel diverged");
            }
            pr.apply(&moves[0]);
        }
    }

    #[test]
    fn range_anchors_first_cell() {
        let mut pr = problem(3);
        let mut rng = Rng::new(4);
        for _ in 0..100 {
            let (a, b) = pr.sample_move(&mut rng, Some((10, 20)));
            assert!((10..20).contains(&(a.0 as usize)));
            assert_ne!(a, b);
        }
    }

    #[test]
    fn attributes_are_slots() {
        let pr = problem(5);
        let mv = (CellId(0), CellId(1));
        let (src_a, src_b) = pr.attributes(&mv);
        let (tgt_a, tgt_b) = pr.target_attributes(&mv);
        // Source of a == target of b's slot and vice versa.
        assert_eq!(src_a.1, tgt_b.unwrap().1);
        assert_eq!(src_b.unwrap().1, tgt_a.1);
        assert_eq!(src_a.0, 0);
        assert_eq!(tgt_a.0, 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut pr = problem(6);
        let snap = pr.snapshot();
        let cost = pr.cost();
        let mut rng = Rng::new(7);
        for _ in 0..10 {
            let mv = pr.sample_move(&mut rng, None);
            pr.apply(&mv);
        }
        pr.restore(&snap);
        assert_eq!(pr.placement(), &snap);
        assert!((pr.cost() - cost).abs() < 1e-9);
    }

    #[test]
    fn sequential_tabu_search_improves_placement() {
        let mut pr = problem(8);
        let start = pr.cost();
        let cfg = TabuSearchConfig {
            iterations: 60,
            candidates: 6,
            depth: 2,
            seed: 9,
            ..TabuSearchConfig::default()
        };
        let result = TabuSearch::new(cfg).run(&mut pr);
        assert!(
            result.best_cost < start,
            "tabu search must improve a random placement ({} -> {})",
            start,
            result.best_cost
        );
        pr.placement().check_consistency().unwrap();
    }
}
