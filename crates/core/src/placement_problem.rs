//! Binding of the VLSI placement evaluator to the generic tabu search
//! problem abstraction.

use pts_netlist::CellId;
use pts_place::eval::Evaluator;
use pts_place::placement::Placement;
use pts_tabu::problem::{AttrPair, SearchProblem};
use pts_util::Rng;

/// A cell-swap move.
pub type SwapMove = (CellId, CellId);

/// Tabu attribute: `(cell, slot)` — a cell is forbidden to return to a slot
/// it recently vacated.
pub type SlotAttr = (u32, u32);

/// The placement problem as seen by the tabu engine.
#[derive(Clone, Debug)]
pub struct PlacementProblem {
    eval: Evaluator,
}

impl PlacementProblem {
    pub fn new(eval: Evaluator) -> PlacementProblem {
        PlacementProblem { eval }
    }

    pub fn evaluator(&self) -> &Evaluator {
        &self.eval
    }

    pub fn evaluator_mut(&mut self) -> &mut Evaluator {
        &mut self.eval
    }

    pub fn placement(&self) -> &Placement {
        self.eval.placement()
    }
}

impl SearchProblem for PlacementProblem {
    type Move = SwapMove;
    type Attribute = SlotAttr;
    type Snapshot = Placement;

    fn cost(&self) -> f64 {
        self.eval.cost()
    }

    fn domain_size(&self) -> usize {
        self.eval.netlist().num_cells()
    }

    /// The paper's CLW move: the first cell comes from the worker's range,
    /// the second from anywhere in the cell space.
    fn sample_move(&mut self, rng: &mut Rng, range: Option<(usize, usize)>) -> SwapMove {
        let n = self.domain_size();
        let (lo, hi) = range.unwrap_or((0, n));
        debug_assert!(lo < hi && hi <= n);
        let a = rng.range(lo, hi);
        let mut b = rng.index(n);
        while b == a {
            b = rng.index(n);
        }
        (CellId(a as u32), CellId(b as u32))
    }

    fn trial_cost(&mut self, mv: &SwapMove) -> f64 {
        self.eval.trial_swap(mv.0, mv.1).cost
    }

    fn apply(&mut self, mv: &SwapMove) {
        self.eval.commit_swap(mv.0, mv.1);
    }

    fn undo(&mut self, mv: &SwapMove) {
        // Swaps are self-inverse.
        self.eval.commit_swap(mv.0, mv.1);
    }

    fn attributes(&self, mv: &SwapMove) -> AttrPair<SlotAttr> {
        let p = self.eval.placement();
        (
            (mv.0 .0, p.slot_of(mv.0).0),
            Some((mv.1 .0, p.slot_of(mv.1).0)),
        )
    }

    fn target_attributes(&self, mv: &SwapMove) -> AttrPair<SlotAttr> {
        let p = self.eval.placement();
        (
            (mv.0 .0, p.slot_of(mv.1).0),
            Some((mv.1 .0, p.slot_of(mv.0).0)),
        )
    }

    fn snapshot(&self) -> Placement {
        self.eval.snapshot()
    }

    fn restore(&mut self, snapshot: &Placement) {
        self.eval.adopt_placement(snapshot.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_netlist::{highway, TimingGraph};
    use pts_place::eval::EvalConfig;
    use pts_place::init::random_placement;
    use pts_tabu::search::{TabuSearch, TabuSearchConfig};
    use std::sync::Arc;

    fn problem(seed: u64) -> PlacementProblem {
        let nl = Arc::new(highway());
        let tg = Arc::new(TimingGraph::build(&nl).unwrap());
        let p = random_placement(&nl, seed);
        PlacementProblem::new(Evaluator::new(nl, tg, p, EvalConfig::default()))
    }

    #[test]
    fn trial_predicts_apply() {
        let mut pr = problem(1);
        let mut rng = Rng::new(2);
        for _ in 0..50 {
            let mv = pr.sample_move(&mut rng, None);
            let predicted = pr.trial_cost(&mv);
            pr.apply(&mv);
            assert!((pr.cost() - predicted).abs() < 1e-9);
            pr.undo(&mv);
        }
    }

    #[test]
    fn range_anchors_first_cell() {
        let mut pr = problem(3);
        let mut rng = Rng::new(4);
        for _ in 0..100 {
            let (a, b) = pr.sample_move(&mut rng, Some((10, 20)));
            assert!((10..20).contains(&(a.0 as usize)));
            assert_ne!(a, b);
        }
    }

    #[test]
    fn attributes_are_slots() {
        let pr = problem(5);
        let mv = (CellId(0), CellId(1));
        let (src_a, src_b) = pr.attributes(&mv);
        let (tgt_a, tgt_b) = pr.target_attributes(&mv);
        // Source of a == target of b's slot and vice versa.
        assert_eq!(src_a.1, tgt_b.unwrap().1);
        assert_eq!(src_b.unwrap().1, tgt_a.1);
        assert_eq!(src_a.0, 0);
        assert_eq!(tgt_a.0, 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut pr = problem(6);
        let snap = pr.snapshot();
        let cost = pr.cost();
        let mut rng = Rng::new(7);
        for _ in 0..10 {
            let mv = pr.sample_move(&mut rng, None);
            pr.apply(&mv);
        }
        pr.restore(&snap);
        assert_eq!(pr.placement(), &snap);
        assert!((pr.cost() - cost).abs() < 1e-9);
    }

    #[test]
    fn sequential_tabu_search_improves_placement() {
        let mut pr = problem(8);
        let start = pr.cost();
        let cfg = TabuSearchConfig {
            iterations: 60,
            candidates: 6,
            depth: 2,
            seed: 9,
            ..TabuSearchConfig::default()
        };
        let result = TabuSearch::new(cfg).run(&mut pr);
        assert!(
            result.best_cost < start,
            "tabu search must improve a random placement ({} -> {})",
            start,
            result.best_cost
        );
        pr.placement().check_consistency().unwrap();
    }
}
