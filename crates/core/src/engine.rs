//! Execution engines: the substrates a PTS run executes on.
//!
//! The paper runs one algorithm on one substrate (a PVM cluster of twelve
//! heterogeneous workstations). Here the same master/TSW/CLW pipeline runs
//! on any [`ExecutionEngine`]:
//!
//! * [`SimEngine`] — the deterministic virtual-time heterogeneous cluster
//!   (the paper's testbed substitute, exact replay, virtual metrics);
//! * [`ThreadEngine`] — native OS threads (real wall-clock parallelism);
//! * [`crate::async_engine::AsyncEngine`] — cooperative futures on one OS
//!   thread (thousands of logical workers, deterministic replay, wall
//!   clock);
//! * [`crate::virtual_engine::VirtualEngine`] — cooperative futures under
//!   a discrete-event virtual clock: `SimEngine`'s timing model
//!   (bit-identical timeline) at `AsyncEngine`'s scale.
//!
//! Engines are chosen via trait objects (`&dyn ExecutionEngine<D>`), so
//! run configuration code is substrate-independent, and all return the
//! same unified [`RunReport`] — no engine-specific output types.

use crate::config::PtsConfig;
use crate::control::RunControl;
use crate::domain::{PtsDomain, SearchOutcome, SnapshotOf};
use crate::master::{run_master, run_sub_master};
use crate::messages::PtsMsg;
use crate::report::{ClockDomain, RunReport};
use crate::transport::{drive_sync, SimTransport, StatsSink, ThreadTransport};
use crate::{clw::run_clw, tsw::run_tsw};
use pts_vcluster::topology::{paper_cluster, round_robin_assignment};
use pts_vcluster::{ClusterSpec, ProcStats, SimBuilder};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Result of a run on any engine: algorithmic outcome + unified metrics.
pub struct EngineOutput<D: PtsDomain> {
    /// What the search found (best solution, trace, statistics).
    pub outcome: SearchOutcome<SnapshotOf<D>>,
    /// How the substrate carried it (times, messages, per-process stats).
    pub report: RunReport,
}

/// A substrate that can carry the master/TSW/CLW pipeline for domain `D`.
///
/// Implementations must spawn `cfg.total_procs()` logical processes wired
/// per the [`PtsConfig`] rank topology and return the master's outcome
/// plus a fully populated [`RunReport`]. `cfg` is validated by the caller
/// ([`crate::builder::PtsRun`] guarantees it).
pub trait ExecutionEngine<D: PtsDomain> {
    /// Short engine name ("sim", "threads", "async", "vt") for logs and
    /// reports.
    fn name(&self) -> &'static str;

    /// Run the pipeline to completion from `initial` (the domain is
    /// already frozen).
    fn execute(&self, cfg: &PtsConfig, domain: &D, initial: SnapshotOf<D>) -> EngineOutput<D>;
}

/// Deterministic virtual-time heterogeneous cluster engine.
#[derive(Clone, Debug)]
pub struct SimEngine {
    cluster: ClusterSpec,
}

impl SimEngine {
    /// Simulate on an arbitrary cluster description.
    pub fn new(cluster: ClusterSpec) -> SimEngine {
        SimEngine { cluster }
    }

    /// The paper's twelve-machine cluster (7 fast / 3 medium / 2 slow).
    pub fn paper() -> SimEngine {
        SimEngine::new(paper_cluster())
    }

    /// The cluster this engine simulates.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }
}

impl<D: PtsDomain> ExecutionEngine<D> for SimEngine {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn execute(&self, cfg: &PtsConfig, domain: &D, initial: SnapshotOf<D>) -> EngineOutput<D> {
        let wall = Instant::now();
        let assignment = round_robin_assignment(&self.cluster, cfg.total_procs());
        let mut sim: SimBuilder<PtsMsg<D::Problem>> = SimBuilder::new(self.cluster.clone());
        let outcome_slot: Arc<Mutex<Option<SearchOutcome<SnapshotOf<D>>>>> =
            Arc::new(Mutex::new(None));

        // Rank 0: master. Spawn order must equal rank order (SimTransport
        // identifies rank with simulated pid).
        {
            let cfg = cfg.clone();
            let domain = domain.clone();
            let slot = Arc::clone(&outcome_slot);
            sim.spawn(assignment[0], move |ctx| {
                let mut t = SimTransport { ctx };
                let outcome = drive_sync(run_master(
                    &mut t,
                    &cfg,
                    &domain,
                    initial,
                    &RunControl::unlimited(),
                ));
                *slot.lock().unwrap() = Some(outcome);
            });
        }
        // Ranks 1..=n_tsw: TSWs.
        for i in 0..cfg.n_tsw {
            let cfg = cfg.clone();
            let domain = domain.clone();
            let rank = cfg.tsw_rank(i);
            sim.spawn(assignment[rank], move |ctx| {
                let mut t = SimTransport { ctx };
                drive_sync(run_tsw(&mut t, &cfg, i, &domain));
            });
        }
        // Next ranks: CLWs, grouped by TSW.
        for i in 0..cfg.n_tsw {
            for j in 0..cfg.n_clw {
                let cfg = cfg.clone();
                let domain = domain.clone();
                let rank = cfg.clw_rank(i, j);
                let tsw_rank = cfg.tsw_rank(i);
                sim.spawn(assignment[rank], move |ctx| {
                    let mut t = SimTransport { ctx };
                    drive_sync(run_clw(&mut t, &cfg, tsw_rank, j, &domain));
                });
            }
        }
        // Final ranks: sub-masters of the sharded collection tree (none
        // under the default flat topology).
        for s in 0..cfg.n_shards() {
            let cfg = cfg.clone();
            let domain = domain.clone();
            let rank = cfg.shard_rank(s);
            sim.spawn(assignment[rank], move |ctx| {
                let mut t = SimTransport { ctx };
                drive_sync(run_sub_master(&mut t, &cfg, s, &domain));
            });
        }
        debug_assert_eq!(sim.num_spawned(), cfg.total_procs());

        let cluster_report = sim.run();
        let outcome = outcome_slot
            .lock()
            .unwrap()
            .take()
            .expect("master deposits its outcome");
        EngineOutput {
            outcome,
            report: RunReport {
                engine: "sim",
                clock: ClockDomain::Virtual,
                end_time: cluster_report.end_time,
                wall_seconds: wall.elapsed().as_secs_f64(),
                per_proc: cluster_report.per_proc,
                dead_ranks: vec![],
            },
        }
    }
}

/// Native OS-thread engine: real wall-clock parallelism. Virtual work
/// accounting only records units — real computation takes real time.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadEngine;

impl ThreadEngine {
    /// A new thread engine (stateless — all state is per-run).
    pub fn new() -> ThreadEngine {
        ThreadEngine
    }
}

impl<D: PtsDomain> ExecutionEngine<D> for ThreadEngine {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn execute(&self, cfg: &PtsConfig, domain: &D, initial: SnapshotOf<D>) -> EngineOutput<D> {
        let n = cfg.total_procs();
        let start = Instant::now();
        let stats_sink: StatsSink = Arc::new(Mutex::new(vec![ProcStats::default(); n]));

        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = channel::<PtsMsg<D::Problem>>();
            senders.push(s);
            receivers.push(Some(r));
        }

        let mut handles = Vec::new();
        for i in 0..cfg.n_tsw {
            let rank = cfg.tsw_rank(i);
            let mut t = ThreadTransport::new(
                rank,
                start,
                senders.clone(),
                receivers[rank].take().expect("receiver unclaimed"),
                Arc::clone(&stats_sink),
            );
            let cfg = cfg.clone();
            let domain = domain.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pts-tsw{i}"))
                    .spawn(move || {
                        t.mark_thread_start();
                        drive_sync(run_tsw(&mut t, &cfg, i, &domain))
                    })
                    .expect("spawn TSW thread"),
            );
        }
        for i in 0..cfg.n_tsw {
            for j in 0..cfg.n_clw {
                let rank = cfg.clw_rank(i, j);
                let tsw_rank = cfg.tsw_rank(i);
                let mut t = ThreadTransport::new(
                    rank,
                    start,
                    senders.clone(),
                    receivers[rank].take().expect("receiver unclaimed"),
                    Arc::clone(&stats_sink),
                );
                let cfg = cfg.clone();
                let domain = domain.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("pts-clw{i}.{j}"))
                        .spawn(move || {
                            t.mark_thread_start();
                            drive_sync(run_clw(&mut t, &cfg, tsw_rank, j, &domain))
                        })
                        .expect("spawn CLW thread"),
                );
            }
        }

        for s in 0..cfg.n_shards() {
            let rank = cfg.shard_rank(s);
            let mut t = ThreadTransport::new(
                rank,
                start,
                senders.clone(),
                receivers[rank].take().expect("receiver unclaimed"),
                Arc::clone(&stats_sink),
            );
            let cfg = cfg.clone();
            let domain = domain.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pts-shard{s}"))
                    .spawn(move || {
                        t.mark_thread_start();
                        drive_sync(run_sub_master(&mut t, &cfg, s, &domain))
                    })
                    .expect("spawn sub-master thread"),
            );
        }

        let outcome = {
            let mut master_t = ThreadTransport::new(
                cfg.master_rank(),
                start,
                senders,
                receivers[cfg.master_rank()]
                    .take()
                    .expect("master receiver"),
                Arc::clone(&stats_sink),
            );
            master_t.mark_thread_start();
            drive_sync(run_master(
                &mut master_t,
                cfg,
                domain,
                initial,
                &RunControl::unlimited(),
            ))
        };

        for h in handles {
            h.join().expect("worker thread panicked");
        }

        let wall_seconds = start.elapsed().as_secs_f64();
        let per_proc = std::mem::take(&mut *stats_sink.lock().unwrap());
        EngineOutput {
            outcome,
            report: RunReport {
                engine: "threads",
                clock: ClockDomain::Wall,
                end_time: wall_seconds,
                wall_seconds,
                per_proc,
                dead_ranks: vec![],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qap_domain::QapDomain;

    #[test]
    fn engines_are_object_safe() {
        // The whole point of the trait: substrate selected at runtime.
        let engines: Vec<Box<dyn ExecutionEngine<QapDomain>>> =
            vec![Box::new(SimEngine::paper()), Box::new(ThreadEngine)];
        assert_eq!(engines[0].name(), "sim");
        assert_eq!(engines[1].name(), "threads");
    }
}
